#!/usr/bin/env sh
# CI gate: release build, full test suite, fault-injection suite, static
# analyzer gate, sanitizer smoke test, clippy with warnings denied.
set -eu

cargo build --release
cargo build --release --bin faultsim
cargo test -q
# Fault-injection suites, run explicitly so a regression in supervision is
# named in the CI log (both also run as part of `cargo test`). Every
# injected hang dies at a ~200 ms kill deadline, so this stays fast.
cargo test -q -p accmos-backend --test supervise
cargo test -q --test chaos

# Static-analyzer gate: every Table 1 benchmark must produce well-formed
# JSON and zero error-severity findings (the lint catalogue's `error`
# rules flag guaranteed-wrong models; a benchmark tripping one is a bug
# in either the model or the analyzer).
cargo build --release -p accmos --bin accmos
for m in CPUT CSEV FMTM LANS LEDLC RAC SPV TCP TWC UTPC; do
    ./target/release/accmos analyze "bench:$m" --format json --deny error \
        | python3 -c "import json,sys; json.load(sys.stdin)" \
        || { echo "ci: accmos analyze failed on bench:$m" >&2; exit 1; }
done
echo "ci: analyzer gate passed on all 10 benchmarks"

# Sanitizer smoke test: compile one generated Table 1 simulator with
# UBSan+ASan (no recovery, so any report aborts) and run a short
# simulation. Catches UB in the generated C that -O3 happens to tolerate.
SAN_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR"' EXIT
./target/release/accmos generate bench:SPV --out "$SAN_DIR"
${CC:-cc} -O1 -g -fwrapv -std=gnu11 \
    -fsanitize=undefined,address -fno-sanitize-recover=all \
    "$SAN_DIR"/SPV.c -o "$SAN_DIR"/spv_san -lm
"$SAN_DIR"/spv_san 5000 > "$SAN_DIR"/san_out.txt \
    || { echo "ci: sanitizer run failed" >&2; exit 1; }
grep -q "ACCMOS:END" "$SAN_DIR"/san_out.txt \
    || { echo "ci: sanitized simulator produced no protocol output" >&2; exit 1; }
echo "ci: sanitizer smoke test passed (SPV, 5000 steps, UBSan+ASan clean)"

# Run-ledger + trend gate: two batches into one fresh cache dir must both
# append schema-versioned ledger records, and the trend check must pass
# over that history (the huge threshold keeps timing noise out of CI; the
# gate exercises the ledger/trends plumbing, not machine speed).
LEDGER_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR" "$LEDGER_DIR"' EXIT
ACCMOS_CACHE_DIR="$LEDGER_DIR" ./target/release/accmos batch bench:SPV bench:TWC --steps 500 --repeat 2 > /dev/null \
    || { echo "ci: first ledger batch failed" >&2; exit 1; }
COUNT1=$(wc -l < "$LEDGER_DIR/ledger.jsonl")
[ "$COUNT1" -ge 4 ] || { echo "ci: first batch appended $COUNT1 ledger record(s), expected >= 4" >&2; exit 1; }
ACCMOS_CACHE_DIR="$LEDGER_DIR" ./target/release/accmos batch bench:SPV bench:TWC --steps 500 --repeat 2 > /dev/null \
    || { echo "ci: second ledger batch failed" >&2; exit 1; }
COUNT2=$(wc -l < "$LEDGER_DIR/ledger.jsonl")
[ "$COUNT2" -gt "$COUNT1" ] || { echo "ci: second batch did not grow the ledger ($COUNT1 -> $COUNT2)" >&2; exit 1; }
ACCMOS_CACHE_DIR="$LEDGER_DIR" ./target/release/accmos trends --check --max-regress 10000 \
    || { echo "ci: trend gate failed" >&2; exit 1; }
echo "ci: run ledger grew $COUNT1 -> $COUNT2 record(s) across two batches; trend gate passed"

cargo clippy --workspace -- -D warnings
