#!/usr/bin/env sh
# CI gate: release build, full test suite, fault-injection suite, static
# analyzer gate, sanitizer smoke test, clippy with warnings denied.
set -eu

cargo build --release
cargo build --release --bin faultsim
cargo test -q
# Fault-injection suites, run explicitly so a regression in supervision is
# named in the CI log (both also run as part of `cargo test`). Every
# injected hang dies at a ~200 ms kill deadline, so this stays fast.
cargo test -q -p accmos-backend --test supervise
cargo test -q --test chaos
# Dylib equality sweep, named so a divergence between the in-process and
# subprocess engines is called out in the CI log (also part of `cargo
# test`). It runs as a native cargo test rather than under the sanitizer
# leg below because an ASan-instrumented .so cannot load into the
# uninstrumented host binary; the sanitizer leg still covers the
# entry-point code, since the generated main() routes through
# accmos_entry and the same emit path the dylib engine calls.
cargo test -q --test serve

# Static-analyzer gate: every Table 1 benchmark must produce well-formed
# JSON and zero error-severity findings (the lint catalogue's `error`
# rules flag guaranteed-wrong models; a benchmark tripping one is a bug
# in either the model or the analyzer). The suite-wide count of proven
# sites — prunable diagnosis checks plus constant-foldable actors — must
# stay at or above the established baseline (~170): a drop means the
# analyzer silently lost precision.
cargo build --release -p accmos --bin accmos
SITES=0
for m in CPUT CSEV FMTM LANS LEDLC RAC SPV TCP TWC UTPC; do
    n=$(./target/release/accmos analyze "bench:$m" --format json --deny error \
        | python3 -c "import json,sys; d=json.load(sys.stdin); print(d['prunable_checks']+d['foldable_actors'])") \
        || { echo "ci: accmos analyze failed on bench:$m" >&2; exit 1; }
    SITES=$((SITES + n))
done
[ "$SITES" -ge 170 ] \
    || { echo "ci: suite-wide proven sites dropped to $SITES (baseline >= 170)" >&2; exit 1; }
echo "ci: analyzer gate passed on all 10 benchmarks ($SITES proven prunable/foldable sites)"

# Sanitizer smoke test: compile one generated Table 1 simulator with
# UBSan+ASan (no recovery, so any report aborts) and run a short
# simulation. Catches UB in the generated C that -O3 happens to tolerate.
SAN_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR"' EXIT
./target/release/accmos generate bench:SPV --out "$SAN_DIR"
${CC:-cc} -O1 -g -fwrapv -std=gnu11 \
    -fsanitize=undefined,address -fno-sanitize-recover=all \
    "$SAN_DIR"/SPV.c -o "$SAN_DIR"/spv_san -lm
"$SAN_DIR"/spv_san 5000 > "$SAN_DIR"/san_out.txt \
    || { echo "ci: sanitizer run failed" >&2; exit 1; }
grep -q "ACCMOS:END" "$SAN_DIR"/san_out.txt \
    || { echo "ci: sanitized simulator produced no protocol output" >&2; exit 1; }
echo "ci: sanitizer smoke test passed (SPV, 5000 steps, UBSan+ASan clean)"

# Run-ledger + trend gate: two batches into one fresh cache dir must both
# append schema-versioned ledger records, and the trend check must pass
# over that history (the huge threshold keeps timing noise out of CI; the
# gate exercises the ledger/trends plumbing, not machine speed).
LEDGER_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR" "$LEDGER_DIR"' EXIT
ACCMOS_CACHE_DIR="$LEDGER_DIR" ./target/release/accmos batch bench:SPV bench:TWC --steps 500 --repeat 2 > /dev/null \
    || { echo "ci: first ledger batch failed" >&2; exit 1; }
COUNT1=$(wc -l < "$LEDGER_DIR/ledger.jsonl")
[ "$COUNT1" -ge 4 ] || { echo "ci: first batch appended $COUNT1 ledger record(s), expected >= 4" >&2; exit 1; }
ACCMOS_CACHE_DIR="$LEDGER_DIR" ./target/release/accmos batch bench:SPV bench:TWC --steps 500 --repeat 2 > /dev/null \
    || { echo "ci: second ledger batch failed" >&2; exit 1; }
COUNT2=$(wc -l < "$LEDGER_DIR/ledger.jsonl")
[ "$COUNT2" -gt "$COUNT1" ] || { echo "ci: second batch did not grow the ledger ($COUNT1 -> $COUNT2)" >&2; exit 1; }
ACCMOS_CACHE_DIR="$LEDGER_DIR" ./target/release/accmos trends --check --max-regress 10000 \
    || { echo "ci: trend gate failed" >&2; exit 1; }
echo "ci: run ledger grew $COUNT1 -> $COUNT2 record(s) across two batches; trend gate passed"

# Lane-parallel gates: (1) the per-lane digests of one lane-4 run must
# equal four scalar runs over the same seeded stimuli — the
# structure-of-arrays codegen may never change simulation results; (2) a
# lane-8 simulator must be UBSan+ASan clean; (3) a ledger mixing scalar
# and lane runs must pass the trend gate with the two engine keys
# (`accmos` / `accmos@4`) baselined apart.
LANE_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR" "$LEDGER_DIR" "$LANE_DIR"' EXIT
ACCMOS_CACHE_DIR="$LANE_DIR" ./target/release/accmos simulate bench:TWC --steps 2000 --seed 77 --lanes 4 > "$LANE_DIR/lane_out.txt" \
    || { echo "ci: lane-4 simulate failed" >&2; exit 1; }
for i in 0 1 2 3; do
    lane=$(sed -n "s/^  lane $i: digest \([0-9a-f]*\),.*/\1/p" "$LANE_DIR/lane_out.txt")
    scalar=$(ACCMOS_CACHE_DIR="$LANE_DIR" ./target/release/accmos simulate bench:TWC --steps 2000 --seed $((77 + i)) \
        | sed -n 's/^  digest: \([0-9a-f]*\)$/\1/p')
    [ -n "$lane" ] && [ "$lane" = "$scalar" ] \
        || { echo "ci: lane $i digest '$lane' != scalar digest '$scalar'" >&2; exit 1; }
done
echo "ci: lane-4 digests match scalar runs (TWC, 2000 steps)"

./target/release/accmos generate bench:SPV --lanes 8 --out "$LANE_DIR"
${CC:-cc} -O1 -g -fwrapv -std=gnu11 \
    -fsanitize=undefined,address -fno-sanitize-recover=all \
    "$LANE_DIR"/SPV.c -o "$LANE_DIR"/spv_lane_san -lm
"$LANE_DIR"/spv_lane_san 2000 > "$LANE_DIR"/lane_san_out.txt \
    || { echo "ci: lane-8 sanitizer run failed" >&2; exit 1; }
grep -q "ACCMOS:LANES 8" "$LANE_DIR"/lane_san_out.txt \
    || { echo "ci: sanitized lane simulator did not report 8 lanes" >&2; exit 1; }
echo "ci: lane-8 sanitizer smoke test passed (SPV, 2000 steps, UBSan+ASan clean)"

ACCMOS_CACHE_DIR="$LANE_DIR" ./target/release/accmos trends --check --max-regress 10000 \
    || { echo "ci: mixed scalar+lane trend gate failed" >&2; exit 1; }
ACCMOS_CACHE_DIR="$LANE_DIR" ./target/release/accmos trends | grep -q "accmos@4" \
    || { echo "ci: trends does not surface the lane engine key" >&2; exit 1; }
echo "ci: mixed scalar+lane ledger passed the trend gate"

# Differential-fuzz gate: a short deterministic campaign (fixed seed, 50
# trials — the planner mixes in lane-4, conditional-group and
# specialization-off comparison trials, and the `plan mix` line proves
# it) must complete with zero divergences and
# zero unclassified failures; a second `--resume` run over the same state
# must skip every completed trial. The corpus replay suite pins every
# previously-minimized divergence (it also runs under `cargo test`; named
# here so a re-fired repro is called out in the CI log).
cargo test -q --test corpus
FUZZ_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR" "$LEDGER_DIR" "$LANE_DIR" "$FUZZ_DIR"' EXIT
./target/release/accmos fuzz --trials 50 --seed 1 --cache-dir "$FUZZ_DIR" \
    > "$FUZZ_DIR/fuzz_out.txt" \
    || { cat "$FUZZ_DIR/fuzz_out.txt" >&2; echo "ci: fuzz campaign failed" >&2; exit 1; }
grep -q "ok 50, divergences 0, classified failures 0, injected 0, unclassified 0" \
    "$FUZZ_DIR/fuzz_out.txt" \
    || { cat "$FUZZ_DIR/fuzz_out.txt" >&2; echo "ci: fuzz campaign not fully clean" >&2; exit 1; }
MIX=$(sed -n 's/^  plan mix: //p' "$FUZZ_DIR/fuzz_out.txt")
case "$MIX" in
    0\ lane-4*|*" 0 conditional"*|*" 0 spec-off"*)
        echo "ci: fuzz plan mix missing a feature: $MIX" >&2; exit 1 ;;
esac
./target/release/accmos fuzz --trials 50 --seed 1 --cache-dir "$FUZZ_DIR" --resume \
    > "$FUZZ_DIR/resume_out.txt" \
    || { cat "$FUZZ_DIR/resume_out.txt" >&2; echo "ci: fuzz resume failed" >&2; exit 1; }
grep -q "50 planned, 0 executed, 50 resumed-skip" "$FUZZ_DIR/resume_out.txt" \
    || { cat "$FUZZ_DIR/resume_out.txt" >&2; echo "ci: resume did not skip completed trials" >&2; exit 1; }
echo "ci: fuzz gate passed (50 trials clean, mix: $MIX, resume skipped all 50)"

# Sanitize a sample of fuzz-generated models: the same random models the
# campaign exercises, compiled with UBSan+ASan (scalar and lane-4 shapes)
# and run for a short simulation. Catches UB in generated C that the
# digest comparison alone cannot see.
for spec in "3:" "9:--lanes 4"; do
    seed=${spec%%:*}; lanes=${spec#*:}
    GEN_DIR="$FUZZ_DIR/gen$seed"
    ./target/release/accmos generate "rand:$seed" $lanes --out "$GEN_DIR" > /dev/null \
        || { echo "ci: generate rand:$seed failed" >&2; exit 1; }
    ${CC:-cc} -O1 -g -fwrapv -std=gnu11 \
        -fsanitize=undefined,address -fno-sanitize-recover=all \
        "$GEN_DIR"/Rand*.c -o "$GEN_DIR/rand_san" -lm
    "$GEN_DIR/rand_san" 500 > "$GEN_DIR/san_out.txt" \
        || { echo "ci: sanitized rand:$seed run failed" >&2; exit 1; }
    grep -q "ACCMOS:END" "$GEN_DIR/san_out.txt" \
        || { echo "ci: sanitized rand:$seed produced no protocol output" >&2; exit 1; }
done
echo "ci: fuzz-model sanitizer smoke test passed (rand:3 scalar, rand:9 lane-4)"

# Analyzer gate over fuzz-generated models: the same two random models
# must analyze clean at error severity — the lint catalogue's `error`
# rules may never fire on generator output (the generator only builds
# well-formed models; an error finding means an analyzer false positive
# or a generator bug).
for seed in 3 9; do
    ./target/release/accmos analyze "rand:$seed" --format json --deny error \
        | python3 -c "import json,sys; json.load(sys.stdin)" \
        || { echo "ci: accmos analyze failed on rand:$seed" >&2; exit 1; }
done
echo "ci: analyzer gate passed on rand:3 and rand:9"

# Observability gate: a profiled run must (1) be digest-identical to the
# unprofiled run of the same model/stimuli — the self-profiling
# instrumentation may never perturb simulation results; (2) produce a
# ranked hot-site report naming a real actor; (3) write a well-formed
# Chrome trace-event JSON containing pipeline, supervisor and per-actor
# profile spans.
PROF_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR" "$LEDGER_DIR" "$LANE_DIR" "$FUZZ_DIR" "$PROF_DIR"' EXIT
PLAIN=$(ACCMOS_CACHE_DIR="$PROF_DIR" ./target/release/accmos simulate bench:CSEV --steps 5000 --seed 11 \
    | sed -n 's/^  digest: \([0-9a-f]*\)$/\1/p')
PROFILED=$(ACCMOS_CACHE_DIR="$PROF_DIR" ./target/release/accmos simulate bench:CSEV --steps 5000 --seed 11 --profile \
    | sed -n 's/^  digest: \([0-9a-f]*\)$/\1/p')
[ -n "$PLAIN" ] && [ "$PLAIN" = "$PROFILED" ] \
    || { echo "ci: profiled digest '$PROFILED' != plain digest '$PLAIN'" >&2; exit 1; }
ACCMOS_CACHE_DIR="$PROF_DIR" ./target/release/accmos profile bench:CSEV --steps 5000 --seed 11 \
    --trace-out "$PROF_DIR/trace.json" > "$PROF_DIR/prof_out.txt" \
    || { cat "$PROF_DIR/prof_out.txt" >&2; echo "ci: accmos profile failed" >&2; exit 1; }
grep -q "CSEV_" "$PROF_DIR/prof_out.txt" \
    || { echo "ci: profile report names no CSEV actor site" >&2; exit 1; }
python3 - "$PROF_DIR/trace.json" <<'EOF' \
    || { echo "ci: trace JSON validation failed" >&2; exit 1; }
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
cats = {e["cat"] for e in events}
missing = {"pipeline", "supervisor", "actor"} - cats
assert not missing, f"trace missing span categories: {missing}"
assert any(e["name"] == "run" for e in events), "no pipeline run span"
assert all(e["ph"] == "X" for e in events), "non-complete event in trace"
EOF
echo "ci: observability gate passed (profiled digest identical, trace has pipeline/supervisor/actor spans)"

# Serve smoke gate: start the daemon, stream 8 jobs through it — six
# trusted bench jobs on the in-process dylib engine, one untrusted
# rand: job on the flagged subprocess path, and one fault-injected job
# (the rand: job's cached executable swapped for a crashing faultsim
# copy) that must classify as failed without taking the daemon down —
# then assert ledger growth, the persistent job journal, and a clean
# shutdown that removes the socket.
SERVE_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR" "$LEDGER_DIR" "$LANE_DIR" "$FUZZ_DIR" "$PROF_DIR" "$SERVE_DIR"; kill "${SERVE_PID:-}" 2>/dev/null || true' EXIT
SOCK="$SERVE_DIR/accmos.sock"
FAULTSIM_MODE=crash ./target/release/accmos serve --socket "$SOCK" --cache-dir "$SERVE_DIR" \
    --workers 2 --exec-timeout 2000 --retries 1 > "$SERVE_DIR/serve_log.txt" 2>&1 &
SERVE_PID=$!
i=0
until ./target/release/accmos submit --ping --socket "$SOCK" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 50 ] || { cat "$SERVE_DIR/serve_log.txt" >&2; echo "ci: serve daemon never came up" >&2; exit 1; }
    sleep 0.2
done
: > "$SERVE_DIR/submit_out.txt"
for job in "bench:SPV 500" "bench:TWC 500 --lanes 4" "bench:RAC 500" \
           "bench:CPUT 500 --seed 9" "bench:LANS 500" "bench:CSEV 500 --lanes 2"; do
    ./target/release/accmos submit $job --socket "$SOCK" >> "$SERVE_DIR/submit_out.txt" \
        || { cat "$SERVE_DIR/submit_out.txt" "$SERVE_DIR/serve_log.txt" >&2; echo "ci: serve job '$job' failed" >&2; exit 1; }
done
[ "$(grep -c "outcome=ok engine=accmos-dylib" "$SERVE_DIR/submit_out.txt")" -eq 6 ] \
    || { cat "$SERVE_DIR/submit_out.txt" >&2; echo "ci: expected 6 in-process dylib results" >&2; exit 1; }
./target/release/accmos submit rand:5 300 --socket "$SOCK" >> "$SERVE_DIR/submit_out.txt" \
    || { cat "$SERVE_DIR/submit_out.txt" >&2; echo "ci: untrusted rand: job failed" >&2; exit 1; }
grep -q "outcome=degraded" "$SERVE_DIR/submit_out.txt" \
    || { cat "$SERVE_DIR/submit_out.txt" >&2; echo "ci: rand: job did not take the flagged subprocess path" >&2; exit 1; }
# Fault injection: only untrusted jobs build the cached *executable*
# (trusted jobs build only the .so), so every `sim` file in the cache
# belongs to the rand:5 job just run; swap them for faultsim and the
# resubmitted job must fail cleanly.
find "$SERVE_DIR" -name sim -type f | grep -q . \
    || { echo "ci: no cached subprocess executable to fault-inject" >&2; exit 1; }
find "$SERVE_DIR" -name sim -type f -exec cp ./target/release/faultsim {} \;
if ./target/release/accmos submit rand:5 300 --socket "$SOCK" >> "$SERVE_DIR/submit_out.txt" 2>&1; then
    cat "$SERVE_DIR/submit_out.txt" >&2; echo "ci: fault-injected serve job did not fail" >&2; exit 1
fi
./target/release/accmos submit --ping --socket "$SOCK" > /dev/null \
    || { echo "ci: daemon did not survive the fault-injected job" >&2; exit 1; }
COUNT=$(wc -l < "$SERVE_DIR/ledger.jsonl")
[ "$COUNT" -ge 8 ] || { echo "ci: serve ledger has $COUNT record(s), expected >= 8" >&2; exit 1; }
JOBS=$(wc -l < "$SERVE_DIR/jobs.jsonl")
[ "$JOBS" -ge 16 ] || { echo "ci: jobs journal has $JOBS record(s), expected >= 16 (8 queued + 8 done)" >&2; exit 1; }
./target/release/accmos submit --shutdown --socket "$SOCK" | grep -q "shutting down" \
    || { echo "ci: shutdown handshake failed" >&2; exit 1; }
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 50 ] || { echo "ci: serve daemon did not exit after shutdown" >&2; kill -9 "$SERVE_PID"; exit 1; }
    sleep 0.2
done
[ ! -e "$SOCK" ] || { echo "ci: daemon left its socket behind" >&2; exit 1; }
echo "ci: serve gate passed (6 dylib jobs, 1 subprocess-isolated, 1 fault-injected failure; ledger $COUNT, journal $JOBS, clean shutdown)"

cargo clippy --workspace -- -D warnings
