#!/usr/bin/env sh
# CI gate: release build, full test suite, fault-injection suite, clippy
# with warnings denied.
set -eu

cargo build --release
cargo build --release --bin faultsim
cargo test -q
# Fault-injection suites, run explicitly so a regression in supervision is
# named in the CI log (both also run as part of `cargo test`). Every
# injected hang dies at a ~200 ms kill deadline, so this stays fast.
cargo test -q -p accmos-backend --test supervise
cargo test -q --test chaos
cargo clippy --workspace -- -D warnings
