#!/usr/bin/env sh
# CI gate: release build, full test suite, clippy with warnings denied.
set -eu

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
