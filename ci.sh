#!/usr/bin/env sh
# CI gate: release build, full test suite, fault-injection suite, static
# analyzer gate, sanitizer smoke test, clippy with warnings denied.
set -eu

cargo build --release
cargo build --release --bin faultsim
cargo test -q
# Fault-injection suites, run explicitly so a regression in supervision is
# named in the CI log (both also run as part of `cargo test`). Every
# injected hang dies at a ~200 ms kill deadline, so this stays fast.
cargo test -q -p accmos-backend --test supervise
cargo test -q --test chaos

# Static-analyzer gate: every Table 1 benchmark must produce well-formed
# JSON and zero error-severity findings (the lint catalogue's `error`
# rules flag guaranteed-wrong models; a benchmark tripping one is a bug
# in either the model or the analyzer).
cargo build --release -p accmos --bin accmos
for m in CPUT CSEV FMTM LANS LEDLC RAC SPV TCP TWC UTPC; do
    ./target/release/accmos analyze "bench:$m" --format json --deny error \
        | python3 -c "import json,sys; json.load(sys.stdin)" \
        || { echo "ci: accmos analyze failed on bench:$m" >&2; exit 1; }
done
echo "ci: analyzer gate passed on all 10 benchmarks"

# Sanitizer smoke test: compile one generated Table 1 simulator with
# UBSan+ASan (no recovery, so any report aborts) and run a short
# simulation. Catches UB in the generated C that -O3 happens to tolerate.
SAN_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR"' EXIT
./target/release/accmos generate bench:SPV --out "$SAN_DIR"
${CC:-cc} -O1 -g -fwrapv -std=gnu11 \
    -fsanitize=undefined,address -fno-sanitize-recover=all \
    "$SAN_DIR"/SPV.c -o "$SAN_DIR"/spv_san -lm
"$SAN_DIR"/spv_san 5000 > "$SAN_DIR"/san_out.txt \
    || { echo "ci: sanitizer run failed" >&2; exit 1; }
grep -q "ACCMOS:END" "$SAN_DIR"/san_out.txt \
    || { echo "ci: sanitized simulator produced no protocol output" >&2; exit 1; }
echo "ci: sanitizer smoke test passed (SPV, 5000 steps, UBSan+ASan clean)"

# Run-ledger + trend gate: two batches into one fresh cache dir must both
# append schema-versioned ledger records, and the trend check must pass
# over that history (the huge threshold keeps timing noise out of CI; the
# gate exercises the ledger/trends plumbing, not machine speed).
LEDGER_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR" "$LEDGER_DIR"' EXIT
ACCMOS_CACHE_DIR="$LEDGER_DIR" ./target/release/accmos batch bench:SPV bench:TWC --steps 500 --repeat 2 > /dev/null \
    || { echo "ci: first ledger batch failed" >&2; exit 1; }
COUNT1=$(wc -l < "$LEDGER_DIR/ledger.jsonl")
[ "$COUNT1" -ge 4 ] || { echo "ci: first batch appended $COUNT1 ledger record(s), expected >= 4" >&2; exit 1; }
ACCMOS_CACHE_DIR="$LEDGER_DIR" ./target/release/accmos batch bench:SPV bench:TWC --steps 500 --repeat 2 > /dev/null \
    || { echo "ci: second ledger batch failed" >&2; exit 1; }
COUNT2=$(wc -l < "$LEDGER_DIR/ledger.jsonl")
[ "$COUNT2" -gt "$COUNT1" ] || { echo "ci: second batch did not grow the ledger ($COUNT1 -> $COUNT2)" >&2; exit 1; }
ACCMOS_CACHE_DIR="$LEDGER_DIR" ./target/release/accmos trends --check --max-regress 10000 \
    || { echo "ci: trend gate failed" >&2; exit 1; }
echo "ci: run ledger grew $COUNT1 -> $COUNT2 record(s) across two batches; trend gate passed"

# Lane-parallel gates: (1) the per-lane digests of one lane-4 run must
# equal four scalar runs over the same seeded stimuli — the
# structure-of-arrays codegen may never change simulation results; (2) a
# lane-8 simulator must be UBSan+ASan clean; (3) a ledger mixing scalar
# and lane runs must pass the trend gate with the two engine keys
# (`accmos` / `accmos@4`) baselined apart.
LANE_DIR=$(mktemp -d)
trap 'rm -rf "$SAN_DIR" "$LEDGER_DIR" "$LANE_DIR"' EXIT
ACCMOS_CACHE_DIR="$LANE_DIR" ./target/release/accmos simulate bench:TWC --steps 2000 --seed 77 --lanes 4 > "$LANE_DIR/lane_out.txt" \
    || { echo "ci: lane-4 simulate failed" >&2; exit 1; }
for i in 0 1 2 3; do
    lane=$(sed -n "s/^  lane $i: digest \([0-9a-f]*\),.*/\1/p" "$LANE_DIR/lane_out.txt")
    scalar=$(ACCMOS_CACHE_DIR="$LANE_DIR" ./target/release/accmos simulate bench:TWC --steps 2000 --seed $((77 + i)) \
        | sed -n 's/^  digest: \([0-9a-f]*\)$/\1/p')
    [ -n "$lane" ] && [ "$lane" = "$scalar" ] \
        || { echo "ci: lane $i digest '$lane' != scalar digest '$scalar'" >&2; exit 1; }
done
echo "ci: lane-4 digests match scalar runs (TWC, 2000 steps)"

./target/release/accmos generate bench:SPV --lanes 8 --out "$LANE_DIR"
${CC:-cc} -O1 -g -fwrapv -std=gnu11 \
    -fsanitize=undefined,address -fno-sanitize-recover=all \
    "$LANE_DIR"/SPV.c -o "$LANE_DIR"/spv_lane_san -lm
"$LANE_DIR"/spv_lane_san 2000 > "$LANE_DIR"/lane_san_out.txt \
    || { echo "ci: lane-8 sanitizer run failed" >&2; exit 1; }
grep -q "ACCMOS:LANES 8" "$LANE_DIR"/lane_san_out.txt \
    || { echo "ci: sanitized lane simulator did not report 8 lanes" >&2; exit 1; }
echo "ci: lane-8 sanitizer smoke test passed (SPV, 2000 steps, UBSan+ASan clean)"

ACCMOS_CACHE_DIR="$LANE_DIR" ./target/release/accmos trends --check --max-regress 10000 \
    || { echo "ci: mixed scalar+lane trend gate failed" >&2; exit 1; }
ACCMOS_CACHE_DIR="$LANE_DIR" ./target/release/accmos trends | grep -q "accmos@4" \
    || { echo "ci: trends does not surface the lane engine key" >&2; exit 1; }
echo "ci: mixed scalar+lane ledger passed the trend gate"

cargo clippy --workspace -- -D warnings
