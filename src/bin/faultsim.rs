//! `faultsim` — a deterministic misbehaving stand-in for a generated
//! simulator, used by the fault-injection tests.
//!
//! It accepts the same command line the backend passes to real compiled
//! simulators (`<steps> [--tests f.csv] [--stop-on-diag] [--budget-ms N]`)
//! and then misbehaves in exactly one way, selected by the executable's
//! *file name* (`faultsim-<mode>`) or the `FAULTSIM_MODE` environment
//! variable. Name-based selection lets a test copy the binary once per
//! mode and run all copies concurrently — no process-global environment
//! races, and each mode quarantines independently (quarantine is keyed by
//! executable path).
//!
//! Modes:
//!
//! | mode       | behaviour |
//! |------------|-----------|
//! | `ok`       | emit a valid `ACCMOS:` report, exit 0 |
//! | `hang`     | emit one line, then sleep forever (supervisor must kill) |
//! | `crash`    | die on SIGABRT via `std::process::abort` |
//! | `segv`     | die on SIGSEGV (delivered by `kill`; falls back to abort) |
//! | `garbled`  | emit a syntactically invalid protocol line, exit 0 |
//! | `truncate` | emit two records, then stop mid-record (no newline) |
//! | `midexit`  | emit a valid prefix but exit 0 without `ACCMOS:END` |
//! | `flaky`    | exit 3 on the first run (`<exe>.state` sentinel), then ok |
//! | `hangflush`| emit a partial record, detach a child that flushes protocol-completing bytes ~1.5 s later through the inherited stdout, then hang — exercises the supervisor's abandoned-reader path |

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = mode_from(&args[0]);
    if args.iter().any(|a| a == "--lateflush") {
        // The detached `hangflush` straggler: by now the supervisor has
        // killed our parent and abandoned its stdout reader; these bytes
        // must never reach the attempt's classification.
        std::thread::sleep(std::time::Duration::from_millis(1500));
        println!("9");
        println!("ACCMOS:END");
        return;
    }
    let steps: u64 = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);

    match mode.as_str() {
        "hang" => {
            println!("ACCMOS:MODEL faultsim-hang");
            let _ = std::io::stdout().flush();
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        "hangflush" => {
            // A valid-looking prefix cut mid-record, flushed now...
            print!("ACCMOS:MODEL faultsim-hangflush\nACCMOS:TIME_");
            let _ = std::io::stdout().flush();
            // ...then hand the write end of stdout to a detached child
            // (inherited fd) that completes the protocol much later,
            // while this process hangs until the supervisor kills it.
            let _ = std::process::Command::new(&args[0]).arg("--lateflush").spawn();
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        "crash" => std::process::abort(),
        "segv" => {
            // Ask the system `kill` to deliver SIGSEGV to us; if that
            // fails (non-unix, no kill binary), abort still dies on a
            // signal, keeping the mode's contract of "signal death".
            let pid = std::process::id().to_string();
            let _ = std::process::Command::new("kill").args(["-SEGV", &pid]).status();
            std::thread::sleep(std::time::Duration::from_millis(200));
            std::process::abort();
        }
        "garbled" => {
            println!("ACCMOS:BOGUS this is not a valid record");
            println!("ACCMOS:END");
        }
        "truncate" => {
            println!("ACCMOS:MODEL faultsim-truncate");
            println!("ACCMOS:STEPS {steps}");
            print!("ACCMOS:DIG");
            let _ = std::io::stdout().flush();
        }
        "midexit" => {
            println!("ACCMOS:MODEL faultsim-midexit");
            println!("ACCMOS:STEPS {steps}");
        }
        "flaky" => {
            let state = format!("{}.state", args[0]);
            if !std::path::Path::new(&state).exists() {
                let _ = std::fs::write(&state, b"first run failed\n");
                eprintln!("faultsim: injected transient failure");
                std::process::exit(3);
            }
            ok_report(steps);
        }
        _ => ok_report(steps),
    }
}

/// Mode from the executable name (`faultsim-<mode>`), else
/// `FAULTSIM_MODE`, else `ok`.
fn mode_from(argv0: &str) -> String {
    let base = std::path::Path::new(argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("faultsim");
    if let Some(mode) = base.strip_prefix("faultsim-") {
        return mode.to_string();
    }
    std::env::var("FAULTSIM_MODE").unwrap_or_else(|_| "ok".to_string())
}

/// A minimal valid report: the digest depends only on `steps`, so a
/// retried run reproduces the same answer.
fn ok_report(steps: u64) {
    let digest = 0xFA_0175u64.wrapping_mul(steps.wrapping_add(1));
    println!("ACCMOS:MODEL faultsim");
    println!("ACCMOS:STEPS {steps}");
    println!("ACCMOS:TIME_NS 1000");
    println!("ACCMOS:DIGEST {digest:016x}");
    println!("ACCMOS:END");
}
