pub use accmos::*;
