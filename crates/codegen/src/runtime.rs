//! The generated runtime support header, `accmos_rt.h`.
//!
//! Every generated simulator `#include`s this fixed header after defining
//! its size macros (`ACCMOS_ACTOR_BITS`, `ACCMOS_DIAG_SITES`, ...). The
//! helpers pin down the shared semantics with the interpreter:
//! saturating float→integer conversion (Rust `as`), checked division,
//! the 64-bit LCG random source, the FNV-1a output digest, the coverage
//! bitmaps, the `outputCollect` signal monitor of the paper's Figure 3,
//! and the test-case import of Figure 5.

/// The complete text of `accmos_rt.h`.
pub const RUNTIME_HEADER: &str = r#"/* accmos_rt.h — runtime support for AccMoS-RS generated simulators.
 * Requires GCC (uses __int128) and compilation with -fwrapv. */
#ifndef ACCMOS_RT_H
#define ACCMOS_RT_H

#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
#include <time.h>
#include <unistd.h>
#include <fcntl.h>
#include <stdarg.h>

typedef __int128 accmos_wide;

/* ---- record emission ------------------------------------------------- */
/* Every `ACCMOS:` protocol record goes through accmos_out. A standalone
 * executable leaves the callback NULL and writes stdout, byte for byte
 * what printf produced before the indirection existed. A host that loads
 * the simulator as a shared object installs a callback via accmos_entry
 * and receives the same bytes as in-process calls instead. */
typedef void (*accmos_emit_fn)(void *ctx, const char *text);
static accmos_emit_fn accmos_emit_cb = NULL;
static void *accmos_emit_ctx = NULL;
__attribute__((format(printf, 1, 2)))
static void accmos_out(const char *fmt, ...) {
    char buf[4096];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    if (accmos_emit_cb) {
        accmos_emit_cb(accmos_emit_ctx, buf);
    } else {
        fputs(buf, stdout);
    }
}

#ifndef ACCMOS_ACTOR_BITS
#define ACCMOS_ACTOR_BITS 0
#endif
#ifndef ACCMOS_COND_BITS
#define ACCMOS_COND_BITS 0
#endif
#ifndef ACCMOS_DEC_BITS
#define ACCMOS_DEC_BITS 0
#endif
#ifndef ACCMOS_MCDC_BITS
#define ACCMOS_MCDC_BITS 0
#endif
#ifndef ACCMOS_DIAG_SITES
#define ACCMOS_DIAG_SITES 0
#endif
#ifndef ACCMOS_CUSTOM_SITES
#define ACCMOS_CUSTOM_SITES 0
#endif
#ifndef ACCMOS_LOG_LIMIT
#define ACCMOS_LOG_LIMIT 0
#endif
#ifndef ACCMOS_MAX_WIDTH
#define ACCMOS_MAX_WIDTH 1
#endif
#ifndef ACCMOS_TC_COLS
#define ACCMOS_TC_COLS 0
#endif
#ifndef ACCMOS_LANES
#define ACCMOS_LANES 1
#endif

#define ACCMOS_AT_LEAST_1(n) ((n) > 0 ? (n) : 1)
#define ACCMOS_WORDS(bits) ACCMOS_AT_LEAST_1(((bits) + 63) / 64)

static uint64_t accmos_step = 0;

/* ---- multi-vector lane mode ------------------------------------------ */
/* In lane mode (ACCMOS_LANES > 1) every signal and state variable is a
 * structure-of-arrays with one element per lane, accessed through the
 * current-lane index below. Its address is never taken, so the compiler
 * keeps it in a register inside the per-actor lane loops. */
#if ACCMOS_LANES > 1
static int accmos_lane = 0;
#endif

/* ---- saturating float -> integer conversion (Rust `as` semantics) ---- */
#define ACCMOS_DEF_F2I(name, T, LO, HI) \
    static inline T name(double v) { \
        if (v != v) return (T)0; \
        if (v <= (double)(LO)) return (T)(LO); \
        if (v >= (double)(HI)) return (T)(HI); \
        return (T)v; \
    }
ACCMOS_DEF_F2I(accmos_f64_to_i8, int8_t, INT8_MIN, INT8_MAX)
ACCMOS_DEF_F2I(accmos_f64_to_i16, int16_t, INT16_MIN, INT16_MAX)
ACCMOS_DEF_F2I(accmos_f64_to_i32, int32_t, INT32_MIN, INT32_MAX)
ACCMOS_DEF_F2I(accmos_f64_to_i64, int64_t, INT64_MIN, INT64_MAX)
ACCMOS_DEF_F2I(accmos_f64_to_u8, uint8_t, 0, UINT8_MAX)
ACCMOS_DEF_F2I(accmos_f64_to_u16, uint16_t, 0, UINT16_MAX)
ACCMOS_DEF_F2I(accmos_f64_to_u32, uint32_t, 0, UINT32_MAX)
ACCMOS_DEF_F2I(accmos_f64_to_u64, uint64_t, 0, UINT64_MAX)

/* ---- checked division / remainder (0 on zero divisor, MIN/-1 wraps) -- */
#define ACCMOS_DEF_SDIV(name, T, UT, MINV) \
    static inline T name##_div(T a, T b) { \
        if (b == 0) return (T)0; \
        if (b == (T)-1 && a == (MINV)) return a; \
        return (T)(a / b); \
    } \
    static inline T name##_rem(T a, T b) { \
        if (b == 0) return (T)0; \
        if (b == (T)-1) return (T)0; \
        return (T)(a % b); \
    }
ACCMOS_DEF_SDIV(accmos_i8, int8_t, uint8_t, INT8_MIN)
ACCMOS_DEF_SDIV(accmos_i16, int16_t, uint16_t, INT16_MIN)
ACCMOS_DEF_SDIV(accmos_i32, int32_t, uint32_t, INT32_MIN)
ACCMOS_DEF_SDIV(accmos_i64, int64_t, uint64_t, INT64_MIN)
#define ACCMOS_DEF_UDIV(name, T) \
    static inline T name##_div(T a, T b) { return b ? (T)(a / b) : (T)0; } \
    static inline T name##_rem(T a, T b) { return b ? (T)(a % b) : (T)0; }
ACCMOS_DEF_UDIV(accmos_u8, uint8_t)
ACCMOS_DEF_UDIV(accmos_u16, uint16_t)
ACCMOS_DEF_UDIV(accmos_u32, uint32_t)
ACCMOS_DEF_UDIV(accmos_u64, uint64_t)

/* ---- pseudo-random source (64-bit LCG, shared with accmos-interp) ---- */
static inline uint64_t accmos_rng_next(uint64_t *s) {
    *s = *s * 6364136223846793005ULL + 1442695040888963407ULL;
    return *s;
}
static inline double accmos_rng_unit(uint64_t w) {
    return (double)(w >> 11) * (1.0 / 9007199254740992.0);
}

/* ---- raw bit pattern helpers ----------------------------------------- */
static inline uint64_t accmos_bits_f64(double v) {
    uint64_t b;
    memcpy(&b, &v, 8);
    return b;
}
static inline uint64_t accmos_bits_f32(float v) {
    uint32_t b;
    memcpy(&b, &v, 4);
    return (uint64_t)b;
}
static inline double accmos_f64_from_bits(uint64_t b) {
    double v;
    memcpy(&v, &b, 8);
    return v;
}
static inline float accmos_f32_from_bits(uint64_t b) {
    uint32_t x = (uint32_t)b;
    float v;
    memcpy(&v, &x, 4);
    return v;
}

/* ---- FNV-1a output digest --------------------------------------------- */
static inline uint64_t accmos_fnv_fold(uint64_t h, uint64_t w) {
    int i;
    for (i = 0; i < 8; i++) {
        h ^= (w >> (8 * i)) & 0xFF;
        h *= 0x100000001b3ULL;
    }
    return h;
}
#if ACCMOS_LANES > 1
static uint64_t accmos_digest_L[ACCMOS_LANES];
#define accmos_digest accmos_digest_L[accmos_lane]
static inline void accmos_lane_digest_init(void) {
    int l;
    for (l = 0; l < ACCMOS_LANES; l++) {
        accmos_digest_L[l] = 0xcbf29ce484222325ULL;
    }
}
#else
static uint64_t accmos_digest = 0xcbf29ce484222325ULL;
#endif
static inline void accmos_digest_u64(uint64_t w) {
    accmos_digest = accmos_fnv_fold(accmos_digest, w);
}

/* ---- coverage bitmaps -------------------------------------------------- */
static uint64_t accmos_cov_actor[ACCMOS_WORDS(ACCMOS_ACTOR_BITS)];
static uint64_t accmos_cov_cond[ACCMOS_WORDS(ACCMOS_COND_BITS)];
static uint64_t accmos_cov_dec[ACCMOS_WORDS(ACCMOS_DEC_BITS)];
static uint64_t accmos_cov_mcdc[ACCMOS_WORDS(ACCMOS_MCDC_BITS)];
#define ACCMOS_COV(arr, id) ((arr)[(id) >> 6] |= 1ULL << ((id) & 63))

static inline int accmos_cov_count(const uint64_t *arr, int bits) {
    int covered = 0, i;
    for (i = 0; i < bits; i++) {
        if (arr[i >> 6] >> (i & 63) & 1) {
            covered++;
        }
    }
    return covered;
}
static inline void accmos_print_cov(const char *name, const uint64_t *arr, int bits) {
    accmos_out("ACCMOS:COV %s %d %d\n", name, accmos_cov_count(arr, bits), bits);
}

/* ---- diagnosis sites ---------------------------------------------------- */
/* Lane mode keeps one (first, count) pair per site per lane so diagnosis
 * is reported per lane, exactly as N independent scalar runs would. The
 * slot of site s in lane l is s * ACCMOS_LANES + l. */
static uint64_t accmos_diag_first[ACCMOS_AT_LEAST_1(ACCMOS_DIAG_SITES) * ACCMOS_LANES];
static uint64_t accmos_diag_count[ACCMOS_AT_LEAST_1(ACCMOS_DIAG_SITES) * ACCMOS_LANES];
static uint64_t accmos_diag_total = 0;
static inline void accmos_diag_hit(int site) {
#if ACCMOS_LANES > 1
    int slot = site * ACCMOS_LANES + accmos_lane;
#else
    int slot = site;
#endif
    if (accmos_diag_count[slot] == 0) {
        accmos_diag_first[slot] = accmos_step;
    }
    accmos_diag_count[slot]++;
    accmos_diag_total++;
}

/* ---- custom signal diagnosis sites -------------------------------------- */
static uint64_t accmos_custom_first[ACCMOS_AT_LEAST_1(ACCMOS_CUSTOM_SITES) * ACCMOS_LANES];
static uint64_t accmos_custom_count[ACCMOS_AT_LEAST_1(ACCMOS_CUSTOM_SITES) * ACCMOS_LANES];
static inline void accmos_custom_hit(int site) {
#if ACCMOS_LANES > 1
    int slot = site * ACCMOS_LANES + accmos_lane;
#else
    int slot = site;
#endif
    if (accmos_custom_count[slot] == 0) {
        accmos_custom_first[slot] = accmos_step;
    }
    accmos_custom_count[slot]++;
}

/* ---- signal monitor (paper Figure 3) ------------------------------------- */
typedef struct {
    const char *path;
    const char *type;
    uint64_t step;
    int length;
    uint64_t bits[ACCMOS_MAX_WIDTH];
} accmos_sample;
#if ACCMOS_LANES > 1
static accmos_sample accmos_log_L[ACCMOS_LANES][ACCMOS_AT_LEAST_1(ACCMOS_LOG_LIMIT)];
static int accmos_log_len_L[ACCMOS_LANES];
#define accmos_log accmos_log_L[accmos_lane]
#define accmos_log_len accmos_log_len_L[accmos_lane]
#else
static accmos_sample accmos_log[ACCMOS_AT_LEAST_1(ACCMOS_LOG_LIMIT)];
static int accmos_log_len = 0;
#endif

static inline int accmos_type_size(const char *type) {
    if (type[0] == 'b') return 1;
    if (type[1] == '8') return 1;
    if (type[1] == '1') return 2;
    if (type[1] == '3') return 4;
    return 8;
}

static void outputCollect(const char *path, const void *data, const char *type, int length) {
    accmos_sample *OD;
    const unsigned char *bytes = (const unsigned char *)data;
    int size, e, i;
    if (accmos_log_len >= ACCMOS_LOG_LIMIT) return;
    OD = &accmos_log[accmos_log_len++];
    OD->path = path;
    OD->type = type;
    OD->step = accmos_step;
    OD->length = length > ACCMOS_MAX_WIDTH ? ACCMOS_MAX_WIDTH : length;
    size = accmos_type_size(type);
    for (e = 0; e < OD->length; e++) {
        uint64_t b = 0;
        for (i = 0; i < size; i++) {
            b |= (uint64_t)bytes[e * size + i] << (8 * i);
        }
        OD->bits[e] = b;
    }
}

/* ---- test-case import (paper Figure 5: TestCase_Init / takeTestCase) ---- */
/* Lane mode loads one test file per lane: main() sets accmos_lane before
 * each TestCase_Init call and the macros below route the parsed columns
 * into that lane's table. */
#if ACCMOS_LANES > 1
static uint64_t *accmos_tc_data_L[ACCMOS_LANES][ACCMOS_AT_LEAST_1(ACCMOS_TC_COLS)];
static size_t accmos_tc_rows_L[ACCMOS_LANES];
#define accmos_tc_data accmos_tc_data_L[accmos_lane]
#define accmos_tc_rows accmos_tc_rows_L[accmos_lane]
#else
static uint64_t *accmos_tc_data[ACCMOS_AT_LEAST_1(ACCMOS_TC_COLS)];
static size_t accmos_tc_rows = 0;
#endif

/* dtype codes: 0=b8 1=i8 2=i16 3=i32 4=i64 5=u8 6=u16 7=u32 8=u64 9=f32 10=f64 */
static int accmos_dtype_code(const char *m) {
    static const char *names[] = {"b8", "i8", "i16", "i32", "i64",
                                  "u8", "u16", "u32", "u64", "f32", "f64"};
    int i;
    for (i = 0; i < 11; i++) {
        if (strcmp(m, names[i]) == 0) return i;
    }
    return -1;
}

static uint64_t accmos_tc_cell(const char *s, int hdr, int want) {
    double d = 0.0;
    long long sll = 0;
    unsigned long long ull = 0;
    int isf = 0, isu = 0;
    if (hdr == 9) { /* parse as f32 first to match single-precision data */
        d = (double)strtof(s, NULL);
        isf = 1;
    } else if (hdr == 10) {
        d = strtod(s, NULL);
        isf = 1;
    } else if (hdr == 8) {
        if (s[0] == '-') {
            sll = strtoll(s, NULL, 10);
        } else {
            ull = strtoull(s, NULL, 10);
            isu = 1;
        }
    } else if (hdr == 0) {
        sll = (strcmp(s, "true") == 0 || strcmp(s, "1") == 0) ? 1 : 0;
    } else {
        if (strchr(s, '.') || strchr(s, 'e') || strchr(s, 'E')) {
            d = strtod(s, NULL);
            isf = 1;
        } else {
            sll = strtoll(s, NULL, 10);
        }
    }
    switch (want) {
        case 0: return (uint64_t)(isf ? (d != 0.0) : (isu ? ull != 0 : sll != 0));
        case 1: return (uint64_t)(uint8_t)(isf ? accmos_f64_to_i8(d) : (int8_t)(isu ? (long long)ull : sll));
        case 2: return (uint64_t)(uint16_t)(isf ? accmos_f64_to_i16(d) : (int16_t)(isu ? (long long)ull : sll));
        case 3: return (uint64_t)(uint32_t)(isf ? accmos_f64_to_i32(d) : (int32_t)(isu ? (long long)ull : sll));
        case 4: return (uint64_t)(isf ? accmos_f64_to_i64(d) : (int64_t)(isu ? (long long)ull : sll));
        case 5: return (uint64_t)(isf ? accmos_f64_to_u8(d) : (uint8_t)(isu ? ull : (unsigned long long)sll));
        case 6: return (uint64_t)(isf ? accmos_f64_to_u16(d) : (uint16_t)(isu ? ull : (unsigned long long)sll));
        case 7: return (uint64_t)(isf ? accmos_f64_to_u32(d) : (uint32_t)(isu ? ull : (unsigned long long)sll));
        case 8: return (uint64_t)(isf ? accmos_f64_to_u64(d) : (uint64_t)(isu ? ull : (unsigned long long)sll));
        case 9: return accmos_bits_f32(isf ? (float)d : (isu ? (float)ull : (float)sll));
        default: return accmos_bits_f64(isf ? d : (isu ? (double)ull : (double)sll));
    }
}

/* Load the CSV test file; `want[i]` is the dtype code of root inport i.
 * Missing file or short column counts leave zeros. Returns 0 on success. */
static int TestCase_Init(const char *path, int ncols, const int *want) {
    FILE *f;
    char line[8192];
    int hdr[ACCMOS_AT_LEAST_1(ACCMOS_TC_COLS)];
    int file_cols = 0, c;
    size_t cap = 1024;
    if (ncols == 0) return 0;
    for (c = 0; c < ncols; c++) {
        accmos_tc_data[c] = (uint64_t *)calloc(cap, sizeof(uint64_t));
    }
    if (!path) return 0;
    f = fopen(path, "r");
    if (!f) {
        fprintf(stderr, "accmos: cannot open test file %s\n", path);
        return 1;
    }
    if (fgets(line, sizeof line, f)) {
        char *tok = strtok(line, ",\r\n");
        while (tok && file_cols < ncols) {
            char *colon = strchr(tok, ':');
            hdr[file_cols] = colon ? accmos_dtype_code(colon + 1) : 10;
            if (hdr[file_cols] < 0) hdr[file_cols] = 10;
            file_cols++;
            tok = strtok(NULL, ",\r\n");
        }
    }
    while (fgets(line, sizeof line, f)) {
        char *tok = strtok(line, ",\r\n");
        if (!tok) continue;
        if (accmos_tc_rows == cap) {
            cap *= 2;
            for (c = 0; c < ncols; c++) {
                accmos_tc_data[c] = (uint64_t *)realloc(accmos_tc_data[c], cap * sizeof(uint64_t));
                memset(accmos_tc_data[c] + accmos_tc_rows, 0,
                       (cap - accmos_tc_rows) * sizeof(uint64_t));
            }
        }
        for (c = 0; c < file_cols && tok; c++) {
            accmos_tc_data[c][accmos_tc_rows] = accmos_tc_cell(tok, hdr[c], want[c]);
            tok = strtok(NULL, ",\r\n");
        }
        accmos_tc_rows++;
    }
    fclose(f);
    return 0;
}

static inline uint64_t takeTestCase(int col) {
    return accmos_tc_rows ? accmos_tc_data[col][accmos_step % accmos_tc_rows] : 0;
}

/* Release the TestCase_Init column allocations. A standalone executable
 * exits right after and never needs this; a host that dlopens the
 * simulator runs many instances per process, so accmos_entry frees the
 * columns before returning to keep the daemon's heap flat. */
static void accmos_tc_free(void) {
    int c;
#if ACCMOS_LANES > 1
    int l;
    for (l = 0; l < ACCMOS_LANES; l++) {
        for (c = 0; c < ACCMOS_TC_COLS; c++) {
            free(accmos_tc_data_L[l][c]);
            accmos_tc_data_L[l][c] = NULL;
        }
        accmos_tc_rows_L[l] = 0;
    }
#else
    for (c = 0; c < ACCMOS_TC_COLS; c++) {
        free(accmos_tc_data[c]);
        accmos_tc_data[c] = NULL;
    }
    accmos_tc_rows = 0;
#endif
}

/* ---- lookup tables (mirrors accmos-interp::semantics) --------------------- */
/* methods: 0 = interpolate, 1 = nearest, 2 = below */
static inline int accmos_lut_index(const double *bps, int n, double x) {
    int i = 0, j;
    for (j = 1; j < n - 1; j++) {
        if (bps[j] <= x) i = j;
    }
    return i;
}
static double accmos_lookup1d(const double *bps, const double *tab, int n, int method, double x) {
    int i;
    double t;
    if (x <= bps[0]) return tab[0];
    if (x >= bps[n - 1]) return tab[n - 1];
    i = accmos_lut_index(bps, n, x);
    if (method == 2) return tab[i];
    if (method == 1) {
        if (i + 1 < n && (x - bps[i]) > (bps[i + 1] - x)) return tab[i + 1];
        return tab[i];
    }
    t = (x - bps[i]) / (bps[i + 1] - bps[i]);
    return tab[i] + t * (tab[i + 1] - tab[i]);
}
static inline int accmos_lut_pick(const double *bps, int n, int method, double x) {
    int i;
    if (x <= bps[0]) return 0;
    if (x >= bps[n - 1]) return n - 1;
    i = accmos_lut_index(bps, n, x);
    if (method == 1 && i + 1 < n && (x - bps[i]) > (bps[i + 1] - x)) return i + 1;
    return i;
}
static inline double accmos_clamp(double v, double lo, double hi) {
    return v < lo ? lo : (v > hi ? hi : v);
}
static inline double accmos_clamp01(double v) {
    return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
}
static double accmos_lookup2d(const double *rb, int nr, const double *cb, int nc,
                              const double *tab, int method, double r, double c) {
    if (method == 0) {
        int ri = accmos_lut_index(rb, nr, accmos_clamp(r, rb[0], rb[nr - 1]));
        int ci = accmos_lut_index(cb, nc, accmos_clamp(c, cb[0], cb[nc - 1]));
        int ri1 = ri + 1 < nr ? ri + 1 : nr - 1;
        int ci1 = ci + 1 < nc ? ci + 1 : nc - 1;
        double tr = (ri1 == ri) ? 0.0 : accmos_clamp01((r - rb[ri]) / (rb[ri1] - rb[ri]));
        double tc = (ci1 == ci) ? 0.0 : accmos_clamp01((c - cb[ci]) / (cb[ci1] - cb[ci]));
        double top = tab[ri * nc + ci] + tc * (tab[ri * nc + ci1] - tab[ri * nc + ci]);
        double bot = tab[ri1 * nc + ci] + tc * (tab[ri1 * nc + ci1] - tab[ri1 * nc + ci]);
        return top + tr * (bot - top);
    }
    return tab[accmos_lut_pick(rb, nr, method, r) * nc + accmos_lut_pick(cb, nc, method, c)];
}

/* ---- misc ------------------------------------------------------------------- */
static inline uint64_t accmos_now_ns(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (uint64_t)ts.tv_sec * 1000000000ULL + (uint64_t)ts.tv_nsec;
}

#endif /* ACCMOS_RT_H */
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_contains_key_primitives() {
        for needle in [
            "accmos_f64_to_i32",
            "ACCMOS_DEF_SDIV(accmos_i32",
            "accmos_rng_next",
            "accmos_digest_u64",
            "ACCMOS_COV",
            "accmos_diag_hit",
            "outputCollect",
            "TestCase_Init",
            "takeTestCase",
            "accmos_tc_free",
            "accmos_emit_fn",
            "accmos_out",
            "accmos_lookup1d",
            "accmos_lookup2d",
            "accmos_now_ns",
        ] {
            assert!(RUNTIME_HEADER.contains(needle), "runtime header misses {needle}");
        }
    }

    #[test]
    fn lcg_constants_match_interpreter() {
        assert!(RUNTIME_HEADER.contains("6364136223846793005"));
        assert!(RUNTIME_HEADER.contains("1442695040888963407"));
        assert!(RUNTIME_HEADER.contains("0xcbf29ce484222325"));
        assert!(RUNTIME_HEADER.contains("0x100000001b3"));
    }
}
