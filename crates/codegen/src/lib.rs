//! # accmos-codegen
//!
//! The core contribution of the AccMoS paper: **simulation-oriented
//! instrumentation and code generation**. A preprocessed model is turned
//! into a complete, self-contained C simulation program:
//!
//! - every actor is translated from a **code template library** covering
//!   the 58 supported actor kinds (`genCodeFromTemp`);
//! - Algorithm 1 attaches **actor/condition/decision/MC/DC coverage**
//!   instrumentation, **signal-collection** calls (`outputCollect`,
//!   Figure 3), and calls to **dynamically generated diagnostic
//!   functions** (`diagnose_<path>`, Figure 4) selected per actor
//!   type–operator combination;
//! - the code is synthesized into a model system function plus a main
//!   function with a simulation loop, test-case import and result output
//!   (Figure 5).
//!
//! The generated program prints a line-oriented `ACCMOS:` result protocol
//! that `accmos-backend` parses back into an
//! [`accmos_ir::SimulationReport`], making it directly comparable with the
//! interpretive engines.
//!
//! ## Example
//!
//! ```
//! use accmos_codegen::{generate, CodegenOptions};
//! use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar};
//!
//! let mut b = ModelBuilder::new("Model");
//! b.inport("A", DataType::I32);
//! b.inport("B", DataType::I32);
//! b.actor("Minus", ActorKind::Sum { signs: "+-".into() });
//! b.outport("Out", DataType::I32);
//! b.connect(("A", 0), ("Minus", 0));
//! b.connect(("B", 0), ("Minus", 1));
//! b.wire("Minus", "Out");
//! let pre = accmos_graph::preprocess(&b.build()?)?;
//!
//! let program = generate(&pre, &CodegenOptions::accmos());
//! assert!(program.main_c.contains("diagnose_Model_Minus"));
//! assert!(program.main_c.contains("int main(int argc, char* argv[])"));
//! # Ok::<(), accmos_ir::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cwriter;
mod gen;
mod options;
mod runtime;
mod rust_backend;
mod synthesis;

pub use gen::DiagSite;
pub use options::{ActorList, CodegenOptions, CustomProbe};
pub use runtime::RUNTIME_HEADER;
pub use rust_backend::{generate_rust, GeneratedRustProgram};
pub use synthesis::{generate, GeneratedProgram, PROF_SAMPLE_PERIOD};

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_graph::preprocess;
    use accmos_ir::{
        ActorKind, DataType, DiagnosticKind, LogicOp, ModelBuilder, Scalar, SwitchCriteria,
        SystemKind,
    };

    fn figure1_program(opts: &CodegenOptions) -> GeneratedProgram {
        let mut b = ModelBuilder::new("Model");
        b.inport("A", DataType::I32);
        b.inport("B", DataType::I32);
        b.actor("Minus", ActorKind::Sum { signs: "+-".into() });
        b.outport("Out", DataType::I32);
        b.connect(("A", 0), ("Minus", 0));
        b.connect(("B", 0), ("Minus", 1));
        b.wire("Minus", "Out");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        generate(&pre, opts)
    }

    #[test]
    fn figure4_style_diagnostic_function_generated() {
        let p = figure1_program(&CodegenOptions::accmos());
        let c = &p.main_c;
        // The dynamically generated diagnostic function with the paper's
        // sign-predicate overflow check for a binary signed minus.
        assert!(c.contains("static void diagnose_Model_Minus(int32_t out, int32_t in1, int32_t in2)"), "{c}");
        assert!(
            c.contains("in1 >= 0 && in2 < 0 && out < 0") && c.contains("in1 < 0 && in2 >= 0 && out >= 0"),
            "missing Figure 4 predicates"
        );
        assert!(p.diag_sites.iter().any(|s| s.actor == "Model_Minus"
            && s.kind == DiagnosticKind::WrapOnOverflow));
    }

    #[test]
    fn figure5_structure_present() {
        let p = figure1_program(&CodegenOptions::accmos());
        let c = &p.main_c;
        for needle in [
            "static void Model_Exe(void)",
            "TestCase_Init(",
            "takeTestCase(0)",
            "takeTestCase(1)",
            "recordResult();",
            "outputResult(",
            "/* Simulation Loop of model */",
            "for (uint64_t step = 0; step < total_step; step++)",
            "ACCMOS_COV(accmos_cov_actor",
        ] {
            assert!(c.contains(needle), "missing `{needle}` in:\n{c}");
        }
    }

    #[test]
    fn uninstrumented_rapid_mode_has_no_diagnostics() {
        let p = figure1_program(&CodegenOptions::rapid_accelerator());
        let c = &p.main_c;
        assert!(!c.contains("diagnose_"), "rapid mode must not diagnose");
        assert!(!c.contains("ACCMOS_COV(accmos_cov_actor"), "no coverage in rapid mode");
        assert!(c.contains("accmos_host_exchange"), "rapid mode syncs with the host");
        assert!(p.diag_sites.is_empty());
    }

    #[test]
    fn collect_instrumentation_for_monitored_actor() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::I32);
        b.actor(
            "Neg",
            accmos_ir::Actor::new(ActorKind::Gain { gain: Scalar::I32(-1) }).monitored(),
        );
        b.outport("Y", DataType::I32);
        b.wire("X", "Neg");
        b.wire("Neg", "Y");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let p = generate(&pre, &CodegenOptions::accmos());
        assert!(
            p.main_c.contains("outputCollect(\"M_Neg_out\", (const void*)&M_Neg_out, \"i32\", 1);"),
            "{}",
            p.main_c
        );
    }

    #[test]
    fn switch_template_carries_condition_coverage() {
        let mut b = ModelBuilder::new("M");
        b.inport("C", DataType::F64);
        b.constant("Hi", Scalar::F64(1.0));
        b.constant("Lo", Scalar::F64(-1.0));
        b.actor("Sw", ActorKind::Switch { criteria: SwitchCriteria::Greater(0.0) });
        b.outport("Y", DataType::F64);
        b.connect(("Hi", 0), ("Sw", 0));
        b.connect(("C", 0), ("Sw", 1));
        b.connect(("Lo", 0), ("Sw", 2));
        b.wire("Sw", "Y");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let p = generate(&pre, &CodegenOptions::accmos());
        assert!(p.main_c.contains("ACCMOS_COV(accmos_cov_cond"));
        assert!(p.main_c.contains("> 0.0"));
    }

    #[test]
    fn logical_gate_gets_decision_and_mcdc_instrumentation() {
        let mut b = ModelBuilder::new("M");
        b.inport("A", DataType::Bool);
        b.inport("B", DataType::Bool);
        b.actor("And", ActorKind::Logical { op: LogicOp::And, inputs: 2 });
        b.outport("Y", DataType::Bool);
        b.connect(("A", 0), ("And", 0));
        b.connect(("B", 0), ("And", 1));
        b.wire("And", "Y");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let p = generate(&pre, &CodegenOptions::accmos());
        assert!(p.main_c.contains("ACCMOS_COV(accmos_cov_dec"));
        assert!(p.main_c.contains("ACCMOS_COV(accmos_cov_mcdc"));
    }

    #[test]
    fn enabled_subsystem_generates_guards() {
        let mut b = ModelBuilder::new("M");
        b.inport("En", DataType::Bool);
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.actor("Cnt", ActorKind::Counter { limit: 9 });
            s.outport("y", DataType::I32);
            s.wire("Cnt", "y");
        });
        b.outport("Y", DataType::I32);
        b.wire_to("En", "Sub", 0);
        b.wire("Sub", "Y");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let p = generate(&pre, &CodegenOptions::accmos());
        let c = &p.main_c;
        assert!(c.contains("static inline int g0_active(void)"), "{c}");
        assert!(c.contains("if (g0_active()) {"));
        assert!(c.contains("g0_prev ="));
    }

    #[test]
    fn custom_probe_emitted() {
        let mut opts = CodegenOptions::accmos();
        opts.custom.push(CustomProbe {
            name: "spike".into(),
            actor: "Model_Minus".into(),
            condition_c: "value > 1000 || value < -1000".into(),
        });
        let p = figure1_program(&opts);
        assert!(p.main_c.contains("accmos_custom_hit(0)"));
        assert!(p.main_c.contains("value > 1000 || value < -1000"));
        assert_eq!(p.custom_sites, vec![("spike".to_string(), "Model_Minus".to_string())]);
    }

    #[test]
    fn files_lists_header_and_main() {
        let p = figure1_program(&CodegenOptions::accmos());
        let files = p.files();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].0, "accmos_rt.h");
        assert_eq!(files[1].0, "Model.c");
        assert!(files[0].1.contains("ACCMOS_RT_H"));
    }

    #[test]
    fn inport_dtypes_reported_in_order() {
        let p = figure1_program(&CodegenOptions::accmos());
        assert_eq!(p.inport_dtypes, vec![DataType::I32, DataType::I32]);
    }
}
