//! The Rust backend: an ablation of the paper's extensibility discussion
//! (§5 — *"AccMoS could explore leveraging optimization techniques used by
//! other code generators"*).
//!
//! [`generate_rust`] emits the same simulator as a **single dependency-free
//! Rust source file** speaking the same `ACCMOS:` result protocol, so a
//! build can compare backend languages directly. Semantics are shared with
//! the C backend by construction: wrapping integer arithmetic
//! (`wrapping_*`), saturating `as` conversions, the same checked division,
//! LCG, FNV-1a digest and coverage/diagnosis instrumentation.
//!
//! Differences from the C backend (documented, not bugs): diagnostic
//! checks are emitted inline rather than as named `diagnose_*` functions,
//! and there is no host-sync (Rapid Accelerator) mode.

use crate::cwriter::CodeBuf;
use crate::options::CodegenOptions;
use accmos_graph::{FlatActor, PreprocessedModel, SignalId};
use accmos_ir::{
    applicable_diagnoses, ActorKind, BitOp, CoverageKind, DataType, DiagnosticKind, LogicOp,
    LookupMethod, MathOp, MinMaxOp, RoundOp, Scalar, ShiftDir, SwitchCriteria, SystemKind,
    TrigOp,
};

/// A generated Rust simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedRustProgram {
    /// Model name.
    pub model: String,
    /// The single `main.rs` translation unit.
    pub main_rs: String,
    /// Diagnostic sites in site-id order (same layout as the C backend).
    pub diag_sites: Vec<crate::gen::DiagSite>,
}

fn rty(dt: DataType) -> &'static str {
    dt.rust_name()
}

/// Rust literal for a scalar.
fn rust_lit(s: Scalar) -> String {
    match s {
        Scalar::Bool(b) => format!("{}u8", b as u8),
        Scalar::F32(v) => {
            if v.is_nan() {
                "f32::NAN".into()
            } else if v.is_infinite() {
                if v > 0.0 { "f32::INFINITY".into() } else { "f32::NEG_INFINITY".into() }
            } else {
                format!("{v:?}f32")
            }
        }
        Scalar::F64(v) => {
            if v.is_nan() {
                "f64::NAN".into()
            } else if v.is_infinite() {
                if v > 0.0 { "f64::INFINITY".into() } else { "f64::NEG_INFINITY".into() }
            } else {
                format!("{v:?}f64")
            }
        }
        other => format!("{}{}", other.to_i128(), other.dtype().rust_name()),
    }
}

fn f64_lit(v: f64) -> String {
    rust_lit(Scalar::F64(v))
}

/// Cast with the shared semantics — in Rust, `as` *is* the semantics.
fn cast(expr: &str, from: DataType, to: DataType) -> String {
    if from == to {
        return expr.to_owned();
    }
    if to == DataType::Bool {
        return format!("((({expr}) != 0 as {}) as u8)", rty(from));
    }
    format!("(({expr}) as {})", rty(to))
}

fn cast_f64(expr: &str, to: DataType) -> String {
    if to == DataType::F64 {
        expr.to_owned()
    } else if to == DataType::Bool {
        format!("((({expr}) != 0.0) as u8)")
    } else {
        format!("(({expr}) as {})", rty(to))
    }
}

fn elem_of(name: &str, width: usize, idx: &str) -> String {
    if width == 1 {
        name.to_owned()
    } else {
        format!("{name}[{idx}]")
    }
}

struct Ctx<'a> {
    pre: &'a PreprocessedModel,
    opts: &'a CodegenOptions,
    sites: Vec<crate::gen::DiagSite>,
    /// Self-profiling site names (actor path keys) in site-id order,
    /// registered during emission when `opts.profile` is set.
    prof_names: Vec<String>,
    analysis: Option<accmos_analyze::ModelAnalysis>,
}

impl Ctx<'_> {
    fn sig(&self, id: SignalId) -> &accmos_graph::SignalInfo {
        self.pre.flat.signal(id)
    }

    fn in_raw(&self, a: &FlatActor, port: usize, idx: &str) -> String {
        let sig = self.sig(a.inputs[port]);
        elem_of(&sig.name, sig.width, idx)
    }

    fn in_cast(&self, a: &FlatActor, port: usize, idx: &str) -> String {
        let sig = self.sig(a.inputs[port]);
        cast(&self.in_raw(a, port, idx), sig.dtype, a.dtype)
    }

    fn out(&self, a: &FlatActor, idx: &str) -> String {
        let sig = self.sig(a.outputs[0]);
        elem_of(&sig.name, sig.width, idx)
    }

    fn site(&mut self, actor: &FlatActor, kind: DiagnosticKind) -> usize {
        self.sites.push(crate::gen::DiagSite { actor: actor.path.key(), kind });
        self.sites.len() - 1
    }

    fn cov_on(&self) -> bool {
        self.opts.instrument && self.opts.coverage
    }

    /// The analysis, gated on `opts.specialize` — mirrors the C
    /// backend's `EmitCtx::spec` so both backends consume the same
    /// verdicts (fold, dead-path elision, arm and guard specialization).
    fn spec(&self) -> Option<&accmos_analyze::ModelAnalysis> {
        if self.opts.specialize { self.analysis.as_ref() } else { None }
    }
}

fn for_elems(w: &mut CodeBuf, width: usize, body: impl FnOnce(&mut CodeBuf, &str)) {
    if width == 1 {
        body(w, "0");
    } else {
        w.open(format!("for e in 0..{width} {{"));
        body(w, "e");
        w.close("}");
    }
}

/// Generate the single-file Rust simulator.
///
/// Lane-parallel mode ([`CodegenOptions::lanes`]) is C-backend only:
/// this backend always emits a scalar simulator and ignores the lane
/// width. Callers that accept a lane option must reject `lanes > 1`
/// before routing here, as the `accmos` CLI does for `--rust`.
pub fn generate_rust(pre: &PreprocessedModel, opts: &CodegenOptions) -> GeneratedRustProgram {
    let analysis =
        (opts.instrument && opts.prune_proven_safe).then(|| accmos_analyze::analyze(pre));
    let mut ctx = Ctx { pre, opts, sites: Vec::new(), prof_names: Vec::new(), analysis };
    let flat = &pre.flat;
    let cov = ctx.cov_on();

    let mut w = CodeBuf::new();
    w.line(format!(
        "// AccMoS-RS generated Rust simulator for model `{}` ({} actors).",
        flat.name,
        flat.actors.len()
    ));
    w.line("#![allow(unused_variables, unused_mut, unused_parens, unused_assignments, dead_code)]");
    w.raw(RUST_PRELUDE);
    w.blank();

    w.open("fn main() {");
    // ---- CLI ------------------------------------------------------------
    w.line("let args: Vec<String> = std::env::args().collect();");
    w.line("let total_step: u64 = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(1);");
    w.line("let mut tc_path: Option<String> = None;");
    w.line("let mut stop_on_diag = false;");
    w.line("let mut budget_ms: u64 = 0;");
    w.open("let mut ai = 2; while ai < args.len() {");
    w.line("match args[ai].as_str() {");
    w.line("    \"--tests\" if ai + 1 < args.len() => { tc_path = Some(args[ai + 1].clone()); ai += 1; }");
    w.line("    \"--stop-on-diag\" => stop_on_diag = true,");
    w.line("    \"--budget-ms\" if ai + 1 < args.len() => { budget_ms = args[ai + 1].parse().unwrap_or(0); ai += 1; }");
    w.line("    _ => {}");
    w.line("}");
    w.line("ai += 1;");
    w.close("}");

    // ---- test cases -------------------------------------------------------
    let want: Vec<String> = flat
        .root_inports
        .iter()
        .map(|id| format!("\"{}\"", flat.actor(*id).dtype.mnemonic()))
        .collect();
    w.line(format!("let want: &[&str] = &[{}];", want.join(", ")));
    w.line("let tc = load_tests(tc_path.as_deref(), want);");

    // ---- state -------------------------------------------------------------
    w.comment("signal variables");
    for sig in &flat.signals {
        let t = rty(sig.dtype);
        if sig.width == 1 {
            w.line(format!("let mut {}: {t} = Default::default();", sig.name));
        } else {
            w.line(format!(
                "let mut {}: [{t}; {}] = [Default::default(); {}];",
                sig.name, sig.width, sig.width
            ));
        }
    }
    w.comment("data stores");
    for store in &flat.stores {
        w.line(format!(
            "let mut {}: {} = {};",
            crate::gen::store_var(&store.name),
            rty(store.dtype),
            rust_lit(store.init.cast(store.dtype))
        ));
    }
    w.comment("actor state");
    for actor in &flat.actors {
        emit_state_decl(&ctx, actor, &mut w);
    }
    if !flat.groups.is_empty() {
        w.comment("conditional-execution groups");
        for g in &flat.groups {
            w.line(format!("let mut g{}_prev: bool = false;", g.id.0));
        }
    }
    if cov {
        w.comment("coverage bitmaps");
        for kind in CoverageKind::ALL {
            w.line(format!(
                "let mut cov_{}: Vec<bool> = vec![false; {}];",
                kind.ident(),
                pre.coverage.map.total(kind)
            ));
        }
    }
    w.comment("diagnosis bookkeeping (sites registered in emission order)");
    w.line("let mut diag_first: Vec<u64> = Vec::new();");
    w.line("let mut diag_count: Vec<u64> = Vec::new();");
    w.line("let mut diag_total: u64 = 0;");
    w.comment("signal monitor");
    let log_limit = if opts.instrument { opts.signal_log_limit } else { 0 };
    w.line(format!("let log_limit: usize = {log_limit};"));
    w.line("let mut siglog: Vec<(&'static str, u64, &'static str, Vec<u64>)> = Vec::new();");
    w.comment("output digest and finals");
    w.line("let mut digest: u64 = 0xcbf29ce484222325;");
    for (i, id) in flat.root_outports.iter().enumerate() {
        let a = flat.actor(*id);
        w.line(format!(
            "let mut final_{i}: [{}; {}] = [Default::default(); {}];",
            rty(a.dtype),
            a.width.max(1),
            a.width.max(1)
        ));
    }

    // Pre-register sites by a dry pass: emission assigns them in order, so
    // size the vectors afterwards via a patch marker. Simpler: emit the
    // loop into a sub-buffer first.
    let mut body = CodeBuf::new();
    emit_step_body(&mut ctx, &mut body);

    w.line(format!(
        "diag_first.resize({}, 0); diag_count.resize({}, 0);",
        ctx.sites.len(),
        ctx.sites.len()
    ));
    if opts.profile {
        w.comment("self-profiling counters (sites registered in emission order)");
        w.line(format!(
            "let mut prof_ns: Vec<u64> = vec![0; {0}]; let mut prof_calls: Vec<u64> = vec![0; {0}]; let mut prof_timed: Vec<u64> = vec![0; {0}];",
            ctx.prof_names.len()
        ));
    }

    w.line("let mut executed: u64 = 0;");
    w.line("let t0 = std::time::Instant::now();");
    w.open("for step in 0..total_step {");
    w.line("if budget_ms > 0 && step & 511 == 0 && t0.elapsed().as_millis() as u64 >= budget_ms { break; }");
    if opts.profile {
        // Same sampled-clock policy as the C backend: invocation counters
        // run at full rate, the clock only on every PERIOD-th step.
        w.line(format!(
            "let accmos_prof_on = step % {} == 0;",
            crate::synthesis::PROF_SAMPLE_PERIOD
        ));
    }
    w.raw(indent(body.finish(), 2));
    // record results
    for (i, id) in flat.root_outports.iter().enumerate() {
        let a = flat.actor(*id);
        let sig = ctx.sig(a.inputs[0]);
        for e in 0..a.width {
            let raw = elem_of(&sig.name, sig.width, &e.to_string());
            let val = cast(&raw, sig.dtype, a.dtype);
            w.line(format!("final_{i}[{e}] = {val};"));
            w.line(format!(
                "digest = fnv(digest, {});",
                bits_expr(&format!("final_{i}[{e}]"), a.dtype)
            ));
        }
    }
    emit_state_updates(&mut ctx, &mut w);
    for g in &flat.groups {
        let ctrl = &flat.signal(g.control).name;
        w.line(format!("g{}_prev = {ctrl} != Default::default();", g.id.0));
    }
    w.line("executed = step + 1;");
    w.line("if stop_on_diag && diag_total > 0 { break; }");
    w.close("}");
    w.line("let ns = t0.elapsed().as_nanos() as u64;");

    // ---- output ----------------------------------------------------------------
    w.line(format!("println!(\"ACCMOS:MODEL {}\");", flat.name));
    w.line("println!(\"ACCMOS:STEPS {}\", executed);");
    w.line("println!(\"ACCMOS:TIME_NS {}\", ns);");
    if opts.profile && !ctx.prof_names.is_empty() {
        let names: Vec<String> =
            ctx.prof_names.iter().map(|n| format!("\"{n}\"")).collect();
        w.line(format!("let prof_name = [{}];", names.join(", ")));
        w.open(format!("for s in 0..{} {{", ctx.prof_names.len()));
        w.line("println!(\"ACCMOS:PROF actor={} ns={} calls={} timed={}\", prof_name[s], prof_ns[s], prof_calls[s], prof_timed[s]);");
        w.close("}");
    }
    if cov {
        for kind in CoverageKind::ALL {
            w.line(format!(
                "println!(\"ACCMOS:COV {} {{}} {}\", cov_{}.iter().filter(|b| **b).count());",
                kind.ident(),
                pre.coverage.map.total(kind),
                kind.ident()
            ));
        }
    }
    if !ctx.sites.is_empty() {
        let kinds: Vec<String> =
            ctx.sites.iter().map(|s| format!("\"{}\"", s.kind.ident())).collect();
        let actors: Vec<String> =
            ctx.sites.iter().map(|s| format!("\"{}\"", s.actor)).collect();
        w.line(format!("let site_kind = [{}];", kinds.join(", ")));
        w.line(format!("let site_actor = [{}];", actors.join(", ")));
        w.open(format!("for s in 0..{} {{", ctx.sites.len()));
        w.line("if diag_count[s] > 0 { println!(\"ACCMOS:DIAG {} {} {} {}\", site_kind[s], site_actor[s], diag_first[s], diag_count[s]); }");
        w.close("}");
    }
    if log_limit > 0 {
        w.open("for (path, step, ty, bits) in &siglog {");
        w.line("print!(\"ACCMOS:SIGNAL {} {} {} {}\", path, step, ty, bits.len());");
        w.line("for b in bits { print!(\" {:x}\", b); }");
        w.line("println!();");
        w.close("}");
    }
    for (i, id) in flat.root_outports.iter().enumerate() {
        let a = flat.actor(*id);
        w.line(format!(
            "print!(\"ACCMOS:OUT {} {} {}\");",
            a.path.name(),
            a.dtype.mnemonic(),
            a.width
        ));
        for e in 0..a.width {
            w.line(format!(
                "print!(\" {{:x}}\", {});",
                bits_expr(&format!("final_{i}[{e}]"), a.dtype)
            ));
        }
        w.line("println!();");
    }
    w.line("println!(\"ACCMOS:DIGEST {:016x}\", digest);");
    w.line("println!(\"ACCMOS:END\");");
    w.close("}");

    GeneratedRustProgram { model: flat.name.clone(), main_rs: w.finish(), diag_sites: ctx.sites }
}

fn indent(code: String, levels: usize) -> String {
    let pad = "    ".repeat(levels);
    code.lines()
        .map(|l| if l.is_empty() { "\n".to_owned() } else { format!("{pad}{l}\n") })
        .collect()
}

fn bits_expr(expr: &str, dt: DataType) -> String {
    match dt {
        DataType::F64 => format!("({expr}).to_bits()"),
        DataType::F32 => format!("({expr}).to_bits() as u64"),
        DataType::Bool | DataType::U8 => format!("({expr}) as u64"),
        DataType::I8 => format!("({expr}) as u8 as u64"),
        DataType::I16 => format!("({expr}) as u16 as u64"),
        DataType::I32 => format!("({expr}) as u32 as u64"),
        _ => format!("({expr}) as u64"),
    }
}

fn emit_state_decl(ctx: &Ctx<'_>, actor: &FlatActor, w: &mut CodeBuf) {
    use ActorKind::*;
    let key = actor.path.key();
    let t = rty(actor.dtype);
    let width = actor.width;
    let arr_init = |lit: &str, n: usize| {
        if n == 1 {
            lit.to_owned()
        } else {
            format!("[{lit}; {n}]")
        }
    };
    let arr_ty = |n: usize| {
        if n == 1 {
            t.to_owned()
        } else {
            format!("[{t}; {n}]")
        }
    };
    let _ = ctx;
    match &actor.kind {
        UnitDelay { init } | Memory { init } => {
            let lit = rust_lit(init.cast(actor.dtype));
            w.line(format!("let mut {key}_state: {} = {};", arr_ty(width), arr_init(&lit, width)));
        }
        Delay { steps, init } => {
            let lit = rust_lit(init.cast(actor.dtype));
            let total = steps * width;
            w.line(format!("let mut {key}_buf: [{t}; {total}] = [{lit}; {total}];"));
            w.line(format!("let mut {key}_pos: usize = 0;"));
        }
        DiscreteIntegrator { init, .. } => {
            let lit = rust_lit(init.cast(actor.dtype));
            w.line(format!("let mut {key}_acc: {} = {};", arr_ty(width), arr_init(&lit, width)));
        }
        DiscreteDerivative | RateLimiter { .. } => {
            w.line(format!(
                "let mut {key}_prev: {} = {};",
                arr_ty(width),
                arr_init("Default::default()", width)
            ));
        }
        ZeroOrderHold { .. } => {
            w.line(format!(
                "let mut {key}_held: {} = {};",
                arr_ty(width),
                arr_init("Default::default()", width)
            ));
        }
        Relay { .. } => {
            w.line(format!("let mut {key}_on: bool = false;"));
        }
        EdgeDetector { .. } => {
            w.line(format!("let mut {key}_prev: bool = false;"));
        }
        Counter { .. } => {
            w.line(format!("let mut {key}_cnt: u64 = 0;"));
        }
        RandomNumber { seed } => {
            w.line(format!("let mut {key}_rng: u64 = {seed};"));
        }
        Lookup1D { breakpoints, table, .. } => {
            w.line(const_arr(&format!("{key}_bps"), breakpoints));
            w.line(const_arr(&format!("{key}_tab"), table));
        }
        Lookup2D { row_bps, col_bps, table, .. } => {
            w.line(const_arr(&format!("{key}_rbps"), row_bps));
            w.line(const_arr(&format!("{key}_cbps"), col_bps));
            w.line(const_arr(&format!("{key}_tab"), table));
        }
        Polynomial { coeffs } => {
            w.line(const_arr(&format!("{key}_coef"), coeffs));
        }
        Selector { indices, dynamic: false } => {
            let items = indices.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
            w.line(format!("let {key}_idx: [usize; {}] = [{items}];", indices.len()));
        }
        _ => {}
    }
}

fn const_arr(name: &str, values: &[f64]) -> String {
    let items = values.iter().map(|v| f64_lit(*v)).collect::<Vec<_>>().join(", ");
    format!("let {name}: [f64; {}] = [{items}];", values.len())
}

fn group_active_expr(ctx: &Ctx<'_>, gid: accmos_graph::GroupId) -> String {
    // Analyzer-specialized guards, consistent at every consumer (actor
    // guards, Merge source selection, parent chains, state updates).
    match ctx.spec().map(|a| a.group_activity(gid)) {
        Some(accmos_analyze::GroupActivity::Always) => return "true".to_owned(),
        Some(accmos_analyze::GroupActivity::Never) => return "false".to_owned(),
        _ => {}
    }
    let flat = &ctx.pre.flat;
    let g = flat.group(gid);
    let ctrl = &flat.signal(g.control).name;
    let own = match g.kind {
        SystemKind::Enabled => format!("({ctrl} != Default::default())"),
        SystemKind::Triggered => {
            format!("(({ctrl} != Default::default()) && !g{}_prev)", g.id.0)
        }
        SystemKind::Plain => "true".to_owned(),
    };
    match g.parent {
        Some(p) => format!("{} && {own}", group_active_expr(ctx, p)),
        None => own,
    }
}

fn emit_step_body(ctx: &mut Ctx<'_>, w: &mut CodeBuf) {
    let order = ctx.pre.flat.order.clone();
    for id in order {
        let actor = ctx.pre.flat.actor(id).clone();
        // Analyzer-directed dead-path elision (see the C backend's
        // `emit_actor` for the soundness argument).
        if ctx.spec().is_some_and(|an| !an.is_live(actor.id)) {
            w.comment(format!(
                "{} `{}` — elided: never-active group",
                actor.kind.type_name(),
                actor.path
            ));
            continue;
        }
        w.comment(format!("{} `{}`", actor.kind.type_name(), actor.path));
        // Self-profiling wrap: observation only — a full-rate call count
        // plus a sampled-step clock read around the whole actor block
        // (guard included), never touching signal, state, coverage or
        // digest computation.
        let prof_site = ctx.opts.profile.then(|| {
            ctx.prof_names.push(actor.path.key());
            ctx.prof_names.len() - 1
        });
        if prof_site.is_some() {
            w.open("{");
            w.line("let accmos_prof_t0 = accmos_prof_on.then(std::time::Instant::now);");
        }
        match actor.group {
            Some(g) => w.open(format!("if {} {{", group_active_expr(ctx, g))),
            None => w.open("{"),
        };
        let fold = ctx
            .spec()
            .and_then(|an| an.constant_fold(actor.id))
            .map(<[f64]>::to_vec);
        match fold {
            Some(values) => {
                w.comment("folded: analysis pins every output to a constant");
                for (p, v) in values.iter().enumerate() {
                    let sig = ctx.sig(actor.outputs[p]);
                    let lit = rust_lit(Scalar::F64(*v).cast(sig.dtype));
                    let (name, sw) = (sig.name.clone(), sig.width);
                    for e in 0..sw {
                        w.line(format!("{} = {lit};", elem_of(&name, sw, &e.to_string())));
                    }
                }
            }
            None => emit_calculation(ctx, &actor, w),
        }
        if ctx.cov_on() {
            w.line(format!(
                "cov_actor[{}] = true;",
                ctx.pre.coverage.actor_point[actor.id.0]
            ));
        }
        if crate::gen::on_collect_list(ctx.opts, &actor) {
            emit_collect(ctx, &actor, w);
        }
        emit_diagnosis(ctx, &actor, w);
        if matches!(actor.kind, ActorKind::DiscreteDerivative) {
            let key = actor.path.key();
            for_elems(w, actor.width, |w, idx| {
                let prev = elem_of(&format!("{key}_prev"), actor.width, idx);
                w.line(format!("{prev} = {};", ctx.in_cast(&actor, 0, idx)));
            });
        }
        w.close("}");
        if let Some(site) = prof_site {
            w.open("if let Some(t0) = accmos_prof_t0 {");
            w.line(format!("prof_ns[{site}] += t0.elapsed().as_nanos() as u64;"));
            w.line(format!("prof_timed[{site}] += 1;"));
            w.close("}");
            w.line(format!("prof_calls[{site}] += 1;"));
            w.close("}");
        }
    }
    // Group condition coverage.
    if ctx.cov_on() {
        let groups: Vec<_> = ctx.pre.flat.groups.clone();
        for g in groups {
            let flat = &ctx.pre.flat;
            let ctrl = &flat.signal(g.control).name;
            let own = match g.kind {
                SystemKind::Enabled => format!("({ctrl} != Default::default())"),
                SystemKind::Triggered => {
                    format!("(({ctrl} != Default::default()) && !g{}_prev)", g.id.0)
                }
                SystemKind::Plain => "true".to_owned(),
            };
            let (t_bit, _) = ctx.pre.coverage.group_bits(g.id);
            let parent_ok =
                g.parent.map(|p| group_active_expr(ctx, p)).unwrap_or_else(|| "true".into());
            w.open(format!("if {parent_ok} {{"));
            w.line(format!(
                "cov_cond[{t_bit} + if {own} {{ 0 }} else {{ 1 }}] = true;"
            ));
            w.close("}");
        }
    }
}

fn emit_collect(ctx: &Ctx<'_>, actor: &FlatActor, w: &mut CodeBuf) {
    let flat = &ctx.pre.flat;
    let mut entries: Vec<(String, SignalId)> = Vec::new();
    if actor.monitor {
        for sig in &actor.outputs {
            entries.push((flat.signal(*sig).name.clone(), *sig));
        }
    }
    if actor.kind.is_monitor_sink() && !actor.inputs.is_empty() {
        entries.push((format!("{}_in", actor.path.key()), actor.inputs[0]));
    }
    for (path, sig_id) in entries {
        let sig = flat.signal(sig_id);
        let bits: Vec<String> = (0..sig.width)
            .map(|e| bits_expr(&elem_of(&sig.name, sig.width, &e.to_string()), sig.dtype))
            .collect();
        w.open("if siglog.len() < log_limit {");
        w.line(format!(
            "siglog.push((\"{path}\", step, \"{}\", vec![{}]));",
            sig.dtype.mnemonic(),
            bits.join(", ")
        ));
        w.close("}");
    }
}

#[allow(clippy::too_many_lines)]
fn emit_calculation(ctx: &mut Ctx<'_>, a: &FlatActor, w: &mut CodeBuf) {
    use ActorKind::*;
    let key = a.path.key();
    let dt = a.dtype;
    let t = rty(dt);
    let width = a.width;
    let cov = ctx.cov_on();
    let cond_base = ctx.pre.coverage.condition[a.id.0].map(|(b, _)| b);
    let dec_base = ctx.pre.coverage.decision[a.id.0];
    let cov_branch = |w: &mut CodeBuf, branch: String| {
        if cov {
            if let Some(base) = cond_base {
                w.line(format!("cov_cond[{base} + ({branch})] = true;"));
            }
        }
    };
    let cov_decision = |w: &mut CodeBuf, expr: &str| {
        if cov {
            if let Some(base) = dec_base {
                w.line(format!(
                    "cov_dec[{base} + if ({expr}) != 0 {{ 0 }} else {{ 1 }}] = true;"
                ));
            }
        }
    };
    let wrapping = |op: &str, lhs: &str, rhs: &str| -> String {
        if dt.is_float() {
            format!("({lhs} {} {rhs})", match op { "add" => "+", "sub" => "-", _ => "*" })
        } else {
            format!("({lhs}).wrapping_{op}({rhs})")
        }
    };

    match &a.kind {
        Inport { .. } => {
            if a.inputs.is_empty() {
                let col = ctx
                    .pre
                    .flat
                    .root_inports
                    .iter()
                    .position(|id| *id == a.id)
                    .expect("root inport");
                let decoded = decode_bits(&format!("take_test(&tc, {col}, step)"), dt);
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {decoded};", ctx.out(a, idx)));
                });
            } else {
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", ctx.out(a, idx), ctx.in_cast(a, 0, idx)));
                });
            }
        }
        Constant { value } => {
            for (e, s) in value.elems().iter().enumerate() {
                let target = elem_of(&ctx.sig(a.outputs[0]).name, width, &e.to_string());
                w.line(format!("{target} = {};", rust_lit(*s)));
            }
        }
        Step { time, before, after } => {
            let (b, af) = (rust_lit(before.cast(dt)), rust_lit(after.cast(dt)));
            for_elems(w, width, |w, idx| {
                w.line(format!(
                    "{} = if step >= {time} {{ {af} }} else {{ {b} }};",
                    ctx.out(a, idx)
                ));
            });
        }
        Ramp { slope, start, initial } => {
            let expr = format!(
                "if step < {start} {{ {i} }} else {{ {i} + {s} * ((step - {start}) as f64) }}",
                i = f64_lit(*initial),
                s = f64_lit(*slope)
            );
            let val = cast_f64(&format!("({expr})"), dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", ctx.out(a, idx)));
            });
        }
        SineWave { amplitude, freq, phase, bias } => {
            let expr = format!(
                "{} * ({} * (step as f64) + {}).sin() + {}",
                f64_lit(*amplitude),
                f64_lit(*freq),
                f64_lit(*phase),
                f64_lit(*bias)
            );
            let val = cast_f64(&format!("({expr})"), dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", ctx.out(a, idx)));
            });
        }
        PulseGenerator { period, duty, amplitude } => {
            let amp = rust_lit(amplitude.cast(dt));
            let zero = rust_lit(Scalar::zero(dt));
            for_elems(w, width, |w, idx| {
                w.line(format!(
                    "{} = if step % {period} < {duty} {{ {amp} }} else {{ {zero} }};",
                    ctx.out(a, idx)
                ));
            });
        }
        Clock => {
            let val = cast("step", DataType::U64, dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", ctx.out(a, idx)));
            });
        }
        Counter { limit } => {
            let val = cast(&format!("{key}_cnt"), DataType::U64, dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", ctx.out(a, idx)));
            });
            w.line(format!(
                "{key}_cnt = if {key}_cnt >= {limit} {{ 0 }} else {{ {key}_cnt + 1 }};"
            ));
        }
        RandomNumber { .. } => {
            w.line(format!("let rw = lcg(&mut {key}_rng);"));
            let val = if dt.is_float() {
                cast_f64("lcg_unit(rw)", dt)
            } else {
                cast("(rw >> 32)", DataType::U64, dt)
            };
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", ctx.out(a, idx)));
            });
        }
        Ground => {
            let zero = rust_lit(Scalar::zero(dt));
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {zero};", ctx.out(a, idx)));
            });
        }
        Sum { signs } => {
            for_elems(w, width, |w, idx| {
                let mut expr = format!("(0 as {t})");
                if dt.is_float() {
                    expr = format!("(0.0 as {t})");
                }
                for (i, sign) in signs.chars().enumerate() {
                    let inp = ctx.in_cast(a, i, idx);
                    expr = wrapping(if sign == '+' { "add" } else { "sub" }, &expr, &inp);
                }
                w.line(format!("{} = {expr};", ctx.out(a, idx)));
            });
        }
        Product { ops } => {
            for_elems(w, width, |w, idx| {
                let mut expr =
                    if dt.is_float() { format!("(1.0 as {t})") } else { format!("(1 as {t})") };
                for (i, op) in ops.chars().enumerate() {
                    let inp = ctx.in_cast(a, i, idx);
                    expr = if op == '*' {
                        wrapping("mul", &expr, &inp)
                    } else if dt.is_float() {
                        format!("({expr} / {inp})")
                    } else {
                        format!("div_int({expr}, {inp})")
                    };
                }
                w.line(format!("{} = {expr};", ctx.out(a, idx)));
            });
        }
        Gain { gain } => {
            let g = rust_lit(gain.cast(dt));
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                w.line(format!("{} = {};", ctx.out(a, idx), wrapping("mul", &x, &g)));
            });
        }
        Bias { bias } => {
            let b = rust_lit(bias.cast(dt));
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                w.line(format!("{} = {};", ctx.out(a, idx), wrapping("add", &x, &b)));
            });
        }
        Abs => {
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                let expr = if dt.is_float() {
                    format!("({x}).abs()")
                } else if dt.is_signed() {
                    format!("({x}).wrapping_abs()")
                } else {
                    x.clone()
                };
                w.line(format!("{} = {expr};", ctx.out(a, idx)));
            });
        }
        Sign => {
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                w.line(format!(
                    "{} = ((((({x}) as f64) > 0.0) as i32 - ((({x}) as f64) < 0.0) as i32)) as {t};",
                    ctx.out(a, idx)
                ));
            });
        }
        Sqrt => {
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                w.line(format!(
                    "{} = {};",
                    ctx.out(a, idx),
                    cast_f64(&format!("(({x}) as f64).sqrt()"), dt)
                ));
            });
        }
        Math { op } => emit_math(ctx, a, *op, w),
        Trig { op } => {
            for_elems(w, width, |w, idx| {
                let expr = if *op == TrigOp::Atan2 {
                    format!(
                        "(({}) as f64).atan2(({}) as f64)",
                        ctx.in_cast(a, 0, idx),
                        ctx.in_cast(a, 1, idx)
                    )
                } else {
                    let m = match op {
                        TrigOp::Sin => "sin",
                        TrigOp::Cos => "cos",
                        TrigOp::Tan => "tan",
                        TrigOp::Asin => "asin",
                        TrigOp::Acos => "acos",
                        TrigOp::Atan => "atan",
                        TrigOp::Sinh => "sinh",
                        TrigOp::Cosh => "cosh",
                        TrigOp::Tanh => "tanh",
                        TrigOp::Atan2 => unreachable!(),
                    };
                    format!("(({}) as f64).{m}()", ctx.in_cast(a, 0, idx))
                };
                w.line(format!("{} = {};", ctx.out(a, idx), cast_f64(&expr, dt)));
            });
        }
        MinMax { op, inputs } => {
            for_elems(w, width, |w, idx| {
                w.line(format!("let mut acc: {t} = {};", ctx.in_cast(a, 0, idx)));
                for i in 1..*inputs {
                    let x = ctx.in_cast(a, i, idx);
                    if dt.is_float() {
                        let m = if *op == MinMaxOp::Min { "min" } else { "max" };
                        w.line(format!("acc = acc.{m}({x});"));
                    } else {
                        let cmp = if *op == MinMaxOp::Min { "<" } else { ">" };
                        w.line(format!("if {x} {cmp} acc {{ acc = {x}; }}"));
                    }
                }
                w.line(format!("{} = acc;", ctx.out(a, idx)));
            });
        }
        Rounding { op } => {
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                if dt.is_float() {
                    let m = match op {
                        RoundOp::Floor => "floor",
                        RoundOp::Ceil => "ceil",
                        RoundOp::Round => "round",
                        RoundOp::Fix => "trunc",
                    };
                    w.line(format!(
                        "{} = {};",
                        ctx.out(a, idx),
                        cast_f64(&format!("(({x}) as f64).{m}()"), dt)
                    ));
                } else {
                    w.line(format!("{} = {x};", ctx.out(a, idx)));
                }
            });
        }
        Polynomial { coeffs } => {
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                w.line(format!("let px = ({x}) as f64;"));
                w.line("let mut pacc = 0.0f64;");
                w.open(format!("for k in 0..{} {{", coeffs.len()));
                w.line(format!("pacc = pacc * px + {key}_coef[k];"));
                w.close("}");
                w.line(format!("{} = {};", ctx.out(a, idx), cast_f64("pacc", dt)));
            });
        }
        DotProduct => {
            let n = ctx.sig(a.inputs[0]).width;
            w.line(format!("let mut acc: {t} = Default::default();"));
            w.open(format!("for e in 0..{n} {{"));
            let p = wrapping("mul", &ctx.in_cast(a, 0, "e"), &ctx.in_cast(a, 1, "e"));
            w.line(format!("acc = {};", wrapping("add", "acc", &p)));
            w.close("}");
            w.line(format!("{} = acc;", ctx.out(a, "0")));
        }
        SumOfElements => {
            let n = ctx.sig(a.inputs[0]).width;
            w.line(format!("let mut acc: {t} = Default::default();"));
            w.open(format!("for e in 0..{n} {{"));
            w.line(format!("acc = {};", wrapping("add", "acc", &ctx.in_cast(a, 0, "e"))));
            w.close("}");
            w.line(format!("{} = acc;", ctx.out(a, "0")));
        }
        ProductOfElements => {
            let n = ctx.sig(a.inputs[0]).width;
            let one = if dt.is_float() { format!("1.0 as {t}") } else { format!("1 as {t}") };
            w.line(format!("let mut acc: {t} = {one};"));
            w.open(format!("for e in 0..{n} {{"));
            w.line(format!("acc = {};", wrapping("mul", "acc", &ctx.in_cast(a, 0, "e"))));
            w.close("}");
            w.line(format!("{} = acc;", ctx.out(a, "0")));
        }
        Relational { op } => {
            let lhs_dt = ctx.sig(a.inputs[0]).dtype;
            let rhs_dt = ctx.sig(a.inputs[1]).dtype;
            let any_float = lhs_dt.is_float() || rhs_dt.is_float();
            for_elems(w, width, |w, idx| {
                let (x, y) = if any_float {
                    (
                        format!("(({}) as f64)", ctx.in_raw(a, 0, idx)),
                        format!("(({}) as f64)", ctx.in_raw(a, 1, idx)),
                    )
                } else {
                    (
                        format!("(({}) as i128)", ctx.in_raw(a, 0, idx)),
                        format!("(({}) as i128)", ctx.in_raw(a, 1, idx)),
                    )
                };
                w.line(format!(
                    "{} = ({x} {} {y}) as u8;",
                    ctx.out(a, idx),
                    op.c_symbol()
                ));
                cov_decision(w, &ctx.out(a, idx));
            });
        }
        CompareToConstant { op, constant } => {
            let lhs_dt = ctx.sig(a.inputs[0]).dtype;
            let any_float = lhs_dt.is_float() || constant.dtype().is_float();
            for_elems(w, width, |w, idx| {
                let (x, y) = if any_float {
                    (
                        format!("(({}) as f64)", ctx.in_raw(a, 0, idx)),
                        format!("({})", f64_lit(constant.to_f64())),
                    )
                } else {
                    (
                        format!("(({}) as i128)", ctx.in_raw(a, 0, idx)),
                        format!("({}i128)", constant.to_i128()),
                    )
                };
                w.line(format!(
                    "{} = ({x} {} {y}) as u8;",
                    ctx.out(a, idx),
                    op.c_symbol()
                ));
                cov_decision(w, &ctx.out(a, idx));
            });
        }
        Logical { op, inputs } => {
            let n = if *op == LogicOp::Not { 1 } else { *inputs };
            for_elems(w, width, |w, idx| {
                for i in 0..n {
                    w.line(format!(
                        "let c{i}: bool = ({}) != Default::default();",
                        ctx.in_raw(a, i, idx)
                    ));
                }
                let all = (0..n).map(|i| format!("c{i}")).collect::<Vec<_>>();
                let expr = match op {
                    LogicOp::And => all.join(" && "),
                    LogicOp::Or => all.join(" || "),
                    LogicOp::Nand => format!("!({})", all.join(" && ")),
                    LogicOp::Nor => format!("!({})", all.join(" || ")),
                    LogicOp::Xor => {
                        format!("([{}].iter().filter(|c| **c).count() % 2 == 1)", all.join(", "))
                    }
                    LogicOp::Not => "!c0".to_owned(),
                };
                w.line(format!("{} = ({expr}) as u8;", ctx.out(a, idx)));
                cov_decision(w, &ctx.out(a, idx));
                if cov {
                    if let Some((base, _)) = ctx.pre.coverage.mcdc[a.id.0] {
                        for i in 0..n {
                            let others: Vec<String> =
                                (0..n).filter(|j| *j != i).map(|j| format!("c{j}")).collect();
                            let mask = match op {
                                LogicOp::And | LogicOp::Nand => {
                                    if others.is_empty() { "true".into() } else { others.join(" && ") }
                                }
                                LogicOp::Or | LogicOp::Nor => {
                                    if others.is_empty() {
                                        "true".into()
                                    } else {
                                        format!("!({})", others.join(" || "))
                                    }
                                }
                                _ => "true".into(),
                            };
                            w.line(format!(
                                "if {mask} {{ cov_mcdc[{} + if c{i} {{ 0 }} else {{ 1 }}] = true; }}",
                                base + 2 * i
                            ));
                        }
                    }
                }
            });
        }
        Bitwise { op } => {
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                let expr = match op {
                    BitOp::Not => format!("!({x})"),
                    _ => {
                        let y = ctx.in_cast(a, 1, idx);
                        let sym = match op {
                            BitOp::And => "&",
                            BitOp::Or => "|",
                            BitOp::Xor => "^",
                            BitOp::Not => unreachable!(),
                        };
                        format!("(({x}) {sym} ({y}))")
                    }
                };
                w.line(format!("{} = {expr};", ctx.out(a, idx)));
            });
        }
        Shift { dir, amount } => {
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                let expr = match dir {
                    ShiftDir::Left => format!("({x}).wrapping_shl({amount})"),
                    ShiftDir::Right => format!("(({x}) >> {amount})"),
                };
                w.line(format!("{} = {expr};", ctx.out(a, idx)));
            });
        }
        Switch { criteria } => {
            // Analyzer-specialized: only the proven-taken arm (see the C
            // backend's Switch template for the coverage argument).
            if let Some(accmos_analyze::BranchSpec::SwitchTaken(taken)) =
                ctx.spec().and_then(|an| an.branch_spec(a.id))
            {
                let (branch, port) = if taken { (0, 0) } else { (1, 2) };
                cov_branch(w, branch.to_string());
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", ctx.out(a, idx), ctx.in_cast(a, port, idx)));
                });
                return;
            }
            let ctrl = format!("(({}) as f64)", ctx.in_raw(a, 1, "0"));
            let cond = match criteria {
                SwitchCriteria::GreaterEqual(th) => format!("{ctrl} >= {}", f64_lit(*th)),
                SwitchCriteria::Greater(th) => format!("{ctrl} > {}", f64_lit(*th)),
                SwitchCriteria::NotEqualZero => format!("{ctrl} != 0.0"),
            };
            w.open(format!("if {cond} {{"));
            cov_branch(w, "0".into());
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {};", ctx.out(a, idx), ctx.in_cast(a, 0, idx)));
            });
            w.close("}");
            w.open("else {");
            cov_branch(w, "1".into());
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {};", ctx.out(a, idx), ctx.in_cast(a, 2, idx)));
            });
            w.close("}");
        }
        MultiportSwitch { cases } => {
            // Analyzer-specialized: the clamped selector is one case.
            if let Some(accmos_analyze::BranchSpec::MultiportCase(case)) =
                ctx.spec().and_then(|an| an.branch_spec(a.id))
            {
                cov_branch(w, (case - 1).to_string());
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", ctx.out(a, idx), ctx.in_cast(a, case, idx)));
                });
                return;
            }
            w.line(format!("let sel = ({}) as i128;", ctx.in_raw(a, 0, "0")));
            w.line(format!(
                "let pick = if sel < 1 {{ 1usize }} else if sel > {cases} {{ {cases} }} else {{ sel as usize }};"
            ));
            w.open("match pick {");
            for case in 1..=*cases {
                w.open(format!("{case} => {{"));
                cov_branch(w, format!("{}", case - 1));
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", ctx.out(a, idx), ctx.in_cast(a, case, idx)));
                });
                w.close("}");
            }
            w.line("_ => unreachable!(),");
            w.close("}");
        }
        Merge { inputs } => {
            for i in 0..*inputs {
                let src = ctx.sig(a.inputs[i]).source;
                let guard = match ctx.pre.flat.actor(src).group {
                    Some(g) => group_active_expr(ctx, g),
                    None => "true".to_owned(),
                };
                w.open(format!("if {guard} {{"));
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", ctx.out(a, idx), ctx.in_cast(a, i, idx)));
                });
                w.close("}");
            }
        }
        Saturation { lo, hi } => {
            let (lo_l, hi_l) = (f64_lit(*lo), f64_lit(*hi));
            // Analyzer-specialized: every element provably lands in one
            // branch (below/pass/above).
            if let Some(accmos_analyze::BranchSpec::SaturationBranch(branch)) =
                ctx.spec().and_then(|an| an.branch_spec(a.id))
            {
                cov_branch(w, branch.to_string());
                for_elems(w, width, |w, idx| {
                    let x = ctx.in_cast(a, 0, idx);
                    let val = match branch {
                        0 => cast_f64(&lo_l, dt),
                        2 => cast_f64(&hi_l, dt),
                        _ => x,
                    };
                    w.line(format!("{} = {val};", ctx.out(a, idx)));
                });
                return;
            }
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                w.open(format!("if (({x}) as f64) < {lo_l} {{"));
                cov_branch(w, "0".into());
                w.line(format!("{} = {};", ctx.out(a, idx), cast_f64(&lo_l, dt)));
                w.close("}");
                w.open(format!("else if (({x}) as f64) > {hi_l} {{"));
                cov_branch(w, "2".into());
                w.line(format!("{} = {};", ctx.out(a, idx), cast_f64(&hi_l, dt)));
                w.close("}");
                w.open("else {");
                cov_branch(w, "1".into());
                w.line(format!("{} = {x};", ctx.out(a, idx)));
                w.close("}");
            });
        }
        DeadZone { start, end } => {
            let (s_l, e_l) = (f64_lit(*start), f64_lit(*end));
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                w.open(format!("if (({x}) as f64) < {s_l} {{"));
                cov_branch(w, "0".into());
                w.line(format!(
                    "{} = {};",
                    ctx.out(a, idx),
                    cast_f64(&format!("((({x}) as f64) - {s_l})"), dt)
                ));
                w.close("}");
                w.open(format!("else if (({x}) as f64) > {e_l} {{"));
                cov_branch(w, "2".into());
                w.line(format!(
                    "{} = {};",
                    ctx.out(a, idx),
                    cast_f64(&format!("((({x}) as f64) - {e_l})"), dt)
                ));
                w.close("}");
                w.open("else {");
                cov_branch(w, "1".into());
                w.line(format!("{} = {};", ctx.out(a, idx), rust_lit(Scalar::zero(dt))));
                w.close("}");
            });
        }
        RateLimiter { rising, falling } => {
            let (r_l, f_l) = (f64_lit(*rising), f64_lit(*falling));
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                let prev = elem_of(&format!("{key}_prev"), width, idx);
                w.line(format!("let delta = (({x}) as f64) - (({prev}) as f64);"));
                w.open(format!("if delta > {r_l} {{"));
                cov_branch(w, "2".into());
                w.line(format!(
                    "{} = {};",
                    ctx.out(a, idx),
                    cast_f64(&format!("((({prev}) as f64) + {r_l})"), dt)
                ));
                w.close("}");
                w.open(format!("else if delta < {f_l} {{"));
                cov_branch(w, "0".into());
                w.line(format!(
                    "{} = {};",
                    ctx.out(a, idx),
                    cast_f64(&format!("((({prev}) as f64) + {f_l})"), dt)
                ));
                w.close("}");
                w.open("else {");
                cov_branch(w, "1".into());
                w.line(format!("{} = {x};", ctx.out(a, idx)));
                w.close("}");
                w.line(format!("{prev} = {};", ctx.out(a, idx)));
            });
        }
        Quantizer { interval } => {
            let q = f64_lit(*interval);
            for_elems(w, width, |w, idx| {
                let x = ctx.in_cast(a, 0, idx);
                w.line(format!(
                    "{} = {};",
                    ctx.out(a, idx),
                    cast_f64(&format!("({q} * ((({x}) as f64) / {q}).round())"), dt)
                ));
            });
        }
        Relay { on_threshold, off_threshold, on_value, off_value } => {
            let x = ctx.in_cast(a, 0, "0");
            w.line(format!(
                "if (({x}) as f64) >= {} {{ {key}_on = true; }} else if (({x}) as f64) <= {} {{ {key}_on = false; }}",
                f64_lit(*on_threshold),
                f64_lit(*off_threshold)
            ));
            cov_branch(w, format!("if {key}_on {{ 1 }} else {{ 0 }}"));
            let on_v = cast_f64(&f64_lit(*on_value), dt);
            let off_v = cast_f64(&f64_lit(*off_value), dt);
            for_elems(w, width, |w, idx| {
                w.line(format!(
                    "{} = if {key}_on {{ {on_v} }} else {{ {off_v} }};",
                    ctx.out(a, idx)
                ));
            });
        }
        UnitDelay { .. } | Memory { .. } => {
            for_elems(w, width, |w, idx| {
                let st = elem_of(&format!("{key}_state"), width, idx);
                w.line(format!("{} = {st};", ctx.out(a, idx)));
            });
        }
        DiscreteIntegrator { .. } => {
            for_elems(w, width, |w, idx| {
                let st = elem_of(&format!("{key}_acc"), width, idx);
                w.line(format!("{} = {st};", ctx.out(a, idx)));
            });
        }
        Delay { .. } => {
            for_elems(w, width, |w, idx| {
                let off = if width == 1 {
                    format!("{key}_pos")
                } else {
                    format!("{key}_pos * {width} + {idx}")
                };
                w.line(format!("{} = {key}_buf[{off}];", ctx.out(a, idx)));
            });
        }
        DiscreteDerivative => {
            for_elems(w, width, |w, idx| {
                let prev = elem_of(&format!("{key}_prev"), width, idx);
                let x = ctx.in_cast(a, 0, idx);
                w.line(format!("{} = {};", ctx.out(a, idx), {
                    if dt.is_float() {
                        format!("({x} - {prev})")
                    } else {
                        format!("({x}).wrapping_sub({prev})")
                    }
                }));
            });
        }
        ZeroOrderHold { sample } => {
            w.open(format!("if step % {sample} == 0 {{"));
            for_elems(w, width, |w, idx| {
                let held = elem_of(&format!("{key}_held"), width, idx);
                w.line(format!("{held} = {};", ctx.in_cast(a, 0, idx)));
            });
            w.close("}");
            for_elems(w, width, |w, idx| {
                let held = elem_of(&format!("{key}_held"), width, idx);
                w.line(format!("{} = {held};", ctx.out(a, idx)));
            });
        }
        EdgeDetector { rising, falling } => {
            w.line(format!(
                "let cur: bool = ({}) != Default::default();",
                ctx.in_raw(a, 0, "0")
            ));
            let mut terms = Vec::new();
            if *rising {
                terms.push(format!("(cur && !{key}_prev)"));
            }
            if *falling {
                terms.push(format!("(!cur && {key}_prev)"));
            }
            let expr = if terms.is_empty() { "false".to_owned() } else { terms.join(" || ") };
            w.line(format!("{} = ({expr}) as u8;", ctx.out(a, "0")));
            cov_decision(w, &ctx.out(a, "0"));
            w.line(format!("{key}_prev = cur;"));
        }
        Mux { inputs } => {
            let mut offset = 0usize;
            let out_name = ctx.sig(a.outputs[0]).name.clone();
            for i in 0..*inputs {
                let iw = ctx.sig(a.inputs[i]).width;
                for e in 0..iw {
                    let target = elem_of(&out_name, width, &(offset + e).to_string());
                    w.line(format!("{target} = {};", ctx.in_cast(a, i, &e.to_string())));
                }
                offset += iw;
            }
        }
        Demux { outputs } => {
            let part = ctx.sig(a.inputs[0]).width / outputs;
            for p in 0..*outputs {
                let out_name = ctx.sig(a.outputs[p]).name.clone();
                for e in 0..part {
                    let target = elem_of(&out_name, part, &e.to_string());
                    let src = ctx.in_cast(a, 0, &(p * part + e).to_string());
                    w.line(format!("{target} = {src};"));
                }
            }
        }
        Selector { indices, dynamic } => {
            if *dynamic {
                let n = ctx.sig(a.inputs[0]).width;
                w.line(format!("let sel = ({}) as i128;", ctx.in_raw(a, 1, "0")));
                w.line(format!(
                    "let pick = if sel < 1 {{ 1usize }} else if sel > {n} {{ {n} }} else {{ sel as usize }};"
                ));
                w.line(format!("{} = {};", ctx.out(a, "0"), ctx.in_cast(a, 0, "pick - 1")));
            } else {
                let out_name = ctx.sig(a.outputs[0]).name.clone();
                for k in 0..indices.len() {
                    let target = elem_of(&out_name, width, &k.to_string());
                    w.line(format!(
                        "{target} = {};",
                        ctx.in_cast(a, 0, &format!("{key}_idx[{k}]"))
                    ));
                }
            }
        }
        DataTypeConversion { .. } => {
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {};", ctx.out(a, idx), ctx.in_cast(a, 0, idx)));
            });
        }
        Lookup1D { breakpoints, method, .. } => {
            let n = breakpoints.len();
            let m = method_code(*method);
            for_elems(w, width, |w, idx| {
                let x = ctx.in_raw(a, 0, idx);
                let call = format!("lookup1d(&{key}_bps, &{key}_tab, {n}, {m}, ({x}) as f64)");
                w.line(format!("{} = {};", ctx.out(a, idx), cast_f64(&call, dt)));
            });
        }
        Lookup2D { row_bps, col_bps, method, .. } => {
            let (nr, nc) = (row_bps.len(), col_bps.len());
            let m = method_code(*method);
            let call = format!(
                "lookup2d(&{key}_rbps, {nr}, &{key}_cbps, {nc}, &{key}_tab, {m}, ({}) as f64, ({}) as f64)",
                ctx.in_raw(a, 0, "0"),
                ctx.in_raw(a, 1, "0")
            );
            let val = cast_f64(&call, dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", ctx.out(a, idx)));
            });
        }
        DataStoreMemory { .. } => {
            w.comment("data store declaration");
        }
        DataStoreRead { store } => {
            let i = ctx.pre.flat.store_index(store).expect("store");
            let sdt = ctx.pre.flat.stores[i].dtype;
            let val = cast(&crate::gen::store_var(store), sdt, dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", ctx.out(a, idx)));
            });
        }
        DataStoreWrite { store } => {
            let i = ctx.pre.flat.store_index(store).expect("store");
            let sdt = ctx.pre.flat.stores[i].dtype;
            let in_dt = ctx.sig(a.inputs[0]).dtype;
            let val = cast(&ctx.in_raw(a, 0, "0"), in_dt, sdt);
            w.line(format!("{} = {val};", crate::gen::store_var(store)));
        }
        Outport { .. } => {
            if !a.outputs.is_empty() {
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", ctx.out(a, idx), ctx.in_cast(a, 0, idx)));
                });
            } else {
                w.comment("root outport: recorded after the sweep");
            }
        }
        Scope | Display | ToWorkspace { .. } | Terminator => {
            w.comment("sink actor");
        }
    }
}

fn method_code(m: LookupMethod) -> usize {
    match m {
        LookupMethod::Interpolate => 0,
        LookupMethod::Nearest => 1,
        LookupMethod::Below => 2,
    }
}

fn emit_math(ctx: &mut Ctx<'_>, a: &FlatActor, op: MathOp, w: &mut CodeBuf) {
    let dt = a.dtype;
    let t = rty(dt);
    for_elems(w, a.width, |w, idx| {
        let x = ctx.in_cast(a, 0, idx);
        let xd = format!("(({x}) as f64)");
        let out = ctx.out(a, idx);
        let line = match op {
            MathOp::Exp => format!("{out} = {};", cast_f64(&format!("{xd}.exp()"), dt)),
            MathOp::Log => format!("{out} = {};", cast_f64(&format!("{xd}.ln()"), dt)),
            MathOp::Log10 => format!("{out} = {};", cast_f64(&format!("{xd}.log10()"), dt)),
            MathOp::Pow10 => {
                format!("{out} = {};", cast_f64(&format!("10.0f64.powf({xd})"), dt))
            }
            MathOp::Square => {
                if dt.is_float() {
                    format!("{out} = ({x}) * ({x});")
                } else {
                    format!("{out} = ({x}).wrapping_mul({x});")
                }
            }
            MathOp::Pow => {
                let y = ctx.in_cast(a, 1, idx);
                format!("{out} = {};", cast_f64(&format!("{xd}.powf(({y}) as f64)"), dt))
            }
            MathOp::Reciprocal => {
                if dt.is_integer() {
                    format!("{out} = div_int(1 as {t}, {x});")
                } else {
                    format!("{out} = ((1.0f64 / {xd})) as {t};")
                }
            }
            MathOp::Mod | MathOp::Rem => {
                let y = ctx.in_cast(a, 1, idx);
                if dt.is_integer() {
                    let base = format!("rem_int({x}, {y})");
                    if op == MathOp::Mod {
                        format!(
                            "let mr = {base}; {out} = if mr != 0 && ((mr < 0) != (({y}) < 0)) {{ mr.wrapping_add({y}) }} else {{ mr }};"
                        )
                    } else {
                        format!("{out} = {base};")
                    }
                } else {
                    let yd = format!("(({y}) as f64)");
                    if op == MathOp::Mod {
                        format!(
                            "let mr = {xd} % {yd}; {out} = {};",
                            cast_f64(
                                &format!(
                                    "(if mr != 0.0 && ((mr < 0.0) != ({yd} < 0.0)) {{ mr + {yd} }} else {{ mr }})"
                                ),
                                dt
                            )
                        )
                    } else {
                        format!("{out} = {};", cast_f64(&format!("({xd} % {yd})"), dt))
                    }
                }
            }
            MathOp::Hypot => {
                let y = ctx.in_cast(a, 1, idx);
                format!("{out} = {};", cast_f64(&format!("{xd}.hypot(({y}) as f64)"), dt))
            }
        };
        w.line(line);
    });
}

/// Inline diagnosis instrumentation (the Rust backend emits the checks
/// in place rather than as named diagnostic functions).
fn emit_diagnosis(ctx: &mut Ctx<'_>, a: &FlatActor, w: &mut CodeBuf) {
    use ActorKind::*;
    if !ctx.opts.instrument {
        return;
    }
    let default_member = a.kind.is_calculation();
    if !ctx.opts.diagnose.contains(&a.path.key(), default_member) {
        return;
    }
    let ins = ctx.pre.flat.input_dtypes(a);
    let plan: Vec<DiagnosticKind> = applicable_diagnoses(&a.kind, &ins, a.dtype)
        .into_iter()
        .filter(|k| ctx.opts.policy.enabled(*k))
        .filter(|k| {
            !ctx.analysis.as_ref().is_some_and(|an| an.proves_never_fires(a.id, *k))
        })
        .collect();
    if plan.is_empty() {
        return;
    }
    let dt = a.dtype;
    let key = a.path.key();

    for kind in plan {
        let site = ctx.site(a, kind);
        let hit = format!(
            "if diag_count[{site}] == 0 {{ diag_first[{site}] = step; }} diag_count[{site}] += 1; diag_total += 1;"
        );
        match kind {
            DiagnosticKind::WrapOnOverflow => {
                if matches!(a.kind, DiscreteIntegrator { .. }) {
                    // Checked at the end-of-step update section.
                    ctx.sites.pop();
                    ctx.sites.push(crate::gen::DiagSite {
                        actor: key.clone(),
                        kind,
                    });
                    continue; // handled in emit_state_updates via the same site
                }
                w.line("let mut ovf = false;");
                emit_overflow_check_rust(ctx, a, w);
                w.open("if ovf {");
                w.line(&hit);
                w.close("}");
            }
            DiagnosticKind::DivisionByZero => {
                w.line("let mut divz = false;");
                let ports: Vec<usize> = match &a.kind {
                    Product { ops } => ops
                        .chars()
                        .enumerate()
                        .filter(|(_, c)| *c == '/')
                        .map(|(i, _)| i)
                        .collect(),
                    Math { op: MathOp::Reciprocal } => vec![0],
                    Math { op: MathOp::Mod | MathOp::Rem } => vec![1],
                    _ => Vec::new(),
                };
                for_elems(w, a.width, |w, idx| {
                    for p in &ports {
                        let v = ctx.in_cast(a, *p, idx);
                        if dt.is_float() {
                            w.line(format!("if ({v}) == 0.0 {{ divz = true; }}"));
                        } else {
                            w.line(format!("if ({v}) == 0 {{ divz = true; }}"));
                        }
                    }
                });
                w.open("if divz {");
                w.line(&hit);
                w.close("}");
            }
            DiagnosticKind::ArrayOutOfBounds => {
                let (port, limit) = match &a.kind {
                    MultiportSwitch { cases } => (0usize, *cases),
                    Selector { .. } => (1usize, ctx.sig(a.inputs[0]).width),
                    _ => (0, 1),
                };
                w.line(format!("let sel_d = ({}) as i128;", ctx.in_raw(a, port, "0")));
                w.open(format!("if sel_d < 1 || sel_d > {limit} {{"));
                w.line(&hit);
                w.close("}");
            }
            DiagnosticKind::DomainError => {
                w.line("let mut dom = false;");
                let check: Box<dyn Fn(&str) -> String> = match &a.kind {
                    Sqrt => Box::new(|x| format!("if (({x}) as f64) < 0.0 {{ dom = true; }}")),
                    Math { op: MathOp::Log | MathOp::Log10 } => {
                        Box::new(|x| format!("if (({x}) as f64) <= 0.0 {{ dom = true; }}"))
                    }
                    Trig { op: TrigOp::Asin | TrigOp::Acos } => {
                        Box::new(|x| format!("if (({x}) as f64).abs() > 1.0 {{ dom = true; }}"))
                    }
                    _ => Box::new(|_| String::new()),
                };
                for_elems(w, a.width, |w, idx| {
                    let line = check(&ctx.in_cast(a, 0, idx));
                    if !line.is_empty() {
                        w.line(line);
                    }
                });
                w.open("if dom {");
                w.line(&hit);
                w.close("}");
            }
            DiagnosticKind::Downcast => {
                w.open(format!("if diag_count[{site}] == 0 {{"));
                w.line(format!(
                    "diag_first[{site}] = step; diag_count[{site}] = 1; diag_total += 1;"
                ));
                w.close("}");
            }
            DiagnosticKind::PrecisionLoss => {
                w.line("let mut lossy = false;");
                for (i, input) in a.inputs.iter().enumerate() {
                    let sig = ctx.sig(*input).clone();
                    if !sig.dtype.precision_loss_to(dt) {
                        continue;
                    }
                    for_elems(w, sig.width, |w, idx| {
                        let x = ctx.in_raw(a, i, idx);
                        let forward = cast(&x, sig.dtype, dt);
                        let back = cast(&forward, dt, sig.dtype);
                        w.line(format!("if {back} != ({x}) {{ lossy = true; }}"));
                    });
                }
                w.open("if lossy {");
                w.line(&hit);
                w.close("}");
            }
        }
    }
}

fn emit_overflow_check_rust(ctx: &Ctx<'_>, a: &FlatActor, w: &mut CodeBuf) {
    use ActorKind::*;
    let dt = a.dtype;
    for_elems(w, a.width, |w, idx| {
        let out = ctx.out(a, idx);
        match &a.kind {
            Sum { signs } => {
                w.line("let mut ex: i128 = 0;");
                for (i, sign) in signs.chars().enumerate() {
                    let v = ctx.in_cast(a, i, idx);
                    let op = if sign == '+' { "+" } else { "-" };
                    w.line(format!("ex = ex {op} (({v}) as i128);"));
                }
                w.line(format!("if (({out}) as i128) != ex {{ ovf = true; }}"));
            }
            Product { ops } => {
                w.line("let mut ex: i128 = 1;");
                for (i, op) in ops.chars().enumerate() {
                    let v = ctx.in_cast(a, i, idx);
                    if op == '*' {
                        w.line(format!("ex = ex.saturating_mul(({v}) as i128);"));
                    } else {
                        w.line(format!(
                            "ex = if (({v}) as i128) == 0 {{ 0 }} else {{ ex.wrapping_div(({v}) as i128) }};"
                        ));
                    }
                }
                w.line(format!("if (({out}) as i128) != ex {{ ovf = true; }}"));
            }
            Gain { gain } => {
                let g = gain.cast(dt).to_i128();
                let v = ctx.in_cast(a, 0, idx);
                w.line(format!(
                    "if (({out}) as i128) != (({v}) as i128) * ({g}i128) {{ ovf = true; }}"
                ));
            }
            Bias { bias } => {
                let b = bias.cast(dt).to_i128();
                let v = ctx.in_cast(a, 0, idx);
                w.line(format!(
                    "if (({out}) as i128) != (({v}) as i128) + ({b}i128) {{ ovf = true; }}"
                ));
            }
            Abs => {
                let v = ctx.in_cast(a, 0, idx);
                w.line(format!(
                    "let ex = ((({v}) as i128)).abs(); if (({out}) as i128) != ex {{ ovf = true; }}"
                ));
            }
            Math { op: MathOp::Square } => {
                let v = ctx.in_cast(a, 0, idx);
                w.line(format!(
                    "if (({out}) as i128) != (({v}) as i128) * (({v}) as i128) {{ ovf = true; }}"
                ));
            }
            Shift { dir: ShiftDir::Left, amount } => {
                let v = ctx.in_cast(a, 0, idx);
                w.line(format!(
                    "if (({out}) as i128) != ((({v}) as i128) << {amount}) {{ ovf = true; }}"
                ));
            }
            DotProduct => {
                let n = ctx.sig(a.inputs[0]).width;
                w.line("let mut ex: i128 = 0;");
                w.open(format!("for e2 in 0..{n} {{"));
                let x = ctx.in_cast(a, 0, "e2");
                let y = ctx.in_cast(a, 1, "e2");
                w.line(format!("ex += (({x}) as i128) * (({y}) as i128);"));
                w.close("}");
                w.line(format!("if (({out}) as i128) != ex {{ ovf = true; }}"));
            }
            SumOfElements => {
                let n = ctx.sig(a.inputs[0]).width;
                w.line("let mut ex: i128 = 0;");
                w.open(format!("for e2 in 0..{n} {{"));
                w.line(format!("ex += (({}) as i128);", ctx.in_cast(a, 0, "e2")));
                w.close("}");
                w.line(format!("if (({out}) as i128) != ex {{ ovf = true; }}"));
            }
            ProductOfElements => {
                let n = ctx.sig(a.inputs[0]).width;
                w.line("let mut ex: i128 = 1;");
                w.open(format!("for e2 in 0..{n} {{"));
                w.line(format!(
                    "ex = ex.saturating_mul((({}) as i128));",
                    ctx.in_cast(a, 0, "e2")
                ));
                w.close("}");
                w.line(format!("if (({out}) as i128) != ex {{ ovf = true; }}"));
            }
            DiscreteDerivative => {
                let key = a.path.key();
                let prev = elem_of(&format!("{key}_prev"), a.width, idx);
                let x = ctx.in_cast(a, 0, idx);
                w.line(format!(
                    "if (({out}) as i128) != (({x}) as i128) - (({prev}) as i128) {{ ovf = true; }}"
                ));
            }
            _ => {}
        }
    });
}

fn emit_state_updates(ctx: &mut Ctx<'_>, w: &mut CodeBuf) {
    use ActorKind::*;
    let order = ctx.pre.flat.order.clone();
    for id in order {
        let actor = ctx.pre.flat.actor(id).clone();
        if !actor.kind.breaks_algebraic_loops() {
            continue;
        }
        // Mirrors the C backend: elided (proven-dead) actors drop their
        // end-of-step updates too.
        if ctx.spec().is_some_and(|an| !an.is_live(actor.id)) {
            continue;
        }
        let key = actor.path.key();
        let dt = actor.dtype;
        let width = actor.width;
        let guard = match actor.group {
            Some(g) => group_active_expr(ctx, g),
            None => "true".to_owned(),
        };
        w.open(format!("if {guard} {{"));
        match &actor.kind {
            UnitDelay { .. } | Memory { .. } => {
                for_elems(w, width, |w, idx| {
                    let st = elem_of(&format!("{key}_state"), width, idx);
                    w.line(format!("{st} = {};", ctx.in_cast(&actor, 0, idx)));
                });
            }
            Delay { steps, .. } => {
                for_elems(w, width, |w, idx| {
                    let off = if width == 1 {
                        format!("{key}_pos")
                    } else {
                        format!("{key}_pos * {width} + {idx}")
                    };
                    w.line(format!("{key}_buf[{off}] = {};", ctx.in_cast(&actor, 0, idx)));
                });
                w.line(format!("{key}_pos = ({key}_pos + 1) % {steps};"));
            }
            DiscreteIntegrator { gain, .. } => {
                // Find this actor's overflow site, if instrumented.
                let site = ctx
                    .sites
                    .iter()
                    .position(|s| s.actor == key && s.kind == DiagnosticKind::WrapOnOverflow);
                for_elems(w, width, |w, idx| {
                    let acc = elem_of(&format!("{key}_acc"), width, idx);
                    let input = ctx.in_cast(&actor, 0, idx);
                    let incr = if *gain == 1.0 {
                        input
                    } else {
                        cast_f64(&format!("({} * (({input}) as f64))", f64_lit(*gain)), dt)
                    };
                    w.line(format!("let incr = {incr};"));
                    if let Some(site) = site {
                        if dt.is_integer() {
                            w.open(format!(
                                "if ((({acc}).wrapping_add(incr)) as i128) != (({acc}) as i128) + ((incr) as i128) {{"
                            ));
                            w.line(format!(
                                "if diag_count[{site}] == 0 {{ diag_first[{site}] = step; }} diag_count[{site}] += 1; diag_total += 1;"
                            ));
                            w.close("}");
                        }
                    }
                    if dt.is_float() {
                        w.line(format!("{acc} = {acc} + incr;"));
                    } else {
                        w.line(format!("{acc} = ({acc}).wrapping_add(incr);"));
                    }
                });
            }
            _ => {}
        }
        w.close("}");
    }
}

fn decode_bits(bits: &str, dt: DataType) -> String {
    match dt {
        DataType::F64 => format!("f64::from_bits({bits})"),
        DataType::F32 => format!("f32::from_bits(({bits}) as u32)"),
        DataType::Bool => format!("((({bits}) != 0) as u8)"),
        t => format!("(({bits}) as {})", rty(t)),
    }
}

const RUST_PRELUDE: &str = r#"
// ---- runtime support (mirrors accmos_rt.h) --------------------------------

fn fnv(mut h: u64, w: u64) -> u64 {
    for i in 0..8 {
        h ^= (w >> (8 * i)) & 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s
}

fn lcg_unit(w: u64) -> f64 {
    (w >> 11) as f64 * (1.0 / 9007199254740992.0)
}

trait DivInt: Copy {
    fn div_int(self, b: Self) -> Self;
    fn rem_int(self, b: Self) -> Self;
}
macro_rules! impl_divint {
    ($($t:ty),*) => {$(
        impl DivInt for $t {
            fn div_int(self, b: Self) -> Self { if b == 0 { 0 } else { self.wrapping_div(b) } }
            fn rem_int(self, b: Self) -> Self { if b == 0 { 0 } else { self.wrapping_rem(b) } }
        }
    )*};
}
impl_divint!(i8, i16, i32, i64, u8, u16, u32, u64);

fn div_int<T: DivInt>(a: T, b: T) -> T {
    a.div_int(b)
}
fn rem_int<T: DivInt>(a: T, b: T) -> T {
    a.rem_int(b)
}

fn lut_index(bps: &[f64], n: usize, x: f64) -> usize {
    let mut i = 0;
    for j in 1..n.saturating_sub(1) {
        if bps[j] <= x {
            i = j;
        }
    }
    i
}

fn lookup1d(bps: &[f64], tab: &[f64], n: usize, method: usize, x: f64) -> f64 {
    if x <= bps[0] {
        return tab[0];
    }
    if x >= bps[n - 1] {
        return tab[n - 1];
    }
    let i = lut_index(bps, n, x);
    if method == 2 {
        return tab[i];
    }
    if method == 1 {
        if i + 1 < n && (x - bps[i]) > (bps[i + 1] - x) {
            return tab[i + 1];
        }
        return tab[i];
    }
    let t = (x - bps[i]) / (bps[i + 1] - bps[i]);
    tab[i] + t * (tab[i + 1] - tab[i])
}

fn lut_pick(bps: &[f64], n: usize, method: usize, x: f64) -> usize {
    if x <= bps[0] {
        return 0;
    }
    if x >= bps[n - 1] {
        return n - 1;
    }
    let i = lut_index(bps, n, x);
    if method == 1 && i + 1 < n && (x - bps[i]) > (bps[i + 1] - x) {
        return i + 1;
    }
    i
}

fn clampf(v: f64, lo: f64, hi: f64) -> f64 {
    if v < lo { lo } else if v > hi { hi } else { v }
}

#[allow(clippy::too_many_arguments)]
fn lookup2d(rb: &[f64], nr: usize, cb: &[f64], nc: usize, tab: &[f64], method: usize, r: f64, c: f64) -> f64 {
    if method == 0 {
        let ri = lut_index(rb, nr, clampf(r, rb[0], rb[nr - 1]));
        let ci = lut_index(cb, nc, clampf(c, cb[0], cb[nc - 1]));
        let ri1 = if ri + 1 < nr { ri + 1 } else { nr - 1 };
        let ci1 = if ci + 1 < nc { ci + 1 } else { nc - 1 };
        let tr = if ri1 == ri { 0.0 } else { clampf((r - rb[ri]) / (rb[ri1] - rb[ri]), 0.0, 1.0) };
        let tc = if ci1 == ci { 0.0 } else { clampf((c - cb[ci]) / (cb[ci1] - cb[ci]), 0.0, 1.0) };
        let top = tab[ri * nc + ci] + tc * (tab[ri * nc + ci1] - tab[ri * nc + ci]);
        let bot = tab[ri1 * nc + ci] + tc * (tab[ri1 * nc + ci1] - tab[ri1 * nc + ci]);
        return top + tr * (bot - top);
    }
    tab[lut_pick(rb, nr, method, r) * nc + lut_pick(cb, nc, method, c)]
}

// ---- test-case import ------------------------------------------------------

fn dtype_code(m: &str) -> i32 {
    ["b8", "i8", "i16", "i32", "i64", "u8", "u16", "u32", "u64", "f32", "f64"]
        .iter()
        .position(|n| *n == m)
        .map(|p| p as i32)
        .unwrap_or(-1)
}

fn cell_bits(s: &str, hdr: i32, want: &str) -> u64 {
    let mut d = 0.0f64;
    let mut sll: i64 = 0;
    let mut ull: u64 = 0;
    let mut isf = false;
    let mut isu = false;
    match hdr {
        9 => {
            d = s.trim().parse::<f32>().unwrap_or(0.0) as f64;
            isf = true;
        }
        10 => {
            d = s.trim().parse::<f64>().unwrap_or(0.0);
            isf = true;
        }
        8 => {
            if s.trim().starts_with('-') {
                sll = s.trim().parse().unwrap_or(0);
            } else {
                ull = s.trim().parse().unwrap_or(0);
                isu = true;
            }
        }
        0 => {
            sll = i64::from(s.trim() == "true" || s.trim() == "1");
        }
        _ => {
            if s.contains('.') || s.contains('e') || s.contains('E') {
                d = s.trim().parse().unwrap_or(0.0);
                isf = true;
            } else {
                sll = s.trim().parse().unwrap_or(0);
            }
        }
    }
    macro_rules! as_int {
        ($t:ty, $u:ty) => {
            if isf { (d as $t) as $u as u64 } else if isu { (ull as $t) as $u as u64 } else { (sll as $t) as $u as u64 }
        };
    }
    match want {
        "b8" => u64::from(if isf { d != 0.0 } else if isu { ull != 0 } else { sll != 0 }),
        "i8" => as_int!(i8, u8),
        "i16" => as_int!(i16, u16),
        "i32" => as_int!(i32, u32),
        "i64" => as_int!(i64, u64),
        "u8" => as_int!(u8, u8),
        "u16" => as_int!(u16, u16),
        "u32" => as_int!(u32, u32),
        "u64" => as_int!(u64, u64),
        "f32" => {
            let v = if isf { d as f32 } else if isu { ull as f32 } else { sll as f32 };
            v.to_bits() as u64
        }
        _ => {
            let v = if isf { d } else if isu { ull as f64 } else { sll as f64 };
            v.to_bits()
        }
    }
}

fn load_tests(path: Option<&str>, want: &[&str]) -> Vec<Vec<u64>> {
    let mut cols: Vec<Vec<u64>> = vec![Vec::new(); want.len()];
    let Some(path) = path else { return cols };
    let Ok(text) = std::fs::read_to_string(path) else { return cols };
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let Some(header) = lines.next() else { return cols };
    let hdr: Vec<i32> = header
        .split(',')
        .map(|cell| cell.trim().split_once(':').map(|(_, d)| dtype_code(d)).unwrap_or(10))
        .collect();
    for line in lines {
        for (c, cell) in line.split(',').enumerate() {
            if c < cols.len() {
                let h = hdr.get(c).copied().unwrap_or(10);
                cols[c].push(cell_bits(cell, h, want[c]));
            }
        }
    }
    cols
}

fn take_test(tc: &[Vec<u64>], col: usize, step: u64) -> u64 {
    match tc.get(col) {
        Some(c) if !c.is_empty() => c[(step % c.len() as u64) as usize],
        _ => 0,
    }
}
"#;
