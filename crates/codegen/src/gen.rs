//! Actor translation and simulation-oriented instrumentation.
//!
//! This module implements the paper's Algorithm 1 over the C backend:
//! every actor in execution order is translated from its code template
//! (`genCodeFromTemp`), then instrumented with actor/condition/decision/
//! MC/DC coverage, signal-collection calls (`outputCollect`, Figure 3),
//! and calls to dynamically generated per-actor diagnostic functions
//! (`diagnose_<path>`, Figure 4).

use crate::cwriter::CodeBuf;
use crate::options::{ActorList, CodegenOptions};
use accmos_analyze::{BranchSpec, GroupActivity, ModelAnalysis};
use accmos_graph::{FlatActor, PreprocessedModel, SignalId};
use accmos_ir::{
    applicable_diagnoses, ActorKind, BitOp, DataType, DiagnosticKind, LogicOp, LookupMethod,
    MathOp, MinMaxOp, RoundOp, Scalar, ShiftDir, SwitchCriteria, TrigOp,
};

/// One (actor, diagnostic kind) reporting site in the generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagSite {
    /// Path key of the diagnosed actor.
    pub actor: String,
    /// The error category.
    pub kind: DiagnosticKind,
}

/// Emission context shared across the program.
pub(crate) struct EmitCtx<'a> {
    pub pre: &'a PreprocessedModel,
    pub opts: &'a CodegenOptions,
    pub diag_sites: Vec<DiagSite>,
    /// `(actor index, site)` pairs for integrator end-of-step overflow
    /// checks, consumed by the synthesis of `Model_Update`.
    pub update_sites: Vec<(usize, usize)>,
    /// Interval analysis consulted for proven-safe pruning (present when
    /// `opts.instrument && opts.prune_proven_safe`).
    pub analysis: Option<ModelAnalysis>,
    /// Diagnosis checks dropped because the analysis proved them dead.
    pub pruned_sites: usize,
    /// Actors whose calculation body was replaced by literal stores
    /// because the analysis pinned every output to one constant.
    pub folded_actors: usize,
    /// Actors elided entirely (guard included) because the analysis
    /// proved them dead (never-active group).
    pub elided_actors: usize,
    /// Branchy templates (`Switch`/`MultiportSwitch`/`Saturation`)
    /// emitted with only their proven-taken arm.
    pub specialized_arms: usize,
    /// Wall-clock time the interval analysis took (zero when pruning is
    /// off); reported as its own telemetry phase.
    pub analyze_time: std::time::Duration,
}

impl<'a> EmitCtx<'a> {
    pub fn new(pre: &'a PreprocessedModel, opts: &'a CodegenOptions) -> EmitCtx<'a> {
        let analyze_start = std::time::Instant::now();
        let analysis =
            (opts.instrument && opts.prune_proven_safe).then(|| accmos_analyze::analyze(pre));
        let analyze_time =
            if analysis.is_some() { analyze_start.elapsed() } else { Default::default() };
        EmitCtx {
            pre,
            opts,
            diag_sites: Vec::new(),
            update_sites: Vec::new(),
            analysis,
            pruned_sites: 0,
            folded_actors: 0,
            elided_actors: 0,
            specialized_arms: 0,
            analyze_time,
        }
    }

    /// The analysis, but only when specialization verdicts may be
    /// consumed: `prune_proven_safe` owns the analysis run; `specialize`
    /// additionally licenses folding, elision and arm specialization.
    pub(crate) fn spec(&self) -> Option<&ModelAnalysis> {
        if self.opts.specialize { self.analysis.as_ref() } else { None }
    }

    fn sig_name(&self, id: SignalId) -> &str {
        &self.pre.flat.signal(id).name
    }

    fn add_site(&mut self, actor: &str, kind: DiagnosticKind) -> usize {
        self.diag_sites.push(DiagSite { actor: actor.to_owned(), kind });
        self.diag_sites.len() - 1
    }

    fn cov_on(&self) -> bool {
        self.opts.instrument && self.opts.coverage
    }
}

/// C literal for an `f64` parameter.
pub(crate) fn f64_lit(v: f64) -> String {
    Scalar::F64(v).c_literal()
}

/// A cast between signal types with the shared conversion semantics.
pub(crate) fn cast_expr(expr: &str, from: DataType, to: DataType) -> String {
    if from == to {
        return expr.to_owned();
    }
    if to == DataType::Bool {
        return format!("(uint8_t)(({expr}) != 0)");
    }
    if from.is_float() && to.is_integer() {
        return format!("accmos_f64_to_{}((double)({expr}))", to.mnemonic());
    }
    format!("({})({expr})", to.c_name())
}

/// Cast an already-`double` expression into `to`.
pub(crate) fn cast_f64_expr(expr: &str, to: DataType) -> String {
    match to {
        DataType::F64 => expr.to_owned(),
        DataType::F32 => format!("(float)({expr})"),
        DataType::Bool => format!("(uint8_t)(({expr}) != 0.0)"),
        t => format!("accmos_f64_to_{}({expr})", t.mnemonic()),
    }
}

/// Decode a `takeTestCase` bits word into a typed C value.
pub(crate) fn decode_bits(bits: &str, dt: DataType) -> String {
    match dt {
        DataType::F64 => format!("accmos_f64_from_bits({bits})"),
        DataType::F32 => format!("accmos_f32_from_bits({bits})"),
        DataType::Bool => format!("(uint8_t)(({bits}) != 0)"),
        t => {
            let ut = unsigned_of(t);
            format!("({})(({ut})({bits}))", t.c_name())
        }
    }
}

/// Reference to element `idx` of a (possibly scalar) stored variable.
fn elem_of(name: &str, width: usize, idx: &str) -> String {
    if width == 1 {
        name.to_owned()
    } else {
        format!("{name}[{idx}]")
    }
}

struct ActorRefs<'c, 'a> {
    ctx: &'c EmitCtx<'a>,
    actor: &'c FlatActor,
}

impl ActorRefs<'_, '_> {
    /// Raw (uncast) element expression of input `port`.
    fn in_raw(&self, port: usize, idx: &str) -> String {
        let sig = self.ctx.pre.flat.signal(self.actor.inputs[port]);
        elem_of(&sig.name, sig.width, idx)
    }

    /// Input element cast to the actor's output type.
    fn in_cast(&self, port: usize, idx: &str) -> String {
        let sig = self.ctx.pre.flat.signal(self.actor.inputs[port]);
        cast_expr(&self.in_raw(port, idx), sig.dtype, self.actor.dtype)
    }

    /// Input dtype.
    fn in_dtype(&self, port: usize) -> DataType {
        self.ctx.pre.flat.signal(self.actor.inputs[port]).dtype
    }

    /// Input width.
    fn in_width(&self, port: usize) -> usize {
        self.ctx.pre.flat.signal(self.actor.inputs[port]).width
    }

    /// Output element reference of port 0.
    fn out(&self, idx: &str) -> String {
        let sig = self.ctx.pre.flat.signal(self.actor.outputs[0]);
        elem_of(&sig.name, sig.width, idx)
    }

    /// Output variable name of port `p`.
    fn out_name(&self, p: usize) -> &str {
        self.ctx.sig_name(self.actor.outputs[p])
    }
}

/// Emit `body(idx)` once for scalars or inside an element loop for vectors.
fn for_elems(w: &mut CodeBuf, width: usize, body: impl FnOnce(&mut CodeBuf, &str)) {
    if width == 1 {
        body(w, "0");
    } else {
        w.open(format!("for (int e = 0; e < {width}; e++) {{"));
        body(w, "e");
        w.close("}");
    }
}

/// The C state-variable declarations of one actor, if it is stateful.
pub(crate) fn state_decls(ctx: &EmitCtx<'_>, actor: &FlatActor) -> Vec<String> {
    use ActorKind::*;
    let key = actor.path.key();
    let t = actor.dtype.c_name();
    let w = actor.width;
    let arr = |n: usize| if n == 1 { String::new() } else { format!("[{n}]") };
    let init_list = |s: Scalar, n: usize| -> String {
        let lit = s.cast(actor.dtype).c_literal();
        if n == 1 {
            lit
        } else {
            let items = vec![lit; n].join(", ");
            format!("{{ {items} }}")
        }
    };
    let _ = ctx;
    match &actor.kind {
        UnitDelay { init } | Memory { init } => {
            vec![format!("static {t} {key}_state{} = {};", arr(w), init_list(*init, w))]
        }
        Delay { steps, init } => {
            let total = steps * w;
            let items = vec![init.cast(actor.dtype).c_literal(); total].join(", ");
            vec![
                format!("static {t} {key}_buf[{total}] = {{ {items} }};"),
                format!("static int {key}_pos = 0;"),
            ]
        }
        DiscreteIntegrator { init, .. } => {
            vec![format!("static {t} {key}_acc{} = {};", arr(w), init_list(*init, w))]
        }
        DiscreteDerivative | RateLimiter { .. } => {
            vec![format!("static {t} {key}_prev{};", arr(w))]
        }
        ZeroOrderHold { .. } => vec![format!("static {t} {key}_held{};", arr(w))],
        Relay { .. } => vec![format!("static uint8_t {key}_on = 0;")],
        EdgeDetector { .. } => vec![format!("static uint8_t {key}_prev = 0;")],
        Counter { .. } => vec![format!("static uint64_t {key}_cnt = 0;")],
        RandomNumber { seed } => vec![format!("static uint64_t {key}_rng = {seed}ULL;")],
        Lookup1D { breakpoints, table, .. } => {
            vec![
                const_f64_array(&format!("{key}_bps"), breakpoints),
                const_f64_array(&format!("{key}_tab"), table),
            ]
        }
        Lookup2D { row_bps, col_bps, table, .. } => {
            vec![
                const_f64_array(&format!("{key}_rbps"), row_bps),
                const_f64_array(&format!("{key}_cbps"), col_bps),
                const_f64_array(&format!("{key}_tab"), table),
            ]
        }
        Polynomial { coeffs } => vec![const_f64_array(&format!("{key}_coef"), coeffs)],
        Selector { indices, dynamic: false } => {
            let items = indices.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
            vec![format!("static const int {key}_idx[{}] = {{ {items} }};", indices.len())]
        }
        _ => Vec::new(),
    }
}

/// Lane-mode variant of [`state_decls`]: every *mutable* state variable
/// becomes a structure-of-arrays with one copy per lane plus a `#define`
/// routing the scalar name through the current-lane index, so the actor
/// templates (and the diagnostic functions referencing state) compile
/// unchanged. Read-only tables (lookup breakpoints, polynomial
/// coefficients, selector indices) stay shared.
pub(crate) fn state_decls_lanes(ctx: &EmitCtx<'_>, actor: &FlatActor) -> Vec<String> {
    use ActorKind::*;
    let key = actor.path.key();
    let t = actor.dtype.c_name();
    let w = actor.width;
    let arr = |n: usize| if n == 1 { String::new() } else { format!("[{n}]") };
    let lanes = ctx.opts.effective_lanes();
    let per_lane = |inner: &str| -> String {
        let items = vec![inner.to_owned(); lanes].join(", ");
        format!("{{ {items} }}")
    };
    let init_list = |s: Scalar, n: usize| -> String {
        let lit = s.cast(actor.dtype).c_literal();
        if n == 1 {
            lit
        } else {
            let items = vec![lit; n].join(", ");
            format!("{{ {items} }}")
        }
    };
    let lane_var = |ty: &str, name: String, elems: String, init: Option<String>| -> Vec<String> {
        let init_txt = init.map(|i| format!(" = {i}")).unwrap_or_default();
        vec![
            format!("static {ty} {name}_L[ACCMOS_LANES]{elems}{init_txt};"),
            format!("#define {name} {name}_L[accmos_lane]"),
        ]
    };
    match &actor.kind {
        UnitDelay { init } | Memory { init } => lane_var(
            t,
            format!("{key}_state"),
            arr(w),
            Some(per_lane(&init_list(*init, w))),
        ),
        Delay { steps, init } => {
            let total = steps * w;
            let items = vec![init.cast(actor.dtype).c_literal(); total].join(", ");
            let mut out = lane_var(
                t,
                format!("{key}_buf"),
                format!("[{total}]"),
                Some(per_lane(&format!("{{ {items} }}"))),
            );
            out.extend(lane_var("int", format!("{key}_pos"), String::new(), None));
            out
        }
        DiscreteIntegrator { init, .. } => lane_var(
            t,
            format!("{key}_acc"),
            arr(w),
            Some(per_lane(&init_list(*init, w))),
        ),
        DiscreteDerivative | RateLimiter { .. } => {
            lane_var(t, format!("{key}_prev"), arr(w), None)
        }
        ZeroOrderHold { .. } => lane_var(t, format!("{key}_held"), arr(w), None),
        Relay { .. } => lane_var("uint8_t", format!("{key}_on"), String::new(), None),
        EdgeDetector { .. } => lane_var("uint8_t", format!("{key}_prev"), String::new(), None),
        Counter { .. } => lane_var("uint64_t", format!("{key}_cnt"), String::new(), None),
        RandomNumber { seed } => lane_var(
            "uint64_t",
            format!("{key}_rng"),
            String::new(),
            Some(per_lane(&format!("{seed}ULL"))),
        ),
        // Read-only tables: shared across lanes.
        _ => state_decls(ctx, actor),
    }
}

fn const_f64_array(name: &str, values: &[f64]) -> String {
    let items = values.iter().map(|v| f64_lit(*v)).collect::<Vec<_>>().join(", ");
    format!("static const double {name}[{}] = {{ {items} }};", values.len())
}

/// Whether the actor is on the diagnose list with a non-empty diagnosis set.
pub(crate) fn diagnosis_plan(
    ctx: &EmitCtx<'_>,
    actor: &FlatActor,
) -> Vec<DiagnosticKind> {
    if !ctx.opts.instrument {
        return Vec::new();
    }
    let default_member = actor.kind.is_calculation();
    if !ctx.opts.diagnose.contains(&actor.path.key(), default_member) {
        return Vec::new();
    }
    let ins = ctx.pre.flat.input_dtypes(actor);
    applicable_diagnoses(&actor.kind, &ins, actor.dtype)
        .into_iter()
        .filter(|k| ctx.opts.policy.enabled(*k))
        .collect()
}

/// [`diagnosis_plan`] minus the checks the interval analysis proves can
/// never fire; dropped checks are tallied in [`EmitCtx::pruned_sites`].
pub(crate) fn pruned_diagnosis_plan(
    ctx: &mut EmitCtx<'_>,
    actor: &FlatActor,
) -> Vec<DiagnosticKind> {
    let full = diagnosis_plan(ctx, actor);
    let Some(analysis) = ctx.analysis.as_ref() else {
        return full;
    };
    let keep: Vec<DiagnosticKind> = full
        .iter()
        .copied()
        .filter(|k| !analysis.proves_never_fires(actor.id, *k))
        .collect();
    ctx.pruned_sites += full.len() - keep.len();
    keep
}

/// Whether the actor's output is collected (the `collectList`).
pub(crate) fn on_collect_list(opts: &CodegenOptions, actor: &FlatActor) -> bool {
    if !opts.instrument {
        return false;
    }
    let default_member = actor.monitor || actor.kind.is_monitor_sink();
    matches!(opts.collect, ActorList::Default | ActorList::AlsoKeys(_) | ActorList::OnlyKeys(_))
        && opts.collect.contains(&actor.path.key(), default_member)
}

/// Result of emitting one actor: the in-line code plus the definition of
/// its diagnostic function (Algorithm 1 line 15, `genDiagnoseImpl`).
///
/// In lane mode the body is emitted *without* a lane loop; the synthesis
/// layer groups consecutive actors into shared lane-loop segments (see
/// `Model_Exe` emission), using `fused` to carve out runs it can present
/// to the compiler as pure vectorizable loops and `cov_hoist` for the
/// per-step coverage writes those runs hoist in front of the loop.
pub(crate) struct EmittedActor {
    pub code: String,
    pub diag_code: String,
    /// The actor's path key — names its profiling site and the per-actor
    /// `ACCMOS:PROF` records.
    pub key: String,
    /// Analyzer-elided actor (comment-only body): carries no profiling
    /// site — there is nothing to time.
    pub elided: bool,
    /// Lane mode only: the body is branch-free with no instrumentation
    /// left inside, so it may join a fused (auto-vectorizable) segment.
    pub fused: bool,
    /// Lane mode only: coverage writes to emit once per step in front of
    /// whichever segment loop the body lands in — the actor bit plus any
    /// specialized constant branch bits. Setting an already-set bit is
    /// idempotent, so once per step is OR-identical to once per lane.
    /// Only populated for `fused` actors (they are never conditionally
    /// executed, so the hoisted writes are unconditional too).
    pub cov_hoist: Vec<String>,
}

/// Whether the actor's code template is straight-line arithmetic: no
/// data-dependent control flow and no coverage writes inside the template
/// body. Such actors are candidates for the *fused* lane loop (shared
/// instrumentation hoisted out, pure indexed inner loop the C compiler
/// can auto-vectorize). This is a conservative static property of the
/// template library; correctness never depends on it — non-members simply
/// take the scalar per-lane fallback loop.
pub(crate) fn branch_free_template(kind: &ActorKind) -> bool {
    use ActorKind::*;
    matches!(
        kind,
        Inport { .. }
            | Constant { .. }
            | Ground
            | Clock
            | Sum { .. }
            | Product { .. }
            | Gain { .. }
            | Bias { .. }
            | Abs
            | Sign
            | Sqrt
            | DataTypeConversion { .. }
            | Mux { .. }
            | Demux { .. }
            | DotProduct
            | SumOfElements
            | ProductOfElements
            | Bitwise { .. }
            | Shift { .. }
            | Outport { .. }
    )
}

/// Whether `actor` is lane-safe for the fused loop shape: a semantically
/// branch-free body with *no* remaining instrumentation inside the lane
/// loop. The diagnosis plan must be empty — which is where the interval
/// analysis comes in: checks it proves dead are pruned, turning e.g. a
/// `Sum` with a proven-unreachable overflow check into a fusable actor.
///
/// With specialization on, the analyzer's *semantic* lane-safety proof
/// replaces the syntactic [`branch_free_template`] allowlist: stateful
/// but lane-uniform templates (delays, integrators, sine sources, …)
/// fuse, and branchy templates fuse once their proven arm is the only
/// one emitted. Conditional-group members fuse when the group is proven
/// always active (the guard is specialized away). `DiscreteDerivative`
/// is excluded structurally: its previous-input state update is emitted
/// after the diagnosis call, outside the fused body shape.
fn lane_fusable(
    ctx: &EmitCtx<'_>,
    actor: &FlatActor,
    plan: &[DiagnosticKind],
    has_custom: bool,
) -> bool {
    if !plan.is_empty()
        || has_custom
        || on_collect_list(ctx.opts, actor)
        || matches!(actor.kind, ActorKind::DiscreteDerivative)
    {
        return false;
    }
    match ctx.spec() {
        Some(analysis) => {
            let group_ok = match actor.group {
                None => true,
                Some(g) => analysis.group_activity(g) == GroupActivity::Always,
            };
            group_ok && analysis.lane_safe(actor.id)
        }
        None => actor.group.is_none() && branch_free_template(&actor.kind),
    }
}

/// Algorithm 1, per actor: template code + coverage + collection +
/// diagnosis instrumentation. In lane mode the body is emitted bare (no
/// lane loop — the synthesis layer wraps whole segments of the schedule
/// in one loop so signals stay register-allocated across actors); fused
/// actors additionally hand their coverage write back for hoisting.
pub(crate) fn emit_actor(ctx: &mut EmitCtx<'_>, actor: &FlatActor) -> EmittedActor {
    let lanes = ctx.opts.effective_lanes();
    // Checks the interval analysis proves dead are dropped up front.
    let plan = pruned_diagnosis_plan(ctx, actor);
    let has_custom = ctx
        .opts
        .custom
        .iter()
        .any(|p| p.actor == actor.path.key() && !actor.outputs.is_empty());

    // Analyzer-directed dead-path elision: a proven-dead actor sits in a
    // never-active group, so its guarded body never runs — outputs stay
    // zero-initialized, coverage bits stay clear (each carries an
    // `ACCMOS:UNSAT` proof), and its diagnosis plan is already empty via
    // `proves_never_fires`. Dropping guard and body is observationally
    // identical to the unoptimized build.
    if ctx.spec().is_some_and(|a| !a.is_live(actor.id)) {
        ctx.elided_actors += 1;
        let mut w = CodeBuf::new();
        w.comment(format!(
            "{} type actor \"{}\" — elided: never-active group",
            actor.kind.type_name(),
            actor.path
        ));
        return EmittedActor {
            code: w.finish(),
            diag_code: String::new(),
            key: actor.path.key(),
            elided: true,
            fused: lanes > 1,
            cov_hoist: Vec::new(),
        };
    }

    let fold = ctx
        .spec()
        .and_then(|a| a.constant_fold(actor.id))
        .map(<[f64]>::to_vec);
    if fold.is_some() {
        ctx.folded_actors += 1;
    }
    if ctx.spec().is_some_and(|a| a.branch_spec(actor.id).is_some()) {
        ctx.specialized_arms += 1;
    }
    let fused = lanes > 1 && lane_fusable(ctx, actor, &plan, has_custom);

    let mut w = CodeBuf::new();
    w.comment(format!(
        "{} type actor \"{}\"",
        actor.kind.type_name(),
        actor.path
    ));

    let mut cov_hoist = Vec::new();
    if fused {
        w.open("{");
        emit_body(ctx, actor, fold.as_deref(), &mut w, Some(&mut cov_hoist));
        w.close("}");
        if ctx.cov_on() {
            cov_hoist.push(format!(
                "ACCMOS_COV(accmos_cov_actor, {}); /* actorBitmap */",
                ctx.pre.coverage.actor_point[actor.id.0]
            ));
        }
        return EmittedActor {
            code: w.finish(),
            diag_code: String::new(),
            key: actor.path.key(),
            elided: false,
            fused,
            cov_hoist,
        };
    }

    match actor.group {
        Some(g) => w.open(format!("if (g{}_active()) {{", g.0)),
        None => w.open("{"),
    };

    emit_body(ctx, actor, fold.as_deref(), &mut w, None);

    // Actor coverage: "we add coverage statistics code at the end of each
    // actor, for example, actorBitmap[actorID]=1".
    if ctx.cov_on() {
        w.line(format!(
            "ACCMOS_COV(accmos_cov_actor, {}); /* actorBitmap */",
            ctx.pre.coverage.actor_point[actor.id.0]
        ));
    }

    // Signal collection (Figure 3 / Figure 5 line 6).
    if on_collect_list(ctx.opts, actor) {
        emit_collect(ctx, actor, &mut w);
    }

    // Diagnosis call + dynamically generated implementation (Figure 4).
    let mut diag_code = String::new();
    if !plan.is_empty() {
        let (call, def) = emit_diagnosis(ctx, actor, &plan);
        w.line(call);
        diag_code = def;
    }

    // Custom signal diagnosis hooks.
    for (site, probe) in ctx.opts.custom.iter().enumerate() {
        if probe.actor == actor.path.key() && !actor.outputs.is_empty() {
            let refs = ActorRefs { ctx, actor };
            w.open("{");
            w.line(format!(
                "{} value = {};",
                actor.dtype.c_name(),
                refs.out("0")
            ));
            w.line(format!("if ({}) accmos_custom_hit({site});", probe.condition_c));
            w.close("}");
        }
    }

    // DiscreteDerivative updates its previous-input state only after the
    // diagnostic call has observed the old value.
    if matches!(actor.kind, ActorKind::DiscreteDerivative) {
        let refs = ActorRefs { ctx, actor };
        let key = actor.path.key();
        for_elems(&mut w, actor.width, |w, idx| {
            let prev = elem_of(&format!("{key}_prev"), actor.width, idx);
            w.line(format!("{prev} = {};", refs.in_cast(0, idx)));
        });
    }
    w.close("}");
    EmittedActor {
        code: w.finish(),
        diag_code,
        key: actor.path.key(),
        elided: false,
        fused,
        cov_hoist,
    }
}

fn emit_collect(ctx: &EmitCtx<'_>, actor: &FlatActor, w: &mut CodeBuf) {
    let flat = &ctx.pre.flat;
    if actor.monitor {
        for sig_id in &actor.outputs {
            let sig = flat.signal(*sig_id);
            w.line(format!(
                "outputCollect(\"{}\", (const void*)&{}, \"{}\", {});",
                sig.name,
                if sig.width == 1 { sig.name.clone() } else { format!("{}[0]", sig.name) },
                sig.dtype.mnemonic(),
                sig.width
            ));
        }
    }
    if actor.kind.is_monitor_sink() && !actor.inputs.is_empty() {
        let sig = flat.signal(actor.inputs[0]);
        w.line(format!(
            "outputCollect(\"{}_in\", (const void*)&{}, \"{}\", {});",
            actor.path.key(),
            if sig.width == 1 { sig.name.clone() } else { format!("{}[0]", sig.name) },
            sig.dtype.mnemonic(),
            sig.width
        ));
    }
}

// ---------------------------------------------------------------------------
// calculation templates (genCodeFromTemp)
// ---------------------------------------------------------------------------

/// The actor's calculation body: literal stores when the analysis folded
/// it, the code template otherwise.
fn emit_body(
    ctx: &EmitCtx<'_>,
    actor: &FlatActor,
    fold: Option<&[f64]>,
    w: &mut CodeBuf,
    hoist: Option<&mut Vec<String>>,
) {
    match fold {
        Some(values) => emit_fold(ctx, actor, values, w),
        None => emit_calculation(ctx, actor, w, hoist),
    }
}

/// Literal stores for a proven-constant actor: the analysis pinned every
/// output signal to one value, and the template is pure (no coverage
/// writes, state advance, or side effects — `fold_eligible` in the
/// analyzer), so the stores are observationally identical to running the
/// template. The value is re-cast through the signal's own type, which
/// round-trips exactly: it *is* the post-cast value the abstract
/// transfer function computed.
fn emit_fold(ctx: &EmitCtx<'_>, actor: &FlatActor, values: &[f64], w: &mut CodeBuf) {
    w.comment("folded: analysis pins every output to a constant");
    for (p, v) in values.iter().enumerate() {
        let sig = ctx.pre.flat.signal(actor.outputs[p]);
        let lit = Scalar::F64(*v).cast(sig.dtype).c_literal();
        for e in 0..sig.width {
            let target = elem_of(&sig.name, sig.width, &e.to_string());
            w.line(format!("{target} = {lit};"));
        }
    }
}

/// Emit `line` into the hoist buffer when one is given (fused lane mode:
/// the write runs once per step in front of the segment loop, which is
/// OR-identical to once per lane), inline otherwise.
fn emit_or_hoist(w: &mut CodeBuf, hoist: &mut Option<&mut Vec<String>>, line: String) {
    match hoist.as_deref_mut() {
        Some(h) => h.push(line),
        None => {
            w.line(line);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn emit_calculation(
    ctx: &EmitCtx<'_>,
    actor: &FlatActor,
    w: &mut CodeBuf,
    mut hoist: Option<&mut Vec<String>>,
) {
    use ActorKind::*;
    let key = actor.path.key();
    let dt = actor.dtype;
    let t = dt.c_name();
    let width = actor.width;
    let refs = ActorRefs { ctx, actor };
    let cov = ctx.cov_on();
    let cond_base = ctx.pre.coverage.condition[actor.id.0].map(|(b, _)| b);
    let dec_base = ctx.pre.coverage.decision[actor.id.0];
    let cov_branch = |w: &mut CodeBuf, branch: String| {
        if cov {
            if let Some(base) = cond_base {
                w.line(format!("ACCMOS_COV(accmos_cov_cond, {base} + ({branch}));"));
            }
        }
    };
    let cov_decision = |w: &mut CodeBuf, expr: &str| {
        if cov {
            if let Some(base) = dec_base {
                w.line(format!("ACCMOS_COV(accmos_cov_dec, {base} + (({expr}) ? 0 : 1));"));
            }
        }
    };

    match &actor.kind {
        // ---- sources -----------------------------------------------------
        Inport { .. } => {
            if actor.inputs.is_empty() {
                // Root input: Figure 5's takeTestCase().
                let col = ctx
                    .pre
                    .flat
                    .root_inports
                    .iter()
                    .position(|id| *id == actor.id)
                    .expect("root inport listed");
                let bits = format!("takeTestCase({col})");
                let decoded = decode_bits(&bits, dt);
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {decoded};", refs.out(idx)));
                });
            } else {
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", refs.out(idx), refs.in_cast(0, idx)));
                });
            }
        }
        Constant { value } => {
            for (e, s) in value.elems().iter().enumerate() {
                let target = elem_of(refs.out_name(0), width, &e.to_string());
                w.line(format!("{target} = {};", s.c_literal()));
            }
        }
        Step { time, before, after } => {
            let b = before.cast(dt).c_literal();
            let a = after.cast(dt).c_literal();
            for_elems(w, width, |w, idx| {
                w.line(format!(
                    "{} = (accmos_step >= {time}ULL) ? {a} : {b};",
                    refs.out(idx)
                ));
            });
        }
        Ramp { slope, start, initial } => {
            let expr = format!(
                "(accmos_step < {start}ULL) ? {} : ({} + {} * (double)(accmos_step - {start}ULL))",
                f64_lit(*initial),
                f64_lit(*initial),
                f64_lit(*slope)
            );
            let val = cast_f64_expr(&format!("({expr})"), dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", refs.out(idx)));
            });
        }
        SineWave { amplitude, freq, phase, bias } => {
            let expr = format!(
                "{} * sin({} * (double)accmos_step + {}) + {}",
                f64_lit(*amplitude),
                f64_lit(*freq),
                f64_lit(*phase),
                f64_lit(*bias)
            );
            let val = cast_f64_expr(&format!("({expr})"), dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", refs.out(idx)));
            });
        }
        PulseGenerator { period, duty, amplitude } => {
            let amp = amplitude.cast(dt).c_literal();
            let zero = Scalar::zero(dt).c_literal();
            for_elems(w, width, |w, idx| {
                w.line(format!(
                    "{} = (accmos_step % {period}ULL < {duty}ULL) ? {amp} : {zero};",
                    refs.out(idx)
                ));
            });
        }
        Clock => {
            let val = cast_expr("accmos_step", DataType::U64, dt);
            // i128 wrap from the step counter == wrap-cast from u64.
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", refs.out(idx)));
            });
        }
        Counter { limit } => {
            let val = cast_expr(&format!("{key}_cnt"), DataType::U64, dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", refs.out(idx)));
            });
            w.line(format!(
                "{key}_cnt = ({key}_cnt >= {limit}ULL) ? 0 : {key}_cnt + 1;"
            ));
        }
        RandomNumber { .. } => {
            w.open("{");
            w.line(format!("uint64_t rw = accmos_rng_next(&{key}_rng);"));
            let val = if dt.is_float() {
                cast_f64_expr("accmos_rng_unit(rw)", dt)
            } else {
                cast_expr("(rw >> 32)", DataType::U64, dt)
            };
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", refs.out(idx)));
            });
            w.close("}");
        }
        Ground => {
            let zero = Scalar::zero(dt).c_literal();
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {zero};", refs.out(idx)));
            });
        }

        // ---- math ----------------------------------------------------------
        Sum { signs } => {
            for_elems(w, width, |w, idx| {
                let mut expr = format!("({t})0");
                for (i, sign) in signs.chars().enumerate() {
                    let inp = refs.in_cast(i, idx);
                    expr = format!("({t})({expr} {sign} {inp})");
                }
                w.line(format!("{} = {expr};", refs.out(idx)));
            });
        }
        Product { ops } => {
            for_elems(w, width, |w, idx| {
                let mut expr = format!("({t})1");
                for (i, op) in ops.chars().enumerate() {
                    let inp = refs.in_cast(i, idx);
                    expr = if op == '*' {
                        format!("({t})({expr} * {inp})")
                    } else {
                        emit_div(dt, &expr, &inp)
                    };
                }
                w.line(format!("{} = {expr};", refs.out(idx)));
            });
        }
        Gain { gain } => {
            let g = gain.cast(dt).c_literal();
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = ({t})({} * {g});", refs.out(idx), refs.in_cast(0, idx)));
            });
        }
        Bias { bias } => {
            let b = bias.cast(dt).c_literal();
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = ({t})({} + {b});", refs.out(idx), refs.in_cast(0, idx)));
            });
        }
        Abs => {
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                let expr = if dt.is_float() {
                    let f = if dt == DataType::F32 { "fabsf" } else { "fabs" };
                    format!("{f}({x})")
                } else if dt.is_signed() {
                    format!("({x} < 0) ? ({t})(0 - {x}) : ({t})({x})")
                } else {
                    x.clone()
                };
                w.line(format!("{} = {expr};", refs.out(idx)));
            });
        }
        Sign => {
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                w.line(format!(
                    "{} = ({t})(((double)({x}) > 0.0) - ((double)({x}) < 0.0));",
                    refs.out(idx)
                ));
            });
        }
        Sqrt => {
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                let val = cast_f64_expr(&format!("sqrt((double)({x}))"), dt);
                w.line(format!("{} = {val};", refs.out(idx)));
            });
        }
        Math { op } => emit_math(ctx, actor, *op, w),
        Trig { op } => {
            for_elems(w, width, |w, idx| {
                let expr = if *op == TrigOp::Atan2 {
                    format!(
                        "atan2((double)({}), (double)({}))",
                        refs.in_cast(0, idx),
                        refs.in_cast(1, idx)
                    )
                } else {
                    format!("{}((double)({}))", op.name(), refs.in_cast(0, idx))
                };
                w.line(format!("{} = {};", refs.out(idx), cast_f64_expr(&expr, dt)));
            });
        }
        MinMax { op, inputs } => {
            let cmp = if *op == MinMaxOp::Min { "<" } else { ">" };
            for_elems(w, width, |w, idx| {
                w.line(format!("{t} acc = {};", refs.in_cast(0, idx)));
                for i in 1..*inputs {
                    let x = refs.in_cast(i, idx);
                    if dt.is_float() {
                        let f = match (dt, *op) {
                            (DataType::F32, MinMaxOp::Min) => "fminf",
                            (DataType::F32, MinMaxOp::Max) => "fmaxf",
                            (_, MinMaxOp::Min) => "fmin",
                            (_, MinMaxOp::Max) => "fmax",
                        };
                        w.line(format!("acc = {f}(acc, {x});"));
                    } else {
                        w.line(format!("acc = ({x} {cmp} acc) ? {x} : acc;"));
                    }
                }
                w.line(format!("{} = acc;", refs.out(idx)));
            });
        }
        Rounding { op } => {
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                if dt.is_float() {
                    let f = match op {
                        RoundOp::Floor => "floor",
                        RoundOp::Ceil => "ceil",
                        RoundOp::Round => "round",
                        RoundOp::Fix => "trunc",
                    };
                    let val = cast_f64_expr(&format!("{f}((double)({x}))"), dt);
                    w.line(format!("{} = {val};", refs.out(idx)));
                } else {
                    w.line(format!("{} = {x};", refs.out(idx)));
                }
            });
        }
        Polynomial { coeffs } => {
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                w.line(format!("double px = (double)({x});"));
                w.line("double pacc = 0.0;");
                w.open(format!("for (int k = 0; k < {}; k++) {{", coeffs.len()));
                w.line(format!("pacc = pacc * px + {key}_coef[k];"));
                w.close("}");
                w.line(format!("{} = {};", refs.out(idx), cast_f64_expr("pacc", dt)));
            });
        }
        DotProduct => {
            let n = refs.in_width(0);
            w.open("{");
            w.line(format!("{t} acc = 0;"));
            w.open(format!("for (int e = 0; e < {n}; e++) {{"));
            w.line(format!(
                "acc = ({t})(acc + ({t})({} * {}));",
                refs.in_cast(0, "e"),
                refs.in_cast(1, "e")
            ));
            w.close("}");
            w.line(format!("{} = acc;", refs.out("0")));
            w.close("}");
        }
        SumOfElements => {
            let n = refs.in_width(0);
            w.open("{");
            w.line(format!("{t} acc = 0;"));
            w.open(format!("for (int e = 0; e < {n}; e++) {{"));
            w.line(format!("acc = ({t})(acc + {});", refs.in_cast(0, "e")));
            w.close("}");
            w.line(format!("{} = acc;", refs.out("0")));
            w.close("}");
        }
        ProductOfElements => {
            let n = refs.in_width(0);
            w.open("{");
            w.line(format!("{t} acc = 1;"));
            w.open(format!("for (int e = 0; e < {n}; e++) {{"));
            w.line(format!("acc = ({t})(acc * {});", refs.in_cast(0, "e")));
            w.close("}");
            w.line(format!("{} = acc;", refs.out("0")));
            w.close("}");
        }

        // ---- logic & comparison --------------------------------------------
        Relational { op } => {
            let any_float = refs.in_dtype(0).is_float() || refs.in_dtype(1).is_float();
            for_elems(w, width, |w, idx| {
                let (a, b) = if any_float {
                    (
                        format!("(double)({})", refs.in_raw(0, idx)),
                        format!("(double)({})", refs.in_raw(1, idx)),
                    )
                } else {
                    (
                        format!("(accmos_wide)({})", refs.in_raw(0, idx)),
                        format!("(accmos_wide)({})", refs.in_raw(1, idx)),
                    )
                };
                w.line(format!(
                    "{} = (uint8_t)({a} {} {b});",
                    refs.out(idx),
                    op.c_symbol()
                ));
                cov_decision(w, &refs.out(idx));
            });
        }
        CompareToConstant { op, constant } => {
            let any_float = refs.in_dtype(0).is_float() || constant.dtype().is_float();
            for_elems(w, width, |w, idx| {
                let (a, b) = if any_float {
                    (
                        format!("(double)({})", refs.in_raw(0, idx)),
                        format!("(double)({})", Scalar::F64(constant.to_f64()).c_literal()),
                    )
                } else {
                    (
                        format!("(accmos_wide)({})", refs.in_raw(0, idx)),
                        format!("(accmos_wide)({})", constant.c_literal()),
                    )
                };
                w.line(format!(
                    "{} = (uint8_t)({a} {} {b});",
                    refs.out(idx),
                    op.c_symbol()
                ));
                cov_decision(w, &refs.out(idx));
            });
        }
        Logical { op, inputs } => {
            let n = if *op == LogicOp::Not { 1 } else { *inputs };
            for_elems(w, width, |w, idx| {
                for i in 0..n {
                    w.line(format!(
                        "uint8_t c{i} = (uint8_t)(({}) != 0);",
                        refs.in_raw(i, idx)
                    ));
                }
                let expr = match op {
                    LogicOp::And => join_conds(n, " && ", false),
                    LogicOp::Or => join_conds(n, " || ", false),
                    LogicOp::Nand => format!("!({})", join_conds(n, " && ", false)),
                    LogicOp::Nor => format!("!({})", join_conds(n, " || ", false)),
                    LogicOp::Xor => {
                        let xor =
                            (0..n).map(|i| format!("c{i}")).collect::<Vec<_>>().join(" ^ ");
                        format!("(({xor}) & 1)")
                    }
                    LogicOp::Not => "!c0".to_owned(),
                };
                w.line(format!("{} = (uint8_t)({expr});", refs.out(idx)));
                cov_decision(w, &refs.out(idx));
                // MC/DC: each condition shown to independently affect the
                // outcome (instMCDCCov, Algorithm 1 line 10).
                if cov {
                    if let Some((base, _)) = ctx.pre.coverage.mcdc[actor.id.0] {
                        for i in 0..n {
                            let mask = mcdc_mask(*op, n, i);
                            w.line(format!(
                                "if ({mask}) ACCMOS_COV(accmos_cov_mcdc, {} + (c{i} ? 0 : 1));",
                                base + 2 * i
                            ));
                        }
                    }
                }
            });
        }
        Bitwise { op } => {
            for_elems(w, width, |w, idx| {
                let a = refs.in_cast(0, idx);
                let expr = match op {
                    BitOp::Not => format!("({t})(~{a})"),
                    _ => {
                        let b = refs.in_cast(1, idx);
                        let sym = match op {
                            BitOp::And => "&",
                            BitOp::Or => "|",
                            BitOp::Xor => "^",
                            BitOp::Not => unreachable!(),
                        };
                        format!("({t})({a} {sym} {b})")
                    }
                };
                w.line(format!("{} = {expr};", refs.out(idx)));
            });
        }
        Shift { dir, amount } => {
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                let expr = match dir {
                    ShiftDir::Left => {
                        // Shift on the unsigned representation, wrap back.
                        let ut = unsigned_of(dt);
                        format!("({t})(({ut})({x}) << {amount})")
                    }
                    ShiftDir::Right => format!("({t})({x} >> {amount})"),
                };
                w.line(format!("{} = {expr};", refs.out(idx)));
            });
        }

        // ---- control & nonlinear --------------------------------------------
        Switch { criteria } => {
            // Analyzer-specialized: the control interval proves one arm
            // is always taken, so only it is emitted; its branch-coverage
            // bit is set unconditionally (the same bit every execution of
            // the full template would set).
            if let Some(BranchSpec::SwitchTaken(taken)) =
                ctx.spec().and_then(|a| a.branch_spec(actor.id))
            {
                let (branch, port) = if taken { (0, 0) } else { (1, 2) };
                if cov {
                    if let Some(base) = cond_base {
                        emit_or_hoist(
                            w,
                            &mut hoist,
                            format!("ACCMOS_COV(accmos_cov_cond, {base} + ({branch}));"),
                        );
                    }
                }
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", refs.out(idx), refs.in_cast(port, idx)));
                });
                return;
            }
            let ctrl = format!("(double)({})", refs.in_raw(1, "0"));
            let cond = match criteria {
                SwitchCriteria::GreaterEqual(th) => format!("{ctrl} >= {}", f64_lit(*th)),
                SwitchCriteria::Greater(th) => format!("{ctrl} > {}", f64_lit(*th)),
                SwitchCriteria::NotEqualZero => format!("{ctrl} != 0.0"),
            };
            w.open(format!("if ({cond}) {{"));
            cov_branch(w, "0".into());
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {};", refs.out(idx), refs.in_cast(0, idx)));
            });
            w.close("}");
            w.open("else {");
            cov_branch(w, "1".into());
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {};", refs.out(idx), refs.in_cast(2, idx)));
            });
            w.close("}");
        }
        MultiportSwitch { cases } => {
            // Analyzer-specialized: the (clamped) selector interval is a
            // single case, so the switch dispatch is emitted as a direct
            // assignment from that case's input.
            if let Some(BranchSpec::MultiportCase(case)) =
                ctx.spec().and_then(|a| a.branch_spec(actor.id))
            {
                if cov {
                    if let Some(base) = cond_base {
                        emit_or_hoist(
                            w,
                            &mut hoist,
                            format!("ACCMOS_COV(accmos_cov_cond, {base} + ({}));", case - 1),
                        );
                    }
                }
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", refs.out(idx), refs.in_cast(case, idx)));
                });
                return;
            }
            w.open("{");
            w.line(format!("accmos_wide sel = (accmos_wide)({});", refs.in_raw(0, "0")));
            w.line(format!(
                "int pick = (sel < 1) ? 1 : ((sel > {cases}) ? {cases} : (int)sel);"
            ));
            w.open("switch (pick) {");
            for case in 1..=*cases {
                w.open(format!("case {case}:"));
                cov_branch(w, format!("{}", case - 1));
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", refs.out(idx), refs.in_cast(case, idx)));
                });
                w.line("break;");
                w.close("");
            }
            w.close("}");
            w.close("}");
        }
        Merge { inputs } => {
            for i in 0..*inputs {
                let src = ctx.pre.flat.signal(actor.inputs[i]).source;
                let src_actor = ctx.pre.flat.actor(src);
                let guard = match src_actor.group {
                    Some(g) => format!("g{}_active()", g.0),
                    None => "1".to_owned(),
                };
                w.open(format!("if ({guard}) {{"));
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", refs.out(idx), refs.in_cast(i, idx)));
                });
                w.close("}");
            }
        }
        Saturation { lo, hi } => {
            let (lo_l, hi_l) = (f64_lit(*lo), f64_lit(*hi));
            // Analyzer-specialized: the input interval proves every
            // element always lands in one branch (below/pass/above), so
            // only that branch's assignment is emitted. The per-element
            // coverage write collapses to one unconditional set of the
            // same bit.
            if let Some(BranchSpec::SaturationBranch(branch)) =
                ctx.spec().and_then(|a| a.branch_spec(actor.id))
            {
                if cov {
                    if let Some(base) = cond_base {
                        emit_or_hoist(
                            w,
                            &mut hoist,
                            format!("ACCMOS_COV(accmos_cov_cond, {base} + ({branch}));"),
                        );
                    }
                }
                for_elems(w, width, |w, idx| {
                    let x = refs.in_cast(0, idx);
                    let val = match branch {
                        0 => cast_f64_expr(&lo_l, dt),
                        2 => cast_f64_expr(&hi_l, dt),
                        _ => x,
                    };
                    w.line(format!("{} = {val};", refs.out(idx)));
                });
                return;
            }
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                w.open(format!("if ((double)({x}) < {lo_l}) {{"));
                cov_branch(w, "0".into());
                w.line(format!("{} = {};", refs.out(idx), cast_f64_expr(&lo_l, dt)));
                w.close("}");
                w.open(format!("else if ((double)({x}) > {hi_l}) {{"));
                cov_branch(w, "2".into());
                w.line(format!("{} = {};", refs.out(idx), cast_f64_expr(&hi_l, dt)));
                w.close("}");
                w.open("else {");
                cov_branch(w, "1".into());
                w.line(format!("{} = {x};", refs.out(idx)));
                w.close("}");
            });
        }
        DeadZone { start, end } => {
            let (s_l, e_l) = (f64_lit(*start), f64_lit(*end));
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                w.open(format!("if ((double)({x}) < {s_l}) {{"));
                cov_branch(w, "0".into());
                w.line(format!(
                    "{} = {};",
                    refs.out(idx),
                    cast_f64_expr(&format!("((double)({x}) - {s_l})"), dt)
                ));
                w.close("}");
                w.open(format!("else if ((double)({x}) > {e_l}) {{"));
                cov_branch(w, "2".into());
                w.line(format!(
                    "{} = {};",
                    refs.out(idx),
                    cast_f64_expr(&format!("((double)({x}) - {e_l})"), dt)
                ));
                w.close("}");
                w.open("else {");
                cov_branch(w, "1".into());
                w.line(format!("{} = {};", refs.out(idx), Scalar::zero(dt).c_literal()));
                w.close("}");
            });
        }
        RateLimiter { rising, falling } => {
            let (r_l, f_l) = (f64_lit(*rising), f64_lit(*falling));
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                let prev = elem_of(&format!("{key}_prev"), width, idx);
                w.line(format!(
                    "double delta = (double)({x}) - (double)({prev});"
                ));
                w.open(format!("if (delta > {r_l}) {{"));
                cov_branch(w, "2".into());
                w.line(format!(
                    "{} = {};",
                    refs.out(idx),
                    cast_f64_expr(&format!("((double)({prev}) + {r_l})"), dt)
                ));
                w.close("}");
                w.open(format!("else if (delta < {f_l}) {{"));
                cov_branch(w, "0".into());
                w.line(format!(
                    "{} = {};",
                    refs.out(idx),
                    cast_f64_expr(&format!("((double)({prev}) + {f_l})"), dt)
                ));
                w.close("}");
                w.open("else {");
                cov_branch(w, "1".into());
                w.line(format!("{} = {x};", refs.out(idx)));
                w.close("}");
                w.line(format!("{prev} = {};", refs.out(idx)));
            });
        }
        Quantizer { interval } => {
            let q = f64_lit(*interval);
            for_elems(w, width, |w, idx| {
                let x = refs.in_cast(0, idx);
                let val =
                    cast_f64_expr(&format!("({q} * round((double)({x}) / {q}))"), dt);
                w.line(format!("{} = {val};", refs.out(idx)));
            });
        }
        Relay { on_threshold, off_threshold, on_value, off_value } => {
            let x = refs.in_cast(0, "0");
            w.line(format!(
                "if ((double)({x}) >= {}) {key}_on = 1;",
                f64_lit(*on_threshold)
            ));
            w.line(format!(
                "else if ((double)({x}) <= {}) {key}_on = 0;",
                f64_lit(*off_threshold)
            ));
            cov_branch(w, format!("({key}_on ? 1 : 0)"));
            let on_v = cast_f64_expr(&f64_lit(*on_value), dt);
            let off_v = cast_f64_expr(&f64_lit(*off_value), dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {key}_on ? {on_v} : {off_v};", refs.out(idx)));
            });
        }

        // ---- discrete state -------------------------------------------------
        UnitDelay { .. } | Memory { .. } => {
            for_elems(w, width, |w, idx| {
                let st = elem_of(&format!("{key}_state"), width, idx);
                w.line(format!("{} = {st};", refs.out(idx)));
            });
        }
        DiscreteIntegrator { .. } => {
            for_elems(w, width, |w, idx| {
                let st = elem_of(&format!("{key}_acc"), width, idx);
                w.line(format!("{} = {st};", refs.out(idx)));
            });
        }
        Delay { steps, .. } => {
            // Ring buffer: front element is at `pos`.
            for_elems(w, width, |w, idx| {
                let off = if width == 1 {
                    format!("{key}_pos")
                } else {
                    format!("{key}_pos * {width} + {idx}")
                };
                w.line(format!("{} = {key}_buf[{off}];", refs.out(idx)));
            });
            let _ = steps;
        }
        DiscreteDerivative => {
            // The previous-input state is advanced after the diagnostic
            // call (see emit_actor), which must observe the old value.
            for_elems(w, width, |w, idx| {
                let prev = elem_of(&format!("{key}_prev"), width, idx);
                let x = refs.in_cast(0, idx);
                w.line(format!("{} = ({t})({x} - {prev});", refs.out(idx)));
            });
        }
        ZeroOrderHold { sample } => {
            w.open(format!("if (accmos_step % {sample}ULL == 0) {{"));
            for_elems(w, width, |w, idx| {
                let held = elem_of(&format!("{key}_held"), width, idx);
                w.line(format!("{held} = {};", refs.in_cast(0, idx)));
            });
            w.close("}");
            for_elems(w, width, |w, idx| {
                let held = elem_of(&format!("{key}_held"), width, idx);
                w.line(format!("{} = {held};", refs.out(idx)));
            });
        }
        EdgeDetector { rising, falling } => {
            w.line(format!("uint8_t cur = (uint8_t)(({}) != 0);", refs.in_raw(0, "0")));
            let mut terms = Vec::new();
            if *rising {
                terms.push(format!("(cur && !{key}_prev)"));
            }
            if *falling {
                terms.push(format!("(!cur && {key}_prev)"));
            }
            let expr = if terms.is_empty() { "0".to_owned() } else { terms.join(" || ") };
            w.line(format!("{} = (uint8_t)({expr});", refs.out("0")));
            cov_decision(w, &refs.out("0"));
            w.line(format!("{key}_prev = cur;"));
        }

        // ---- routing ----------------------------------------------------------
        Mux { inputs } => {
            let mut offset = 0usize;
            for i in 0..*inputs {
                let iw = refs.in_width(i);
                for e in 0..iw {
                    let target = elem_of(refs.out_name(0), width, &(offset + e).to_string());
                    w.line(format!("{target} = {};", refs.in_cast(i, &e.to_string())));
                }
                offset += iw;
            }
        }
        Demux { outputs } => {
            let part = refs.in_width(0) / outputs;
            for p in 0..*outputs {
                let out_name = refs.out_name(p).to_owned();
                for e in 0..part {
                    let target = elem_of(&out_name, part, &e.to_string());
                    let src = refs.in_cast(0, &(p * part + e).to_string());
                    w.line(format!("{target} = {src};"));
                }
            }
        }
        Selector { indices, dynamic } => {
            if *dynamic {
                let n = refs.in_width(0);
                w.open("{");
                w.line(format!("accmos_wide sel = (accmos_wide)({});", refs.in_raw(1, "0")));
                w.line(format!(
                    "int pick = (sel < 1) ? 1 : ((sel > {n}) ? {n} : (int)sel);"
                ));
                w.line(format!("{} = {};", refs.out("0"), refs.in_cast(0, "pick - 1")));
                w.close("}");
            } else {
                for (k, src_idx) in indices.iter().enumerate() {
                    let target = elem_of(refs.out_name(0), width, &k.to_string());
                    w.line(format!(
                        "{target} = {};",
                        refs.in_cast(0, &format!("{key}_idx[{k}]"))
                    ));
                    let _ = src_idx;
                }
            }
        }
        DataTypeConversion { .. } => {
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {};", refs.out(idx), refs.in_cast(0, idx)));
            });
        }

        // ---- lookup -------------------------------------------------------------
        Lookup1D { breakpoints, method, .. } => {
            let n = breakpoints.len();
            let m = method_code(*method);
            for_elems(w, width, |w, idx| {
                let x = refs.in_raw(0, idx);
                let call = format!(
                    "accmos_lookup1d({key}_bps, {key}_tab, {n}, {m}, (double)({x}))"
                );
                w.line(format!("{} = {};", refs.out(idx), cast_f64_expr(&call, dt)));
            });
        }
        Lookup2D { row_bps, col_bps, method, .. } => {
            let (nr, nc) = (row_bps.len(), col_bps.len());
            let m = method_code(*method);
            let call = format!(
                "accmos_lookup2d({key}_rbps, {nr}, {key}_cbps, {nc}, {key}_tab, {m}, (double)({}), (double)({}))",
                refs.in_raw(0, "0"),
                refs.in_raw(1, "0")
            );
            let val = cast_f64_expr(&call, dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", refs.out(idx)));
            });
        }

        // ---- data store -----------------------------------------------------------
        DataStoreMemory { .. } => {
            w.comment("data store declaration; storage emitted globally");
        }
        DataStoreRead { store } => {
            let i = ctx.pre.flat.store_index(store).expect("validated store");
            let sdt = ctx.pre.flat.stores[i].dtype;
            let var = store_var(store);
            let val = cast_expr(&var, sdt, dt);
            for_elems(w, width, |w, idx| {
                w.line(format!("{} = {val};", refs.out(idx)));
            });
        }
        DataStoreWrite { store } => {
            let i = ctx.pre.flat.store_index(store).expect("validated store");
            let sdt = ctx.pre.flat.stores[i].dtype;
            let var = store_var(store);
            let val = cast_expr(&refs.in_raw(0, "0"), refs.in_dtype(0), sdt);
            w.line(format!("{var} = {val};"));
        }

        // ---- sinks ----------------------------------------------------------------
        Outport { .. } => {
            if !actor.outputs.is_empty() {
                for_elems(w, width, |w, idx| {
                    w.line(format!("{} = {};", refs.out(idx), refs.in_cast(0, idx)));
                });
            } else {
                w.comment("root outport; recorded by recordResult()");
            }
        }
        Scope | Display | ToWorkspace { .. } | Terminator => {
            w.comment("sink actor");
        }
    }
}

fn join_conds(n: usize, sep: &str, negate: bool) -> String {
    (0..n)
        .map(|i| if negate { format!("!c{i}") } else { format!("c{i}") })
        .collect::<Vec<_>>()
        .join(sep)
}

/// The masking condition under which input `i` independently determines a
/// gate's outcome (mirrors `accmos_interp::normal::mcdc_masked`).
fn mcdc_mask(op: LogicOp, n: usize, i: usize) -> String {
    let others: Vec<String> = (0..n).filter(|j| *j != i).map(|j| format!("c{j}")).collect();
    match op {
        LogicOp::And | LogicOp::Nand => {
            if others.is_empty() {
                "1".into()
            } else {
                others.join(" && ")
            }
        }
        LogicOp::Or | LogicOp::Nor => {
            if others.is_empty() {
                "1".into()
            } else {
                format!("!({})", others.join(" || "))
            }
        }
        LogicOp::Xor | LogicOp::Not => "1".into(),
    }
}

fn method_code(m: LookupMethod) -> usize {
    match m {
        LookupMethod::Interpolate => 0,
        LookupMethod::Nearest => 1,
        LookupMethod::Below => 2,
    }
}

/// Name of the global data-store variable.
pub(crate) fn store_var(store: &str) -> String {
    let sane: String =
        store.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    format!("accmos_store_{sane}")
}

fn unsigned_of(dt: DataType) -> &'static str {
    match dt {
        DataType::I8 | DataType::U8 => "uint8_t",
        DataType::I16 | DataType::U16 => "uint16_t",
        DataType::I32 | DataType::U32 => "uint32_t",
        _ => "uint64_t",
    }
}

/// Emit a checked division expression.
fn emit_div(dt: DataType, a: &str, b: &str) -> String {
    if dt.is_float() {
        let t = dt.c_name();
        format!("({t})({a} / {b})")
    } else {
        format!("accmos_{}_div({a}, {b})", dt.mnemonic())
    }
}

/// Emit a checked remainder expression.
fn emit_rem(dt: DataType, a: &str, b: &str) -> String {
    if dt.is_float() {
        let f = if dt == DataType::F32 { "fmodf" } else { "fmod" };
        format!("{f}({a}, {b})")
    } else {
        format!("accmos_{}_rem({a}, {b})", dt.mnemonic())
    }
}

fn emit_math(ctx: &EmitCtx<'_>, actor: &FlatActor, op: MathOp, w: &mut CodeBuf) {
    let refs = ActorRefs { ctx, actor };
    let dt = actor.dtype;
    let t = dt.c_name();
    let width = actor.width;
    for_elems(w, width, |w, idx| {
        let x = refs.in_cast(0, idx);
        let xd = format!("(double)({x})");
        let line = match op {
            MathOp::Exp => format!("{} = {};", refs.out(idx), cast_f64_expr(&format!("exp({xd})"), dt)),
            MathOp::Log => format!("{} = {};", refs.out(idx), cast_f64_expr(&format!("log({xd})"), dt)),
            MathOp::Log10 => {
                format!("{} = {};", refs.out(idx), cast_f64_expr(&format!("log10({xd})"), dt))
            }
            MathOp::Pow10 => {
                format!("{} = {};", refs.out(idx), cast_f64_expr(&format!("pow(10.0, {xd})"), dt))
            }
            MathOp::Square => format!("{} = ({t})({x} * {x});", refs.out(idx)),
            MathOp::Pow => {
                let y = refs.in_cast(1, idx);
                format!(
                    "{} = {};",
                    refs.out(idx),
                    cast_f64_expr(&format!("pow({xd}, (double)({y}))"), dt)
                )
            }
            MathOp::Reciprocal => {
                if dt.is_integer() {
                    format!("{} = {};", refs.out(idx), emit_div(dt, "1", &x))
                } else {
                    format!("{} = ({t})(1.0 / {xd});", refs.out(idx))
                }
            }
            MathOp::Mod => {
                let y = refs.in_cast(1, idx);
                if dt.is_integer() {
                    let r = emit_rem(dt, &x, &y);
                    format!(
                        "{t} mr = {r}; {} = (mr != 0 && ((mr < 0) != ({y} < 0))) ? ({t})(mr + {y}) : mr;",
                        refs.out(idx)
                    )
                } else {
                    let yd = format!("(double)({y})");
                    format!(
                        "double mr = fmod({xd}, {yd}); {} = {};",
                        refs.out(idx),
                        cast_f64_expr(
                            &format!("((mr != 0.0 && ((mr < 0.0) != ({yd} < 0.0))) ? (mr + {yd}) : mr)"),
                            dt
                        )
                    )
                }
            }
            MathOp::Rem => {
                let y = refs.in_cast(1, idx);
                if dt.is_integer() {
                    format!("{} = {};", refs.out(idx), emit_rem(dt, &x, &y))
                } else {
                    format!(
                        "{} = {};",
                        refs.out(idx),
                        cast_f64_expr(&format!("fmod({xd}, (double)({y}))"), dt)
                    )
                }
            }
            MathOp::Hypot => {
                let y = refs.in_cast(1, idx);
                format!(
                    "{} = {};",
                    refs.out(idx),
                    cast_f64_expr(&format!("hypot({xd}, (double)({y}))"), dt)
                )
            }
        };
        // Mod needs a small scope for its temporary.
        if matches!(op, MathOp::Mod) {
            w.open("{");
            for part in line.split("; ") {
                let part = part.trim_end_matches(';');
                if !part.is_empty() {
                    w.line(format!("{part};"));
                }
            }
            w.close("}");
        } else {
            w.line(line);
        }
    });
}

// For unsigned Mod the `mr < 0` test is always false and GCC warns; that
// is fine (matches the interpreter: remainder sign equals divisor sign
// trivially for unsigned).
// ---------------------------------------------------------------------------
// diagnosis template library (Figure 4 / genDiagnoseImpl)
// ---------------------------------------------------------------------------

/// Emit the diagnosis call statement and the function definition for one
/// actor, registering diagnostic sites on the way.
fn emit_diagnosis(
    ctx: &mut EmitCtx<'_>,
    actor: &FlatActor,
    plan: &[DiagnosticKind],
) -> (String, String) {
    let flat = &ctx.pre.flat;
    let key = actor.path.key();
    let dt = actor.dtype;

    // Parameters: the output (by value or pointer) then every raw input.
    let mut params: Vec<String> = Vec::new();
    let mut args: Vec<String> = Vec::new();
    let out_vec = actor.width > 1;
    if !actor.outputs.is_empty() {
        let out_sig = flat.signal(actor.outputs[0]);
        if out_vec {
            params.push(format!("const {}* out", dt.c_name()));
        } else {
            params.push(format!("{} out", dt.c_name()));
        }
        args.push(out_sig.name.clone());
    }
    for (i, input) in actor.inputs.iter().enumerate() {
        let sig = flat.signal(*input);
        if sig.width > 1 {
            params.push(format!("const {}* in{}", sig.dtype.c_name(), i + 1));
        } else {
            params.push(format!("{} in{}", sig.dtype.c_name(), i + 1));
        }
        args.push(sig.name.clone());
    }

    let call = format!("diagnose_{key}({});", args.join(", "));

    let mut w = CodeBuf::new();
    w.open(format!("static void diagnose_{key}({}) {{", params.join(", ")));

    // Per-element access helpers.
    let in_elem = |i: usize, idx: &str| -> String {
        let sig = flat.signal(actor.inputs[i]);
        if sig.width > 1 {
            format!("in{}[{idx}]", i + 1)
        } else {
            format!("in{}", i + 1)
        }
    };
    let in_elem_cast = |i: usize, idx: &str| -> String {
        let sig = flat.signal(actor.inputs[i]);
        cast_expr(&in_elem(i, idx), sig.dtype, dt)
    };
    let out_elem = |idx: &str| -> String {
        if out_vec {
            format!("out[{idx}]")
        } else {
            "out".to_owned()
        }
    };

    for kind in plan {
        let site = ctx.add_site(&key, *kind);
        match kind {
            DiagnosticKind::WrapOnOverflow => {
                if matches!(actor.kind, ActorKind::DiscreteIntegrator { .. }) {
                    ctx.update_sites.push((actor.id.0, site));
                    w.comment("overflow checked by the end-of-step update diagnosis");
                } else {
                    emit_overflow_check(&mut w, actor, flat, site, &in_elem_cast, &out_elem);
                }
            }
            DiagnosticKind::DivisionByZero => {
                w.comment("division by zero diagnosis");
                w.line("int divz = 0;");
                let zero_inputs = div_zero_ports(&actor.kind);
                for_elems(&mut w, actor.width, |w, idx| {
                    for port in &zero_inputs {
                        w.line(format!("if ({} == 0) divz = 1;", in_elem_cast(*port, idx)));
                    }
                });
                w.line(format!("if (divz) accmos_diag_hit({site});"));
            }
            DiagnosticKind::ArrayOutOfBounds => {
                w.comment("array out of bounds diagnosis");
                let (port, limit) = match &actor.kind {
                    ActorKind::MultiportSwitch { cases } => (0usize, *cases),
                    ActorKind::Selector { .. } => (1usize, flat.signal(actor.inputs[0]).width),
                    _ => (0, 1),
                };
                w.line(format!(
                    "accmos_wide sel = (accmos_wide)({});",
                    in_elem(port, "0")
                ));
                w.line(format!(
                    "if (sel < 1 || sel > {limit}) accmos_diag_hit({site});"
                ));
            }
            DiagnosticKind::DomainError => {
                w.comment("domain error diagnosis");
                w.line("int dom = 0;");
                let check: Box<dyn Fn(&str) -> String> = match &actor.kind {
                    ActorKind::Sqrt => Box::new(|x: &str| format!("if ((double)({x}) < 0.0) dom = 1;")),
                    ActorKind::Math { op: MathOp::Log | MathOp::Log10 } => {
                        Box::new(|x: &str| format!("if ((double)({x}) <= 0.0) dom = 1;"))
                    }
                    ActorKind::Trig { op: TrigOp::Asin | TrigOp::Acos } => {
                        Box::new(|x: &str| format!("if (fabs((double)({x})) > 1.0) dom = 1;"))
                    }
                    _ => Box::new(|_: &str| ";".to_owned()),
                };
                for_elems(&mut w, actor.width, |w, idx| {
                    w.line(check(&in_elem_cast(0, idx)));
                });
                w.line(format!("if (dom) accmos_diag_hit({site});"));
            }
            DiagnosticKind::Downcast => {
                // Paper Figure 4 line 4: a static width comparison that can
                // only ever fire; report it once, on first execution. Lane
                // mode latches per lane so each lane reports its own first
                // execution, exactly like N independent scalar runs.
                w.comment("downcast diagnosis (sizeof(out) < sizeof(in))");
                if ctx.opts.effective_lanes() > 1 {
                    w.line(format!("static int down_once_{site}[ACCMOS_LANES];"));
                    w.line(format!(
                        "if (!down_once_{site}[accmos_lane]) {{ down_once_{site}[accmos_lane] = 1; accmos_diag_hit({site}); }}"
                    ));
                } else {
                    w.line(format!("static int down_once_{site} = 0;"));
                    w.line(format!(
                        "if (!down_once_{site}) {{ down_once_{site} = 1; accmos_diag_hit({site}); }}"
                    ));
                }
            }
            DiagnosticKind::PrecisionLoss => {
                w.comment("precision loss diagnosis (round-trip check)");
                w.line("int lossy = 0;");
                for (i, input) in actor.inputs.iter().enumerate() {
                    let sig = flat.signal(*input);
                    if !sig.dtype.precision_loss_to(dt) {
                        continue;
                    }
                    let width = sig.width;
                    for_elems(&mut w, width, |w, idx| {
                        let x = in_elem(i, idx);
                        let forward = cast_expr(&x, sig.dtype, dt);
                        let back = cast_expr(&forward, dt, sig.dtype);
                        w.line(format!("if ({back} != {x}) lossy = 1;"));
                    });
                }
                w.line(format!("if (lossy) accmos_diag_hit({site});"));
            }
        }
    }

    w.close("}");
    (call, w.finish())
}

fn div_zero_ports(kind: &ActorKind) -> Vec<usize> {
    match kind {
        ActorKind::Product { ops } => {
            ops.chars().enumerate().filter(|(_, c)| *c == '/').map(|(i, _)| i).collect()
        }
        ActorKind::Math { op: MathOp::Reciprocal } => vec![0],
        ActorKind::Math { op: MathOp::Mod | MathOp::Rem } => vec![1],
        _ => Vec::new(),
    }
}

/// Wrap-on-overflow checks. Binary signed `Sum` uses the sign predicates of
/// the paper's Figure 4; everything else recomputes exactly in `__int128`.
fn emit_overflow_check(
    w: &mut CodeBuf,
    actor: &FlatActor,
    flat: &accmos_graph::FlatModel,
    site: usize,
    in_elem_cast: &dyn Fn(usize, &str) -> String,
    out_elem: &dyn Fn(&str) -> String,
) {
    use ActorKind::*;
    let dt = actor.dtype;
    w.comment("wrap on overflow diagnosis");
    w.line("int ovf = 0;");

    match &actor.kind {
        Sum { signs } if signs.len() == 2 && dt.is_signed() && (signs == "++" || signs == "+-") => {
            // The exact predicates of the paper's Figure 4.
            for_elems(w, actor.width, |w, idx| {
                let (a, b, o) = (in_elem_cast(0, idx), in_elem_cast(1, idx), out_elem(idx));
                // Completed forms of the paper's Figure 4 predicates (the
                // `>=` closes the `in == 0` / `in == MIN` corner).
                if signs == "+-" {
                    w.line(format!(
                        "if (({a} >= 0 && {b} < 0 && {o} < 0) || ({a} < 0 && {b} >= 0 && {o} >= 0)) ovf = 1;"
                    ));
                } else {
                    w.line(format!(
                        "if (({a} >= 0 && {b} >= 0 && {o} < 0) || ({a} < 0 && {b} < 0 && {o} >= 0)) ovf = 1;"
                    ));
                }
            });
        }
        Sum { signs } => {
            for_elems(w, actor.width, |w, idx| {
                w.line("accmos_wide ex = 0;");
                for (i, sign) in signs.chars().enumerate() {
                    w.line(format!("ex = ex {sign} (accmos_wide)({});", in_elem_cast(i, idx)));
                }
                w.line(format!("if ((accmos_wide)({}) != ex) ovf = 1;", out_elem(idx)));
            });
        }
        Product { ops } => {
            for_elems(w, actor.width, |w, idx| {
                w.line("accmos_wide ex = 1;");
                for (i, op) in ops.chars().enumerate() {
                    let v = in_elem_cast(i, idx);
                    if op == '*' {
                        w.line(format!("ex = accmos_wide_satmul(ex, (accmos_wide)({v}));"));
                    } else {
                        w.line(format!(
                            "ex = ((accmos_wide)({v}) == 0) ? 0 : accmos_wide_wdiv(ex, (accmos_wide)({v}));"
                        ));
                    }
                }
                w.line(format!("if ((accmos_wide)({}) != ex) ovf = 1;", out_elem(idx)));
            });
        }
        Gain { gain } => {
            let g = gain.cast(dt).c_literal();
            for_elems(w, actor.width, |w, idx| {
                w.line(format!(
                    "if ((accmos_wide)({}) != (accmos_wide)({}) * (accmos_wide)({g})) ovf = 1;",
                    out_elem(idx),
                    in_elem_cast(0, idx)
                ));
            });
        }
        Bias { bias } => {
            let b = bias.cast(dt).c_literal();
            for_elems(w, actor.width, |w, idx| {
                w.line(format!(
                    "if ((accmos_wide)({}) != (accmos_wide)({}) + (accmos_wide)({b})) ovf = 1;",
                    out_elem(idx),
                    in_elem_cast(0, idx)
                ));
            });
        }
        Abs => {
            for_elems(w, actor.width, |w, idx| {
                let x = in_elem_cast(0, idx);
                w.line(format!(
                    "accmos_wide ex = ({x} < 0) ? -(accmos_wide)({x}) : (accmos_wide)({x});"
                ));
                w.line(format!("if ((accmos_wide)({}) != ex) ovf = 1;", out_elem(idx)));
            });
        }
        Math { op: MathOp::Square } => {
            for_elems(w, actor.width, |w, idx| {
                let x = in_elem_cast(0, idx);
                w.line(format!(
                    "if ((accmos_wide)({}) != (accmos_wide)({x}) * (accmos_wide)({x})) ovf = 1;",
                    out_elem(idx)
                ));
            });
        }
        Shift { dir: ShiftDir::Left, amount } => {
            for_elems(w, actor.width, |w, idx| {
                let x = in_elem_cast(0, idx);
                w.line(format!(
                    "if ((accmos_wide)({}) != ((accmos_wide)({x}) << {amount})) ovf = 1;",
                    out_elem(idx)
                ));
            });
        }
        DotProduct => {
            let n = flat.signal(actor.inputs[0]).width;
            w.line("accmos_wide ex = 0;");
            w.open(format!("for (int e = 0; e < {n}; e++) {{"));
            w.line(format!(
                "ex = ex + (accmos_wide)({}) * (accmos_wide)({});",
                in_elem_cast(0, "e"),
                in_elem_cast(1, "e")
            ));
            w.close("}");
            w.line(format!("if ((accmos_wide)({}) != ex) ovf = 1;", out_elem("0")));
        }
        SumOfElements => {
            let n = flat.signal(actor.inputs[0]).width;
            w.line("accmos_wide ex = 0;");
            w.open(format!("for (int e = 0; e < {n}; e++) {{"));
            w.line(format!("ex = ex + (accmos_wide)({});", in_elem_cast(0, "e")));
            w.close("}");
            w.line(format!("if ((accmos_wide)({}) != ex) ovf = 1;", out_elem("0")));
        }
        ProductOfElements => {
            let n = flat.signal(actor.inputs[0]).width;
            w.line("accmos_wide ex = 1;");
            w.open(format!("for (int e = 0; e < {n}; e++) {{"));
            w.line(format!(
                "ex = accmos_wide_satmul(ex, (accmos_wide)({}));",
                in_elem_cast(0, "e")
            ));
            w.close("}");
            w.line(format!("if ((accmos_wide)({}) != ex) ovf = 1;", out_elem("0")));
        }
        DiscreteDerivative => {
            // The template has not yet advanced the state, so the global
            // still holds the previous input.
            for_elems(w, actor.width, |w, idx| {
                let x = in_elem_cast(0, idx);
                let key = actor.path.key();
                let prev = elem_of(&format!("{key}_prev"), actor.width, idx);
                let o = out_elem(idx);
                w.line(format!(
                    "if ((accmos_wide)({o}) != (accmos_wide)({x}) - (accmos_wide)({prev})) ovf = 1;"
                ));
            });
        }
        _ => {
            w.line("(void)ovf;");
        }
    }
    w.line(format!("if (ovf) accmos_diag_hit({site});"));
}
