//! A small indented C code writer.

use std::fmt::Write as _;

/// An append-only buffer with indentation management for emitting C code.
#[derive(Debug, Default, Clone)]
pub struct CodeBuf {
    text: String,
    indent: usize,
}

impl CodeBuf {
    /// An empty buffer.
    pub fn new() -> CodeBuf {
        CodeBuf::default()
    }

    /// Append one line at the current indentation.
    pub fn line(&mut self, line: impl AsRef<str>) -> &mut Self {
        let line = line.as_ref();
        if line.is_empty() {
            self.text.push('\n');
            return self;
        }
        for _ in 0..self.indent {
            self.text.push_str("    ");
        }
        self.text.push_str(line);
        self.text.push('\n');
        self
    }

    /// Append a blank line.
    pub fn blank(&mut self) -> &mut Self {
        self.text.push('\n');
        self
    }

    /// Append `line` and increase indentation (for `... {`).
    pub fn open(&mut self, line: impl AsRef<str>) -> &mut Self {
        self.line(line);
        self.indent += 1;
        self
    }

    /// Decrease indentation and append `line` (for `}`).
    pub fn close(&mut self, line: impl AsRef<str>) -> &mut Self {
        self.indent = self.indent.saturating_sub(1);
        self.line(line)
    }

    /// Append a formatted comment line.
    pub fn comment(&mut self, text: impl AsRef<str>) -> &mut Self {
        let mut s = String::new();
        let _ = write!(s, "/* {} */", text.as_ref());
        self.line(s)
    }

    /// Append raw pre-formatted text verbatim.
    pub fn raw(&mut self, text: impl AsRef<str>) -> &mut Self {
        self.text.push_str(text.as_ref());
        self
    }

    /// The accumulated text.
    pub fn finish(self) -> String {
        self.text
    }

    /// Borrow the accumulated text.
    #[cfg(test)]
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indentation_tracks_blocks() {
        let mut w = CodeBuf::new();
        w.open("int main(void) {");
        w.line("int x = 0;");
        w.open("if (x) {");
        w.line("x++;");
        w.close("}");
        w.close("}");
        assert_eq!(
            w.finish(),
            "int main(void) {\n    int x = 0;\n    if (x) {\n        x++;\n    }\n}\n"
        );
    }

    #[test]
    fn comment_and_blank() {
        let mut w = CodeBuf::new();
        w.comment("Sum type actor \"Model.Minus\"");
        w.blank();
        w.line("x;");
        assert!(w.as_str().starts_with("/* Sum type actor"));
        assert!(w.as_str().contains("\n\nx;"));
    }
}
