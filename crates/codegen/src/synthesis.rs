//! Simulation code synthesis (paper §3.3).
//!
//! Composes the instrumented actor code in execution order into the model
//! system function (`Model_Exe`, Figure 5 part 2), adds the end-of-step
//! state update, and wraps everything in a main function implementing the
//! simulation loop with test-case import (`TestCase_Init` /
//! `takeTestCase`), `recordResult()` and `outputResult()` (Figure 5
//! part 1).

use crate::cwriter::CodeBuf;
use crate::gen::{
    cast_expr, cast_f64_expr, emit_actor, f64_lit, state_decls, store_var, DiagSite, EmitCtx,
};
use crate::options::CodegenOptions;
use crate::runtime::RUNTIME_HEADER;
use accmos_graph::PreprocessedModel;
use accmos_ir::{ActorKind, CoverageKind, DataType, SystemKind};

/// A generated simulator: source files plus the site tables needed to
/// interpret its output.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedProgram {
    /// Model name.
    pub model: String,
    /// The main C translation unit (`<model>.c`).
    pub main_c: String,
    /// The fixed runtime support header (`accmos_rt.h`).
    pub runtime_h: String,
    /// Diagnostic sites, in site-id order.
    pub diag_sites: Vec<DiagSite>,
    /// Custom probe `(name, actor)` pairs, in site-id order.
    pub custom_sites: Vec<(String, String)>,
    /// Root input port data types (test-file column types).
    pub inport_dtypes: Vec<DataType>,
    /// Diagnosis checks dropped because the interval analysis proved they
    /// can never fire (`CodegenOptions::prune_proven_safe`).
    pub pruned_sites: usize,
    /// Per-metric coverage points the analysis proved unsatisfiable, in
    /// [`CoverageKind::ALL`] order; reported as `ACCMOS:UNSAT` lines so
    /// coverage summaries can show reachable denominators.
    pub unsat_points: [usize; 4],
    /// Wall-clock time the proven-safe interval analysis took during
    /// generation (zero when pruning is disabled). Surfaced so telemetry
    /// can report the analyze phase separately from synthesis proper.
    pub analyze_time: std::time::Duration,
}

impl GeneratedProgram {
    /// The generated files as `(file name, contents)` pairs.
    pub fn files(&self) -> Vec<(String, &str)> {
        vec![
            ("accmos_rt.h".to_owned(), self.runtime_h.as_str()),
            (format!("{}.c", sanitize(&self.model)), self.main_c.as_str()),
        ]
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Generate the complete simulation program for a preprocessed model.
pub fn generate(pre: &PreprocessedModel, opts: &CodegenOptions) -> GeneratedProgram {
    let mut ctx = EmitCtx::new(pre, opts);
    let flat = &pre.flat;
    let cov = opts.instrument && opts.coverage;

    // ---- per-actor code + diagnostic functions (Algorithm 1) ------------
    let mut actor_code = Vec::new();
    let mut diag_fns = Vec::new();
    for actor in flat.ordered_actors() {
        let emitted = emit_actor(&mut ctx, actor);
        actor_code.push(emitted.code);
        if !emitted.diag_code.is_empty() {
            diag_fns.push(emitted.diag_code);
        }
    }

    let mut w = CodeBuf::new();
    w.comment(format!(
        "AccMoS-RS generated simulation code for model `{}` ({} actors, {} signals)",
        flat.name,
        flat.actors.len(),
        flat.signals.len()
    ));
    w.line(format!("#define ACCMOS_ACTOR_BITS {}", pre.coverage.map.total(CoverageKind::Actor)));
    w.line(format!("#define ACCMOS_COND_BITS {}", pre.coverage.map.total(CoverageKind::Condition)));
    w.line(format!("#define ACCMOS_DEC_BITS {}", pre.coverage.map.total(CoverageKind::Decision)));
    w.line(format!("#define ACCMOS_MCDC_BITS {}", pre.coverage.map.total(CoverageKind::Mcdc)));
    w.line(format!("#define ACCMOS_DIAG_SITES {}", ctx.diag_sites.len()));
    w.line(format!("#define ACCMOS_CUSTOM_SITES {}", opts.custom.len()));
    let log_limit = if opts.instrument { opts.signal_log_limit } else { 0 };
    w.line(format!("#define ACCMOS_LOG_LIMIT {log_limit}"));
    let max_width = flat.signals.iter().map(|s| s.width).max().unwrap_or(1).max(1);
    w.line(format!("#define ACCMOS_MAX_WIDTH {max_width}"));
    w.line(format!("#define ACCMOS_TC_COLS {}", flat.root_inports.len()));
    w.line("#include \"accmos_rt.h\"");
    w.blank();

    // ---- saturating __int128 helpers used by overflow recomputation ------
    w.raw(WIDE_HELPERS);
    w.blank();

    // ---- signal variables -------------------------------------------------
    w.comment("signal variables (one per actor output port)");
    for sig in &flat.signals {
        let t = sig.dtype.c_name();
        if sig.width == 1 {
            w.line(format!("static {t} {};", sig.name));
        } else {
            w.line(format!("static {t} {}[{}];", sig.name, sig.width));
        }
    }
    w.blank();

    // ---- data stores --------------------------------------------------------
    if !flat.stores.is_empty() {
        w.comment("global data stores");
        for store in &flat.stores {
            w.line(format!(
                "static {} {} = {};",
                store.dtype.c_name(),
                store_var(&store.name),
                store.init.cast(store.dtype).c_literal()
            ));
        }
        w.blank();
    }

    // ---- actor state ----------------------------------------------------------
    w.comment("actor state");
    for actor in &flat.actors {
        for decl in state_decls(&ctx, actor) {
            w.line(decl);
        }
    }
    w.blank();

    // ---- conditional-execution groups -------------------------------------------
    if !flat.groups.is_empty() {
        w.comment("conditional-execution groups (enabled/triggered subsystems)");
        for g in &flat.groups {
            w.line(format!("static uint8_t g{}_prev = 0;", g.id.0));
        }
        for g in &flat.groups {
            let ctrl = &flat.signal(g.control).name;
            let own = match g.kind {
                SystemKind::Enabled => format!("({ctrl} != 0)"),
                SystemKind::Triggered => format!("(({ctrl} != 0) && !g{}_prev)", g.id.0),
                SystemKind::Plain => "1".to_owned(),
            };
            let expr = match g.parent {
                Some(p) => format!("g{}_active() && {own}", p.0),
                None => own,
            };
            w.line(format!(
                "static inline int g{}_active(void) {{ return {expr}; }}",
                g.id.0
            ));
        }
        w.blank();
    }

    // ---- diagnostic site tables ----------------------------------------------------
    if !ctx.diag_sites.is_empty() {
        w.comment("diagnostic sites");
        let kinds: Vec<String> =
            ctx.diag_sites.iter().map(|s| format!("\"{}\"", s.kind.ident())).collect();
        let actors: Vec<String> =
            ctx.diag_sites.iter().map(|s| format!("\"{}\"", s.actor)).collect();
        w.line(format!(
            "static const char* const accmos_diag_kind_name[] = {{ {} }};",
            kinds.join(", ")
        ));
        w.line(format!(
            "static const char* const accmos_diag_actor_name[] = {{ {} }};",
            actors.join(", ")
        ));
        w.blank();
    }
    if !opts.custom.is_empty() {
        w.comment("custom signal diagnosis sites");
        let names: Vec<String> =
            opts.custom.iter().map(|p| format!("\"{}\"", p.name)).collect();
        let actors: Vec<String> =
            opts.custom.iter().map(|p| format!("\"{}\"", p.actor)).collect();
        w.line(format!(
            "static const char* const accmos_custom_name[] = {{ {} }};",
            names.join(", ")
        ));
        w.line(format!(
            "static const char* const accmos_custom_actor[] = {{ {} }};",
            actors.join(", ")
        ));
        w.blank();
    }

    // ---- dynamically generated diagnostic functions -----------------------------------
    if !diag_fns.is_empty() {
        w.comment("diagnostic function template instantiations (paper Figure 4)");
        for f in &diag_fns {
            w.raw(f);
            w.blank();
        }
    }

    // Integrator end-of-step update diagnostics.
    let update_sites = ctx.update_sites.clone();
    for (actor_idx, site) in &update_sites {
        let actor = &flat.actors[*actor_idx];
        let key = actor.path.key();
        let t = actor.dtype.c_name();
        if actor.width == 1 {
            w.open(format!(
                "static void diagnose_{key}_update({t} acc, {t} incr) {{"
            ));
            w.line(format!(
                "if ((accmos_wide)({t})(acc + incr) != (accmos_wide)acc + (accmos_wide)incr) accmos_diag_hit({site});"
            ));
            w.close("}");
        } else {
            w.open(format!(
                "static void diagnose_{key}_update(const {t}* acc, const {t}* incr) {{"
            ));
            w.line("int ovf = 0;");
            w.open(format!("for (int e = 0; e < {}; e++) {{", actor.width));
            w.line(format!(
                "if ((accmos_wide)({t})(acc[e] + incr[e]) != (accmos_wide)acc[e] + (accmos_wide)incr[e]) ovf = 1;"
            ));
            w.close("}");
            w.line(format!("if (ovf) accmos_diag_hit({site});"));
            w.close("}");
        }
        w.blank();
    }

    // ---- model system function (Figure 5 part 2) -----------------------------------------
    w.open("static void Model_Exe(void) {");
    for code in &actor_code {
        w.raw(indent_block(code, 1));
    }
    w.close("}");
    w.blank();

    // ---- end-of-step state update ------------------------------------------------------------
    w.open("static void Model_Update(void) {");
    for actor in flat.ordered_actors() {
        if !actor.kind.breaks_algebraic_loops() {
            continue;
        }
        let key = actor.path.key();
        let t = actor.dtype.c_name();
        let width = actor.width;
        let refs_in = |idx: &str| -> String {
            let sig = flat.signal(actor.inputs[0]);
            let raw = if sig.width == 1 { sig.name.clone() } else { format!("{}[{idx}]", sig.name) };
            cast_expr(&raw, sig.dtype, actor.dtype)
        };
        let guard = match actor.group {
            Some(g) => format!("g{}_active()", g.0),
            None => "1".to_owned(),
        };
        w.open(format!("if ({guard}) {{"));
        match &actor.kind {
            ActorKind::UnitDelay { .. } | ActorKind::Memory { .. } => {
                if width == 1 {
                    w.line(format!("{key}_state = {};", refs_in("0")));
                } else {
                    w.open(format!("for (int e = 0; e < {width}; e++) {{"));
                    w.line(format!("{key}_state[e] = {};", refs_in("e")));
                    w.close("}");
                }
            }
            ActorKind::Delay { steps, .. } => {
                if width == 1 {
                    w.line(format!("{key}_buf[{key}_pos] = {};", refs_in("0")));
                } else {
                    w.open(format!("for (int e = 0; e < {width}; e++) {{"));
                    w.line(format!("{key}_buf[{key}_pos * {width} + e] = {};", refs_in("e")));
                    w.close("}");
                }
                w.line(format!("{key}_pos = ({key}_pos + 1) % {steps};"));
            }
            ActorKind::DiscreteIntegrator { gain, .. } => {
                let site =
                    update_sites.iter().find(|(a, _)| *a == actor.id.0).map(|(_, s)| *s);
                let incr_expr = |idx: &str| -> String {
                    if *gain == 1.0 {
                        refs_in(idx)
                    } else {
                        cast_f64_expr(
                            &format!("({} * (double)({}))", f64_lit(*gain), refs_in(idx)),
                            actor.dtype,
                        )
                    }
                };
                if width == 1 {
                    w.line(format!("{t} incr = {};", incr_expr("0")));
                    if site.is_some() {
                        w.line(format!("diagnose_{key}_update({key}_acc, incr);"));
                    }
                    w.line(format!("{key}_acc = ({t})({key}_acc + incr);"));
                } else {
                    w.line(format!("{t} incr[{width}];"));
                    w.open(format!("for (int e = 0; e < {width}; e++) {{"));
                    w.line(format!("incr[e] = {};", incr_expr("e")));
                    w.close("}");
                    if site.is_some() {
                        w.line(format!("diagnose_{key}_update({key}_acc, incr);"));
                    }
                    w.open(format!("for (int e = 0; e < {width}; e++) {{"));
                    w.line(format!("{key}_acc[e] = ({t})({key}_acc[e] + incr[e]);"));
                    w.close("}");
                }
            }
            _ => {}
        }
        w.close("}");
    }
    for g in &flat.groups {
        let ctrl = &flat.signal(g.control).name;
        w.line(format!("g{}_prev = (uint8_t)({ctrl} != 0);", g.id.0));
    }
    w.close("}");
    w.blank();

    // ---- per-step group condition coverage --------------------------------------------------------
    if cov && !flat.groups.is_empty() {
        w.open("static void Coverage_Groups(void) {");
        for g in &flat.groups {
            let ctrl = &flat.signal(g.control).name;
            let own = match g.kind {
                SystemKind::Enabled => format!("({ctrl} != 0)"),
                SystemKind::Triggered => format!("(({ctrl} != 0) && !g{}_prev)", g.id.0),
                SystemKind::Plain => "1".to_owned(),
            };
            let (t_bit, _) = pre.coverage.group_bits(g.id);
            match g.parent {
                Some(p) => {
                    w.open(format!("if (g{}_active()) {{", p.0));
                    w.line(format!(
                        "ACCMOS_COV(accmos_cov_cond, {t_bit} + ({own} ? 0 : 1));"
                    ));
                    w.close("}");
                }
                None => {
                    w.line(format!(
                        "ACCMOS_COV(accmos_cov_cond, {t_bit} + ({own} ? 0 : 1));"
                    ));
                }
            }
        }
        w.close("}");
        w.blank();
    }

    // ---- recordResult: output digest + final values ------------------------------------------------
    w.comment("final root-output values");
    for (i, id) in flat.root_outports.iter().enumerate() {
        let actor = flat.actor(*id);
        w.line(format!(
            "static {} accmos_final_{i}[{}];",
            actor.dtype.c_name(),
            actor.width.max(1)
        ));
    }
    w.open("static void recordResult(void) {");
    for (i, id) in flat.root_outports.iter().enumerate() {
        let actor = flat.actor(*id);
        let sig = flat.signal(actor.inputs[0]);
        for e in 0..actor.width {
            let raw = if sig.width == 1 {
                sig.name.clone()
            } else {
                format!("{}[{e}]", sig.name)
            };
            let cast = cast_expr(&raw, sig.dtype, actor.dtype);
            w.line(format!("accmos_final_{i}[{e}] = {cast};"));
            w.line(format!(
                "accmos_digest_u64({});",
                bits_expr(&format!("accmos_final_{i}[{e}]"), actor.dtype)
            ));
        }
    }
    w.close("}");
    w.blank();

    // ---- host exchange (Rapid Accelerator data transfer) ---------------------------------------------
    if opts.host_sync {
        let total: usize = flat.signals.iter().map(|s| s.width).sum();
        w.comment("host-side mirror: per-step data transfer with the modeling environment");
        w.line(format!("static uint64_t accmos_host_buf[{}];", total.max(1)));
        w.line("static int accmos_host_fd = -1;");
        w.line("static int accmos_host_rx = -1;");
        w.open("__attribute__((noinline)) static void accmos_host_exchange(void) {");
        let mut off = 0usize;
        for sig in &flat.signals {
            for e in 0..sig.width {
                let raw =
                    if sig.width == 1 { sig.name.clone() } else { format!("{}[{e}]", sig.name) };
                w.line(format!("accmos_host_buf[{off}] = {};", bits_expr(&raw, sig.dtype)));
                off += 1;
            }
        }
        w.comment("IPC boundary: bidirectional per-step exchange with the host");
        w.line(
            "if (accmos_host_fd >= 0) { ssize_t n = write(accmos_host_fd, accmos_host_buf, sizeof accmos_host_buf); (void)n; }",
        );
        w.line(
            "if (accmos_host_rx >= 0) { ssize_t n = read(accmos_host_rx, accmos_host_buf, sizeof accmos_host_buf); (void)n; }",
        );
        w.line("__asm__ volatile(\"\" : : \"r\"(accmos_host_buf) : \"memory\");");
        w.close("}");
        w.blank();
    }

    // ---- outputResult -------------------------------------------------------------------------------------
    w.open("static void outputResult(uint64_t steps, uint64_t ns) {");
    w.line(format!("printf(\"ACCMOS:MODEL {}\\n\");", flat.name));
    w.line("printf(\"ACCMOS:STEPS %llu\\n\", (unsigned long long)steps);");
    w.line("printf(\"ACCMOS:TIME_NS %llu\\n\", (unsigned long long)ns);");
    if cov {
        for kind in CoverageKind::ALL {
            w.line(format!(
                "accmos_print_cov(\"{}\", accmos_cov_{}, {});",
                kind.ident(),
                kind.ident(),
                pre.coverage.map.total(kind)
            ));
        }
        // Statically-unsatisfiable points: totals above stay untouched
        // (the interpreter must agree bit-for-bit); these side-channel
        // lines let reports subtract provably-unreachable objectives.
        if let Some(analysis) = ctx.analysis.as_ref() {
            for kind in CoverageKind::ALL {
                let n = analysis.unsatisfiable_count(kind);
                if n > 0 {
                    w.line(format!("printf(\"ACCMOS:UNSAT {} {n}\\n\");", kind.ident()));
                }
            }
        }
    }
    if !ctx.diag_sites.is_empty() {
        w.open(format!("for (int s = 0; s < {}; s++) {{", ctx.diag_sites.len()));
        w.open("if (accmos_diag_count[s]) {");
        w.line("printf(\"ACCMOS:DIAG %s %s %llu %llu\\n\", accmos_diag_kind_name[s], accmos_diag_actor_name[s], (unsigned long long)accmos_diag_first[s], (unsigned long long)accmos_diag_count[s]);");
        w.close("}");
        w.close("}");
    }
    if !opts.custom.is_empty() {
        w.open(format!("for (int s = 0; s < {}; s++) {{", opts.custom.len()));
        w.open("if (accmos_custom_count[s]) {");
        w.line("printf(\"ACCMOS:CUSTOM %s %s %llu %llu\\n\", accmos_custom_name[s], accmos_custom_actor[s], (unsigned long long)accmos_custom_first[s], (unsigned long long)accmos_custom_count[s]);");
        w.close("}");
        w.close("}");
    }
    if log_limit > 0 {
        w.open("for (int s = 0; s < accmos_log_len; s++) {");
        w.line("printf(\"ACCMOS:SIGNAL %s %llu %s %d\", accmos_log[s].path, (unsigned long long)accmos_log[s].step, accmos_log[s].type, accmos_log[s].length);");
        w.open("for (int e = 0; e < accmos_log[s].length; e++) {");
        w.line("printf(\" %llx\", (unsigned long long)accmos_log[s].bits[e]);");
        w.close("}");
        w.line("printf(\"\\n\");");
        w.close("}");
    }
    for (i, id) in flat.root_outports.iter().enumerate() {
        let actor = flat.actor(*id);
        w.line(format!(
            "printf(\"ACCMOS:OUT {} {} {}\");",
            actor.path.name(),
            actor.dtype.mnemonic(),
            actor.width
        ));
        for e in 0..actor.width {
            w.line(format!(
                "printf(\" %llx\", (unsigned long long){});",
                bits_expr(&format!("accmos_final_{i}[{e}]"), actor.dtype)
            ));
        }
        w.line("printf(\"\\n\");");
    }
    w.line("printf(\"ACCMOS:DIGEST %016llx\\n\", (unsigned long long)accmos_digest);");
    w.line("printf(\"ACCMOS:END\\n\");");
    w.close("}");
    w.blank();

    // ---- main (Figure 5 part 1) ------------------------------------------------------------------------------
    if !flat.root_inports.is_empty() {
        let codes: Vec<String> = flat
            .root_inports
            .iter()
            .map(|id| dtype_code(flat.actor(*id).dtype).to_string())
            .collect();
        w.line(format!(
            "static const int accmos_tc_want[] = {{ {} }};",
            codes.join(", ")
        ));
    }
    w.open("int main(int argc, char* argv[]) {");
    w.line("uint64_t total_step = (argc > 1) ? strtoull(argv[1], NULL, 10) : 1;");
    w.line("const char* tc_path = NULL;");
    w.line("int stop_on_diag = 0;");
    w.line("uint64_t budget_ms = 0;");
    w.open("for (int a = 2; a < argc; a++) {");
    w.line("if (strcmp(argv[a], \"--tests\") == 0 && a + 1 < argc) tc_path = argv[++a];");
    w.line("else if (strcmp(argv[a], \"--stop-on-diag\") == 0) stop_on_diag = 1;");
    w.line("else if (strcmp(argv[a], \"--budget-ms\") == 0 && a + 1 < argc) budget_ms = strtoull(argv[++a], NULL, 10);");
    w.close("}");
    if flat.root_inports.is_empty() {
        w.line("TestCase_Init(tc_path, 0, NULL);");
    } else {
        w.line(format!(
            "TestCase_Init(tc_path, {}, accmos_tc_want);",
            flat.root_inports.len()
        ));
    }
    if opts.host_sync {
        w.line("accmos_host_fd = open(\"/dev/null\", O_WRONLY);");
        w.line("accmos_host_rx = open(\"/dev/zero\", O_RDONLY);");
    }
    w.line("uint64_t executed = 0;");
    w.line("uint64_t t0 = accmos_now_ns();");
    w.comment("Simulation Loop of model");
    w.open("for (uint64_t step = 0; step < total_step; step++) {");
    w.line("if (budget_ms && (step & 511) == 0 && accmos_now_ns() - t0 >= budget_ms * 1000000ULL) break;");
    w.line("accmos_step = step;");
    w.line("Model_Exe();");
    if cov && !flat.groups.is_empty() {
        w.line("Coverage_Groups();");
    }
    w.line("recordResult();");
    w.line("Model_Update();");
    if opts.host_sync {
        w.line("accmos_host_exchange();");
    }
    w.line("executed = step + 1;");
    w.line("if (stop_on_diag && accmos_diag_total) break;");
    w.close("}");
    w.line("uint64_t ns = accmos_now_ns() - t0;");
    w.line("outputResult(executed, ns);");
    w.line("return 0;");
    w.close("}");

    let mut unsat_points = [0usize; 4];
    if let Some(analysis) = ctx.analysis.as_ref() {
        for (i, kind) in CoverageKind::ALL.iter().enumerate() {
            unsat_points[i] = analysis.unsatisfiable_count(*kind);
        }
    }
    GeneratedProgram {
        model: flat.name.clone(),
        main_c: w.finish(),
        runtime_h: RUNTIME_HEADER.to_owned(),
        diag_sites: ctx.diag_sites,
        custom_sites: opts.custom.iter().map(|p| (p.name.clone(), p.actor.clone())).collect(),
        inport_dtypes: flat.root_inports.iter().map(|id| flat.actor(*id).dtype).collect(),
        pruned_sites: ctx.pruned_sites,
        unsat_points,
        analyze_time: ctx.analyze_time,
    }
}

/// Bit-pattern expression matching `Scalar::to_bits_u64`.
fn bits_expr(expr: &str, dt: DataType) -> String {
    match dt {
        DataType::F64 => format!("accmos_bits_f64({expr})"),
        DataType::F32 => format!("accmos_bits_f32({expr})"),
        DataType::Bool | DataType::U8 | DataType::U16 | DataType::U32 | DataType::U64 => {
            format!("(uint64_t)({expr})")
        }
        DataType::I8 => format!("(uint64_t)(uint8_t)({expr})"),
        DataType::I16 => format!("(uint64_t)(uint16_t)({expr})"),
        DataType::I32 => format!("(uint64_t)(uint32_t)({expr})"),
        DataType::I64 => format!("(uint64_t)({expr})"),
    }
}

fn dtype_code(dt: DataType) -> usize {
    DataType::ALL.iter().position(|t| *t == dt).expect("known dtype")
}

fn indent_block(code: &str, levels: usize) -> String {
    let pad = "    ".repeat(levels);
    code.lines()
        .map(|l| if l.is_empty() { String::from("\n") } else { format!("{pad}{l}\n") })
        .collect()
}

const WIDE_HELPERS: &str = r#"/* saturating / wrapping __int128 helpers (match i128 in accmos-interp) */
static inline accmos_wide accmos_wide_satmul(accmos_wide a, accmos_wide b) {
    accmos_wide r;
    if (__builtin_mul_overflow(a, b, &r)) {
        accmos_wide mx = (accmos_wide)(((unsigned __int128)-1) >> 1);
        return ((a < 0) ^ (b < 0)) ? -mx - 1 : mx;
    }
    return r;
}
static inline accmos_wide accmos_wide_wdiv(accmos_wide a, accmos_wide b) {
    if (b == -1) {
        return (accmos_wide)(0 - (unsigned __int128)a);
    }
    return a / b;
}
"#;
