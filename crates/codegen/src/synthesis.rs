//! Simulation code synthesis (paper §3.3).
//!
//! Composes the instrumented actor code in execution order into the model
//! system function (`Model_Exe`, Figure 5 part 2), adds the end-of-step
//! state update, and wraps everything in a main function implementing the
//! simulation loop with test-case import (`TestCase_Init` /
//! `takeTestCase`), `recordResult()` and `outputResult()` (Figure 5
//! part 1).

use crate::cwriter::CodeBuf;
use crate::gen::{
    cast_expr, cast_f64_expr, emit_actor, f64_lit, state_decls, state_decls_lanes, store_var,
    DiagSite, EmitCtx, EmittedActor,
};
use crate::options::CodegenOptions;
use crate::runtime::RUNTIME_HEADER;
use accmos_analyze::GroupActivity;
use accmos_graph::PreprocessedModel;
use accmos_ir::{ActorKind, CoverageKind, DataType, SystemKind};

/// A generated simulator: source files plus the site tables needed to
/// interpret its output.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedProgram {
    /// Model name.
    pub model: String,
    /// The main C translation unit (`<model>.c`).
    pub main_c: String,
    /// The fixed runtime support header (`accmos_rt.h`).
    pub runtime_h: String,
    /// Diagnostic sites, in site-id order.
    pub diag_sites: Vec<DiagSite>,
    /// Custom probe `(name, actor)` pairs, in site-id order.
    pub custom_sites: Vec<(String, String)>,
    /// Root input port data types (test-file column types).
    pub inport_dtypes: Vec<DataType>,
    /// Diagnosis checks dropped because the interval analysis proved they
    /// can never fire (`CodegenOptions::prune_proven_safe`).
    pub pruned_sites: usize,
    /// Per-metric coverage points the analysis proved unsatisfiable, in
    /// [`CoverageKind::ALL`] order; reported as `ACCMOS:UNSAT` lines so
    /// coverage summaries can show reachable denominators.
    pub unsat_points: [usize; 4],
    /// Wall-clock time the proven-safe interval analysis took during
    /// generation (zero when pruning is disabled). Surfaced so telemetry
    /// can report the analyze phase separately from synthesis proper.
    pub analyze_time: std::time::Duration,
    /// Effective lane width the simulator was generated with: the number
    /// of test vectors it steps per schedule iteration (1 = classic
    /// scalar simulator). A lane-N simulator expects 0 or N `--tests`
    /// arguments, one per lane.
    pub lanes: usize,
    /// Actors whose calculation body was replaced by literal stores
    /// (analyzer-proven constant outputs).
    pub folded_actors: usize,
    /// Actors elided entirely (analyzer-proven dead: never-active group).
    pub elided_actors: usize,
    /// Branchy templates emitted with only their proven-taken arm.
    pub specialized_arms: usize,
    /// Actors whose body may join a fused (auto-vectorizable) lane
    /// segment. Only meaningful in lane mode; together with
    /// `total_actors` this is the fused-coverage fraction the table3
    /// harness reports.
    pub fused_actors: usize,
    /// Total actors in the emitted schedule.
    pub total_actors: usize,
}

impl GeneratedProgram {
    /// The generated files as `(file name, contents)` pairs.
    pub fn files(&self) -> Vec<(String, &str)> {
        vec![
            ("accmos_rt.h".to_owned(), self.runtime_h.as_str()),
            (format!("{}.c", sanitize(&self.model)), self.main_c.as_str()),
        ]
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Generate the complete simulation program for a preprocessed model.
pub fn generate(pre: &PreprocessedModel, opts: &CodegenOptions) -> GeneratedProgram {
    let mut ctx = EmitCtx::new(pre, opts);
    let flat = &pre.flat;
    let cov = opts.instrument && opts.coverage;
    let lanes = opts.effective_lanes();

    // ---- per-actor code + diagnostic functions (Algorithm 1) ------------
    let mut actor_code = Vec::new();
    let mut diag_fns = Vec::new();
    for actor in flat.ordered_actors() {
        let emitted = emit_actor(&mut ctx, actor);
        if !emitted.diag_code.is_empty() {
            diag_fns.push(emitted.diag_code.clone());
        }
        actor_code.push(emitted);
    }

    // Lane execution shape. The per-step segmented form (every schedule
    // iteration advances all lanes, fused runs in vectorizable loops)
    // only pays off when the schedule is dominated by provably fused
    // actors; on branchy or diag-heavy schedules each lane-loop boundary
    // forces live signals through their `_L` arrays and benchmarks
    // 10-40% slower than N scalar runs. Those models get the lane-blocked
    // driver instead: each lane advances `ACCMOS_BLOCK` steps at a time,
    // so the per-lane inner loop compiles exactly like the scalar
    // simulator (state register-allocated across steps) and the run costs
    // one process launch instead of N. Both shapes are semantically
    // identical — the proof only ever selects between equivalent forms.
    let fused = actor_code.iter().filter(|a| a.fused).count();
    let lane_blocked = lanes > 1 && fused * 4 < actor_code.len() * 3;
    let step_fn_lanes = lanes > 1 && !lane_blocked;
    let segments = if step_fn_lanes { lane_segments(&actor_code) } else { Vec::new() };
    let prof = opts
        .profile
        .then(|| profile_plan(&actor_code, &segments, step_fn_lanes));

    let mut w = CodeBuf::new();
    w.comment(format!(
        "AccMoS-RS generated simulation code for model `{}` ({} actors, {} signals)",
        flat.name,
        flat.actors.len(),
        flat.signals.len()
    ));
    w.line(format!("#define ACCMOS_ACTOR_BITS {}", pre.coverage.map.total(CoverageKind::Actor)));
    w.line(format!("#define ACCMOS_COND_BITS {}", pre.coverage.map.total(CoverageKind::Condition)));
    w.line(format!("#define ACCMOS_DEC_BITS {}", pre.coverage.map.total(CoverageKind::Decision)));
    w.line(format!("#define ACCMOS_MCDC_BITS {}", pre.coverage.map.total(CoverageKind::Mcdc)));
    w.line(format!("#define ACCMOS_DIAG_SITES {}", ctx.diag_sites.len()));
    w.line(format!("#define ACCMOS_CUSTOM_SITES {}", opts.custom.len()));
    let log_limit = if opts.instrument { opts.signal_log_limit } else { 0 };
    w.line(format!("#define ACCMOS_LOG_LIMIT {log_limit}"));
    let max_width = flat.signals.iter().map(|s| s.width).max().unwrap_or(1).max(1);
    w.line(format!("#define ACCMOS_MAX_WIDTH {max_width}"));
    w.line(format!("#define ACCMOS_TC_COLS {}", flat.root_inports.len()));
    if lanes > 1 {
        w.line(format!("#define ACCMOS_LANES {lanes}"));
        if lane_blocked {
            w.line("#define ACCMOS_BLOCK 4096");
        }
    }
    w.line("#include \"accmos_rt.h\"");
    w.blank();

    // ---- saturating __int128 helpers used by overflow recomputation ------
    w.raw(WIDE_HELPERS);
    w.blank();

    // ---- signal variables -------------------------------------------------
    // Lane mode: structure-of-arrays, one copy per lane, with a macro
    // routing the plain name through the current-lane index so all actor
    // templates compile unchanged.
    w.comment("signal variables (one per actor output port)");
    for sig in &flat.signals {
        let t = sig.dtype.c_name();
        if lanes > 1 {
            let elems = if sig.width == 1 { String::new() } else { format!("[{}]", sig.width) };
            w.line(format!("static {t} {}_L[ACCMOS_LANES]{elems};", sig.name));
            w.line(format!("#define {0} {0}_L[accmos_lane]", sig.name));
        } else if sig.width == 1 {
            w.line(format!("static {t} {};", sig.name));
        } else {
            w.line(format!("static {t} {}[{}];", sig.name, sig.width));
        }
    }
    w.blank();

    // ---- data stores --------------------------------------------------------
    if !flat.stores.is_empty() {
        w.comment("global data stores");
        for store in &flat.stores {
            let init = store.init.cast(store.dtype).c_literal();
            if lanes > 1 {
                let var = store_var(&store.name);
                let items = vec![init; lanes].join(", ");
                w.line(format!(
                    "static {} {var}_L[ACCMOS_LANES] = {{ {items} }};",
                    store.dtype.c_name()
                ));
                w.line(format!("#define {var} {var}_L[accmos_lane]"));
            } else {
                w.line(format!(
                    "static {} {} = {init};",
                    store.dtype.c_name(),
                    store_var(&store.name)
                ));
            }
        }
        w.blank();
    }

    // ---- actor state ----------------------------------------------------------
    w.comment("actor state");
    for actor in &flat.actors {
        let decls = if lanes > 1 {
            state_decls_lanes(&ctx, actor)
        } else {
            state_decls(&ctx, actor)
        };
        for decl in decls {
            w.line(decl);
        }
    }
    w.blank();

    // ---- conditional-execution groups -------------------------------------------
    if !flat.groups.is_empty() {
        w.comment("conditional-execution groups (enabled/triggered subsystems)");
        for g in &flat.groups {
            if lanes > 1 {
                w.line(format!("static uint8_t g{}_prev_L[ACCMOS_LANES];", g.id.0));
                w.line(format!("#define g{0}_prev g{0}_prev_L[accmos_lane]", g.id.0));
            } else {
                w.line(format!("static uint8_t g{}_prev = 0;", g.id.0));
            }
        }
        for g in &flat.groups {
            // Analyzer-specialized guards: a group proven always active
            // (enabled, control interval excludes zero, parent always
            // active too) or never active (control pinned to zero)
            // collapses to a constant — the activity lattice matches the
            // guard's runtime truth value exactly, so every consumer
            // (actor guards, Merge source selection, parent chains,
            // Model_Update) specializes consistently from this one
            // definition site.
            let expr = match ctx.spec().map(|a| a.group_activity(g.id)) {
                Some(GroupActivity::Always) => "1".to_owned(),
                Some(GroupActivity::Never) => "0".to_owned(),
                _ => {
                    let ctrl = &flat.signal(g.control).name;
                    let own = match g.kind {
                        SystemKind::Enabled => format!("({ctrl} != 0)"),
                        SystemKind::Triggered => {
                            format!("(({ctrl} != 0) && !g{}_prev)", g.id.0)
                        }
                        SystemKind::Plain => "1".to_owned(),
                    };
                    match g.parent {
                        Some(p) => format!("g{}_active() && {own}", p.0),
                        None => own,
                    }
                }
            };
            w.line(format!(
                "static inline int g{}_active(void) {{ return {expr}; }}",
                g.id.0
            ));
        }
        w.blank();
    }

    // ---- diagnostic site tables ----------------------------------------------------
    if !ctx.diag_sites.is_empty() {
        w.comment("diagnostic sites");
        let kinds: Vec<String> =
            ctx.diag_sites.iter().map(|s| format!("\"{}\"", s.kind.ident())).collect();
        let actors: Vec<String> =
            ctx.diag_sites.iter().map(|s| format!("\"{}\"", s.actor)).collect();
        w.line(format!(
            "static const char* const accmos_diag_kind_name[] = {{ {} }};",
            kinds.join(", ")
        ));
        w.line(format!(
            "static const char* const accmos_diag_actor_name[] = {{ {} }};",
            actors.join(", ")
        ));
        w.blank();
    }
    if !opts.custom.is_empty() {
        w.comment("custom signal diagnosis sites");
        let names: Vec<String> =
            opts.custom.iter().map(|p| format!("\"{}\"", p.name)).collect();
        let actors: Vec<String> =
            opts.custom.iter().map(|p| format!("\"{}\"", p.actor)).collect();
        w.line(format!(
            "static const char* const accmos_custom_name[] = {{ {} }};",
            names.join(", ")
        ));
        w.line(format!(
            "static const char* const accmos_custom_actor[] = {{ {} }};",
            actors.join(", ")
        ));
        w.blank();
    }

    // ---- self-profiling site tables ----------------------------------------------------
    if let Some(p) = prof.as_ref() {
        if !p.names.is_empty() {
            w.comment("self-profiling sites: every invocation counts, but the clock is");
            w.comment("only read on sampled steps — two monotonic reads per site per step");
            w.comment("cost more than a small actor's whole body, so full-rate timing");
            w.comment("would slow tiny-actor models by 50x+. The period is prime so the");
            w.comment("sample never aliases a power-of-two model cycle.");
            w.line(format!("#define ACCMOS_PROF_PERIOD {PROF_SAMPLE_PERIOD}"));
            w.line(format!("static uint64_t accmos_prof_ns[{}];", p.names.len()));
            w.line(format!("static uint64_t accmos_prof_calls[{}];", p.names.len()));
            w.line(format!("static uint64_t accmos_prof_timed[{}];", p.names.len()));
            w.line("static int accmos_prof_on;");
            let names: Vec<String> = p.names.iter().map(|n| format!("\"{n}\"")).collect();
            w.line(format!(
                "static const char* const accmos_prof_name[] = {{ {} }};",
                names.join(", ")
            ));
            w.blank();
        }
    }

    // ---- dynamically generated diagnostic functions -----------------------------------
    if !diag_fns.is_empty() {
        w.comment("diagnostic function template instantiations (paper Figure 4)");
        for f in &diag_fns {
            w.raw(f);
            w.blank();
        }
    }

    // Integrator end-of-step update diagnostics.
    let update_sites = ctx.update_sites.clone();
    for (actor_idx, site) in &update_sites {
        let actor = &flat.actors[*actor_idx];
        let key = actor.path.key();
        let t = actor.dtype.c_name();
        if actor.width == 1 {
            w.open(format!(
                "static void diagnose_{key}_update({t} acc, {t} incr) {{"
            ));
            w.line(format!(
                "if ((accmos_wide)({t})(acc + incr) != (accmos_wide)acc + (accmos_wide)incr) accmos_diag_hit({site});"
            ));
            w.close("}");
        } else {
            w.open(format!(
                "static void diagnose_{key}_update(const {t}* acc, const {t}* incr) {{"
            ));
            w.line("int ovf = 0;");
            w.open(format!("for (int e = 0; e < {}; e++) {{", actor.width));
            w.line(format!(
                "if ((accmos_wide)({t})(acc[e] + incr[e]) != (accmos_wide)acc[e] + (accmos_wide)incr[e]) ovf = 1;"
            ));
            w.close("}");
            w.line(format!("if (ovf) accmos_diag_hit({site});"));
            w.close("}");
        }
        w.blank();
    }

    // ---- model system function (Figure 5 part 2) -----------------------------------------
    w.open("static void Model_Exe(void) {");
    if prof.as_ref().is_some_and(|p| !p.names.is_empty()) {
        // Recomputed per call: in the lane-blocked shape Model_Exe runs
        // once per lane per step, and the sample decision only depends on
        // the step, so every lane of a step agrees.
        w.line("accmos_prof_on = (accmos_step % ACCMOS_PROF_PERIOD) == 0;");
    }
    if step_fn_lanes {
        emit_lane_segments(&mut w, &actor_code, &segments, prof.as_ref());
    } else {
        // Scalar simulator, or lane-blocked shape: the driver fixes
        // `accmos_lane` and the body runs for that lane alone. Hoisted
        // coverage writes (only produced for fused actors in lane mode)
        // return to their in-line position.
        for (idx, emitted) in actor_code.iter().enumerate() {
            match prof.as_ref().and_then(|p| p.actor_site[idx]) {
                Some(site) => {
                    w.open("{");
                    w.line("uint64_t accmos_prof_t0 = accmos_prof_on ? accmos_now_ns() : 0;");
                    w.raw(indent_block(&emitted.code, 2));
                    emit_prof_close(&mut w, site);
                    w.close("}");
                }
                None => {
                    w.raw(indent_block(&emitted.code, 1));
                }
            }
            for cov in &emitted.cov_hoist {
                w.line(cov);
            }
        }
    }
    w.close("}");
    w.blank();

    // ---- end-of-step state update ------------------------------------------------------------
    w.open("static void Model_Update(void) {");
    if step_fn_lanes {
        w.open("for (accmos_lane = 0; accmos_lane < ACCMOS_LANES; accmos_lane++) {");
    }
    for actor in flat.ordered_actors() {
        if !actor.kind.breaks_algebraic_loops() {
            continue;
        }
        // A proven-dead actor's update is guarded by an always-false
        // `g_active()`; its body was elided, so elide the update too.
        if ctx.spec().is_some_and(|a| !a.is_live(actor.id)) {
            continue;
        }
        let key = actor.path.key();
        let t = actor.dtype.c_name();
        let width = actor.width;
        let refs_in = |idx: &str| -> String {
            let sig = flat.signal(actor.inputs[0]);
            let raw = if sig.width == 1 { sig.name.clone() } else { format!("{}[{idx}]", sig.name) };
            cast_expr(&raw, sig.dtype, actor.dtype)
        };
        let guard = match actor.group {
            Some(g) => format!("g{}_active()", g.0),
            None => "1".to_owned(),
        };
        w.open(format!("if ({guard}) {{"));
        match &actor.kind {
            ActorKind::UnitDelay { .. } | ActorKind::Memory { .. } => {
                if width == 1 {
                    w.line(format!("{key}_state = {};", refs_in("0")));
                } else {
                    w.open(format!("for (int e = 0; e < {width}; e++) {{"));
                    w.line(format!("{key}_state[e] = {};", refs_in("e")));
                    w.close("}");
                }
            }
            ActorKind::Delay { steps, .. } => {
                if width == 1 {
                    w.line(format!("{key}_buf[{key}_pos] = {};", refs_in("0")));
                } else {
                    w.open(format!("for (int e = 0; e < {width}; e++) {{"));
                    w.line(format!("{key}_buf[{key}_pos * {width} + e] = {};", refs_in("e")));
                    w.close("}");
                }
                w.line(format!("{key}_pos = ({key}_pos + 1) % {steps};"));
            }
            ActorKind::DiscreteIntegrator { gain, .. } => {
                let site =
                    update_sites.iter().find(|(a, _)| *a == actor.id.0).map(|(_, s)| *s);
                let incr_expr = |idx: &str| -> String {
                    if *gain == 1.0 {
                        refs_in(idx)
                    } else {
                        cast_f64_expr(
                            &format!("({} * (double)({}))", f64_lit(*gain), refs_in(idx)),
                            actor.dtype,
                        )
                    }
                };
                if width == 1 {
                    w.line(format!("{t} incr = {};", incr_expr("0")));
                    if site.is_some() {
                        w.line(format!("diagnose_{key}_update({key}_acc, incr);"));
                    }
                    w.line(format!("{key}_acc = ({t})({key}_acc + incr);"));
                } else {
                    w.line(format!("{t} incr[{width}];"));
                    w.open(format!("for (int e = 0; e < {width}; e++) {{"));
                    w.line(format!("incr[e] = {};", incr_expr("e")));
                    w.close("}");
                    if site.is_some() {
                        w.line(format!("diagnose_{key}_update({key}_acc, incr);"));
                    }
                    w.open(format!("for (int e = 0; e < {width}; e++) {{"));
                    w.line(format!("{key}_acc[e] = ({t})({key}_acc[e] + incr[e]);"));
                    w.close("}");
                }
            }
            _ => {}
        }
        w.close("}");
    }
    for g in &flat.groups {
        let ctrl = &flat.signal(g.control).name;
        w.line(format!("g{}_prev = (uint8_t)({ctrl} != 0);", g.id.0));
    }
    if step_fn_lanes {
        w.close("}");
    }
    w.close("}");
    w.blank();

    // ---- per-step group condition coverage --------------------------------------------------------
    if cov && !flat.groups.is_empty() {
        w.open("static void Coverage_Groups(void) {");
        if step_fn_lanes {
            w.open("for (accmos_lane = 0; accmos_lane < ACCMOS_LANES; accmos_lane++) {");
        }
        for g in &flat.groups {
            let ctrl = &flat.signal(g.control).name;
            let own = match g.kind {
                SystemKind::Enabled => format!("({ctrl} != 0)"),
                SystemKind::Triggered => format!("(({ctrl} != 0) && !g{}_prev)", g.id.0),
                SystemKind::Plain => "1".to_owned(),
            };
            let (t_bit, _) = pre.coverage.group_bits(g.id);
            match g.parent {
                Some(p) => {
                    w.open(format!("if (g{}_active()) {{", p.0));
                    w.line(format!(
                        "ACCMOS_COV(accmos_cov_cond, {t_bit} + ({own} ? 0 : 1));"
                    ));
                    w.close("}");
                }
                None => {
                    w.line(format!(
                        "ACCMOS_COV(accmos_cov_cond, {t_bit} + ({own} ? 0 : 1));"
                    ));
                }
            }
        }
        if step_fn_lanes {
            w.close("}");
        }
        w.close("}");
        w.blank();
    }

    // ---- recordResult: output digest + final values ------------------------------------------------
    w.comment("final root-output values");
    for (i, id) in flat.root_outports.iter().enumerate() {
        let actor = flat.actor(*id);
        if lanes > 1 {
            w.line(format!(
                "static {} accmos_final_{i}_L[ACCMOS_LANES][{}];",
                actor.dtype.c_name(),
                actor.width.max(1)
            ));
            w.line(format!("#define accmos_final_{i} accmos_final_{i}_L[accmos_lane]"));
        } else {
            w.line(format!(
                "static {} accmos_final_{i}[{}];",
                actor.dtype.c_name(),
                actor.width.max(1)
            ));
        }
    }
    w.open("static void recordResult(void) {");
    if step_fn_lanes {
        w.open("for (accmos_lane = 0; accmos_lane < ACCMOS_LANES; accmos_lane++) {");
    }
    for (i, id) in flat.root_outports.iter().enumerate() {
        let actor = flat.actor(*id);
        let sig = flat.signal(actor.inputs[0]);
        for e in 0..actor.width {
            let raw = if sig.width == 1 {
                sig.name.clone()
            } else {
                format!("{}[{e}]", sig.name)
            };
            let cast = cast_expr(&raw, sig.dtype, actor.dtype);
            w.line(format!("accmos_final_{i}[{e}] = {cast};"));
            w.line(format!(
                "accmos_digest_u64({});",
                bits_expr(&format!("accmos_final_{i}[{e}]"), actor.dtype)
            ));
        }
    }
    if opts.sabotage_digest {
        w.comment("TEST-ONLY sabotage: one extra digest fold, so this build");
        w.comment("diverges from the interpretive reference on every model");
        w.line("accmos_digest_u64(1u);");
    }
    if step_fn_lanes {
        w.close("}");
    }
    w.close("}");
    w.blank();

    // ---- host exchange (Rapid Accelerator data transfer) ---------------------------------------------
    if opts.host_sync {
        let total: usize = flat.signals.iter().map(|s| s.width).sum();
        w.comment("host-side mirror: per-step data transfer with the modeling environment");
        w.line(format!("static uint64_t accmos_host_buf[{}];", total.max(1)));
        w.line("static int accmos_host_fd = -1;");
        w.line("static int accmos_host_rx = -1;");
        w.open("__attribute__((noinline)) static void accmos_host_exchange(void) {");
        let mut off = 0usize;
        for sig in &flat.signals {
            for e in 0..sig.width {
                let raw =
                    if sig.width == 1 { sig.name.clone() } else { format!("{}[{e}]", sig.name) };
                w.line(format!("accmos_host_buf[{off}] = {};", bits_expr(&raw, sig.dtype)));
                off += 1;
            }
        }
        w.comment("IPC boundary: bidirectional per-step exchange with the host");
        w.line(
            "if (accmos_host_fd >= 0) { ssize_t n = write(accmos_host_fd, accmos_host_buf, sizeof accmos_host_buf); (void)n; }",
        );
        w.line(
            "if (accmos_host_rx >= 0) { ssize_t n = read(accmos_host_rx, accmos_host_buf, sizeof accmos_host_buf); (void)n; }",
        );
        w.line("__asm__ volatile(\"\" : : \"r\"(accmos_host_buf) : \"memory\");");
        w.close("}");
        w.blank();
    }

    // ---- outputResult -------------------------------------------------------------------------------------
    // All records route through accmos_out, so the same translation unit
    // serves both the standalone executable (stdout) and the dylib host
    // (emit callback) with byte-identical record text.
    w.open("static void outputResult(uint64_t steps, uint64_t ns) {");
    w.line(format!("accmos_out(\"ACCMOS:MODEL {}\\n\");", flat.name));
    w.line("accmos_out(\"ACCMOS:STEPS %llu\\n\", (unsigned long long)steps);");
    w.line("accmos_out(\"ACCMOS:TIME_NS %llu\\n\", (unsigned long long)ns);");
    if lanes > 1 {
        w.line(format!("accmos_out(\"ACCMOS:LANES {lanes}\\n\");"));
    }
    // Profiling records are global (counters are shared across lanes —
    // lanes run sequentially in one thread), so they print before any
    // LANE marker.
    if let Some(p) = prof.as_ref() {
        if !p.names.is_empty() {
            w.open(format!("for (int s = 0; s < {}; s++) {{", p.names.len()));
            w.line("accmos_out(\"ACCMOS:PROF actor=%s ns=%llu calls=%llu timed=%llu\\n\", accmos_prof_name[s], (unsigned long long)accmos_prof_ns[s], (unsigned long long)accmos_prof_calls[s], (unsigned long long)accmos_prof_timed[s]);");
            w.close("}");
        }
    }
    if cov {
        for kind in CoverageKind::ALL {
            w.line(format!(
                "accmos_print_cov(\"{}\", accmos_cov_{}, {});",
                kind.ident(),
                kind.ident(),
                pre.coverage.map.total(kind)
            ));
        }
        // Statically-unsatisfiable points: totals above stay untouched
        // (the interpreter must agree bit-for-bit); these side-channel
        // lines let reports subtract provably-unreachable objectives.
        if let Some(analysis) = ctx.analysis.as_ref() {
            for kind in CoverageKind::ALL {
                let n = analysis.unsatisfiable_count(kind);
                if n > 0 {
                    w.line(format!("accmos_out(\"ACCMOS:UNSAT {} {n}\\n\");", kind.ident()));
                }
            }
        }
    }
    // Per-record emission helpers shared by the scalar layout and the
    // per-lane sections of the lane layout.
    let emit_outs = |w: &mut CodeBuf| {
        for (i, id) in flat.root_outports.iter().enumerate() {
            let actor = flat.actor(*id);
            w.line(format!(
                "accmos_out(\"ACCMOS:OUT {} {} {}\");",
                actor.path.name(),
                actor.dtype.mnemonic(),
                actor.width
            ));
            for e in 0..actor.width {
                w.line(format!(
                    "accmos_out(\" %llx\", (unsigned long long){});",
                    bits_expr(&format!("accmos_final_{i}[{e}]"), actor.dtype)
                ));
            }
            w.line("accmos_out(\"\\n\");");
        }
    };
    let emit_signal_log = |w: &mut CodeBuf| {
        if log_limit > 0 {
            w.open("for (int s = 0; s < accmos_log_len; s++) {");
            w.line("accmos_out(\"ACCMOS:SIGNAL %s %llu %s %d\", accmos_log[s].path, (unsigned long long)accmos_log[s].step, accmos_log[s].type, accmos_log[s].length);");
            w.open("for (int e = 0; e < accmos_log[s].length; e++) {");
            w.line("accmos_out(\" %llx\", (unsigned long long)accmos_log[s].bits[e]);");
            w.close("}");
            w.line("accmos_out(\"\\n\");");
            w.close("}");
        }
    };
    if lanes > 1 {
        // Lane layout: an aggregate DIGEST (FNV fold of the lane digests)
        // before any LANE marker, then one lane-tagged section per lane
        // carrying that lane's DIAG/CUSTOM/SIGNAL/OUT/DIGEST records.
        w.line("uint64_t accmos_digest_all = 0xcbf29ce484222325ULL;");
        w.open("for (accmos_lane = 0; accmos_lane < ACCMOS_LANES; accmos_lane++) {");
        w.line("accmos_digest_all = accmos_fnv_fold(accmos_digest_all, accmos_digest);");
        w.close("}");
        w.line("accmos_out(\"ACCMOS:DIGEST %016llx\\n\", (unsigned long long)accmos_digest_all);");
        w.open("for (accmos_lane = 0; accmos_lane < ACCMOS_LANES; accmos_lane++) {");
        w.line("accmos_out(\"ACCMOS:LANE %d\\n\", accmos_lane);");
        if !ctx.diag_sites.is_empty() {
            w.open(format!("for (int s = 0; s < {}; s++) {{", ctx.diag_sites.len()));
            w.open("if (accmos_diag_count[s * ACCMOS_LANES + accmos_lane]) {");
            w.line("accmos_out(\"ACCMOS:DIAG %s %s %llu %llu\\n\", accmos_diag_kind_name[s], accmos_diag_actor_name[s], (unsigned long long)accmos_diag_first[s * ACCMOS_LANES + accmos_lane], (unsigned long long)accmos_diag_count[s * ACCMOS_LANES + accmos_lane]);");
            w.close("}");
            w.close("}");
        }
        if !opts.custom.is_empty() {
            w.open(format!("for (int s = 0; s < {}; s++) {{", opts.custom.len()));
            w.open("if (accmos_custom_count[s * ACCMOS_LANES + accmos_lane]) {");
            w.line("accmos_out(\"ACCMOS:CUSTOM %s %s %llu %llu\\n\", accmos_custom_name[s], accmos_custom_actor[s], (unsigned long long)accmos_custom_first[s * ACCMOS_LANES + accmos_lane], (unsigned long long)accmos_custom_count[s * ACCMOS_LANES + accmos_lane]);");
            w.close("}");
            w.close("}");
        }
        emit_signal_log(&mut w);
        emit_outs(&mut w);
        w.line("accmos_out(\"ACCMOS:DIGEST %016llx\\n\", (unsigned long long)accmos_digest);");
        w.close("}");
    } else {
        if !ctx.diag_sites.is_empty() {
            w.open(format!("for (int s = 0; s < {}; s++) {{", ctx.diag_sites.len()));
            w.open("if (accmos_diag_count[s]) {");
            w.line("accmos_out(\"ACCMOS:DIAG %s %s %llu %llu\\n\", accmos_diag_kind_name[s], accmos_diag_actor_name[s], (unsigned long long)accmos_diag_first[s], (unsigned long long)accmos_diag_count[s]);");
            w.close("}");
            w.close("}");
        }
        if !opts.custom.is_empty() {
            w.open(format!("for (int s = 0; s < {}; s++) {{", opts.custom.len()));
            w.open("if (accmos_custom_count[s]) {");
            w.line("accmos_out(\"ACCMOS:CUSTOM %s %s %llu %llu\\n\", accmos_custom_name[s], accmos_custom_actor[s], (unsigned long long)accmos_custom_first[s], (unsigned long long)accmos_custom_count[s]);");
            w.close("}");
            w.close("}");
        }
        emit_signal_log(&mut w);
        emit_outs(&mut w);
        w.line("accmos_out(\"ACCMOS:DIGEST %016llx\\n\", (unsigned long long)accmos_digest);");
    }
    w.line("accmos_out(\"ACCMOS:END\\n\");");
    w.close("}");
    w.blank();

    // ---- entry point + main (Figure 5 part 1) ----------------------------------------------------------------
    if !flat.root_inports.is_empty() {
        let codes: Vec<String> = flat
            .root_inports
            .iter()
            .map(|id| dtype_code(flat.actor(*id).dtype).to_string())
            .collect();
        w.line(format!(
            "static const int accmos_tc_want[] = {{ {} }};",
            codes.join(", ")
        ));
    }
    // The simulation driver is an exported, host-callable entry point and
    // `main` below is a thin argv parser over it: the standalone
    // executable and a dlopen'ing host run the identical driver, so the
    // two modes are digest-identical by construction. Returns: 0 = ok,
    // 2 = lane-count error, 3 = stale instance (this load's entry was
    // already consumed; module-static state is single-shot), 4 = canceled
    // via the cooperative flag (no records emitted).
    w.open("int accmos_entry(uint64_t total_step, const char *const *tc_path, int tc_n, int stop_on_diag, uint64_t budget_ms, const volatile int32_t *cancel, accmos_emit_fn emit, void *emit_ctx) {");
    w.line("static int accmos_entry_used = 0;");
    w.line("if (accmos_entry_used) return 3;");
    w.line("accmos_entry_used = 1;");
    w.line("accmos_emit_cb = emit;");
    w.line("accmos_emit_ctx = emit_ctx;");
    w.line("int canceled = 0;");
    if lanes > 1 {
        // One test file per lane, or none at all (zero stimulus in every
        // lane). Any other count is a caller error.
        w.open("if (tc_n != 0 && tc_n != ACCMOS_LANES) {");
        w.line(format!(
            "fprintf(stderr, \"accmos: lane simulator expects 0 or {lanes} --tests files, got %d\\n\", tc_n);"
        ));
        w.line("return 2;");
        w.close("}");
        w.line("accmos_lane_digest_init();");
        if flat.root_inports.is_empty() {
            w.line("TestCase_Init(NULL, 0, NULL);");
        } else {
            w.open("for (accmos_lane = 0; accmos_lane < ACCMOS_LANES; accmos_lane++) {");
            w.line(format!(
                "TestCase_Init(tc_n ? tc_path[accmos_lane] : NULL, {}, accmos_tc_want);",
                flat.root_inports.len()
            ));
            w.close("}");
        }
    } else if flat.root_inports.is_empty() {
        w.line("TestCase_Init(tc_n > 0 ? tc_path[0] : NULL, 0, NULL);");
    } else {
        w.line(format!(
            "TestCase_Init(tc_n > 0 ? tc_path[0] : NULL, {}, accmos_tc_want);",
            flat.root_inports.len()
        ));
    }
    if opts.host_sync {
        w.line("accmos_host_fd = open(\"/dev/null\", O_WRONLY);");
        w.line("accmos_host_rx = open(\"/dev/zero\", O_RDONLY);");
    }
    w.line("uint64_t executed = 0;");
    w.line("uint64_t t0 = accmos_now_ns();");
    if lane_blocked {
        // Lane-blocked driver: each lane advances a block of steps with
        // `accmos_lane` fixed, so the inner loop compiles exactly like
        // the scalar simulator. Budget, cancellation and
        // stop-on-diagnostic checks run at block granularity (all lanes
        // always complete the same number of steps, keeping per-lane
        // digests comparable to scalar runs).
        w.comment("Simulation Loop of model (lane-blocked)");
        w.open("for (uint64_t base = 0; base < total_step; base += ACCMOS_BLOCK) {");
        w.line("uint64_t n = total_step - base;");
        w.line("if (n > ACCMOS_BLOCK) n = ACCMOS_BLOCK;");
        w.line("if (budget_ms && accmos_now_ns() - t0 >= budget_ms * 1000000ULL) break;");
        w.line("if (cancel && *cancel) { canceled = 1; break; }");
        w.open("for (accmos_lane = 0; accmos_lane < ACCMOS_LANES; accmos_lane++) {");
        w.open("for (uint64_t k = 0; k < n; k++) {");
        w.line("accmos_step = base + k;");
        w.line("Model_Exe();");
        if cov && !flat.groups.is_empty() {
            w.line("Coverage_Groups();");
        }
        w.line("recordResult();");
        w.line("Model_Update();");
        if opts.host_sync {
            w.line("accmos_host_exchange();");
        }
        w.close("}");
        w.close("}");
        w.line("executed = base + n;");
        w.line("if (stop_on_diag && accmos_diag_total) break;");
        w.close("}");
    } else {
        // Budget and cancellation share one sparse check (every 512
        // steps) so neither perturbs the hot loop.
        w.comment("Simulation Loop of model");
        w.open("for (uint64_t step = 0; step < total_step; step++) {");
        w.open("if ((step & 511) == 0) {");
        w.line("if (budget_ms && accmos_now_ns() - t0 >= budget_ms * 1000000ULL) break;");
        w.line("if (cancel && *cancel) { canceled = 1; break; }");
        w.close("}");
        w.line("accmos_step = step;");
        w.line("Model_Exe();");
        if cov && !flat.groups.is_empty() {
            w.line("Coverage_Groups();");
        }
        w.line("recordResult();");
        w.line("Model_Update();");
        if opts.host_sync {
            w.line("accmos_host_exchange();");
        }
        w.line("executed = step + 1;");
        w.line("if (stop_on_diag && accmos_diag_total) break;");
        w.close("}");
    }
    w.line("uint64_t ns = accmos_now_ns() - t0;");
    if opts.host_sync {
        w.line("if (accmos_host_fd >= 0) { close(accmos_host_fd); accmos_host_fd = -1; }");
        w.line("if (accmos_host_rx >= 0) { close(accmos_host_rx); accmos_host_rx = -1; }");
    }
    w.open("if (canceled) {");
    w.line("accmos_tc_free();");
    w.line("return 4;");
    w.close("}");
    w.line("outputResult(executed, ns);");
    w.line("accmos_tc_free();");
    w.line("return 0;");
    w.close("}");
    w.blank();
    w.open("int main(int argc, char* argv[]) {");
    w.line("uint64_t total_step = (argc > 1) ? strtoull(argv[1], NULL, 10) : 1;");
    if lanes > 1 {
        w.line("const char* tc_path[ACCMOS_LANES] = { NULL };");
    } else {
        w.line("const char* tc_path[1] = { NULL };");
    }
    w.line("int tc_n = 0;");
    w.line("int stop_on_diag = 0;");
    w.line("uint64_t budget_ms = 0;");
    w.open("for (int a = 2; a < argc; a++) {");
    if lanes > 1 {
        w.line("if (strcmp(argv[a], \"--tests\") == 0 && a + 1 < argc) { if (tc_n < ACCMOS_LANES) tc_path[tc_n] = argv[a + 1]; tc_n++; a++; }");
    } else {
        w.line("if (strcmp(argv[a], \"--tests\") == 0 && a + 1 < argc) { tc_path[0] = argv[++a]; tc_n = 1; }");
    }
    w.line("else if (strcmp(argv[a], \"--stop-on-diag\") == 0) stop_on_diag = 1;");
    w.line("else if (strcmp(argv[a], \"--budget-ms\") == 0 && a + 1 < argc) budget_ms = strtoull(argv[++a], NULL, 10);");
    w.close("}");
    w.line("return accmos_entry(total_step, tc_path, tc_n, stop_on_diag, budget_ms, NULL, NULL, NULL);");
    w.close("}");

    let mut unsat_points = [0usize; 4];
    if let Some(analysis) = ctx.analysis.as_ref() {
        for (i, kind) in CoverageKind::ALL.iter().enumerate() {
            unsat_points[i] = analysis.unsatisfiable_count(*kind);
        }
    }
    GeneratedProgram {
        model: flat.name.clone(),
        main_c: w.finish(),
        runtime_h: RUNTIME_HEADER.to_owned(),
        diag_sites: ctx.diag_sites,
        custom_sites: opts.custom.iter().map(|p| (p.name.clone(), p.actor.clone())).collect(),
        inport_dtypes: flat.root_inports.iter().map(|id| flat.actor(*id).dtype).collect(),
        pruned_sites: ctx.pruned_sites,
        unsat_points,
        analyze_time: ctx.analyze_time,
        lanes,
        folded_actors: ctx.folded_actors,
        elided_actors: ctx.elided_actors,
        specialized_arms: ctx.specialized_arms,
        fused_actors: fused,
        total_actors: actor_code.len(),
    }
}

/// Bit-pattern expression matching `Scalar::to_bits_u64`.
fn bits_expr(expr: &str, dt: DataType) -> String {
    match dt {
        DataType::F64 => format!("accmos_bits_f64({expr})"),
        DataType::F32 => format!("accmos_bits_f32({expr})"),
        DataType::Bool | DataType::U8 | DataType::U16 | DataType::U32 | DataType::U64 => {
            format!("(uint64_t)({expr})")
        }
        DataType::I8 => format!("(uint64_t)(uint8_t)({expr})"),
        DataType::I16 => format!("(uint64_t)(uint16_t)({expr})"),
        DataType::I32 => format!("(uint64_t)(uint32_t)({expr})"),
        DataType::I64 => format!("(uint64_t)({expr})"),
    }
}

fn dtype_code(dt: DataType) -> usize {
    DataType::ALL.iter().position(|t| *t == dt).expect("known dtype")
}

/// Minimum run of consecutive fused actors worth a lane loop of its own.
/// Every extra loop boundary forces the live signals through their `_L`
/// arrays instead of staying register-allocated into the next actor, a
/// cost that measurably outweighs any vector win on short runs (per-actor
/// lane loops benchmark ~0.6x of N scalar runs; whole-segment loops
/// ~1.1x). Shorter runs are absorbed into the surrounding mixed segment.
const FUSED_SEGMENT_MIN: usize = 4;

/// Partition the actor schedule into contiguous lane segments
/// `(start, end, fused)`: maximal runs of fused actors (at least
/// [`FUSED_SEGMENT_MIN`] long) form their own segment; everything else
/// grows a mixed segment until the next standalone fused run (or the end
/// of the schedule). Shared by the segmented `Model_Exe` emission and the
/// profiling-site plan, so the sites always name exactly the segments
/// that were emitted.
fn lane_segments(actors: &[EmittedActor]) -> Vec<(usize, usize, bool)> {
    let fused_run =
        |from: usize| -> usize { actors[from..].iter().take_while(|a| a.fused).count() };
    let mut segments = Vec::new();
    let mut i = 0;
    while i < actors.len() {
        let lead = fused_run(i);
        let fused_seg = lead >= FUSED_SEGMENT_MIN;
        let end = if fused_seg {
            i + lead
        } else {
            // Grow the mixed segment until a fused run long enough to
            // stand alone (or the end of the schedule).
            let mut j = i + lead;
            while j < actors.len() {
                if actors[j].fused {
                    let run = fused_run(j);
                    if run >= FUSED_SEGMENT_MIN {
                        break;
                    }
                    j += run;
                } else {
                    j += 1;
                }
            }
            j
        };
        segments.push((i, end, fused_seg));
        i = end;
    }
    segments
}

/// Self-profiling site plan: one site per non-elided actor — except that
/// in the segmented lane shape a fused segment gets a single shared site
/// (named `fused:<first-actor-key>+<actor-count>`), timed outside its
/// lane loop so the inner loop stays pure auto-vectorizable arithmetic.
/// Elided actors carry no site: their body is a comment, there is
/// nothing to time.
struct ProfilePlan {
    /// Site names in site-id order. These become `ACCMOS:PROF actor=`
    /// field values, so they contain no spaces.
    names: Vec<String>,
    /// Per schedule index: the actor's own site, if it has one.
    actor_site: Vec<Option<usize>>,
    /// Per lane-segment index: the segment's shared site (fused segments
    /// only).
    segment_site: Vec<Option<usize>>,
}

fn profile_plan(
    actors: &[EmittedActor],
    segments: &[(usize, usize, bool)],
    segmented: bool,
) -> ProfilePlan {
    let mut plan = ProfilePlan {
        names: Vec::new(),
        actor_site: vec![None; actors.len()],
        segment_site: Vec::new(),
    };
    let actor_sites = |plan: &mut ProfilePlan, start: usize, end: usize| {
        for (idx, a) in actors[start..end].iter().enumerate() {
            if !a.elided {
                plan.actor_site[start + idx] = Some(plan.names.len());
                plan.names.push(a.key.clone());
            }
        }
    };
    if segmented {
        for &(start, end, fused_seg) in segments {
            if fused_seg {
                plan.segment_site.push(Some(plan.names.len()));
                plan.names.push(format!("fused:{}+{}", actors[start].key, end - start));
            } else {
                plan.segment_site.push(None);
                actor_sites(&mut plan, start, end);
            }
        }
    } else {
        actor_sites(&mut plan, 0, actors.len());
    }
    plan
}

/// Emit the lane-mode `Model_Exe` body: each segment from
/// [`lane_segments`] wrapped in a single `for (accmos_lane ...)` loop. A
/// fused segment's loop body is pure indexed arithmetic the C compiler
/// can auto-vectorize; mixed segments keep signal values in registers
/// across actor boundaries within a lane. Hoisted coverage writes run
/// once per step in front of their segment's loop (idempotent bit-OR,
/// and only group-unconditional actors hoist, so ordering within the
/// step does not matter). Under profiling, fused segments are timed as a
/// whole outside the lane loop (one call per step); mixed-segment actors
/// are timed individually inside it (one call per step per lane).
fn emit_lane_segments(
    w: &mut CodeBuf,
    actors: &[EmittedActor],
    segments: &[(usize, usize, bool)],
    prof: Option<&ProfilePlan>,
) {
    for (seg_idx, &(start, end, fused_seg)) in segments.iter().enumerate() {
        for a in &actors[start..end] {
            for cov in &a.cov_hoist {
                w.line(cov);
            }
        }
        if fused_seg {
            w.comment(format!("fused lane segment ({} branch-free actors)", end - start));
        }
        let seg_site = prof.and_then(|p| p.segment_site[seg_idx]);
        let depth = if seg_site.is_some() {
            w.open("{");
            w.line("uint64_t accmos_prof_t0 = accmos_prof_on ? accmos_now_ns() : 0;");
            3
        } else {
            2
        };
        w.open("for (accmos_lane = 0; accmos_lane < ACCMOS_LANES; accmos_lane++) {");
        for (idx, a) in actors[start..end].iter().enumerate() {
            match prof.and_then(|p| p.actor_site[start + idx]) {
                Some(site) => {
                    w.open("{");
                    w.line("uint64_t accmos_prof_t0 = accmos_prof_on ? accmos_now_ns() : 0;");
                    w.raw(indent_block(&a.code, depth + 1));
                    emit_prof_close(w, site);
                    w.close("}");
                }
                None => {
                    w.raw(indent_block(&a.code, depth));
                }
            }
        }
        w.close("}");
        if let Some(site) = seg_site {
            emit_prof_close(w, site);
            w.close("}");
        }
    }
}

/// Sampling period of the self-profiling clock, in steps. Invocation
/// counters run at full rate; the monotonic clock is only read on steps
/// where `accmos_step % PERIOD == 0`. Prime, so the sample pattern never
/// aliases a power-of-two cycle in the model's own behavior.
pub const PROF_SAMPLE_PERIOD: u64 = 61;

/// Close one profiling site: fold the elapsed time into the cumulative
/// counter on sampled steps, count the invocation unconditionally.
fn emit_prof_close(w: &mut CodeBuf, site: usize) {
    w.open("if (accmos_prof_on) {");
    w.line(format!("accmos_prof_ns[{site}] += accmos_now_ns() - accmos_prof_t0;"));
    w.line(format!("accmos_prof_timed[{site}]++;"));
    w.close("}");
    w.line(format!("accmos_prof_calls[{site}]++;"));
}

fn indent_block(code: &str, levels: usize) -> String {
    let pad = "    ".repeat(levels);
    code.lines()
        .map(|l| if l.is_empty() { String::from("\n") } else { format!("{pad}{l}\n") })
        .collect()
}

const WIDE_HELPERS: &str = r#"/* saturating / wrapping __int128 helpers (match i128 in accmos-interp) */
static inline accmos_wide accmos_wide_satmul(accmos_wide a, accmos_wide b) {
    accmos_wide r;
    if (__builtin_mul_overflow(a, b, &r)) {
        accmos_wide mx = (accmos_wide)(((unsigned __int128)-1) >> 1);
        return ((a < 0) ^ (b < 0)) ? -mx - 1 : mx;
    }
    return r;
}
static inline accmos_wide accmos_wide_wdiv(accmos_wide a, accmos_wide b) {
    if (b == -1) {
        return (accmos_wide)(0 - (unsigned __int128)a);
    }
    return a / b;
}
"#;
