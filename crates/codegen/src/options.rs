//! Code-generation options.

use accmos_ir::DiagnosticPolicy;
use std::collections::BTreeSet;

/// Which actors to include in an instrumentation list (the paper's
/// `collectList` and `diagnoseList` inputs to Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ActorList {
    /// The default membership: all calculation actors for diagnosis; all
    /// `monitor`-flagged actors and monitor sinks for collection.
    #[default]
    Default,
    /// Nobody.
    None,
    /// Exactly the actors with these path keys, in addition to the default
    /// membership.
    AlsoKeys(BTreeSet<String>),
    /// Exactly the actors with these path keys, nothing else.
    OnlyKeys(BTreeSet<String>),
}

impl ActorList {
    /// Whether an actor with path `key` and default membership
    /// `default_member` is on the list.
    pub fn contains(&self, key: &str, default_member: bool) -> bool {
        match self {
            ActorList::Default => default_member,
            ActorList::None => false,
            ActorList::AlsoKeys(keys) => default_member || keys.contains(key),
            ActorList::OnlyKeys(keys) => keys.contains(key),
        }
    }
}

/// A user-defined signal diagnosis (paper §3.2B *Custom Signal Diagnose*):
/// a C predicate over an actor's output value, checked every execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomProbe {
    /// Probe name, reported in the results.
    pub name: String,
    /// Path key of the probed actor (e.g. `Model_Minus`).
    pub actor: String,
    /// C expression over the identifier `value` (the actor's first output,
    /// element 0), e.g. `value > 100 || value < -100`.
    pub condition_c: String,
}

/// Options for [`crate::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenOptions {
    /// Master switch for simulation-oriented instrumentation (coverage,
    /// collection, diagnosis). `false` produces bare calculation code —
    /// the Rapid Accelerator configuration.
    pub instrument: bool,
    /// Collect the four coverage metrics (requires `instrument`).
    pub coverage: bool,
    /// Which diagnostics to instrument (requires `instrument`).
    pub policy: DiagnosticPolicy,
    /// The signal-collection list.
    pub collect: ActorList,
    /// The diagnosis list.
    pub diagnose: ActorList,
    /// Custom signal probes.
    pub custom: Vec<CustomProbe>,
    /// Per-step synchronization of every signal with a host-side mirror
    /// (models Rapid Accelerator's data-transfer constraint).
    pub host_sync: bool,
    /// Maximum number of collected signal samples.
    pub signal_log_limit: usize,
    /// Consult the static interval analysis (`accmos-analyze`) and drop
    /// diagnosis checks it proves can never fire, and report coverage
    /// points it proves unsatisfiable. Sound by construction: only checks
    /// with a *proof* of impossibility are pruned, so the simulation
    /// output (digest, diagnostics, coverage counts) is identical with the
    /// flag on or off — pruning only removes dead instrumentation work.
    pub prune_proven_safe: bool,
    /// Consume the analyzer's specialization verdicts (requires
    /// `prune_proven_safe`, which owns the analysis run): fold
    /// proven-constant actors into literals, elide dead actors and
    /// never-taken `Switch`/`MultiportSwitch`/`Saturation` arms,
    /// specialize conditional-group guards proven always/never active,
    /// and admit semantically lane-safe actors into fused lane
    /// segments. Digest-preserving by construction: every elided
    /// coverage point carries an `ACCMOS:UNSAT` proof, so raw counts,
    /// diagnostics and digests are identical with the flag on or off.
    pub specialize: bool,
    /// Number of test-vector lanes the generated simulator steps per
    /// schedule iteration (structure-of-arrays multi-vector mode). `1` is
    /// the classic single-vector simulator; `N > 1` keeps one copy of
    /// every signal and state variable per lane and drives each lane from
    /// its own test file, so one process simulates N stimuli in lockstep.
    /// Coverage bitmaps are shared across lanes (the OR-reduction of the
    /// per-lane bitmaps); diagnostics, outputs and digests are per-lane.
    /// Ignored (treated as 1) by the Rapid Accelerator host-sync
    /// configuration.
    pub lanes: usize,
    /// Self-profiling instrumentation: wrap every emitted actor (and, in
    /// lane mode, every fused segment) in cumulative nanosecond +
    /// invocation counters, reported at end of run as `ACCMOS:PROF`
    /// lines. Observation-only by construction: the counters read the
    /// monotonic clock and bump two integers — they never touch signal,
    /// state, coverage or digest computation — so a profiled build is
    /// digest-identical to an unprofiled one (enforced by test and CI).
    pub profile: bool,
    /// **Test-only.** Fold one extra word into the output digest so the
    /// generated simulator diverges from the interpretive reference on
    /// every model. The differential fuzz harness flips this to prove,
    /// end-to-end, that a real backend bug would be detected, minimized
    /// and checked into the regression corpus — a divergence detector
    /// that has never seen a divergence is untested. Never set outside
    /// tests; the default is `false`.
    pub sabotage_digest: bool,
}

impl CodegenOptions {
    /// AccMoS defaults: fully instrumented simulation code.
    pub fn accmos() -> CodegenOptions {
        CodegenOptions::default()
    }

    /// Builder: step `n` test vectors per schedule iteration (see the
    /// [`CodegenOptions::lanes`] field). `n` is clamped to at least 1.
    pub fn lanes(mut self, n: usize) -> CodegenOptions {
        self.lanes = n.max(1);
        self
    }

    /// Builder: disable analyzer-directed specialization (folding,
    /// dead-path elision, arm/guard specialization, semantic lane
    /// fusion) while keeping diagnosis pruning. Used by the fuzz
    /// harness's optimized-vs-unoptimized comparison plan and the
    /// syntactic-baseline bench column.
    pub fn without_specialization(mut self) -> CodegenOptions {
        self.specialize = false;
        self
    }

    /// Builder: enable per-actor self-profiling (see the
    /// [`CodegenOptions::profile`] field).
    pub fn with_profile(mut self) -> CodegenOptions {
        self.profile = true;
        self
    }

    /// The effective lane count: `lanes`, except that host-sync (Rapid
    /// Accelerator) simulators are always single-lane.
    pub fn effective_lanes(&self) -> usize {
        if self.host_sync {
            1
        } else {
            self.lanes.max(1)
        }
    }

    /// The SSE Rapid Accelerator stand-in: no instrumentation, per-step
    /// host data exchange (compile it at `-O0`).
    pub fn rapid_accelerator() -> CodegenOptions {
        CodegenOptions {
            instrument: false,
            coverage: false,
            policy: DiagnosticPolicy::none(),
            host_sync: true,
            ..CodegenOptions::default()
        }
    }
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions {
            instrument: true,
            coverage: true,
            policy: DiagnosticPolicy::all(),
            collect: ActorList::Default,
            diagnose: ActorList::Default,
            custom: Vec::new(),
            host_sync: false,
            signal_log_limit: 4096,
            prune_proven_safe: true,
            specialize: true,
            lanes: 1,
            profile: false,
            sabotage_digest: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_list_membership() {
        let keys: BTreeSet<String> = ["M_A".to_string()].into();
        assert!(ActorList::Default.contains("M_X", true));
        assert!(!ActorList::Default.contains("M_X", false));
        assert!(!ActorList::None.contains("M_X", true));
        assert!(ActorList::AlsoKeys(keys.clone()).contains("M_A", false));
        assert!(ActorList::AlsoKeys(keys.clone()).contains("M_X", true));
        assert!(ActorList::OnlyKeys(keys.clone()).contains("M_A", true));
        assert!(!ActorList::OnlyKeys(keys).contains("M_X", true));
    }

    #[test]
    fn rapid_accelerator_is_uninstrumented() {
        let o = CodegenOptions::rapid_accelerator();
        assert!(!o.instrument && o.host_sync && !o.policy.any());
        let d = CodegenOptions::accmos();
        assert!(d.instrument && d.coverage && !d.host_sync);
    }

    #[test]
    fn specialization_defaults_on_and_builder_disables() {
        let d = CodegenOptions::accmos();
        assert!(d.specialize && d.prune_proven_safe);
        let off = CodegenOptions::accmos().without_specialization();
        assert!(!off.specialize && off.prune_proven_safe);
    }

    #[test]
    fn profile_defaults_off_and_builder_enables() {
        assert!(!CodegenOptions::accmos().profile);
        assert!(!CodegenOptions::rapid_accelerator().profile);
        assert!(CodegenOptions::accmos().with_profile().profile);
    }

    #[test]
    fn lane_builder_clamps_and_host_sync_forces_scalar() {
        assert_eq!(CodegenOptions::accmos().lanes, 1);
        let o = CodegenOptions::accmos().lanes(8);
        assert_eq!(o.lanes, 8);
        assert_eq!(o.effective_lanes(), 8);
        assert_eq!(CodegenOptions::accmos().lanes(0).effective_lanes(), 1);
        let ra = CodegenOptions::rapid_accelerator().lanes(4);
        assert_eq!(ra.effective_lanes(), 1);
    }
}
