//! `accmos` — the AccMoS-RS command-line interface.
//!
//! ```text
//! accmos info     <model.mdlx>
//! accmos analyze  <model.mdlx> [--format text|json] [--deny SEV] [--tests t.csv]
//! accmos generate <model.mdlx> [--out DIR] [--rust] [--rapid] [--lanes N]
//! accmos simulate <model.mdlx> --steps N [--tests t.csv] [--engine E]
//!                 [--stop-on-diag] [--budget-ms N] [--seed N] [--rows N]
//!                 [--exec-timeout MS] [--retries N] [--lanes N]
//!                 [--profile] [--trace-out trace.json]
//! accmos profile  <model.mdlx> [--steps N] [--seed N] [--rows N] [--lanes N]
//!                 [--format text|json] [--trace-out trace.json]
//! accmos batch    <model.mdlx>... --steps N [--repeat K] [--jobs N]
//!                 [--seed N] [--rows N] [--no-cache]
//!                 [--exec-timeout MS] [--retries N] [--lanes N]
//!                 [--trace-out trace.json]
//! accmos trends   [--cache-dir DIR] [--check] [--max-regress PCT]
//!                 [--format text|json]
//! accmos fuzz     [--trials N] [--seed N] [--steps N] [--rows N] [--resume]
//!                 [--cache-dir DIR] [--corpus DIR] [--no-minimize]
//!                 [--budget-ms N] [--max-trials N] [--rust-every N]
//!                 [--inject PATH] [--sabotage] [--exec-timeout MS] [--retries N]
//!                 [--trace-out trace.json]
//! ```
//!
//! Model arguments are `.mdlx` file paths, `bench:NAME` for a built-in
//! Table 1 benchmark (e.g. `bench:CSEV`), `bench:figure1`, or `rand:SEED`
//! for the differential fuzzer's deterministic random model with that
//! seed (handy for reproducing a fuzz trial standalone: `accmos generate
//! rand:42`, `accmos simulate rand:42 --steps 64`).
//!
//! `analyze` runs the static interval/type-flow analysis and prints the
//! lint findings; `--deny error` (or `warning`/`info`) exits non-zero when
//! any finding at or above that severity exists, for CI gates. `--tests`
//! seeds the input-port intervals from a test-vector file, sharpening
//! lints (never prune proofs, which must hold for any stimulus).
//!
//! Engines: `accmos` (generated C, `-O3`, default), `rust` (generated Rust
//! ablation backend), `rac` (uninstrumented `-O0` + host sync), `sse` and
//! `sse-ac` (interpretive stand-ins). Without `--tests`, seeded random
//! stimulus is generated for every input port.
//!
//! `batch` runs every listed model (`--repeat` times each, with a distinct
//! stimulus seed per repetition) on a bounded worker pool, compiling each
//! unique generated program once; `--no-cache` forces cold compiles.
//!
//! `--lanes N` (simulate/batch, C backend only) generates a lane-parallel
//! simulator stepping N test vectors per schedule iteration. Each lane
//! gets its own seeded random stimulus (with an explicit `--tests` file,
//! every lane replays the same stimulus); results come back with an
//! OR-reduced coverage union, an FNV fold of the per-lane digests, and
//! per-lane diagnostics. The `rust` and `rac` engines reject lanes > 1:
//! the Rust ablation backend is scalar-only, and the Rapid-Accelerator
//! stand-in's per-step host sync forces scalar execution.
//!
//! `trends` reads the persistent run ledger (`ledger.jsonl` under the
//! cache directory; `simulate` and `batch` append to it automatically
//! unless caching is disabled) and prints per-model, per-engine phase
//! medians. With `--check`, it exits non-zero when any model's latest
//! run is more than `--max-regress` percent (default 25) slower than the
//! median of its earlier runs — a CI performance gate.
//!
//! `fuzz` runs a seeded differential campaign: each trial generates a
//! random model (conditional groups, nested subsystems, vectors, floats,
//! lane widths in {1,4}) and compares the interpretive reference, the
//! generated-C simulator (analyzer-pruned and unpruned builds) and
//! periodically the rustc ablation backend, exactly — digests, final
//! outputs, steps, all four coverage metrics, every diagnostic. Compiled
//! trials run under the supervisor, so crashes and hangs become
//! classified verdicts, not dead campaigns. State is an append-only
//! `fuzz.jsonl` under the cache directory; `--resume` skips trial
//! indices already recorded for the campaign seed. A divergence is
//! delta-debug minimized and (with `--corpus DIR`) written as a
//! replayable `.mdlx` + `.expected` repro pair. `--inject PATH` points
//! at a faultsim-style binary to schedule deterministic crash/hang
//! trials; `--sabotage` plants a test-only digest divergence in the
//! generated C to prove the detector end-to-end. Exits non-zero when
//! any trial diverged or escaped classification.
//!
//! `--exec-timeout` is the supervisor's hard kill deadline for one
//! simulator process (distinct from `--budget-ms`, the simulator's own
//! cooperative budget); `--retries` bounds re-runs after crashes or
//! transient failures. Jobs that cannot use their compiled simulator
//! (compile failure, quarantined binary) degrade to the interpretive
//! engine and are reported as degraded.
//!
//! `profile` compiles the model with self-profiling instrumentation
//! (per-actor cumulative nanosecond counters, digest-identical to the
//! unprofiled build), runs it, and prints a hot-actor report ranked by
//! cumulative time — with each site's share, call count, lane-fusion
//! attribution (`fused:` segments are timed as one vectorizable unit)
//! and the analyzer's specialization verdicts for cross-reference.
//! `--profile` on `simulate` enables the same instrumentation without
//! changing the normal report output.
//!
//! `--trace-out PATH` (simulate/profile/batch/fuzz) writes a Chrome
//! trace-event JSON file (loadable in Perfetto or `chrome://tracing`)
//! with hierarchical spans: pipeline phases, supervisor child lifecycle
//! (attempts, polling, kills, retry backoff) and per-actor profile
//! leaves when profiling is on.

use accmos::{AccMoS, BatchJob, BatchRunner, ExecPolicy, RunOptions, SimOptions};
use accmos_ir::{Model, SimulationReport, TestVectors};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("accmos: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: (models are .mdlx paths or bench:NAME for a built-in benchmark)
  accmos info     <model.mdlx>
  accmos analyze  <model.mdlx> [--format text|json] [--deny info|warning|error] [--tests t.csv]
                  [--explain]
  accmos generate <model.mdlx> [--out DIR] [--rust] [--rapid] [--lanes N] [--no-optimize]
  accmos simulate <model.mdlx> --steps N [--tests t.csv] [--engine accmos|rust|rac|sse|sse-ac]
                  [--stop-on-diag] [--budget-ms N] [--seed N] [--rows N]
                  [--exec-timeout MS] [--retries N] [--lanes N] [--no-optimize]
                  [--profile] [--trace-out trace.json]
  accmos profile  <model.mdlx> [--steps N] [--tests t.csv] [--seed N] [--rows N] [--lanes N]
                  [--format text|json] [--trace-out trace.json] [--exec-timeout MS] [--retries N]
  accmos batch    <model.mdlx>... --steps N [--repeat K] [--jobs N] [--seed N] [--rows N]
                  [--no-cache] [--exec-timeout MS] [--retries N] [--lanes N]
                  [--trace-out trace.json]
  accmos trends   [--cache-dir DIR] [--check] [--max-regress PCT] [--format text|json]
  accmos serve    [--socket PATH] [--workers N] [--cache-dir DIR]
                  [--exec-timeout MS] [--retries N]
  accmos submit   [<model> [STEPS]] [--socket PATH] [--lanes N] [--rows N] [--seed N]
                  [--ping] [--shutdown]
  accmos fuzz     [--trials N] [--seed N] [--steps N] [--rows N] [--resume]
                  [--cache-dir DIR] [--corpus DIR] [--no-minimize] [--budget-ms N]
                  [--max-trials N] [--rust-every N] [--inject PATH] [--sabotage]
                  [--exec-timeout MS] [--retries N] [--pin INDEX] [--trace-out trace.json]
(rand:SEED is the fuzzer's deterministic random model for that seed)";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    if cmd == "batch" {
        return batch(&args[1..]);
    }
    if cmd == "trends" {
        return trends(&args[1..]);
    }
    if cmd == "fuzz" {
        return fuzz(&args[1..]);
    }
    if cmd == "serve" {
        #[cfg(unix)]
        return serve(&args[1..]);
        #[cfg(not(unix))]
        return Err("`serve` requires a Unix platform".into());
    }
    if cmd == "submit" {
        #[cfg(unix)]
        return submit(&args[1..]);
        #[cfg(not(unix))]
        return Err("`submit` requires a Unix platform".into());
    }
    let path = args.get(1).ok_or("missing model file")?;
    let model = load_model(path)?;
    match cmd.as_str() {
        "info" => info(&model),
        "analyze" => analyze(&model, args),
        "generate" => generate(&model, args),
        "simulate" => simulate(&model, args),
        "profile" => profile(&model, args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load_model(path: &str) -> Result<Model, String> {
    if let Some(name) = path.strip_prefix("bench:") {
        if name == "figure1" {
            return Ok(accmos_models::figure1());
        }
        let upper = name.to_ascii_uppercase();
        if !accmos_models::TABLE1.iter().any(|(n, _, _)| *n == upper) {
            return Err(format!(
                "unknown benchmark `{name}` (Table 1 names: {})",
                accmos_models::TABLE1.map(|(n, _, _)| n).join(", ")
            ));
        }
        return Ok(accmos_models::by_name(&upper));
    }
    if let Some(seed) = path.strip_prefix("rand:") {
        let seed: u64 =
            seed.parse().map_err(|_| format!("bad random-model seed `{seed}`"))?;
        return accmos::fuzz::planned_model(seed);
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    accmos::parse_mdlx(&text).map_err(|e| e.to_string())
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn opt_u64(args: &[String], name: &str, default: u64) -> u64 {
    opt(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The supervised-execution policy from `--exec-timeout` / `--retries`
/// (defaults untouched when the flags are absent).
fn exec_policy(args: &[String]) -> ExecPolicy {
    let mut policy = ExecPolicy::default();
    if let Some(ms) = opt(args, "--exec-timeout").and_then(|v| v.parse().ok()) {
        policy = policy.with_kill_timeout(Duration::from_millis(ms));
    }
    if let Some(n) = opt(args, "--retries").and_then(|v| v.parse().ok()) {
        policy = policy.with_retries(n);
    }
    policy
}

fn info(model: &Model) -> Result<(), String> {
    let pre = accmos::preprocess(model).map_err(|e| e.to_string())?;
    let flat = &pre.flat;
    println!("model `{}`", model.name);
    println!("  actors:      {}", flat.actors.len());
    println!("  subsystems:  {}", model.root.subsystem_count());
    println!("  signals:     {}", flat.signals.len());
    println!("  groups:      {} (enabled/triggered subsystems)", flat.groups.len());
    println!("  data stores: {}", flat.stores.len());
    println!(
        "  io:          {} inport(s), {} outport(s)",
        flat.root_inports.len(),
        flat.root_outports.len()
    );
    for kind in accmos_ir::CoverageKind::ALL {
        println!(
            "  {:<10} {} coverage points",
            format!("{}:", kind.name()),
            pre.coverage.map.total(kind)
        );
    }
    println!("  calculation actors (default diagnose list): {}", flat.calculation_count());
    Ok(())
}

fn analyze(model: &Model, args: &[String]) -> Result<(), String> {
    let format = opt(args, "--format").unwrap_or("text");
    let deny: Option<accmos::Severity> = match opt(args, "--deny") {
        Some(s) => Some(s.parse()?),
        None => None,
    };
    let pre = accmos::preprocess(model).map_err(|e| e.to_string())?;
    let tests = match opt(args, "--tests") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            Some(TestVectors::from_csv(&text).map_err(|e| e.to_string())?)
        }
        None => None,
    };
    let analysis = accmos::analyze_with_tests(&pre, tests.as_ref());
    match format {
        "text" => print!("{}", analysis.render_text()),
        "json" => println!("{}", analysis.render_json()),
        other => return Err(format!("unknown format `{other}` (text|json)")),
    }
    // Per-model specialization report: what codegen will fold, elide and
    // specialize under the default `--optimize` build, and why.
    if flag(args, "--explain") {
        print!("{}", analysis.render_explain());
    }
    if let Some(deny) = deny {
        if analysis.max_severity().is_some_and(|worst| worst >= deny) {
            return Err(format!("analysis found findings at or above `{deny}` severity"));
        }
    }
    Ok(())
}

fn generate(model: &Model, args: &[String]) -> Result<(), String> {
    let out = opt(args, "--out").unwrap_or(".");
    std::fs::create_dir_all(out).map_err(|e| e.to_string())?;
    let pre = accmos::preprocess(model).map_err(|e| e.to_string())?;
    let opts = if flag(args, "--rapid") {
        accmos::CodegenOptions::rapid_accelerator()
    } else {
        accmos::CodegenOptions::accmos()
    };
    let lanes = opt_u64(args, "--lanes", 1).max(1) as usize;
    let mut opts = opts.lanes(lanes);
    if flag(args, "--no-optimize") {
        opts = opts.without_specialization();
    }
    if flag(args, "--profile") {
        opts = opts.with_profile();
    }
    if flag(args, "--rust") {
        if lanes > 1 {
            // The Rust ablation backend has no lane mode; fail loudly
            // rather than writing a silently scalar simulator.
            return Err("--rust does not support --lanes > 1 (lane mode is C-backend only)".into());
        }
        let program = accmos_codegen::generate_rust(&pre, &opts);
        let path = format!("{out}/{}_sim.rs", program.model);
        std::fs::write(&path, &program.main_rs).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    } else {
        let program = accmos_codegen::generate(&pre, &opts);
        for (name, contents) in program.files() {
            let path = format!("{out}/{name}");
            std::fs::write(&path, contents).map_err(|e| e.to_string())?;
            println!("wrote {path}");
        }
    }
    Ok(())
}

fn simulate(model: &Model, args: &[String]) -> Result<(), String> {
    let steps = opt_u64(args, "--steps", 1000);
    let engine = opt(args, "--engine").unwrap_or("accmos");
    let seed = opt_u64(args, "--seed", 2024);
    let rows = opt_u64(args, "--rows", 64) as usize;
    let stop = flag(args, "--stop-on-diag");
    let budget = opt(args, "--budget-ms")
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis);

    let lanes = opt_u64(args, "--lanes", 1).max(1) as usize;
    if lanes > 1 && engine != "accmos" {
        return Err(format!(
            "engine `{engine}` does not support --lanes > 1 (lane mode is C-backend only)"
        ));
    }
    let profiling = flag(args, "--profile");
    let trace_out = opt(args, "--trace-out");
    let tracer = trace_out.map(|_| accmos::Tracer::new());
    if (profiling || tracer.is_some()) && matches!(engine, "sse" | "sse-ac") {
        return Err(format!(
            "engine `{engine}` is interpretive; --profile/--trace-out need a compiled engine"
        ));
    }

    let pre = accmos::preprocess(model).map_err(|e| e.to_string())?;
    let explicit_tests = opt(args, "--tests");
    let tests = match explicit_tests {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            TestVectors::from_csv(&text).map_err(|e| e.to_string())?
        }
        None => accmos_testgen::random_tests(&pre, rows, seed),
    };
    // Lanes 1..N: fresh seeded stimulus per lane, or a replay of the
    // explicit `--tests` file on every lane.
    let lane_tests: Vec<TestVectors> = (1..lanes)
        .map(|lane| match explicit_tests {
            Some(_) => tests.clone(),
            None => accmos_testgen::random_tests(&pre, rows, seed.wrapping_add(lane as u64)),
        })
        .collect();

    let report: SimulationReport = match engine {
        "sse" | "sse-ac" => {
            let mut opts = SimOptions::steps(steps);
            if stop {
                opts = opts.stopping_on_diagnostic();
            }
            if let Some(b) = budget {
                opts = opts.with_budget(b);
            }
            accmos::run_reference_engine(engine, model, &tests, &opts)
                .map_err(|e| e.to_string())?
        }
        "rust" => {
            let mut copts = accmos::CodegenOptions::accmos();
            if flag(args, "--no-optimize") {
                copts = copts.without_specialization();
            }
            if profiling {
                copts = copts.with_profile();
            }
            let program = accmos_codegen::generate_rust(&pre, &copts);
            let cache =
                if flag(args, "--no-cache") { None } else { Some(accmos_backend::BuildCache::new()) };
            let (exe, dir, compile_time, cache_hit) =
                accmos_backend::compile_rust_cached(&program, cache.as_ref())
                    .map_err(|e| e.to_string())?;
            eprintln!("rustc: {compile_time:.2?}{}", if cache_hit { " (cached)" } else { "" });
            // A freshly rustc-compiled simulator is as untrusted as a C
            // one: run it under the same supervision policy.
            let mut supervisor = accmos::Supervisor::new(exec_policy(args));
            if let Some(t) = &tracer {
                supervisor = supervisor.with_tracer(t.clone());
            }
            let run = accmos_backend::run_executable_supervised(
                &exe,
                &dir,
                steps,
                &tests,
                &RunOptions {
                    stop_on_diagnostic: stop,
                    time_budget: budget,
                    lane_tests: Vec::new(),
                },
                &supervisor,
            )
            .map_err(|e| e.to_string())?;
            if run.retries > 0 {
                eprintln!("retries: {}", run.retries);
            }
            accmos_backend::clean_build_dir(&dir);
            run.report
        }
        "accmos" | "rac" => {
            let mut pipeline = if engine == "rac" {
                AccMoS::rapid_accelerator()
            } else {
                AccMoS::new().with_lanes(lanes)
            };
            if flag(args, "--no-optimize") {
                let copts = pipeline.codegen_options().clone().without_specialization();
                pipeline = pipeline.with_codegen(copts);
            }
            if profiling {
                let copts = pipeline.codegen_options().clone().with_profile();
                pipeline = pipeline.with_codegen(copts);
            }
            let mut pipeline = pipeline.with_exec_policy(exec_policy(args));
            if let Some(t) = &tracer {
                pipeline = pipeline.with_tracer(t.clone());
            }
            let out = pipeline
                .run(
                    model,
                    steps,
                    &tests,
                    &RunOptions { stop_on_diagnostic: stop, time_budget: budget, lane_tests },
                )
                .map_err(|e| e.to_string())?;
            if let Some(reason) = &out.fallback_reason {
                eprintln!("degraded to interpreter: {reason}");
            }
            if out.retries > 0 {
                eprintln!("retries: {}", out.retries);
            }
            out.report
        }
        other => return Err(format!("unknown engine `{other}`")),
    };
    println!("{report}");
    // The Display above shows the lane aggregate; surface each lane's own
    // digest and diagnosis sites for lane-parallel runs.
    for (i, lane) in report.lane_reports.iter().enumerate() {
        println!(
            "  lane {i}: digest {:016x}, {} diagnostic occurrence(s)",
            lane.output_digest,
            lane.diagnostic_count()
        );
        for d in &lane.diagnostics {
            println!("    {d}");
        }
    }
    // Profile details stay off stdout so profiled and unprofiled runs
    // print byte-identical reports (the digest-neutrality CI gate
    // compares them); `accmos profile` is the ranked view.
    if profiling {
        eprintln!(
            "profile: {} site(s) recorded (run `accmos profile` for the ranked report)",
            report.profile.len()
        );
    }
    if let (Some(t), Some(path)) = (&tracer, trace_out) {
        t.write_chrome_json(std::path::Path::new(path))
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        eprintln!("wrote trace {path}");
    }
    Ok(())
}

fn profile(model: &Model, args: &[String]) -> Result<(), String> {
    let steps = opt_u64(args, "--steps", 100_000);
    let seed = opt_u64(args, "--seed", 2024);
    let rows = opt_u64(args, "--rows", 64) as usize;
    let lanes = opt_u64(args, "--lanes", 1).max(1) as usize;
    let format = opt(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown format `{format}` (text|json)"));
    }

    let pre = accmos::preprocess(model).map_err(|e| e.to_string())?;
    let tests = match opt(args, "--tests") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            TestVectors::from_csv(&text).map_err(|e| e.to_string())?
        }
        None => accmos_testgen::random_tests(&pre, rows, seed),
    };
    let lane_tests: Vec<TestVectors> = (1..lanes)
        .map(|lane| accmos_testgen::random_tests(&pre, rows, seed.wrapping_add(lane as u64)))
        .collect();

    let mut pipeline =
        AccMoS::new().with_lanes(lanes).with_exec_policy(exec_policy(args));
    let copts = pipeline.codegen_options().clone().with_profile();
    pipeline = pipeline.with_codegen(copts);
    let trace_out = opt(args, "--trace-out");
    let tracer = trace_out.map(|_| accmos::Tracer::new());
    if let Some(t) = &tracer {
        pipeline = pipeline.with_tracer(t.clone());
    }
    // The analyzer's specialization verdicts for the exact program we are
    // about to run (regenerated here; codegen is cheap next to the run).
    let program = pipeline.generate(model).map_err(|e| e.to_string())?;

    let out = pipeline
        .run(
            model,
            steps,
            &tests,
            &RunOptions { stop_on_diagnostic: false, time_budget: None, lane_tests },
        )
        .map_err(|e| e.to_string())?;
    if let Some(reason) = &out.fallback_reason {
        return Err(format!(
            "cannot profile: the run degraded to the interpreter ({reason})"
        ));
    }
    let report = &out.report;
    if report.profile.is_empty() {
        return Err("the simulator emitted no ACCMOS:PROF records".into());
    }
    if let (Some(t), Some(path)) = (&tracer, trace_out) {
        t.write_chrome_json(std::path::Path::new(path))
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        eprintln!("wrote trace {path}");
    }

    // Rank sites by cumulative time; `fused:<first-actor>+<n>` sites are
    // whole fused lane segments timed as one vectorizable unit.
    let mut sites = report.profile.clone();
    sites.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.actor.cmp(&b.actor)));
    let total_ns: u64 = sites.iter().map(|s| s.ns).sum();
    let fused_ns: u64 =
        sites.iter().filter(|s| s.actor.starts_with("fused:")).map(|s| s.ns).sum();
    let share = |ns: u64| match total_ns {
        0 => 0.0,
        t => 100.0 * ns as f64 / t as f64,
    };

    if format == "json" {
        use accmos::telemetry::json_str;
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"model\":{},\"engine\":{},\"steps\":{},\"lanes\":{},\"total_ns\":{total_ns},\"fused_ns\":{fused_ns}",
            json_str(&report.model),
            json_str(&report.engine),
            report.steps,
            program.lanes,
        ));
        out.push_str(&format!(
            ",\"specialization\":{{\"folded\":{},\"elided\":{},\"specialized_arms\":{},\"fused_actors\":{},\"total_actors\":{}}}",
            program.folded_actors,
            program.elided_actors,
            program.specialized_arms,
            program.fused_actors,
            program.total_actors,
        ));
        out.push_str(",\"sites\":[");
        for (i, s) in sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"site\":{},\"ns\":{},\"calls\":{},\"timed\":{},\"share_pct\":{:.2},\"fused\":{}}}",
                json_str(&s.actor),
                s.ns,
                s.calls,
                s.timed,
                share(s.ns),
                s.actor.starts_with("fused:"),
            ));
        }
        out.push_str("]}");
        println!("{out}");
        return Ok(());
    }

    println!(
        "profile: `{}` engine {}, {} step(s), {} lane(s)",
        report.model, report.engine, report.steps, program.lanes
    );
    println!(
        "  measured: {} ms across {} site(s), sampled timing (clock read every {} steps)",
        total_ns / 1_000_000,
        sites.len(),
        accmos::PROF_SAMPLE_PERIOD,
    );
    println!(
        "  specialization: {} folded, {} elided (no profile site), {} specialized arm(s), {}/{} actors fusable",
        program.folded_actors,
        program.elided_actors,
        program.specialized_arms,
        program.fused_actors,
        program.total_actors
    );
    if program.lanes > 1 {
        println!(
            "  lane fusion: fused segments account for {:.1}% of measured time",
            share(fused_ns)
        );
    }
    println!();
    println!("{:>4}  {:<40} {:>7} {:>12} {:>10} {:>9}", "rank", "site", "share", "time", "calls", "ns/call");
    for (i, s) in sites.iter().enumerate() {
        // `ns` only accumulates on sampled (timed) invocations, so the
        // mean per call divides by `timed`, not `calls`.
        let per_call = match s.timed {
            0 => 0,
            t => s.ns / t,
        };
        println!(
            "{:>4}  {:<40} {:>6.1}% {:>10}us {:>10} {:>9}",
            i + 1,
            s.actor,
            share(s.ns),
            s.ns / 1_000,
            s.calls,
            per_call
        );
    }
    Ok(())
}

fn trends(args: &[String]) -> Result<(), String> {
    use accmos::telemetry::{check_regressions, compute_trends, fmt_us, PhaseMicros};

    let dir = match opt(args, "--cache-dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => accmos::default_state_dir(),
    };
    let format = opt(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown format `{format}` (text|json)"));
    }
    let ledger = accmos::RunLedger::in_dir(&dir);
    let view = ledger.read();
    let trends = compute_trends(&view.records);

    if format == "json" {
        use accmos::telemetry::json_str;
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"ledger\":{},\"records\":{},\"skipped\":{},\"truncated_tail\":{},\"trends\":[",
            json_str(&ledger.path().display().to_string()),
            view.records.len(),
            view.skipped,
            view.truncated_tail,
        ));
        for (i, t) in trends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let m: &PhaseMicros = &t.median;
            let regress = match t.regress_pct {
                Some(pct) => format!("{pct:.2}"),
                None => "null".into(),
            };
            out.push_str(&format!(
                "{{\"model\":{},\"engine\":{},\"runs\":{},\"median\":{{\"parse_us\":{},\"preprocess_us\":{},\"analyze_us\":{},\"codegen_us\":{},\"compile_us\":{},\"run_us\":{},\"backoff_us\":{}}},\"latest_run_us\":{},\"regress_pct\":{regress}}}",
                json_str(&t.model),
                json_str(&t.engine_key()),
                t.runs,
                m.parse_us,
                m.preprocess_us,
                m.analyze_us,
                m.codegen_us,
                m.compile_us,
                m.run_us,
                m.backoff_us,
                t.latest_run_us,
            ));
        }
        out.push_str("]}");
        println!("{out}");
        if flag(args, "--check") {
            let max_pct = opt(args, "--max-regress")
                .map(|v| v.parse::<f64>().map_err(|_| format!("bad --max-regress `{v}`")))
                .transpose()?
                .unwrap_or(25.0);
            let violations = check_regressions(&trends, max_pct);
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("regression: {v}");
                }
                return Err(format!(
                    "{} model(s) regressed beyond {max_pct}% (ledger: {})",
                    violations.len(),
                    ledger.path().display()
                ));
            }
        }
        return Ok(());
    }

    if view.records.is_empty() && view.skipped == 0 && !view.truncated_tail {
        println!("trends: no ledger at {} (run `accmos simulate` or `accmos batch` first)", ledger.path().display());
        return Ok(());
    }
    println!(
        "trends: {} record(s) from {}",
        view.records.len(),
        ledger.path().display()
    );
    if view.skipped > 0 {
        println!("  (skipped {} unreadable or foreign-schema line(s))", view.skipped);
    }
    if view.truncated_tail {
        println!("  (ledger tail is torn — a writer died mid-append; ignored)");
    }

    if trends.is_empty() {
        println!("no runs with timing signal (outcome ok/degraded) yet");
        return Ok(());
    }
    println!(
        "{:<24} {:<8} {:>5}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {:>8}",
        "model", "engine", "runs", "parse", "prep", "analyze", "codegen", "compile", "run", "latest"
    );
    for t in &trends {
        let m: &PhaseMicros = &t.median;
        let delta = match t.regress_pct {
            Some(pct) => format!(" ({pct:+.1}%)"),
            None => String::new(),
        };
        println!(
            "{:<24} {:<8} {:>5}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {:>8}{delta}",
            t.model,
            // Lane configs trend separately: `accmos@8` vs plain `accmos`.
            t.engine_key(),
            t.runs,
            fmt_us(m.parse_us),
            fmt_us(m.preprocess_us),
            fmt_us(m.analyze_us),
            fmt_us(m.codegen_us),
            fmt_us(m.compile_us),
            fmt_us(m.run_us),
            fmt_us(t.latest_run_us),
        );
    }

    if flag(args, "--check") {
        let max_pct = opt(args, "--max-regress")
            .map(|v| v.parse::<f64>().map_err(|_| format!("bad --max-regress `{v}`")))
            .transpose()?
            .unwrap_or(25.0);
        let violations = check_regressions(&trends, max_pct);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("regression: {v}");
            }
            return Err(format!(
                "{} model(s) regressed beyond {max_pct}% (ledger: {})",
                violations.len(),
                ledger.path().display()
            ));
        }
        println!("check: no model regressed beyond {max_pct}%");
    }
    Ok(())
}

fn fuzz(args: &[String]) -> Result<(), String> {
    let mut config = accmos::FuzzConfig {
        seed: opt_u64(args, "--seed", 1),
        trials: opt_u64(args, "--trials", 50),
        steps: opt_u64(args, "--steps", 64),
        rows: opt_u64(args, "--rows", 12) as usize,
        resume: flag(args, "--resume"),
        minimize: !flag(args, "--no-minimize"),
        rust_every: opt_u64(args, "--rust-every", 16),
        ..accmos::FuzzConfig::default()
    };
    if let Some(dir) = opt(args, "--cache-dir") {
        config.state_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(dir) = opt(args, "--corpus") {
        config.corpus_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(ms) = opt(args, "--budget-ms").and_then(|v| v.parse().ok()) {
        config.trial_budget = Duration::from_millis(ms);
    } else if let Some(ms) = opt(args, "--exec-timeout").and_then(|v| v.parse().ok()) {
        config.trial_budget = Duration::from_millis(ms);
    }
    if let Some(n) = opt(args, "--retries").and_then(|v| v.parse().ok()) {
        config.exec_policy = config.exec_policy.with_retries(n);
    }
    if let Some(n) = opt(args, "--max-trials").and_then(|v| v.parse().ok()) {
        config.max_trials_per_run = Some(n);
    }
    if let Some(path) = opt(args, "--inject") {
        config.inject_fault_exe = Some(std::path::PathBuf::from(path));
    }
    if flag(args, "--sabotage") {
        config.sabotage = true;
        eprintln!("fuzz: --sabotage plants a digest divergence in every generated-C build");
    }
    let trace_out = opt(args, "--trace-out");
    // Keep a handle: FuzzCampaign::new consumes the config.
    let tracer = trace_out.map(|_| accmos::Tracer::new());
    config.tracer = tracer.clone();

    // `--pin INDEX`: check a known-good trial into the corpus as a
    // regression anchor instead of running a campaign.
    if let Some(index) = opt(args, "--pin").and_then(|v| v.parse().ok()) {
        let dir = config
            .corpus_dir
            .clone()
            .ok_or("--pin needs --corpus DIR to write the entry into")?;
        let repro = accmos::fuzz::pin_corpus_entry(&config, index, &dir)?;
        println!(
            "pinned {}: {} actor(s), lanes {}, {} step(s), {} row(s), digest {:016x}",
            repro.name, repro.actors, repro.lanes, repro.steps, repro.rows, repro.digest
        );
        println!("  wrote {}", repro.mdlx_path.display());
        return Ok(());
    }

    // Planned feature mix, printed so a CI gate can assert the campaign
    // actually covered lane-parallel and conditional-group models.
    let (mut lane4, mut conditional, mut nested, mut spec_off) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..config.trials {
        let plan = accmos::fuzz::plan_trial(&config, i);
        lane4 += u64::from(plan.lanes == 4);
        conditional += u64::from(plan.cfg.conditional);
        nested += u64::from(plan.cfg.nested);
        spec_off += u64::from(plan.spec_off);
    }
    let summary = accmos::FuzzCampaign::new(config).run().map_err(|e| e.to_string())?;
    if let (Some(t), Some(path)) = (&tracer, trace_out) {
        t.write_chrome_json(std::path::Path::new(path))
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        eprintln!("wrote trace {path}");
    }

    println!(
        "fuzz: campaign seed {}, {} planned, {} executed, {} resumed-skip",
        opt_u64(args, "--seed", 1),
        summary.planned,
        summary.executed,
        summary.resumed
    );
    println!(
        "  plan mix: {lane4} lane-4, {conditional} conditional, {nested} nested, {spec_off} spec-off"
    );
    println!(
        "  ok {}, divergences {}, classified failures {}, injected {}, unclassified {}",
        summary.ok, summary.divergences, summary.failures, summary.injected, summary.unclassified
    );
    println!("  state: {}", summary.store_path.display());
    for repro in &summary.minimized {
        println!(
            "  minimized {}: {} actor(s), lanes {}, {} step(s), {} row(s) — {}",
            repro.name, repro.actors, repro.lanes, repro.steps, repro.rows, repro.detail
        );
        if repro.mdlx_path.as_os_str().is_empty() {
            println!("    (no --corpus directory; repro not written)");
        } else {
            println!("    wrote {}", repro.mdlx_path.display());
        }
    }
    if summary.divergences > 0 {
        return Err(format!(
            "{} divergence(s) between backends (minimized repros above)",
            summary.divergences
        ));
    }
    if summary.unclassified > 0 {
        return Err(format!("{} trial(s) escaped failure classification", summary.unclassified));
    }
    Ok(())
}

fn batch(args: &[String]) -> Result<(), String> {
    let paths: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        return Err("batch needs at least one model file".into());
    }
    let steps = opt_u64(args, "--steps", 1000);
    let repeat = opt_u64(args, "--repeat", 1).max(1);
    let seed = opt_u64(args, "--seed", 2024);
    let rows = opt_u64(args, "--rows", 64) as usize;
    let lanes = opt_u64(args, "--lanes", 1).max(1);

    let mut pipeline =
        AccMoS::new().with_lanes(lanes as usize).with_exec_policy(exec_policy(args));
    if flag(args, "--no-cache") {
        pipeline = pipeline.without_cache();
    }
    let trace_out = opt(args, "--trace-out");
    let tracer = trace_out.map(|_| accmos::Tracer::new());
    if let Some(t) = &tracer {
        pipeline = pipeline.with_tracer(t.clone());
    }

    let mut jobs = Vec::new();
    for path in &paths {
        let model = load_model(path)?;
        let pre = accmos::preprocess(&model).map_err(|e| e.to_string())?;
        for rep in 0..repeat {
            // Each repetition gets a distinct stimulus seed — one seed per
            // lane, so no lane ever replays another's stimulus (for the
            // scalar default this reduces to the old seed+rep scheme).
            // The binary is still shared across repetitions because the
            // generated program is identical.
            let base = seed.wrapping_add(rep.wrapping_mul(lanes));
            let tests = accmos_testgen::random_tests(&pre, rows, base);
            let lane_tests: Vec<TestVectors> = (1..lanes)
                .map(|lane| {
                    accmos_testgen::random_tests(&pre, rows, base.wrapping_add(lane))
                })
                .collect();
            let label =
                if repeat > 1 { format!("{path}#{rep}") } else { (*path).clone() };
            jobs.push(BatchJob::model(label, model.clone(), tests, steps).with_opts(
                RunOptions { stop_on_diagnostic: false, time_budget: None, lane_tests },
            ));
        }
    }

    let mut runner = BatchRunner::new(pipeline);
    if let Some(n) = opt(args, "--jobs").and_then(|v| v.parse().ok()) {
        runner = runner.with_workers(n);
    }
    let report = runner.run(jobs).map_err(|e| e.to_string())?;

    for job in &report.jobs {
        match &job.report {
            Ok(r) => {
                let mut notes = String::new();
                if job.retries > 0 {
                    notes.push_str(&format!(", {} retry(ies)", job.retries));
                }
                if let Some(reason) = &job.fallback_reason {
                    notes.push_str(&format!(", DEGRADED ({reason})"));
                }
                if job.peak_rss_kb > 0 {
                    notes.push_str(&format!(", rss {} KiB", job.peak_rss_kb));
                }
                println!(
                    "{}: digest {:016x}, {} step(s), run {:.2?}{notes}",
                    job.label, r.output_digest, r.steps, job.run_time
                );
            }
            Err(e) => println!("{}: FAILED: {e}", job.label),
        }
    }
    let s = &report.summary;
    println!(
        "batch: {} job(s), {} unique program(s), {} worker(s), wall {:.2?}",
        s.jobs,
        s.unique_programs,
        runner.workers(),
        s.total_wall
    );
    println!(
        "  compile: {} cold ({:.2?}), {} cached ({:.2?}); codegen {:.2?}; runs {:.2?}",
        s.cold_compiles,
        s.cold_compile_time,
        s.cached_compiles,
        s.cached_compile_time,
        s.codegen_time,
        s.run_time
    );
    if s.retries > 0 || s.degraded > 0 || s.quarantined > 0 {
        println!(
            "  supervision: {} retry(ies), {} degraded job(s), {} quarantined binarie(s)",
            s.retries, s.degraded, s.quarantined
        );
        let kinds: Vec<String> = s
            .retry_kinds
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| format!("{} x{n}", accmos::FailureKind::label(i)))
            .collect();
        if !kinds.is_empty() {
            println!(
                "  retries by kind: {}; backoff slept {:.2?}",
                kinds.join(", "),
                s.backoff_sleep
            );
        }
    }
    if s.max_peak_rss_kb > 0 {
        println!(
            "  peak rss: {} KiB (largest child simulator, VmHWM)",
            s.max_peak_rss_kb
        );
    }
    if let (Some(t), Some(path)) = (&tracer, trace_out) {
        t.write_chrome_json(std::path::Path::new(path))
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        eprintln!("wrote trace {path}");
    }
    if s.failures > 0 {
        return Err(format!("{} job(s) failed", s.failures));
    }
    Ok(())
}

/// `accmos serve`: run the in-process simulation daemon until a client
/// sends `shutdown`.
#[cfg(unix)]
fn serve(args: &[String]) -> Result<(), String> {
    let mut pipeline = AccMoS::new().with_exec_policy(exec_policy(args));
    if let Some(dir) = opt(args, "--cache-dir") {
        pipeline = pipeline.with_cache(accmos::BuildCache::at(dir));
    }
    let socket = serve_socket(args, &pipeline)?;
    if let Some(parent) = socket.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    let workers = usize::try_from(opt_u64(args, "--workers", 2)).unwrap_or(2).max(1);
    let config = accmos::ServeConfig::new(&socket)
        .with_workers(workers)
        .with_pipeline(pipeline);
    let handle = accmos::ServeHandle::start(config)
        .map_err(|e| format!("cannot start daemon on {}: {e}", socket.display()))?;
    println!("accmos serve: listening on {} ({workers} workers)", socket.display());
    handle.join();
    println!("accmos serve: shut down");
    Ok(())
}

/// The socket path: `--socket`, else `accmos.sock` in the pipeline's
/// state directory (so daemon and clients agree by default).
#[cfg(unix)]
fn serve_socket(args: &[String], pipeline: &AccMoS) -> Result<std::path::PathBuf, String> {
    if let Some(path) = opt(args, "--socket") {
        return Ok(std::path::PathBuf::from(path));
    }
    pipeline
        .state_dir()
        .map(|d| d.join("accmos.sock"))
        .ok_or_else(|| "no default socket without a cache; pass --socket".into())
}

/// `accmos submit`: send a job (and/or `--ping` / `--shutdown`) to a
/// running daemon and stream its result.
#[cfg(unix)]
fn submit(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let pipeline = match opt(args, "--cache-dir") {
        Some(dir) => AccMoS::new().with_cache(accmos::BuildCache::at(dir)),
        None => AccMoS::new(),
    };
    let socket = serve_socket(args, &pipeline)?;
    let positional = submit_positionals(args);
    if positional.is_empty() && !flag(args, "--ping") && !flag(args, "--shutdown") {
        return Err("nothing to do: pass a model spec, --ping, or --shutdown".into());
    }

    let stream = std::os::unix::net::UnixStream::connect(&socket)
        .map_err(|e| format!("cannot reach daemon on {}: {e}", socket.display()))?;
    let mut reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("socket clone: {e}"))?,
    );
    let mut writer = stream;
    let mut read_event = || -> Result<accmos::telemetry::Fields, String> {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("daemon connection lost: {e}"))?;
        accmos::telemetry::parse_flat_object(&line)
            .ok_or_else(|| format!("unparseable daemon reply: {line:?}"))
    };

    let mut job_failed = None;
    if let Some(spec) = positional.first() {
        let steps = positional
            .get(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| opt_u64(args, "--steps", 1000));
        let line = format!(
            "{{\"op\":\"submit\",\"model\":{},\"steps\":{steps},\"lanes\":{},\"rows\":{},\"seed\":{}}}\n",
            accmos::telemetry::json_str(spec),
            opt_u64(args, "--lanes", 1),
            opt_u64(args, "--rows", 8),
            opt_u64(args, "--seed", 0xACC5),
        );
        writer.write_all(line.as_bytes()).map_err(|e| format!("send: {e}"))?;
        loop {
            let ev = read_event()?;
            match ev.str("event").as_deref() {
                Some("queued") => {
                    println!("queued {}", ev.str("job").unwrap_or_default());
                }
                Some("done") => {
                    let outcome = ev.str("outcome").unwrap_or_default();
                    println!(
                        "done {} {} outcome={outcome} engine={} digest={} steps={}",
                        ev.str("job").unwrap_or_default(),
                        ev.str("model").unwrap_or_default(),
                        ev.str("engine").unwrap_or_default(),
                        ev.str("digest").unwrap_or_default(),
                        ev.num("steps").unwrap_or(0),
                    );
                    let note = ev.str("note").unwrap_or_default();
                    if !note.is_empty() {
                        println!("  note: {note}");
                    }
                    if outcome == "failed" {
                        job_failed = Some(note);
                    }
                    break;
                }
                Some("error") => {
                    return Err(ev.str("detail").unwrap_or_default());
                }
                other => return Err(format!("unexpected daemon event {other:?}")),
            }
        }
    }
    if flag(args, "--ping") {
        writer.write_all(b"{\"op\":\"ping\"}\n").map_err(|e| format!("send: {e}"))?;
        let ev = read_event()?;
        println!("pong pending={}", ev.num("pending").unwrap_or(0));
    }
    if flag(args, "--shutdown") {
        writer
            .write_all(b"{\"op\":\"shutdown\"}\n")
            .map_err(|e| format!("send: {e}"))?;
        let ev = read_event()?;
        if ev.str("event").as_deref() == Some("bye") {
            println!("daemon shutting down");
        }
    }
    match job_failed {
        Some(note) => Err(format!("job failed: {note}")),
        None => Ok(()),
    }
}

/// The non-flag arguments of `submit` (model spec, optional step count),
/// skipping every `--opt VALUE` pair.
#[cfg(unix)]
fn submit_positionals(args: &[String]) -> Vec<String> {
    const VALUE_OPTS: [&str; 7] =
        ["--socket", "--cache-dir", "--steps", "--lanes", "--rows", "--seed", "--workers"];
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if VALUE_OPTS.contains(&args[i].as_str()) {
            i += 2;
            continue;
        }
        if !args[i].starts_with("--") {
            out.push(args[i].clone());
        }
        i += 1;
    }
    out
}
