//! Differential fuzz campaigns: seeded random models, every backend
//! compared bit-for-bit, every failure classified, every divergence
//! minimized into a replayable corpus entry.
//!
//! The pipeline's strongest claims — interpreter, generated C and rustc
//! backends bit-identical; analyzer-pruned builds digest-identical to
//! unpruned ones — are only as strong as the models they were tested on.
//! A [`FuzzCampaign`] multiplies that from ten hand-built benchmarks to
//! unbounded seeded random structure:
//!
//! - each **trial** derives a [`TrialPlan`] deterministically from
//!   `(campaign seed, index)`: a [`ModelGenConfig`] over the full actor
//!   catalogue (float math, vectors, conditional groups, nested
//!   subsystems), a lane width in `{1, 4}`, steps and stimulus rows;
//! - the model runs on the interpretive reference and on the generated-C
//!   simulator (analyzer-pruned *and* unpruned builds; periodically the
//!   rustc ablation backend too), all compared exactly on output digest,
//!   final outputs, step counts, all four coverage metrics and every
//!   diagnostic event;
//! - compiled binaries execute under the existing [`Supervisor`] /
//!   [`ExecPolicy`], so a hung or crashing simulator is killed,
//!   classified and quarantined — a [`Verdict`], never a dead campaign;
//! - campaign state is an append-only, torn-tail-tolerant `fuzz.jsonl`
//!   ([`FuzzStore`]) under the cache directory's cross-process lease;
//!   [`FuzzConfig::resume`] skips already-completed trial indices, so a
//!   killed nightly run continues where it died;
//! - a divergence triggers the delta-debugging [`minimize`] pass: the
//!   *generator plan* is shrunk (lanes, steps, rows, feature flags,
//!   actor count, dtype catalogue, inports — re-checking the divergence
//!   after every candidate shrink) and the minimal repro is written as
//!   an `.mdlx` + expected-digest pair for `tests/corpus.rs` to replay
//!   as a tier-1 regression test forever after.
//!
//! The detector itself is tested end-to-end through
//! [`CodegenOptions::sabotage_digest`], a test-only flag that makes the
//! generated C fold one extra word into its digest: campaigns running
//! with sabotage enabled must detect, minimize and corpus-ize the
//! planted divergence.

use crate::{
    interp_lane_run, preprocess, AccMoS, AccMoSError, BuildCache, CodegenOptions, ExecPolicy,
    RunOptions, Supervisor, Tracer,
};
use accmos_backend::telemetry::{append_jsonl, json_str, parse_flat_object};
use accmos_ir::{CoverageKind, Model, SimulationReport, TestVectors};
use accmos_parse::{parse_mdlx, write_mdlx};
use accmos_testgen::{random_tests, ModelGenConfig, RandomModelGen, TestRng};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Configuration of one differential fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed: every trial plan derives deterministically from
    /// `(seed, trial index)`, so two runs of the same campaign test the
    /// same models and a resumed campaign continues the same sequence.
    pub seed: u64,
    /// Number of trials the campaign plans (indices `0..trials`).
    pub trials: u64,
    /// Upper bound on simulated steps per trial (the per-trial *step
    /// budget*; individual plans draw fewer).
    pub steps: u64,
    /// Upper bound on stimulus rows per trial.
    pub rows: usize,
    /// State directory holding `fuzz.jsonl`, the build cache, the run
    /// ledger and the quarantine store. `None` uses the default cache
    /// directory (`$ACCMOS_CACHE_DIR`, ...).
    pub state_dir: Option<PathBuf>,
    /// Skip trial indices that already have a record in `fuzz.jsonl`
    /// for this campaign seed (crash-resume). Without this flag,
    /// existing records are ignored and every trial runs again.
    pub resume: bool,
    /// Per-trial wall-clock budget: the supervisor's hard kill timeout
    /// for each compiled-simulator execution, so no seed can wedge the
    /// campaign.
    pub trial_budget: Duration,
    /// Supervised-execution policy for compiled trials (retries,
    /// backoff, quarantine threshold). The kill timeout is overridden
    /// by [`FuzzConfig::trial_budget`].
    pub exec_policy: ExecPolicy,
    /// Directory minimized divergence repros are written to (an `.mdlx`
    /// plus `.expected` sidecar per divergence). `None` disables corpus
    /// writes; minimization still runs and is reported.
    pub corpus_dir: Option<PathBuf>,
    /// Run the delta-debugging minimizer on every divergence.
    pub minimize: bool,
    /// Stop after this many *executed* trials even if more are planned
    /// (bounded nightly chunks; the next `--resume` run continues).
    pub max_trials_per_run: Option<u64>,
    /// Path to a `faultsim`-style fault-injection binary. When set,
    /// deterministic trial indices run a copy of it (as
    /// `faultsim-crash` / `faultsim-hang`) under the supervisor instead
    /// of a real model, proving mid-campaign crashes and hangs are
    /// classified, not fatal.
    pub inject_fault_exe: Option<PathBuf>,
    /// Compare the rustc ablation backend every Nth scalar trial
    /// (0 = never; rustc cold-compiles every model, so this is the
    /// expensive comparison).
    pub rust_every: u64,
    /// **Test-only.** Build the generated-C side with
    /// [`CodegenOptions::sabotage_digest`], planting a digest divergence
    /// on every model so the detection → minimization → corpus path is
    /// exercised end-to-end.
    pub sabotage: bool,
    /// **Test-only.** Panic (simulating a campaign process crash) after
    /// this many executed trials, leaving `fuzz.jsonl` mid-campaign for
    /// resumability tests.
    pub abort_after_trials: Option<u64>,
    /// Trace collector: when set, the campaign records one `fuzz` span
    /// per executed trial (with its verdict) and threads the tracer
    /// through the supervisor and every compiled-variant pipeline, so
    /// `--trace-out` covers the whole campaign.
    pub tracer: Option<Tracer>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            trials: 50,
            steps: 64,
            rows: 12,
            state_dir: None,
            resume: false,
            trial_budget: Duration::from_secs(10),
            exec_policy: ExecPolicy::default()
                .with_retries(1)
                .with_backoff(Duration::from_millis(50))
                .with_quarantine_after(2),
            corpus_dir: None,
            minimize: true,
            max_trials_per_run: None,
            inject_fault_exe: None,
            rust_every: 16,
            sabotage: false,
            abort_after_trials: None,
            tracer: None,
        }
    }
}

/// Which fault a `faultsim`-injected trial provokes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The injected binary dies on a signal (classified `crash`, counts
    /// toward quarantine).
    Crash,
    /// The injected binary hangs until the kill timeout (classified
    /// `timeout`).
    Hang,
}

impl FaultMode {
    /// The `faultsim` dispatch name (`faultsim-<mode>`).
    pub fn exe_name(self) -> &'static str {
        match self {
            FaultMode::Crash => "faultsim-crash",
            FaultMode::Hang => "faultsim-hang",
        }
    }
}

/// One deterministic trial: everything needed to (re)run it.
#[derive(Debug, Clone)]
pub struct TrialPlan {
    /// Trial index inside the campaign.
    pub index: u64,
    /// Per-trial seed (mixed from campaign seed and index).
    pub seed: u64,
    /// Model generator configuration.
    pub cfg: ModelGenConfig,
    /// Lane width (1 or 4): lane-4 trials drive the structure-of-arrays
    /// simulator against four independently-seeded stimuli.
    pub lanes: usize,
    /// Simulated steps.
    pub steps: u64,
    /// Stimulus rows.
    pub rows: usize,
    /// Fault-injection trial (no model runs; a `faultsim` copy does).
    pub inject: Option<FaultMode>,
    /// Also build the specialization-off variant (pruning on, analyzer
    /// folding/elision/arm-specialization off) and require it to agree
    /// exactly with the specialized build — the optimized-vs-unoptimized
    /// comparison plan.
    pub spec_off: bool,
}

impl TrialPlan {
    /// The stimulus seed of this plan (derived from the trial seed so a
    /// corpus entry can pin it independently of the campaign).
    pub fn stim_seed(&self) -> u64 {
        self.seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0x9E37)
    }
}

/// SplitMix64-style mix of campaign seed and trial index.
fn mix_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the deterministic plan for trial `index` of a campaign.
///
/// Fault-injection trials are scheduled when the campaign carries an
/// injection binary: every index `≡ 7 (mod 10)` crashes, every index
/// `≡ 3 (mod 10)` hangs. The schedule depends only on the index, so a
/// resumed campaign injects the same trials.
pub fn plan_trial(config: &FuzzConfig, index: u64) -> TrialPlan {
    let seed = mix_seed(config.seed, index);
    let mut rng = TestRng::seed_from_u64(seed);
    let conditional = rng.gen_bool(0.4);
    let cfg = ModelGenConfig {
        seed,
        actors: rng.gen_range(8..=40i128) as usize,
        float_math: rng.gen_bool(0.3),
        vectors: rng.gen_bool(0.3),
        conditional,
        nested: conditional && rng.gen_bool(0.5),
        inports: rng.gen_range(1..=3i128) as usize,
        ..ModelGenConfig::default()
    };
    let lanes = if rng.gen_bool(0.25) { 4 } else { 1 };
    let steps = rng.gen_range(8..=config.steps.max(8) as i128) as u64;
    let rows = rng.gen_range(2..=config.rows.max(2) as i128) as usize;
    // Drawn last so appending this arm left every older plan field — and
    // therefore every pinned corpus entry and resumable campaign state —
    // byte-identical.
    let spec_off = rng.gen_bool(0.5);
    let inject = if config.inject_fault_exe.is_some() {
        match index % 10 {
            7 => Some(FaultMode::Crash),
            3 => Some(FaultMode::Hang),
            _ => None,
        }
    } else {
        None
    };
    TrialPlan { index, seed, cfg, lanes, steps, rows, inject, spec_off }
}

/// The random model a standalone seed maps to (the CLI's `rand:SEED`
/// model specifier): the trial planner's model configuration for a
/// single-trial campaign with that seed.
///
/// # Errors
///
/// Returns the generator's validation error ([`accmos_testgen::ModelGenError`])
/// formatted as a string (the configuration produced here is always
/// valid; the error path exists for API symmetry).
pub fn planned_model(seed: u64) -> Result<Model, String> {
    let config = FuzzConfig { seed, ..FuzzConfig::default() };
    let plan = plan_trial(&config, 0);
    RandomModelGen::new(plan.cfg).try_generate().map_err(|e| e.to_string())
}

/// Seeded lane stimulus: the primary test vectors plus `lanes - 1`
/// further independently-seeded vectors for [`RunOptions::lane_tests`].
/// Shared by campaigns and corpus replay so a pinned `stim_seed`
/// regenerates the exact stimulus.
pub fn lane_stimulus(
    pre: &accmos_graph::PreprocessedModel,
    rows: usize,
    stim_seed: u64,
    lanes: usize,
) -> (TestVectors, Vec<TestVectors>) {
    let primary = random_tests(pre, rows, stim_seed);
    let lane_tests = (1..lanes.max(1))
        .map(|l| random_tests(pre, rows, stim_seed.wrapping_add(l as u64)))
        .collect();
    (primary, lane_tests)
}

/// How one trial ended. Every variant except [`Verdict::Panic`] and
/// [`Verdict::InjectedUnclassified`] is *classified*: the campaign knows
/// exactly what happened and the taxonomy is mechanical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All compared backends agree exactly.
    Ok,
    /// Two backends disagree; `detail` names the pair and the field.
    Divergence {
        /// Which comparison failed and how.
        detail: String,
    },
    /// The supervised run failed with a classified [`crate::FailureKind`]
    /// (`kind` is its short label).
    Failed {
        /// The failure-kind label (`timeout`, `crash`, `exit`, ...).
        kind: String,
        /// Human-readable failure detail.
        detail: String,
    },
    /// The executable was refused: quarantined by earlier crashes.
    Quarantined,
    /// The generated program did not compile.
    CompileFailed {
        /// Compiler failure detail.
        detail: String,
    },
    /// The trial plan could not generate or preprocess a model.
    GenFailed {
        /// Generator/validation error detail.
        detail: String,
    },
    /// A fault-injection trial was classified as intended.
    Injected {
        /// The classified failure label (`crash`, `timeout`,
        /// `quarantined`).
        kind: String,
    },
    /// A fault-injection trial escaped classification (the injected
    /// binary ran "successfully") — counted as unclassified.
    InjectedUnclassified {
        /// What the injected run returned instead.
        detail: String,
    },
    /// The trial panicked; the campaign caught it and moved on, but a
    /// panic is by definition outside the failure taxonomy.
    Panic {
        /// The panic payload, if printable.
        detail: String,
    },
}

impl Verdict {
    /// Short stable label stored in `fuzz.jsonl`.
    pub fn label(&self) -> String {
        match self {
            Verdict::Ok => "ok".into(),
            Verdict::Divergence { .. } => "divergence".into(),
            Verdict::Failed { kind, .. } => format!("failed:{kind}"),
            Verdict::Quarantined => "quarantined".into(),
            Verdict::CompileFailed { .. } => "compile-failed".into(),
            Verdict::GenFailed { .. } => "gen-failed".into(),
            Verdict::Injected { kind } => format!("injected:{kind}"),
            Verdict::InjectedUnclassified { .. } => "injected-unclassified".into(),
            Verdict::Panic { .. } => "panic".into(),
        }
    }

    /// Whether the outcome is inside the mechanical taxonomy.
    pub fn classified(&self) -> bool {
        !matches!(self, Verdict::Panic { .. } | Verdict::InjectedUnclassified { .. })
    }

    /// The detail string, when the variant carries one.
    pub fn detail(&self) -> &str {
        match self {
            Verdict::Divergence { detail }
            | Verdict::Failed { detail, .. }
            | Verdict::CompileFailed { detail }
            | Verdict::GenFailed { detail }
            | Verdict::InjectedUnclassified { detail }
            | Verdict::Panic { detail } => detail,
            _ => "",
        }
    }
}

/// One schema-versioned line of the campaign state file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzRecord {
    /// Store schema version ([`FuzzStore::SCHEMA`]).
    pub schema: u64,
    /// Milliseconds since the Unix epoch at append time.
    pub ts_ms: u64,
    /// Campaign seed the trial belongs to.
    pub campaign: u64,
    /// Trial index inside the campaign.
    pub index: u64,
    /// Per-trial seed.
    pub seed: u64,
    /// Lane width of the trial.
    pub lanes: u64,
    /// Planned actor count of the trial's generator config.
    pub actors: u64,
    /// Simulated steps.
    pub steps: u64,
    /// Verdict label ([`Verdict::label`]).
    pub verdict: String,
    /// Verdict detail (empty when the verdict carries none).
    pub detail: String,
    /// Whether this was a fault-injection trial.
    pub injected: bool,
    /// Whether the verdict is inside the mechanical taxonomy.
    pub classified: bool,
    /// Trial wall-clock in microseconds.
    pub duration_us: u64,
}

fn push_field(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(val);
    out.push(',');
}

impl FuzzRecord {
    /// Encode as one flat JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        s.push('{');
        push_field(&mut s, "schema", &self.schema.to_string());
        push_field(&mut s, "ts_ms", &self.ts_ms.to_string());
        push_field(&mut s, "campaign", &self.campaign.to_string());
        push_field(&mut s, "index", &self.index.to_string());
        push_field(&mut s, "seed", &self.seed.to_string());
        push_field(&mut s, "lanes", &self.lanes.to_string());
        push_field(&mut s, "actors", &self.actors.to_string());
        push_field(&mut s, "steps", &self.steps.to_string());
        push_field(&mut s, "verdict", &json_str(&self.verdict));
        if !self.detail.is_empty() {
            push_field(&mut s, "detail", &json_str(&self.detail));
        }
        push_field(&mut s, "injected", if self.injected { "true" } else { "false" });
        push_field(&mut s, "classified", if self.classified { "true" } else { "false" });
        push_field(&mut s, "duration_us", &self.duration_us.to_string());
        s.pop();
        s.push('}');
        s
    }

    /// Decode one store line; `None` when garbled or missing required
    /// fields (the reader skips it).
    pub fn from_json(line: &str) -> Option<FuzzRecord> {
        let f = parse_flat_object(line)?;
        Some(FuzzRecord {
            schema: f.num("schema")?,
            ts_ms: f.num("ts_ms").unwrap_or(0),
            campaign: f.num("campaign")?,
            index: f.num("index")?,
            seed: f.num("seed").unwrap_or(0),
            lanes: f.num("lanes").unwrap_or(1),
            actors: f.num("actors").unwrap_or(0),
            steps: f.num("steps").unwrap_or(0),
            verdict: f.str("verdict")?,
            detail: f.str("detail").unwrap_or_default(),
            injected: f.bool("injected").unwrap_or(false),
            classified: f.bool("classified").unwrap_or(true),
            duration_us: f.num("duration_us").unwrap_or(0),
        })
    }
}

/// Result of reading the campaign store (mirrors the run ledger's
/// truncation taxonomy).
#[derive(Debug, Default)]
pub struct FuzzView {
    /// Records matching [`FuzzStore::SCHEMA`], in file order.
    pub records: Vec<FuzzRecord>,
    /// Complete lines that were garbled or from another schema.
    pub skipped: usize,
    /// Whether the file ends mid-record (a writer died mid-append).
    pub truncated_tail: bool,
}

/// The append-only `fuzz.jsonl` campaign state under a state directory,
/// lease-locked and torn-tail-tolerant like the run ledger.
#[derive(Debug, Clone)]
pub struct FuzzStore {
    path: PathBuf,
}

impl FuzzStore {
    /// Schema version written by this build.
    pub const SCHEMA: u64 = 1;
    /// Store file name under the state directory.
    pub const FILE_NAME: &'static str = "fuzz.jsonl";

    /// The store inside state directory `dir` (created on first append).
    pub fn in_dir(dir: impl Into<PathBuf>) -> FuzzStore {
        FuzzStore { path: dir.into().join(Self::FILE_NAME) }
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record under the cross-process lease.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors — campaign state is the product of a
    /// fuzz run, so a failed append fails the campaign loudly.
    pub fn append(&self, record: &FuzzRecord) -> std::io::Result<()> {
        append_jsonl(&self.path, &record.to_json())
    }

    /// Read every record, tolerating a truncated tail and foreign lines.
    /// A missing file is an empty store.
    pub fn read(&self) -> FuzzView {
        let Ok(contents) = std::fs::read_to_string(&self.path) else {
            return FuzzView::default();
        };
        let mut view = FuzzView::default();
        let complete_tail = contents.ends_with('\n');
        let lines: Vec<&str> = contents.lines().filter(|l| !l.trim().is_empty()).collect();
        for (i, line) in lines.iter().enumerate() {
            match FuzzRecord::from_json(line) {
                Some(r) if r.schema == Self::SCHEMA => view.records.push(r),
                Some(_) => view.skipped += 1,
                None if i + 1 == lines.len() && !complete_tail => view.truncated_tail = true,
                None => view.skipped += 1,
            }
        }
        view
    }

    /// Completed trial indices of campaign `seed` (for `--resume`).
    pub fn completed_indices(&self, seed: u64) -> HashSet<u64> {
        self.read()
            .records
            .iter()
            .filter(|r| r.campaign == seed)
            .map(|r| r.index)
            .collect()
    }
}

/// A minimized divergence repro written to the corpus.
#[derive(Debug, Clone)]
pub struct MinimizedRepro {
    /// Corpus entry name (`min-s<campaign>-i<index>`).
    pub name: String,
    /// Path of the written `.mdlx` (empty when no corpus dir was set).
    pub mdlx_path: PathBuf,
    /// Final generator actor count after shrinking.
    pub actors: usize,
    /// Final lane width.
    pub lanes: usize,
    /// Final steps.
    pub steps: u64,
    /// Final stimulus rows.
    pub rows: usize,
    /// The reference (interpreter) digest the repro pins.
    pub digest: u64,
    /// The divergence the repro preserves.
    pub detail: String,
}

/// Aggregate result of one campaign run.
#[derive(Debug, Default)]
pub struct CampaignSummary {
    /// Trials the campaign plans in total.
    pub planned: u64,
    /// Trials executed by *this* run.
    pub executed: u64,
    /// Trials skipped because a resume found them completed.
    pub resumed: u64,
    /// `ok` verdicts this run.
    pub ok: u64,
    /// Divergence verdicts this run.
    pub divergences: u64,
    /// Classified failure verdicts this run (failed/quarantined/
    /// compile-failed/gen-failed).
    pub failures: u64,
    /// Fault-injection trials classified this run.
    pub injected: u64,
    /// Unclassified outcomes this run (panics, unclassified injections).
    pub unclassified: u64,
    /// Minimized repros produced this run.
    pub minimized: Vec<MinimizedRepro>,
    /// The campaign store path.
    pub store_path: PathBuf,
}

impl CampaignSummary {
    /// Whether the run is clean: no divergence and nothing unclassified.
    pub fn clean(&self) -> bool {
        self.divergences == 0 && self.unclassified == 0
    }
}

/// A runnable differential fuzz campaign.
#[derive(Debug)]
pub struct FuzzCampaign {
    config: FuzzConfig,
}

impl FuzzCampaign {
    /// A campaign with the given configuration.
    pub fn new(config: FuzzConfig) -> FuzzCampaign {
        FuzzCampaign { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FuzzConfig {
        &self.config
    }

    /// Run the campaign: plan each trial, execute it under supervision,
    /// append its record to `fuzz.jsonl`, and minimize + corpus-ize any
    /// divergence.
    ///
    /// # Errors
    ///
    /// Campaign *infrastructure* errors only — a state-dir or store
    /// append failure. Trial-level trouble (crashes, hangs, compile
    /// failures, even panics) is classified into verdicts and never
    /// fails the campaign.
    ///
    /// # Panics
    ///
    /// Panics only when [`FuzzConfig::abort_after_trials`] injects a
    /// simulated campaign crash (test-only).
    pub fn run(&self) -> Result<CampaignSummary, AccMoSError> {
        let cfg = &self.config;
        let state_dir =
            cfg.state_dir.clone().unwrap_or_else(accmos_backend::default_state_dir);
        std::fs::create_dir_all(&state_dir)
            .map_err(|e| AccMoSError::Batch(format!("fuzz state dir: {e}")))?;
        let store = FuzzStore::in_dir(&state_dir);
        let policy = cfg.exec_policy.clone().with_kill_timeout(cfg.trial_budget);
        let mut supervisor = Supervisor::new(policy.clone()).with_state_dir(&state_dir);
        if let Some(tracer) = &cfg.tracer {
            supervisor = supervisor.with_tracer(tracer.clone());
        }
        let cache = BuildCache::at(&state_dir);
        let fault_dir = state_dir.join("fuzz-bin");

        let done = if cfg.resume {
            store.completed_indices(cfg.seed)
        } else {
            HashSet::new()
        };

        let mut summary =
            CampaignSummary { planned: cfg.trials, store_path: store.path().to_path_buf(), ..CampaignSummary::default() };

        for index in 0..cfg.trials {
            if done.contains(&index) {
                summary.resumed += 1;
                continue;
            }
            if let Some(max) = cfg.max_trials_per_run {
                if summary.executed >= max {
                    break;
                }
            }
            let plan = plan_trial(cfg, index);
            let start = Instant::now();
            let trial_start = cfg.tracer.as_ref().map(|t| t.now_us());
            // A panicking trial must not kill the campaign: classify it.
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.run_trial(&plan, &supervisor, &cache, &fault_dir)
            }))
            .unwrap_or_else(|payload| Verdict::Panic { detail: panic_text(payload) });
            let duration = start.elapsed();
            if let (Some(t), Some(span_start)) = (&cfg.tracer, trial_start) {
                t.record(crate::TraceSpan {
                    name: format!("trial {index}"),
                    cat: "fuzz".to_owned(),
                    start_us: span_start,
                    dur_us: t.now_us().saturating_sub(span_start),
                    tid: 1,
                    args: vec![
                        ("verdict".to_owned(), verdict.label().to_string()),
                        ("lanes".to_owned(), plan.lanes.to_string()),
                    ],
                });
            }

            self.tally(&mut summary, &verdict);
            let record = FuzzRecord {
                schema: FuzzStore::SCHEMA,
                ts_ms: now_ms(),
                campaign: cfg.seed,
                index,
                seed: plan.seed,
                lanes: plan.lanes as u64,
                actors: plan.cfg.actors as u64,
                steps: plan.steps,
                verdict: verdict.label(),
                detail: truncate(verdict.detail(), 600),
                injected: plan.inject.is_some(),
                classified: verdict.classified(),
                duration_us: u64::try_from(duration.as_micros()).unwrap_or(u64::MAX),
            };
            store
                .append(&record)
                .map_err(|e| AccMoSError::Batch(format!("fuzz store append: {e}")))?;
            summary.executed += 1;

            if let Verdict::Divergence { detail } = &verdict {
                if cfg.minimize {
                    let repro =
                        self.minimize(&plan, detail, &supervisor, &cache);
                    summary.minimized.push(repro);
                }
            }

            if let Some(abort_after) = cfg.abort_after_trials {
                assert!(
                    summary.executed < abort_after,
                    "fuzz campaign abort injection after {abort_after} trials (test-only)"
                );
            }
        }
        Ok(summary)
    }

    fn tally(&self, summary: &mut CampaignSummary, verdict: &Verdict) {
        match verdict {
            Verdict::Ok => summary.ok += 1,
            Verdict::Divergence { .. } => summary.divergences += 1,
            Verdict::Failed { .. }
            | Verdict::Quarantined
            | Verdict::CompileFailed { .. }
            | Verdict::GenFailed { .. } => summary.failures += 1,
            Verdict::Injected { .. } => summary.injected += 1,
            Verdict::Panic { .. } | Verdict::InjectedUnclassified { .. } => {
                summary.unclassified += 1;
            }
        }
    }

    /// Execute one trial to a verdict. Never returns an error: every
    /// outcome is a classification.
    fn run_trial(
        &self,
        plan: &TrialPlan,
        supervisor: &Supervisor,
        cache: &BuildCache,
        fault_dir: &Path,
    ) -> Verdict {
        if let Some(mode) = plan.inject {
            return self.run_injected(plan, mode, supervisor, fault_dir);
        }
        self.run_differential(plan, supervisor, cache, self.config.sabotage)
    }

    /// Run a fault-injection trial: a copy of the injection binary,
    /// supervised like any compiled simulator. The verdict must come
    /// back classified.
    fn run_injected(
        &self,
        plan: &TrialPlan,
        mode: FaultMode,
        supervisor: &Supervisor,
        fault_dir: &Path,
    ) -> Verdict {
        let Some(src) = &self.config.inject_fault_exe else {
            return Verdict::InjectedUnclassified {
                detail: "injection scheduled without an injection binary".into(),
            };
        };
        let exe = fault_dir.join(mode.exe_name());
        if !exe.exists() {
            if let Err(e) = std::fs::create_dir_all(fault_dir)
                .and_then(|()| std::fs::copy(src, &exe).map(|_| ()))
            {
                return Verdict::InjectedUnclassified {
                    detail: format!("could not stage injection binary: {e}"),
                };
            }
        }
        let run = accmos_backend::run_executable_supervised(
            &exe,
            fault_dir,
            plan.steps.min(8),
            &TestVectors::new(),
            &RunOptions::default(),
            supervisor,
        );
        match run {
            Ok(_) => Verdict::InjectedUnclassified {
                detail: format!("{} ran to completion", mode.exe_name()),
            },
            Err(e) => match e.failure_kind() {
                Some(kind) => Verdict::Injected {
                    kind: crate::FailureKind::label(kind.index()).to_string(),
                },
                None if matches!(e, accmos_backend::BackendError::Quarantined { .. }) => {
                    Verdict::Injected { kind: "quarantined".into() }
                }
                None => Verdict::InjectedUnclassified { detail: e.to_string() },
            },
        }
    }

    /// Run one differential trial: interp vs specialized C vs unpruned C
    /// (vs specialization-off C and rustc on sampled trials), compared
    /// exactly.
    fn run_differential(
        &self,
        plan: &TrialPlan,
        supervisor: &Supervisor,
        cache: &BuildCache,
        sabotage: bool,
    ) -> Verdict {
        let model = match RandomModelGen::new(plan.cfg.clone()).try_generate() {
            Ok(m) => m,
            Err(e) => return Verdict::GenFailed { detail: e.to_string() },
        };
        let pre = match preprocess(&model) {
            Ok(p) => p,
            Err(e) => return Verdict::GenFailed { detail: format!("preprocess: {e}") },
        };
        let (tests, lane_tests) = lane_stimulus(&pre, plan.rows, plan.stim_seed(), plan.lanes);
        let run_opts = RunOptions { lane_tests, ..RunOptions::default() };

        let interp = interp_lane_run(&pre, &tests, &run_opts, plan.steps);

        // Generated C, analyzer pruning ON (the production configuration).
        let pruned_opts = CodegenOptions {
            sabotage_digest: sabotage,
            ..CodegenOptions::accmos().lanes(plan.lanes)
        };
        let pruned = match self.run_compiled(&model, &pruned_opts, plan, &tests, &run_opts, supervisor, cache)
        {
            Ok(report) => report,
            Err(v) => return v,
        };
        if let Some(detail) = compare_reports("interp", &interp, "accmos", &pruned) {
            return Verdict::Divergence { detail };
        }

        // Generated C, pruning OFF: the analyzer's soundness claim.
        let unpruned_opts =
            CodegenOptions { prune_proven_safe: false, ..pruned_opts.clone() };
        let unpruned = match self.run_compiled(&model, &unpruned_opts, plan, &tests, &run_opts, supervisor, cache)
        {
            Ok(report) => report,
            Err(v) => return v,
        };
        if let Some(detail) = compare_reports("accmos", &pruned, "accmos-noprune", &unpruned) {
            return Verdict::Divergence { detail };
        }

        // Generated C, pruning ON but specialization OFF (sampled trials):
        // the specializer's digest-preservation claim — folding, dead-path
        // elision and arm/guard specialization must not change a single
        // report field.
        if plan.spec_off {
            let nospec_opts = pruned_opts.clone().without_specialization();
            let nospec = match self.run_compiled(&model, &nospec_opts, plan, &tests, &run_opts, supervisor, cache)
            {
                Ok(report) => report,
                Err(v) => return v,
            };
            if let Some(detail) = compare_reports("accmos", &pruned, "accmos-nospec", &nospec) {
                return Verdict::Divergence { detail };
            }
        }

        // The rustc ablation backend, every Nth scalar trial (it has no
        // build cache, so every comparison is a cold rustc compile).
        let rust_due = self.config.rust_every > 0
            && plan.lanes == 1
            && plan.index % self.config.rust_every == 1;
        if rust_due {
            match self.run_rust(&pre, plan, &tests, &run_opts, supervisor, cache) {
                Ok(rust) => {
                    if let Some(detail) = compare_reports("interp", &interp, "rust", &rust) {
                        return Verdict::Divergence { detail };
                    }
                }
                Err(v) => return v,
            }
        }
        Verdict::Ok
    }

    /// Compile and supervise one generated-C variant, mapping every
    /// failure into a verdict.
    #[allow(clippy::too_many_arguments)]
    fn run_compiled(
        &self,
        model: &Model,
        opts: &CodegenOptions,
        plan: &TrialPlan,
        tests: &TestVectors,
        run_opts: &RunOptions,
        supervisor: &Supervisor,
        cache: &BuildCache,
    ) -> Result<SimulationReport, Verdict> {
        let mut pipeline =
            AccMoS::new().with_codegen(opts.clone()).with_cache(cache.clone());
        if let Some(tracer) = &self.config.tracer {
            pipeline = pipeline.with_tracer(tracer.clone());
        }
        let sim = match pipeline.prepare(model) {
            Ok(sim) => sim,
            Err(AccMoSError::Backend(e)) => {
                return Err(Verdict::CompileFailed { detail: e.to_string() })
            }
            Err(e) => return Err(Verdict::GenFailed { detail: e.to_string() }),
        };
        let run = sim.run_supervised(plan.steps, tests, run_opts, supervisor);
        let exe_quarantined = supervisor.is_quarantined(sim.simulator().exe());
        sim.clean();
        match run {
            Ok(run) => Ok(run.report),
            Err(AccMoSError::Backend(e)) => {
                if exe_quarantined
                    || matches!(e, accmos_backend::BackendError::Quarantined { .. })
                {
                    return Err(Verdict::Quarantined);
                }
                match e.failure_kind() {
                    Some(kind) => Err(Verdict::Failed {
                        kind: crate::FailureKind::label(kind.index()).to_string(),
                        detail: truncate(&e.to_string(), 600),
                    }),
                    None => Err(Verdict::Failed {
                        kind: "backend".into(),
                        detail: truncate(&e.to_string(), 600),
                    }),
                }
            }
            Err(e) => Err(Verdict::Failed { kind: "backend".into(), detail: e.to_string() }),
        }
    }

    /// Compile and supervise the rustc ablation backend (scalar only).
    #[allow(clippy::too_many_arguments)]
    fn run_rust(
        &self,
        pre: &accmos_graph::PreprocessedModel,
        plan: &TrialPlan,
        tests: &TestVectors,
        run_opts: &RunOptions,
        supervisor: &Supervisor,
        cache: &BuildCache,
    ) -> Result<SimulationReport, Verdict> {
        let program = accmos_codegen::generate_rust(pre, &CodegenOptions::accmos());
        let (exe, dir, _compile_time, _cache_hit) =
            match accmos_backend::compile_rust_cached(&program, Some(cache)) {
                Ok(parts) => parts,
                Err(e) => return Err(Verdict::CompileFailed { detail: format!("rustc: {e}") }),
            };
        let run =
            accmos_backend::run_executable_supervised(&exe, &dir, plan.steps, tests, run_opts, supervisor);
        let _ = std::fs::remove_dir_all(&dir);
        match run {
            Ok(run) => Ok(run.report),
            Err(e) => match e.failure_kind() {
                Some(kind) => Err(Verdict::Failed {
                    kind: crate::FailureKind::label(kind.index()).to_string(),
                    detail: truncate(&format!("rust backend: {e}"), 600),
                }),
                None => Err(Verdict::Failed {
                    kind: "backend".into(),
                    detail: truncate(&format!("rust backend: {e}"), 600),
                }),
            },
        }
    }

    /// Whether `plan` still produces a divergence verdict (the
    /// minimizer's oracle). Only interp-vs-C comparisons run here — the
    /// rustc backend is excluded to keep shrink steps cheap.
    fn diverges(&self, plan: &TrialPlan, supervisor: &Supervisor, cache: &BuildCache) -> bool {
        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut probe = self.clone_for_minimize();
            probe.config.rust_every = 0;
            probe.run_differential(plan, supervisor, cache, self.config.sabotage)
        }))
        .unwrap_or(Verdict::Panic { detail: String::new() });
        matches!(verdict, Verdict::Divergence { .. })
    }

    fn clone_for_minimize(&self) -> FuzzCampaign {
        FuzzCampaign { config: self.config.clone() }
    }

    /// Delta-debug a diverging plan down to a minimal repro, writing the
    /// `.mdlx` + `.expected` pair when a corpus directory is configured.
    ///
    /// Shrink order (re-checking the divergence after every candidate,
    /// keeping only shrinks that preserve it): lanes → steps → rows →
    /// feature flags (nested, conditional, vectors, float math) →
    /// actor count (halve, then decrement) → dtype catalogue (drop one
    /// at a time) → inports.
    fn minimize(
        &self,
        plan: &TrialPlan,
        detail: &str,
        supervisor: &Supervisor,
        cache: &BuildCache,
    ) -> MinimizedRepro {
        let mut best = plan.clone();

        // Lanes first: a scalar repro is strictly simpler.
        if best.lanes > 1 {
            let mut candidate = best.clone();
            candidate.lanes = 1;
            if self.diverges(&candidate, supervisor, cache) {
                best = candidate;
            }
        }
        // Steps, then rows: halve while the divergence survives.
        while best.steps > 4 {
            let mut candidate = best.clone();
            candidate.steps /= 2;
            if self.diverges(&candidate, supervisor, cache) {
                best = candidate;
            } else {
                break;
            }
        }
        while best.rows > 2 {
            let mut candidate = best.clone();
            candidate.rows /= 2;
            if self.diverges(&candidate, supervisor, cache) {
                best = candidate;
            } else {
                break;
            }
        }
        // Feature flags: each independently if droppable.
        for strip in [
            fn_strip_nested as fn(&mut ModelGenConfig),
            fn_strip_conditional,
            fn_strip_vectors,
            fn_strip_float,
        ] {
            let mut candidate = best.clone();
            strip(&mut candidate.cfg);
            if candidate.cfg != best.cfg && self.diverges(&candidate, supervisor, cache) {
                best = candidate;
            }
        }
        // Actor count: halve greedily, then decrement.
        while best.cfg.actors > 1 {
            let mut candidate = best.clone();
            candidate.cfg.actors = (best.cfg.actors / 2).max(1);
            if candidate.cfg.actors < best.cfg.actors
                && self.diverges(&candidate, supervisor, cache)
            {
                best = candidate;
                continue;
            }
            let mut candidate = best.clone();
            candidate.cfg.actors -= 1;
            if self.diverges(&candidate, supervisor, cache) {
                best = candidate;
            } else {
                break;
            }
        }
        // Dtype catalogue: drop one at a time while the divergence holds.
        let mut i = 0;
        while best.cfg.dtypes.len() > 1 && i < best.cfg.dtypes.len() {
            let mut candidate = best.clone();
            candidate.cfg.dtypes.remove(i);
            if self.diverges(&candidate, supervisor, cache) {
                best = candidate;
            } else {
                i += 1;
            }
        }
        // Inports last.
        while best.cfg.inports > 1 {
            let mut candidate = best.clone();
            candidate.cfg.inports -= 1;
            if self.diverges(&candidate, supervisor, cache) {
                best = candidate;
            } else {
                break;
            }
        }

        self.write_repro(&best, detail)
    }

    /// Materialize the minimized plan as a corpus entry.
    fn write_repro(&self, plan: &TrialPlan, detail: &str) -> MinimizedRepro {
        let name = format!("min-s{}-i{}", self.config.seed, plan.index);
        self.write_repro_named(plan, detail, &name)
    }

    fn write_repro_named(&self, plan: &TrialPlan, detail: &str, name: &str) -> MinimizedRepro {
        let name = name.to_string();
        // The reference digest comes from the interpreter over the exact
        // pinned stimulus.
        let digest = RandomModelGen::new(plan.cfg.clone())
            .try_generate()
            .ok()
            .and_then(|model| preprocess(&model).ok().map(|pre| (model, pre)))
            .map(|(_, pre)| {
                let (tests, lane_tests) =
                    lane_stimulus(&pre, plan.rows, plan.stim_seed(), plan.lanes);
                let run_opts = RunOptions { lane_tests, ..RunOptions::default() };
                interp_lane_run(&pre, &tests, &run_opts, plan.steps).output_digest
            })
            .unwrap_or(0);
        let mut repro = MinimizedRepro {
            name: name.clone(),
            mdlx_path: PathBuf::new(),
            actors: plan.cfg.actors,
            lanes: plan.lanes,
            steps: plan.steps,
            rows: plan.rows,
            digest,
            detail: detail.to_string(),
        };
        let Some(dir) = &self.config.corpus_dir else {
            return repro;
        };
        let Ok(model) = RandomModelGen::new(plan.cfg.clone()).try_generate() else {
            return repro;
        };
        let mdlx_path = dir.join(format!("{name}.mdlx"));
        let expected_path = dir.join(format!("{name}.expected"));
        let expected = format!(
            "{{\"schema\":1,\"name\":{},\"stim_seed\":{},\"rows\":{},\"steps\":{},\"lanes\":{},\"digest\":{}}}",
            json_str(&name),
            plan.stim_seed(),
            plan.rows,
            plan.steps,
            plan.lanes,
            digest
        );
        let written = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&mdlx_path, write_mdlx(&model)))
            .and_then(|()| std::fs::write(&expected_path, expected));
        if written.is_ok() {
            repro.mdlx_path = mdlx_path;
        }
        repro
    }
}

/// Compare two simulation reports exactly: output digest, final
/// outputs, step counts, all four coverage metrics, every diagnostic
/// event. `None` = identical; `Some(detail)` names the first mismatch.
pub fn compare_reports(
    label_a: &str,
    a: &SimulationReport,
    label_b: &str,
    b: &SimulationReport,
) -> Option<String> {
    if a.output_digest != b.output_digest {
        return Some(format!(
            "{label_a} vs {label_b}: output digest {:016x} != {:016x}",
            a.output_digest, b.output_digest
        ));
    }
    if a.final_outputs != b.final_outputs {
        return Some(format!(
            "{label_a} vs {label_b}: final outputs {:?} != {:?}",
            a.final_outputs, b.final_outputs
        ));
    }
    if a.steps != b.steps {
        return Some(format!("{label_a} vs {label_b}: steps {} != {}", a.steps, b.steps));
    }
    if let (Some(ca), Some(cb)) = (&a.coverage, &b.coverage) {
        for kind in CoverageKind::ALL {
            if ca.counts(kind) != cb.counts(kind) {
                return Some(format!(
                    "{label_a} vs {label_b}: {kind} coverage {:?} != {:?}",
                    ca.counts(kind),
                    cb.counts(kind)
                ));
            }
        }
    }
    if a.diagnostics != b.diagnostics {
        return Some(format!(
            "{label_a} vs {label_b}: diagnostics differ ({} vs {} events)",
            a.diagnostics.len(),
            b.diagnostics.len()
        ));
    }
    None
}

/// Replay one corpus entry (an `.mdlx` path with an `.expected` sidecar
/// next to it): regenerate the pinned stimulus, run the interpreter and
/// the compiled simulator, and check both against each other and the
/// pinned digest.
///
/// # Errors
///
/// A descriptive string when the entry cannot be read/parsed, when
/// either engine's digest drifts from the pinned one, or when the two
/// engines diverge — exactly the condition the corpus entry was checked
/// in to guard.
pub fn replay_corpus_entry(mdlx_path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(mdlx_path)
        .map_err(|e| format!("{}: {e}", mdlx_path.display()))?;
    let expected_path = mdlx_path.with_extension("expected");
    let expected_text = std::fs::read_to_string(&expected_path)
        .map_err(|e| format!("{}: {e}", expected_path.display()))?;
    let fields = parse_flat_object(expected_text.trim())
        .ok_or_else(|| format!("{}: not a flat JSON object", expected_path.display()))?;
    let stim_seed =
        fields.num("stim_seed").ok_or_else(|| "expected file missing stim_seed".to_string())?;
    let rows = fields.num("rows").unwrap_or(8) as usize;
    let steps = fields.num("steps").unwrap_or(16);
    let lanes = fields.num("lanes").unwrap_or(1) as usize;
    let digest = fields.num("digest").ok_or_else(|| "expected file missing digest".to_string())?;

    let model = parse_mdlx(&text).map_err(|e| format!("{}: {e}", mdlx_path.display()))?;
    let pre = preprocess(&model).map_err(|e| format!("{}: {e}", mdlx_path.display()))?;
    let (tests, lane_tests) = lane_stimulus(&pre, rows, stim_seed, lanes);
    let run_opts = RunOptions { lane_tests, ..RunOptions::default() };

    let interp = interp_lane_run(&pre, &tests, &run_opts, steps);
    if interp.output_digest != digest {
        return Err(format!(
            "{}: interpreter digest {:016x} != pinned {digest:016x} (reference drift)",
            mdlx_path.display(),
            interp.output_digest
        ));
    }
    let pipeline = AccMoS::new().with_codegen(CodegenOptions::accmos().lanes(lanes));
    let sim = pipeline
        .prepare(&model)
        .map_err(|e| format!("{}: compile: {e}", mdlx_path.display()))?;
    let compiled = sim
        .run(steps, &tests, &run_opts)
        .map_err(|e| format!("{}: run: {e}", mdlx_path.display()));
    sim.clean();
    let compiled = compiled?;
    if compiled.output_digest != digest {
        return Err(format!(
            "{}: compiled digest {:016x} != pinned {digest:016x} (the regression this entry guards)",
            mdlx_path.display(),
            compiled.output_digest
        ));
    }
    if let Some(detail) = compare_reports("interp", &interp, "accmos", &compiled) {
        return Err(format!("{}: {detail}", mdlx_path.display()));
    }
    Ok(())
}

/// All `.mdlx` corpus entries under `dir`, sorted by name (empty when
/// the directory does not exist).
pub fn corpus_entries(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "mdlx"))
        .collect();
    paths.sort();
    paths
}

/// Pin trial `index` of a campaign as a corpus entry *without* requiring
/// a divergence: compute the interpreter's reference digest for the
/// exact planned model and stimulus and write the `.mdlx` + `.expected`
/// pair (named `pin-s<seed>-i<index>`) into `dir`.
///
/// This is how known-good regression anchors get checked in, and how a
/// maintainer re-pins an entry after an *intentional* semantic change
/// (see the corpus-triage workflow in the README).
///
/// # Errors
///
/// A descriptive string when the planned model cannot be generated or
/// the entry cannot be written.
pub fn pin_corpus_entry(
    config: &FuzzConfig,
    index: u64,
    dir: &Path,
) -> Result<MinimizedRepro, String> {
    let plan = plan_trial(config, index);
    let campaign = FuzzCampaign::new(FuzzConfig {
        corpus_dir: Some(dir.to_path_buf()),
        ..config.clone()
    });
    let name = format!("pin-s{}-i{index}", config.seed);
    let repro = campaign.write_repro_named(&plan, "pinned regression anchor", &name);
    if repro.mdlx_path.as_os_str().is_empty() {
        return Err(format!("could not write corpus entry {name} under {}", dir.display()));
    }
    Ok(repro)
}

fn fn_strip_nested(cfg: &mut ModelGenConfig) {
    cfg.nested = false;
}
fn fn_strip_conditional(cfg: &mut ModelGenConfig) {
    cfg.conditional = false;
    cfg.nested = false;
}
fn fn_strip_vectors(cfg: &mut ModelGenConfig) {
    cfg.vectors = false;
}
fn fn_strip_float(cfg: &mut ModelGenConfig) {
    cfg.float_math = false;
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        return s.to_string();
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}...", &s[..end])
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("accmos-fuzz-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_record(index: u64) -> FuzzRecord {
        FuzzRecord {
            schema: FuzzStore::SCHEMA,
            ts_ms: 100 + index,
            campaign: 1,
            index,
            seed: mix_seed(1, index),
            lanes: 1,
            actors: 20,
            steps: 64,
            verdict: "ok".into(),
            detail: String::new(),
            injected: false,
            classified: true,
            duration_us: 1234,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let mut r = sample_record(7);
        r.verdict = "divergence".into();
        r.detail = "interp vs accmos: output digest \"quoted\"\n".into();
        r.injected = true;
        r.classified = false;
        let line = r.to_json();
        assert!(!line.contains('\n'));
        assert_eq!(FuzzRecord::from_json(&line).unwrap(), r);
    }

    #[test]
    fn store_appends_reads_and_reports_torn_tail() {
        let dir = scratch_dir("store");
        let store = FuzzStore::in_dir(&dir);
        assert!(store.read().records.is_empty());
        store.append(&sample_record(0)).unwrap();
        store.append(&sample_record(1)).unwrap();
        // Torn tail: a writer died mid-append.
        let mut contents = std::fs::read(store.path()).unwrap();
        let half = sample_record(2).to_json();
        contents.extend_from_slice(half[..half.len() / 2].as_bytes());
        std::fs::write(store.path(), &contents).unwrap();
        let view = store.read();
        assert_eq!(view.records.len(), 2);
        assert!(view.truncated_tail);
        // The next append repairs the tear.
        store.append(&sample_record(3)).unwrap();
        let view = store.read();
        assert_eq!(view.records.len(), 3);
        assert_eq!(view.skipped, 1, "the torn record, now newline-terminated");
        assert_eq!(store.completed_indices(1), HashSet::from([0, 1, 3]));
        assert!(store.completed_indices(2).is_empty(), "per-campaign indices");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trial_plans_are_deterministic_and_varied() {
        let config = FuzzConfig { seed: 9, trials: 64, ..FuzzConfig::default() };
        let mut lanes4 = 0;
        let mut conditional = 0;
        for index in 0..64 {
            let a = plan_trial(&config, index);
            let b = plan_trial(&config, index);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.cfg, b.cfg, "plan {index} not deterministic");
            assert_eq!(a.lanes, b.lanes);
            assert!(a.cfg.validate().is_ok(), "planned configs are always valid");
            assert!(a.inject.is_none(), "no injection without an injection binary");
            if a.lanes == 4 {
                lanes4 += 1;
            }
            if a.cfg.conditional {
                conditional += 1;
            }
        }
        assert!(lanes4 > 0, "some lane-4 trials");
        assert!(conditional > 0, "some conditional-group trials");
    }

    #[test]
    fn injection_schedule_is_deterministic() {
        let config = FuzzConfig {
            inject_fault_exe: Some(PathBuf::from("/nonexistent/faultsim")),
            ..FuzzConfig::default()
        };
        assert_eq!(plan_trial(&config, 3).inject, Some(FaultMode::Hang));
        assert_eq!(plan_trial(&config, 7).inject, Some(FaultMode::Crash));
        assert_eq!(plan_trial(&config, 17).inject, Some(FaultMode::Crash));
        assert_eq!(plan_trial(&config, 5).inject, None);
    }

    #[test]
    fn verdict_labels_and_classification() {
        assert_eq!(Verdict::Ok.label(), "ok");
        assert!(Verdict::Ok.classified());
        let failed = Verdict::Failed { kind: "timeout".into(), detail: "x".into() };
        assert_eq!(failed.label(), "failed:timeout");
        assert!(failed.classified());
        assert!(Verdict::Quarantined.classified());
        assert!(Verdict::Injected { kind: "crash".into() }.classified());
        assert!(!Verdict::Panic { detail: "boom".into() }.classified());
        assert!(!Verdict::InjectedUnclassified { detail: "x".into() }.classified());
        assert_eq!(Verdict::Divergence { detail: "d".into() }.detail(), "d");
    }

    #[test]
    fn planned_models_are_valid() {
        for seed in [0, 1, 42, 1000] {
            let model = planned_model(seed).unwrap();
            assert!(preprocess(&model).is_ok(), "rand:{seed} must preprocess");
        }
    }

    #[test]
    fn compare_reports_finds_each_field() {
        let a = SimulationReport::new("M", "interp");
        let mut b = a.clone();
        assert!(compare_reports("a", &a, "b", &b).is_none());
        b.output_digest = 5;
        let detail = compare_reports("a", &a, "b", &b).unwrap();
        assert!(detail.contains("digest"), "{detail}");
        let mut c = a.clone();
        c.steps = 9;
        assert!(compare_reports("a", &a, "c", &c).unwrap().contains("steps"));
    }
}
