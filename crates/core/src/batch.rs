//! Batched simulation: many jobs, one compile per unique program.
//!
//! The paper's evaluation (Tables 2 and 3) runs each benchmark model many
//! times; a naive loop pays preprocessing, code generation and GCC for
//! every run. [`BatchRunner`] restructures that workload:
//!
//! 1. **Plan** (serial): preprocess and generate code for every
//!    model-sourced job; group jobs by the compiler's content key, so
//!    byte-identical programs share one group.
//! 2. **Compile** (parallel): each unique program compiles once on a
//!    bounded `std::thread` pool (and the [`crate::BuildCache`] can
//!    satisfy it without invoking GCC at all).
//! 3. **Run** (parallel): every job executes on the pool against its own
//!    test vectors; runs of a shared binary are safe because each run
//!    writes a private test-vector file.
//!
//! The aggregate [`BatchSummary`] separates cold compiles from cache hits
//! so harnesses can keep reporting paper-faithful cold numbers.

use crate::{AccMoS, AccMoSError, PreparedSimulation, RunOptions};
use accmos_ir::{Model, SimulationReport, TestVectors};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a batch job's simulator comes from.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// A model to preprocess, generate and compile (deduplicated: jobs
    /// whose generated programs are byte-identical share one compile).
    Model(Box<Model>),
    /// An already-prepared simulation, shared by reference; the runner
    /// never compiles or cleans it.
    Prepared(Arc<PreparedSimulation>),
}

/// One unit of work for the [`BatchRunner`]: a simulator source, the
/// stimulus to feed it, and how long to run.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name carried through to the [`JobResult`].
    pub label: String,
    /// Where the executable comes from.
    pub source: JobSource,
    /// Stimulus for the run.
    pub tests: TestVectors,
    /// Number of simulation steps.
    pub steps: u64,
    /// Per-run options (diagnostics stop, time budget).
    pub opts: RunOptions,
}

impl BatchJob {
    /// A job that builds its simulator from `model`.
    pub fn model(
        label: impl Into<String>,
        model: Model,
        tests: TestVectors,
        steps: u64,
    ) -> BatchJob {
        BatchJob {
            label: label.into(),
            source: JobSource::Model(Box::new(model)),
            tests,
            steps,
            opts: RunOptions::default(),
        }
    }

    /// A job that reuses an already-compiled simulation.
    pub fn prepared(
        label: impl Into<String>,
        sim: Arc<PreparedSimulation>,
        tests: TestVectors,
        steps: u64,
    ) -> BatchJob {
        BatchJob {
            label: label.into(),
            source: JobSource::Prepared(sim),
            tests,
            steps,
            opts: RunOptions::default(),
        }
    }

    /// Builder-style: set the per-run options.
    pub fn with_opts(mut self, opts: RunOptions) -> BatchJob {
        self.opts = opts;
        self
    }
}

/// The outcome of one [`BatchJob`].
#[derive(Debug)]
pub struct JobResult {
    /// The job's label, as submitted.
    pub label: String,
    /// The simulation report, or the error that stopped this job (shared
    /// codegen/compile failures are replicated to every affected job as
    /// [`AccMoSError::Batch`]).
    pub report: Result<SimulationReport, AccMoSError>,
    /// Wall-clock time of this job's run phase (zero when it never ran).
    pub run_time: Duration,
}

/// Aggregate timing and dedup statistics of one [`BatchRunner::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSummary {
    /// Total wall-clock time of the whole batch.
    pub total_wall: Duration,
    /// Number of jobs submitted.
    pub jobs: usize,
    /// Unique generated programs among the model-sourced jobs (each
    /// compiled at most once).
    pub unique_programs: usize,
    /// Compiles that invoked the C compiler.
    pub cold_compiles: usize,
    /// Compiles satisfied by the build cache.
    pub cached_compiles: usize,
    /// Wall-clock time inside the C compiler (cold compiles only) — the
    /// paper-faithful compile cost.
    pub cold_compile_time: Duration,
    /// Wall-clock time fetching cached executables (reported separately
    /// so cache hits never pollute the cold numbers).
    pub cached_compile_time: Duration,
    /// Summed preprocessing + code-generation time.
    pub codegen_time: Duration,
    /// Summed per-job simulator run time.
    pub run_time: Duration,
    /// Number of jobs that ended in an error.
    pub failures: usize,
}

/// The results of one batch: per-job outcomes in submission order plus
/// the aggregate [`BatchSummary`].
#[derive(Debug)]
pub struct BatchReport {
    /// One result per submitted job, in submission order.
    pub jobs: Vec<JobResult>,
    /// Aggregate statistics.
    pub summary: BatchSummary,
}

/// Runs many simulation jobs with deduplicated compiles on a bounded
/// worker pool.
///
/// # Examples
///
/// ```no_run
/// use accmos::{AccMoS, BatchJob, BatchRunner};
/// use accmos_ir::{DataType, ModelBuilder, Scalar, TestVectors};
///
/// let mut b = ModelBuilder::new("M");
/// b.inport("In", DataType::I32);
/// b.outport("Out", DataType::I32);
/// b.wire("In", "Out");
/// let model = b.build()?;
///
/// let jobs = (0..8)
///     .map(|i| {
///         let tests = TestVectors::constant("In", Scalar::I32(i), 4);
///         BatchJob::model(format!("job-{i}"), model.clone(), tests, 100)
///     })
///     .collect();
/// let report = BatchRunner::new(AccMoS::new()).run(jobs)?;
/// assert_eq!(report.summary.unique_programs, 1); // one compile for all 8
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    pipeline: AccMoS,
    workers: usize,
}

impl BatchRunner {
    /// A runner over `pipeline`'s configuration with one worker per
    /// available CPU.
    pub fn new(pipeline: AccMoS) -> BatchRunner {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        BatchRunner { pipeline, workers }
    }

    /// Builder-style: bound the worker pool to `n` threads (1 minimum).
    pub fn with_workers(mut self, n: usize) -> BatchRunner {
        self.workers = n.max(1);
        self
    }

    /// The worker-pool bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `jobs`: plan serially, compile unique programs in
    /// parallel, run every job in parallel.
    ///
    /// Per-job failures land in the job's own [`JobResult`]; only global
    /// failures (no C compiler on the system) abort the batch.
    ///
    /// # Errors
    ///
    /// Returns [`AccMoSError::Backend`] when no C compiler is found.
    pub fn run(&self, jobs: Vec<BatchJob>) -> Result<BatchReport, AccMoSError> {
        let wall_start = Instant::now();
        let mut summary = BatchSummary { jobs: jobs.len(), ..BatchSummary::default() };

        // Plan (serial): codegen each model job, group by content key.
        // `plan[i]` is Ok(group key) | Err(per-job failure).
        let compiler = self.pipeline.compiler()?;
        let mut groups: HashMap<String, PendingGroup> = HashMap::new();
        let mut plan: Vec<Result<String, AccMoSError>> = Vec::with_capacity(jobs.len());
        for job in &jobs {
            match &job.source {
                JobSource::Prepared(sim) => {
                    // Prepared sims are keyed by pointer identity: never
                    // compiled, never cleaned, shared as submitted.
                    let key = format!("prepared:{:p}", Arc::as_ptr(sim));
                    groups
                        .entry(key.clone())
                        .or_insert_with(|| PendingGroup::ready(Arc::clone(sim)));
                    plan.push(Ok(key));
                }
                JobSource::Model(model) => match self.pipeline.plan_model(model) {
                    Ok((pre, program, codegen_time)) => {
                        summary.codegen_time += codegen_time;
                        let key = compiler.cache_key(&program);
                        groups.entry(key.clone()).or_insert_with(|| PendingGroup {
                            work: Some((pre, program, codegen_time)),
                            sim: Mutex::new(None),
                            owned: true,
                        });
                        plan.push(Ok(key));
                    }
                    Err(e) => plan.push(Err(e)),
                },
            }
        }
        summary.unique_programs = groups.values().filter(|g| g.owned).count();

        // Compile (parallel): one compile per unique program.
        let to_compile: Vec<&PendingGroup> =
            groups.values().filter(|g| g.work.is_some()).collect();
        run_on_pool(self.workers, &to_compile, |group| {
            let (pre, program, codegen_time) =
                group.work.as_ref().expect("filtered on work").clone();
            let outcome = match compiler.compile(&program) {
                Ok(sim) => Ok(Arc::new(PreparedSimulation::from_parts(pre, sim, codegen_time))),
                Err(e) => Err(format!("batch compile failed: {e}")),
            };
            *group.sim.lock().expect("compile slot") = Some(outcome);
        });
        for group in groups.values() {
            if let Some(Ok(sim)) = group.sim.lock().expect("compile slot").as_ref() {
                if group.owned {
                    match sim.cache_hit() {
                        true => {
                            summary.cached_compiles += 1;
                            summary.cached_compile_time += sim.compile_time();
                        }
                        false => {
                            summary.cold_compiles += 1;
                            summary.cold_compile_time += sim.compile_time();
                        }
                    }
                }
            }
        }

        // Run (parallel): every job against its resolved simulator.
        let run_work: Vec<(usize, &BatchJob)> = jobs.iter().enumerate().collect();
        let slots: Vec<Mutex<Option<JobResult>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        run_on_pool(self.workers, &run_work, |(idx, job)| {
            let result = match &plan[*idx] {
                Err(e) => JobResult {
                    label: job.label.clone(),
                    report: Err(AccMoSError::Batch(e.to_string())),
                    run_time: Duration::ZERO,
                },
                Ok(key) => {
                    let slot = groups[key].sim.lock().expect("compile slot");
                    match slot.as_ref() {
                        Some(Ok(sim)) => {
                            let sim = Arc::clone(sim);
                            drop(slot);
                            let run_start = Instant::now();
                            let report = sim.run(job.steps, &job.tests, &job.opts);
                            JobResult {
                                label: job.label.clone(),
                                report,
                                run_time: run_start.elapsed(),
                            }
                        }
                        Some(Err(msg)) => JobResult {
                            label: job.label.clone(),
                            report: Err(AccMoSError::Batch(msg.clone())),
                            run_time: Duration::ZERO,
                        },
                        None => JobResult {
                            label: job.label.clone(),
                            report: Err(AccMoSError::Batch(
                                "batch compile phase never produced this program".into(),
                            )),
                            run_time: Duration::ZERO,
                        },
                    }
                }
            };
            *slots[*idx].lock().expect("result slot") = Some(result);
        });

        // Build dirs the runner created are scratch; prepared sims are
        // the caller's to clean.
        for group in groups.values() {
            if group.owned {
                if let Some(Ok(sim)) = group.sim.lock().expect("compile slot").as_ref() {
                    sim.clean();
                }
            }
        }

        let mut results = Vec::with_capacity(jobs.len());
        for slot in slots {
            let result = slot.into_inner().expect("result slot").expect("every job resolved");
            summary.run_time += result.run_time;
            if result.report.is_err() {
                summary.failures += 1;
            }
            results.push(result);
        }
        summary.total_wall = wall_start.elapsed();
        Ok(BatchReport { jobs: results, summary })
    }
}

/// A dedup group: at most one compile feeding any number of jobs.
#[derive(Debug)]
struct PendingGroup {
    /// Codegen output awaiting compilation (`None` for prepared sims).
    work: Option<(crate::PreprocessedModel, crate::GeneratedProgram, Duration)>,
    /// The compiled simulator, or the formatted compile error.
    sim: Mutex<Option<Result<Arc<PreparedSimulation>, String>>>,
    /// Whether the runner owns (and therefore cleans) the build dir.
    owned: bool,
}

impl PendingGroup {
    fn ready(sim: Arc<PreparedSimulation>) -> PendingGroup {
        PendingGroup { work: None, sim: Mutex::new(Some(Ok(sim))), owned: false }
    }
}

impl AccMoS {
    /// Preprocess + generate, returning the parts the batch planner needs.
    fn plan_model(
        &self,
        model: &Model,
    ) -> Result<(crate::PreprocessedModel, crate::GeneratedProgram, Duration), AccMoSError> {
        let start = Instant::now();
        let pre = crate::preprocess(model)?;
        let program = accmos_codegen::generate(&pre, self.codegen_options());
        Ok((pre, program, start.elapsed()))
    }
}

/// Run `f` over every item of `work` on at most `workers` threads,
/// pulling indices from a shared atomic counter (no channels, no extra
/// dependencies). Blocks until all items are processed.
fn run_on_pool<T: Sync>(workers: usize, work: &[T], f: impl Fn(&T) + Sync) {
    if work.is_empty() {
        return;
    }
    let threads = workers.max(1).min(work.len());
    if threads == 1 {
        for item in work {
            f(item);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = work.get(idx) else { break };
                f(item);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar};

    fn gain_model(name: &str, gain: i32) -> Model {
        let mut b = ModelBuilder::new(name);
        b.inport("In", DataType::I32);
        b.actor("G", ActorKind::Gain { gain: Scalar::I32(gain) });
        b.outport("Out", DataType::I32);
        b.wire("In", "G");
        b.wire("G", "Out");
        b.build().unwrap()
    }

    fn tests_for(value: i32) -> TestVectors {
        TestVectors::constant("In", Scalar::I32(value), 3)
    }

    /// ISSUE acceptance: >=8 concurrent jobs over a mix of models, some
    /// sharing one compiled binary, must reproduce the serial digests.
    #[test]
    fn concurrent_batch_matches_serial_digests() {
        let models =
            [gain_model("BatchA", 2), gain_model("BatchB", 3), gain_model("BatchC", 5)];
        // 9 jobs over 3 models: each model's binary is shared by 3 jobs.
        let jobs: Vec<BatchJob> = (0..9)
            .map(|i| {
                let model = &models[i % 3];
                BatchJob::model(
                    format!("job-{i}"),
                    model.clone(),
                    tests_for(i as i32 + 1),
                    50,
                )
            })
            .collect();

        // Serial reference: same pipeline, one job at a time.
        let pipeline = AccMoS::new().without_cache();
        let serial: Vec<u64> = (0..9)
            .map(|i| {
                let sim = pipeline.prepare(&models[i % 3]).unwrap();
                let r = sim
                    .run(50, &tests_for(i as i32 + 1), &RunOptions::default())
                    .unwrap();
                sim.clean();
                r.output_digest
            })
            .collect();

        let report =
            BatchRunner::new(pipeline.clone()).with_workers(8).run(jobs).unwrap();
        assert_eq!(report.summary.jobs, 9);
        assert_eq!(report.summary.unique_programs, 3, "3 models -> 3 compiles");
        assert_eq!(report.summary.failures, 0);
        for (i, job) in report.jobs.iter().enumerate() {
            assert_eq!(job.label, format!("job-{i}"), "submission order preserved");
            let r = job.report.as_ref().unwrap();
            assert_eq!(r.output_digest, serial[i], "job {i} diverged from serial run");
        }
    }

    #[test]
    fn prepared_jobs_share_the_submitted_binary() {
        let pipeline = AccMoS::new();
        let sim = Arc::new(pipeline.prepare(&gain_model("Shared", 7)).unwrap());
        let jobs: Vec<BatchJob> = (0..8)
            .map(|i| {
                BatchJob::prepared(format!("p{i}"), Arc::clone(&sim), tests_for(i), 20)
            })
            .collect();
        let report = BatchRunner::new(pipeline).with_workers(4).run(jobs).unwrap();
        assert_eq!(report.summary.failures, 0);
        assert_eq!(report.summary.unique_programs, 0, "nothing compiled");
        for (i, job) in report.jobs.iter().enumerate() {
            let r = job.report.as_ref().unwrap();
            assert_eq!(r.final_outputs[0].1.to_string(), (7 * i as i32).to_string());
        }
        // The runner must not have cleaned the caller's build dir.
        assert!(sim.simulator().exe().exists());
        sim.clean();
    }

    #[test]
    fn failures_are_per_job_not_global() {
        // Two gains in a feedback cycle with no delay: structurally valid,
        // but scheduling rejects it as an algebraic loop at plan time.
        let mut b = ModelBuilder::new("Loopy");
        b.actor("G1", ActorKind::Gain { gain: Scalar::I32(2) });
        b.actor("G2", ActorKind::Gain { gain: Scalar::I32(3) });
        b.outport("Out", DataType::I32);
        b.connect(("G1", 0), ("G2", 0));
        b.connect(("G2", 0), ("G1", 0));
        b.connect(("G2", 0), ("Out", 0));
        let looped = b.build().expect("cycle passes structural validation");

        let jobs = vec![
            BatchJob::model("good", gain_model("Good", 2), tests_for(1), 10),
            BatchJob::model("bad", looped, TestVectors::new(), 10),
        ];
        let report = BatchRunner::new(AccMoS::new()).run(jobs).unwrap();
        assert!(report.jobs[0].report.is_ok(), "healthy job unaffected");
        let err = report.jobs[1].report.as_ref().unwrap_err();
        assert!(
            err.to_string().contains("algebraic loop"),
            "loop failure stays on its own job: {err}"
        );
        assert_eq!(report.summary.failures, 1);
    }

    #[test]
    fn batch_cache_counters_split_cold_and_cached() {
        let root = std::env::temp_dir()
            .join(format!("accmos-batch-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = crate::BuildCache::at(&root);
        let pipeline = AccMoS::new().with_cache(cache.clone());
        let model = gain_model("Counted", 4);

        let first = BatchRunner::new(pipeline.clone())
            .run(vec![BatchJob::model("cold", model.clone(), tests_for(1), 10)])
            .unwrap();
        assert_eq!(first.summary.cold_compiles, 1);
        assert_eq!(first.summary.cached_compiles, 0);

        let second = BatchRunner::new(pipeline)
            .run(vec![BatchJob::model("warm", model, tests_for(2), 10)])
            .unwrap();
        assert_eq!(second.summary.cold_compiles, 0);
        assert_eq!(second.summary.cached_compiles, 1);
        assert!(second.summary.cached_compile_time <= first.summary.cold_compile_time);
        cache.clear().unwrap();
    }
}
