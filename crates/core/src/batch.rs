//! Batched simulation: many jobs, one compile per unique program.
//!
//! The paper's evaluation (Tables 2 and 3) runs each benchmark model many
//! times; a naive loop pays preprocessing, code generation and GCC for
//! every run. [`BatchRunner`] restructures that workload:
//!
//! 1. **Plan** (serial): preprocess and generate code for every
//!    model-sourced job; group jobs by the compiler's content key, so
//!    byte-identical programs share one group.
//! 2. **Compile** (parallel): each unique program compiles once on a
//!    bounded `std::thread` pool (and the [`crate::BuildCache`] can
//!    satisfy it without invoking GCC at all).
//! 3. **Run** (parallel): every job executes on the pool against its own
//!    test vectors; runs of a shared binary are safe because each run
//!    writes a private test-vector file.
//!
//! The aggregate [`BatchSummary`] separates cold compiles from cache hits
//! so harnesses can keep reporting paper-faithful cold numbers.

use crate::{
    telemetry, AccMoS, AccMoSError, PreparedSimulation, RunOptions, RunRecord, Supervisor,
};
use accmos_graph::PreprocessedModel;
use accmos_ir::{Model, SimulationReport, TestVectors};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where a batch job's simulator comes from.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// A model to preprocess, generate and compile (deduplicated: jobs
    /// whose generated programs are byte-identical share one compile).
    Model(Box<Model>),
    /// An already-prepared simulation, shared by reference; the runner
    /// never compiles or cleans it.
    Prepared(Arc<PreparedSimulation>),
    /// A pre-built executable speaking the `ACCMOS:` protocol; the runner
    /// never compiles or cleans it. With no model behind it, a failing
    /// executable job cannot degrade to the interpreter — it reports its
    /// classified failure.
    Executable {
        /// The executable path.
        exe: PathBuf,
        /// Directory for per-run scratch (test-vector files).
        work_dir: PathBuf,
    },
}

/// One unit of work for the [`BatchRunner`]: a simulator source, the
/// stimulus to feed it, and how long to run.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name carried through to the [`JobResult`].
    pub label: String,
    /// Where the executable comes from.
    pub source: JobSource,
    /// Stimulus for the run.
    pub tests: TestVectors,
    /// Number of simulation steps.
    pub steps: u64,
    /// Per-run options (diagnostics stop, time budget).
    pub opts: RunOptions,
}

impl BatchJob {
    /// A job that builds its simulator from `model`.
    pub fn model(
        label: impl Into<String>,
        model: Model,
        tests: TestVectors,
        steps: u64,
    ) -> BatchJob {
        BatchJob {
            label: label.into(),
            source: JobSource::Model(Box::new(model)),
            tests,
            steps,
            opts: RunOptions::default(),
        }
    }

    /// A job that reuses an already-compiled simulation.
    pub fn prepared(
        label: impl Into<String>,
        sim: Arc<PreparedSimulation>,
        tests: TestVectors,
        steps: u64,
    ) -> BatchJob {
        BatchJob {
            label: label.into(),
            source: JobSource::Prepared(sim),
            tests,
            steps,
            opts: RunOptions::default(),
        }
    }

    /// A job that runs a pre-built `ACCMOS:`-protocol executable (fault
    /// harnesses, externally compiled simulators).
    pub fn executable(
        label: impl Into<String>,
        exe: impl Into<PathBuf>,
        work_dir: impl Into<PathBuf>,
        tests: TestVectors,
        steps: u64,
    ) -> BatchJob {
        BatchJob {
            label: label.into(),
            source: JobSource::Executable { exe: exe.into(), work_dir: work_dir.into() },
            tests,
            steps,
            opts: RunOptions::default(),
        }
    }

    /// Builder-style: set the per-run options.
    pub fn with_opts(mut self, opts: RunOptions) -> BatchJob {
        self.opts = opts;
        self
    }
}

/// The outcome of one [`BatchJob`].
#[derive(Debug)]
pub struct JobResult {
    /// The job's label, as submitted.
    pub label: String,
    /// The simulation report, or the error that stopped this job (shared
    /// codegen/compile failures are replicated to every affected job as
    /// [`AccMoSError::Batch`]).
    pub report: Result<SimulationReport, AccMoSError>,
    /// Wall-clock time of this job's run phase (zero when it never ran).
    pub run_time: Duration,
    /// Supervised-run retries this job consumed (successful or not).
    pub retries: u32,
    /// Backoff sleep this job's retries consumed (exact per-job
    /// attribution; the summary's `backoff_sleep` is the aggregate).
    pub backoff: Duration,
    /// Why this job degraded to the interpretive engine (`None` = it ran
    /// the compiled simulator). Degradation is never silent.
    pub fallback_reason: Option<String>,
    /// Peak resident set size of the simulator child in KiB (`VmHWM`,
    /// sampled by the supervisor's poll loop; 0 = not measured, including
    /// interpretive fallbacks).
    pub peak_rss_kb: u64,
}

impl JobResult {
    /// Whether this job's report came from the interpretive fallback
    /// rather than a compiled simulator.
    pub fn degraded(&self) -> bool {
        self.fallback_reason.is_some()
    }
}

/// Aggregate timing and dedup statistics of one [`BatchRunner::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSummary {
    /// Total wall-clock time of the whole batch.
    pub total_wall: Duration,
    /// Number of jobs submitted.
    pub jobs: usize,
    /// Unique generated programs among the model-sourced jobs (each
    /// compiled at most once).
    pub unique_programs: usize,
    /// Compiles that invoked the C compiler.
    pub cold_compiles: usize,
    /// Compiles satisfied by the build cache.
    pub cached_compiles: usize,
    /// Wall-clock time inside the C compiler (cold compiles only) — the
    /// paper-faithful compile cost.
    pub cold_compile_time: Duration,
    /// Wall-clock time fetching cached executables (reported separately
    /// so cache hits never pollute the cold numbers).
    pub cached_compile_time: Duration,
    /// Summed preprocessing + code-generation time.
    pub codegen_time: Duration,
    /// Summed per-job simulator run time.
    pub run_time: Duration,
    /// Number of jobs that ended in an error.
    pub failures: usize,
    /// Total supervised-run retries across all jobs.
    pub retries: u64,
    /// Supervised-run retries broken down by
    /// [`accmos_backend::FailureKind::index`] ordinal.
    pub retry_kinds: [u64; accmos_backend::FailureKind::COUNT],
    /// Total wall-clock time the supervisor slept in retry backoff.
    pub backoff_sleep: Duration,
    /// Jobs that fell back to the interpretive engine.
    pub degraded: usize,
    /// Executables quarantined during this batch (crash threshold hit).
    pub quarantined: usize,
    /// Largest per-job child peak RSS observed, in KiB (`VmHWM`; 0 when
    /// no job reported a measurement).
    pub max_peak_rss_kb: u64,
}

/// The results of one batch: per-job outcomes in submission order plus
/// the aggregate [`BatchSummary`].
#[derive(Debug)]
pub struct BatchReport {
    /// One result per submitted job, in submission order.
    pub jobs: Vec<JobResult>,
    /// Aggregate statistics.
    pub summary: BatchSummary,
}

/// Runs many simulation jobs with deduplicated compiles on a bounded
/// worker pool.
///
/// # Examples
///
/// ```no_run
/// use accmos::{AccMoS, BatchJob, BatchRunner};
/// use accmos_ir::{DataType, ModelBuilder, Scalar, TestVectors};
///
/// let mut b = ModelBuilder::new("M");
/// b.inport("In", DataType::I32);
/// b.outport("Out", DataType::I32);
/// b.wire("In", "Out");
/// let model = b.build()?;
///
/// let jobs = (0..8)
///     .map(|i| {
///         let tests = TestVectors::constant("In", Scalar::I32(i), 4);
///         BatchJob::model(format!("job-{i}"), model.clone(), tests, 100)
///     })
///     .collect();
/// let report = BatchRunner::new(AccMoS::new()).run(jobs)?;
/// assert_eq!(report.summary.unique_programs, 1); // one compile for all 8
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    pipeline: AccMoS,
    workers: usize,
}

impl BatchRunner {
    /// A runner over `pipeline`'s configuration with one worker per
    /// available CPU.
    pub fn new(pipeline: AccMoS) -> BatchRunner {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        BatchRunner { pipeline, workers }
    }

    /// Builder-style: bound the worker pool to `n` threads (1 minimum).
    pub fn with_workers(mut self, n: usize) -> BatchRunner {
        self.workers = n.max(1);
        self
    }

    /// The worker-pool bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `jobs`: plan serially, compile unique programs in
    /// parallel, run every job in parallel.
    ///
    /// Per-job failures land in the job's own [`JobResult`]; only global
    /// failures (no C compiler on the system) abort the batch.
    ///
    /// # Errors
    ///
    /// Returns [`AccMoSError::Backend`] when no C compiler is found.
    pub fn run(&self, jobs: Vec<BatchJob>) -> Result<BatchReport, AccMoSError> {
        let wall_start = Instant::now();
        let mut summary = BatchSummary { jobs: jobs.len(), ..BatchSummary::default() };

        // Plan (serial): codegen each model job, group by content key.
        // `plan[i]` is Ok(group key) | Err(per-job failure).
        let compiler = self.pipeline.compiler()?;
        let mut groups: HashMap<String, PendingGroup> = HashMap::new();
        let mut plan: Vec<Result<String, AccMoSError>> = Vec::with_capacity(jobs.len());
        for job in &jobs {
            match &job.source {
                JobSource::Prepared(sim) => {
                    // Prepared sims are keyed by pointer identity: never
                    // compiled, never cleaned, shared as submitted.
                    let key = format!("prepared:{:p}", Arc::as_ptr(sim));
                    groups
                        .entry(key.clone())
                        .or_insert_with(|| PendingGroup::ready(Arc::clone(sim)));
                    plan.push(Ok(key));
                }
                JobSource::Executable { exe, work_dir } => {
                    // Pre-built executables are keyed by path: never
                    // compiled, never cleaned. Distinct paths quarantine
                    // independently.
                    let key = format!("exe:{}:{}", exe.display(), work_dir.display());
                    groups
                        .entry(key.clone())
                        .or_insert_with(|| PendingGroup::raw(exe.clone(), work_dir.clone()));
                    plan.push(Ok(key));
                }
                JobSource::Model(model) => match self.pipeline.plan_model(model) {
                    Ok((pre, program, preprocess_time, codegen_time)) => {
                        summary.codegen_time += preprocess_time + codegen_time;
                        let key = compiler.cache_key(&program);
                        groups.entry(key.clone()).or_insert_with(|| PendingGroup {
                            work: Some((pre, program, preprocess_time, codegen_time)),
                            sim: Mutex::new(None),
                            owned: true,
                        });
                        plan.push(Ok(key));
                    }
                    Err(e) => plan.push(Err(e)),
                },
            }
        }
        summary.unique_programs = groups.values().filter(|g| g.owned).count();

        // Compile (parallel): one compile per unique program.
        let to_compile: Vec<&PendingGroup> =
            groups.values().filter(|g| g.work.is_some()).collect();
        run_on_pool(self.workers, &to_compile, |group| {
            let (pre, program, preprocess_time, codegen_time) =
                group.work.as_ref().expect("filtered on work").clone();
            let outcome = match compiler.compile(&program) {
                Ok(sim) => Ok(GroupSim::Prepared(Arc::new(PreparedSimulation::from_parts(
                    pre,
                    sim,
                    preprocess_time,
                    codegen_time,
                )))),
                Err(e) => Err(format!("batch compile failed: {e}")),
            };
            *group.sim.lock().expect("compile slot") = Some(outcome);
        });
        for group in groups.values() {
            if let Some(Ok(GroupSim::Prepared(sim))) =
                group.sim.lock().expect("compile slot").as_ref()
            {
                if group.owned {
                    match sim.cache_hit() {
                        true => {
                            summary.cached_compiles += 1;
                            summary.cached_compile_time += sim.compile_time();
                        }
                        false => {
                            summary.cold_compiles += 1;
                            summary.cold_compile_time += sim.compile_time();
                        }
                    }
                }
            }
        }

        // Run (parallel): every job against its resolved simulator, under
        // one shared supervisor so crash counts (and thus quarantine)
        // aggregate across jobs hitting the same executable. The pipeline
        // hands out a state-backed supervisor, so quarantine decisions
        // also persist across batches sharing one cache directory.
        let supervisor = self.pipeline.supervisor();
        let run_work: Vec<(usize, &BatchJob)> = jobs.iter().enumerate().collect();
        let slots: Vec<Mutex<Option<JobResult>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        run_on_pool(self.workers, &run_work, |(idx, job)| {
            // Each job gets its own trace track (Chrome tid) so concurrent
            // workers' lifecycle spans never interleave into fake
            // hierarchy. Track 1 stays reserved for single-run pipelines.
            let tracer = self.pipeline.tracer().cloned();
            let supervisor = match &tracer {
                Some(_) => supervisor.clone().with_trace_tid(*idx as u64 + 2),
                None => supervisor.clone(),
            };
            let job_start = tracer.as_ref().map(|t| t.now_us());
            let result = match &plan[*idx] {
                Err(e) => job_error(job, AccMoSError::Batch(e.to_string())),
                Ok(key) => {
                    let group = &groups[key];
                    let outcome = group
                        .sim
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .clone();
                    match outcome {
                        Some(Ok(GroupSim::Prepared(sim))) => {
                            run_prepared(job, &sim, &supervisor)
                        }
                        Some(Ok(GroupSim::Raw { exe, work_dir })) => {
                            let run_start = Instant::now();
                            match supervisor.run(
                                &exe,
                                &work_dir,
                                job.steps,
                                &job.tests,
                                &job.opts,
                            ) {
                                Ok(run) => JobResult {
                                    label: job.label.clone(),
                                    report: Ok(run.report),
                                    run_time: run_start.elapsed(),
                                    retries: run.retries,
                                    backoff: run.backoff,
                                    fallback_reason: None,
                                    peak_rss_kb: run.peak_rss_kb,
                                },
                                // No model behind a raw executable, so no
                                // interpreter to degrade to: report the
                                // classified failure.
                                Err(e) => {
                                    let err = AccMoSError::Backend(e);
                                    JobResult {
                                        retries: retries_of(&err),
                                        label: job.label.clone(),
                                        report: Err(err),
                                        run_time: run_start.elapsed(),
                                        backoff: Duration::ZERO,
                                        fallback_reason: None,
                                        peak_rss_kb: 0,
                                    }
                                }
                            }
                        }
                        Some(Err(msg)) => match &group.work {
                            // The preprocessed model is still in hand: a
                            // failed compile degrades to the interpreter.
                            Some((pre, _, _, _)) => interp_fallback(job, pre, msg),
                            None => job_error(job, AccMoSError::Batch(msg)),
                        },
                        None => job_error(
                            job,
                            AccMoSError::Batch(
                                "batch compile phase never produced this program".into(),
                            ),
                        ),
                    }
                }
            };
            // One job-level span per track, with the profile leaves of a
            // profiled build laid under it — the supervisor's attempt/poll
            // spans land inside by containment.
            if let (Some(tracer), Some(start)) = (&tracer, job_start) {
                let tid = *idx as u64 + 2;
                tracer.span("pipeline", &job.label, start, tracer.now_us() - start, tid);
                if let Ok(report) = &result.report {
                    if !report.profile.is_empty() {
                        tracer.record_profile(start, tid, &report.profile);
                    }
                }
            }
            *slots[*idx].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                Some(result);
        });

        // Build dirs the runner created are scratch; prepared sims are
        // the caller's to clean.
        for group in groups.values() {
            if group.owned {
                if let Some(Ok(GroupSim::Prepared(sim))) =
                    group.sim.lock().expect("compile slot").as_ref()
                {
                    sim.clean();
                }
            }
        }

        let mut results = Vec::with_capacity(jobs.len());
        for (idx, slot) in slots.into_iter().enumerate() {
            // A worker that panicked mid-job never filled its slot; that is
            // a per-job failure, not a batch abort.
            let result = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| {
                    job_error(
                        &jobs[idx],
                        AccMoSError::Batch(
                            "batch worker thread panicked while running this job".into(),
                        ),
                    )
                });
            summary.run_time += result.run_time;
            summary.retries += u64::from(result.retries);
            summary.max_peak_rss_kb = summary.max_peak_rss_kb.max(result.peak_rss_kb);
            if result.degraded() {
                summary.degraded += 1;
            }
            if result.report.is_err() {
                summary.failures += 1;
            }
            results.push(result);
        }
        summary.quarantined = supervisor.quarantined().len();
        let retry_stats = supervisor.retry_stats();
        summary.retry_kinds = retry_stats.retry_kinds;
        summary.backoff_sleep = retry_stats.backoff_sleep;
        summary.total_wall = wall_start.elapsed();

        // Ledger: one schema-versioned record per job, written after the
        // batch settles so the trend gate sees exactly what the caller
        // saw. Best-effort — a read-only state dir never fails a batch.
        for (idx, result) in results.iter().enumerate() {
            self.pipeline.record(&self.job_record(&jobs[idx], result, &plan[idx], &groups));
        }
        Ok(BatchReport { jobs: results, summary })
    }

    /// Build the ledger record for one settled job. Shared phase costs
    /// (preprocess, codegen, compile) are those of the dedup group that
    /// produced the job's binary; run/backoff/retries are the job's own.
    fn job_record(
        &self,
        job: &BatchJob,
        result: &JobResult,
        plan: &Result<String, AccMoSError>,
        groups: &HashMap<String, PendingGroup>,
    ) -> RunRecord {
        let mut rec = RunRecord::new("batch", &job.label);
        rec.steps = job.steps;
        rec.retries = u64::from(result.retries);
        // Lane width: the report knows it exactly; for a job that never
        // produced one, the stimulus implies it (primary + lane_tests).
        rec.lanes = match &result.report {
            Ok(report) => report.lane_width(),
            Err(_) => (1 + job.opts.lane_tests.len()) as u64,
        };
        if let Ok(key) = plan {
            if let Some(Ok(GroupSim::Prepared(sim))) = groups[key]
                .sim
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .as_ref()
            {
                rec.phases = sim.phase_micros();
                rec.compile_cached = sim.cache_hit();
            }
        }
        rec.phases.run_us = telemetry::micros(result.run_time);
        rec.phases.backoff_us = telemetry::micros(result.backoff);
        rec.peak_rss_kb = result.peak_rss_kb;
        match &result.report {
            Ok(report) => {
                rec.model = report.model.clone();
                rec.engine = report.engine.clone();
                rec.prof = telemetry::encode_profile(&report.profile);
                rec.outcome = match result.degraded() {
                    true => telemetry::outcome::DEGRADED,
                    false => telemetry::outcome::OK,
                }
                .to_string();
                rec.note = result.fallback_reason.clone().unwrap_or_default();
            }
            Err(err) => {
                rec.outcome = match err {
                    AccMoSError::Backend(crate::BackendError::Quarantined { .. }) => {
                        telemetry::outcome::QUARANTINED
                    }
                    _ => telemetry::outcome::FAILED,
                }
                .to_string();
                rec.note = err.to_string();
            }
        }
        rec
    }
}

/// A [`JobResult`] that never ran: zero run time, carries `err`.
fn job_error(job: &BatchJob, err: AccMoSError) -> JobResult {
    JobResult {
        label: job.label.clone(),
        report: Err(err),
        run_time: Duration::ZERO,
        retries: 0,
        backoff: Duration::ZERO,
        fallback_reason: None,
        peak_rss_kb: 0,
    }
}

/// Retries consumed by a failed supervised run (`attempts - 1`).
fn retries_of(err: &AccMoSError) -> u32 {
    match err {
        AccMoSError::Backend(crate::BackendError::Supervised { attempts, .. }) => {
            attempts.saturating_sub(1)
        }
        _ => 0,
    }
}

/// Run `job` on the interpretive [`crate::NormalEngine`] because its compiled
/// path is unavailable; the result is flagged degraded with `reason`.
/// Lane jobs replay every lane's stimulus and come back aggregated the
/// same way the compiled lane simulator reports
/// ([`crate::interp_lane_run`]).
fn interp_fallback(job: &BatchJob, pre: &PreprocessedModel, reason: String) -> JobResult {
    let start = Instant::now();
    let report = crate::interp_lane_run(pre, &job.tests, &job.opts, job.steps);
    JobResult {
        label: job.label.clone(),
        report: Ok(report),
        run_time: start.elapsed(),
        retries: 0,
        backoff: Duration::ZERO,
        fallback_reason: Some(reason),
        peak_rss_kb: 0,
    }
}

/// Run one job against a compiled simulator under `supervisor`, degrading
/// to the interpreter when the binary is (or just became) quarantined.
fn run_prepared(job: &BatchJob, sim: &PreparedSimulation, supervisor: &Supervisor) -> JobResult {
    let exe = sim.simulator().exe();
    if supervisor.is_quarantined(exe) {
        let crashes = supervisor.crash_count(exe);
        return interp_fallback(
            job,
            sim.preprocessed(),
            format!("simulator quarantined after {crashes} crash(es)"),
        );
    }
    let run_start = Instant::now();
    match sim.run_supervised(job.steps, &job.tests, &job.opts, supervisor) {
        Ok(run) => JobResult {
            label: job.label.clone(),
            report: Ok(run.report),
            run_time: run_start.elapsed(),
            retries: run.retries,
            backoff: run.backoff,
            fallback_reason: None,
            peak_rss_kb: run.peak_rss_kb,
        },
        Err(e) => {
            // This failure may have just tipped the binary into
            // quarantine; this job still degrades rather than erroring.
            if supervisor.is_quarantined(exe) {
                return interp_fallback(job, sim.preprocessed(), e.to_string());
            }
            JobResult {
                retries: retries_of(&e),
                label: job.label.clone(),
                report: Err(e),
                run_time: run_start.elapsed(),
                backoff: Duration::ZERO,
                fallback_reason: None,
                peak_rss_kb: 0,
            }
        }
    }
}

/// A dedup group: at most one compile feeding any number of jobs.
#[derive(Debug)]
struct PendingGroup {
    /// Codegen output awaiting compilation with its preprocess and
    /// codegen wall times (`None` for prepared sims and raw executables).
    /// Kept after a failed compile so the run phase can degrade the
    /// group's jobs to the interpreter.
    #[allow(clippy::type_complexity)]
    work: Option<(crate::PreprocessedModel, crate::GeneratedProgram, Duration, Duration)>,
    /// The resolved simulator, or the formatted compile error.
    sim: Mutex<Option<Result<GroupSim, String>>>,
    /// Whether the runner owns (and therefore cleans) the build dir.
    owned: bool,
}

/// The runnable thing a dedup group resolved to.
#[derive(Debug, Clone)]
enum GroupSim {
    /// A compiled (or caller-prepared) simulation.
    Prepared(Arc<PreparedSimulation>),
    /// A caller-supplied executable with no model behind it.
    Raw {
        exe: PathBuf,
        work_dir: PathBuf,
    },
}

impl PendingGroup {
    fn ready(sim: Arc<PreparedSimulation>) -> PendingGroup {
        PendingGroup {
            work: None,
            sim: Mutex::new(Some(Ok(GroupSim::Prepared(sim)))),
            owned: false,
        }
    }

    fn raw(exe: PathBuf, work_dir: PathBuf) -> PendingGroup {
        PendingGroup {
            work: None,
            sim: Mutex::new(Some(Ok(GroupSim::Raw { exe, work_dir }))),
            owned: false,
        }
    }
}

impl AccMoS {
    /// Preprocess + generate, returning the parts the batch planner needs
    /// with preprocess and codegen wall time measured separately.
    #[allow(clippy::type_complexity)]
    fn plan_model(
        &self,
        model: &Model,
    ) -> Result<
        (crate::PreprocessedModel, crate::GeneratedProgram, Duration, Duration),
        AccMoSError,
    > {
        let start = Instant::now();
        let pre = crate::preprocess(model)?;
        let preprocess_time = start.elapsed();
        let gen_start = Instant::now();
        let program = accmos_codegen::generate(&pre, self.codegen_options());
        Ok((pre, program, preprocess_time, gen_start.elapsed()))
    }
}

/// A closable multi-producer/multi-consumer work queue with condvar
/// wakeups — the batch pool's dispatcher, shared with the serve daemon's
/// long-lived workers.
///
/// Idle workers *block* in [`WorkQueue::pop`]; a push wakes exactly one
/// of them and [`WorkQueue::close`] wakes them all for shutdown. Nothing
/// ever polls, so thousands of queued jobs cost a thread only while that
/// thread is actually computing. The queue deliberately has no capacity
/// bound: callers (the batch planner, the serve daemon's submit path)
/// bound admission themselves.
pub(crate) struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> WorkQueue<T> {
    pub(crate) fn new() -> WorkQueue<T> {
        WorkQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue an item and wake one blocked worker. Items pushed after
    /// [`WorkQueue::close`] are still drained — close marks "no more
    /// producers", not "discard the backlog".
    pub(crate) fn push(&self, item: T) {
        self.state.lock().expect("work queue").items.push_back(item);
        self.ready.notify_one();
    }

    /// Mark the queue closed and wake every blocked worker; once the
    /// backlog drains, every [`WorkQueue::pop`] returns `None`.
    pub(crate) fn close(&self) {
        self.state.lock().expect("work queue").closed = true;
        self.ready.notify_all();
    }

    /// Dequeue the next item, blocking on the condvar while the queue is
    /// empty and open. Returns `None` once the queue is closed **and**
    /// drained — the worker's signal to exit.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("work queue");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("work queue");
        }
    }
}

/// Run `f` over every item of `work` on at most `workers` threads fed by
/// a [`WorkQueue`] (pre-seeded and closed, so workers exit the moment
/// the backlog drains). Blocks until all items are processed.
fn run_on_pool<T: Sync>(workers: usize, work: &[T], f: impl Fn(&T) + Sync) {
    if work.is_empty() {
        return;
    }
    // Contain panics per item: `std::thread::scope` re-raises a worker
    // panic on join, which would turn one bad job into a whole-batch
    // abort. A panicked item simply never fills its output slot, and the
    // caller reports that per item.
    let call = |item: &T| {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
    };
    let threads = workers.max(1).min(work.len());
    if threads == 1 {
        for item in work {
            call(item);
        }
        return;
    }
    let queue = WorkQueue::new();
    for idx in 0..work.len() {
        queue.push(idx);
    }
    queue.close();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                while let Some(idx) = queue.pop() {
                    call(&work[idx]);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar};

    fn gain_model(name: &str, gain: i32) -> Model {
        let mut b = ModelBuilder::new(name);
        b.inport("In", DataType::I32);
        b.actor("G", ActorKind::Gain { gain: Scalar::I32(gain) });
        b.outport("Out", DataType::I32);
        b.wire("In", "G");
        b.wire("G", "Out");
        b.build().unwrap()
    }

    fn tests_for(value: i32) -> TestVectors {
        TestVectors::constant("In", Scalar::I32(value), 3)
    }

    /// ISSUE acceptance: >=8 concurrent jobs over a mix of models, some
    /// sharing one compiled binary, must reproduce the serial digests.
    #[test]
    fn concurrent_batch_matches_serial_digests() {
        let models =
            [gain_model("BatchA", 2), gain_model("BatchB", 3), gain_model("BatchC", 5)];
        // 9 jobs over 3 models: each model's binary is shared by 3 jobs.
        let jobs: Vec<BatchJob> = (0..9)
            .map(|i| {
                let model = &models[i % 3];
                BatchJob::model(
                    format!("job-{i}"),
                    model.clone(),
                    tests_for(i as i32 + 1),
                    50,
                )
            })
            .collect();

        // Serial reference: same pipeline, one job at a time.
        let pipeline = AccMoS::new().without_cache();
        let serial: Vec<u64> = (0..9)
            .map(|i| {
                let sim = pipeline.prepare(&models[i % 3]).unwrap();
                let r = sim
                    .run(50, &tests_for(i as i32 + 1), &RunOptions::default())
                    .unwrap();
                sim.clean();
                r.output_digest
            })
            .collect();

        let report =
            BatchRunner::new(pipeline.clone()).with_workers(8).run(jobs).unwrap();
        assert_eq!(report.summary.jobs, 9);
        assert_eq!(report.summary.unique_programs, 3, "3 models -> 3 compiles");
        assert_eq!(report.summary.failures, 0);
        for (i, job) in report.jobs.iter().enumerate() {
            assert_eq!(job.label, format!("job-{i}"), "submission order preserved");
            let r = job.report.as_ref().unwrap();
            assert_eq!(r.output_digest, serial[i], "job {i} diverged from serial run");
        }
    }

    #[test]
    fn prepared_jobs_share_the_submitted_binary() {
        let pipeline = AccMoS::new();
        let sim = Arc::new(pipeline.prepare(&gain_model("Shared", 7)).unwrap());
        let jobs: Vec<BatchJob> = (0..8)
            .map(|i| {
                BatchJob::prepared(format!("p{i}"), Arc::clone(&sim), tests_for(i), 20)
            })
            .collect();
        let report = BatchRunner::new(pipeline).with_workers(4).run(jobs).unwrap();
        assert_eq!(report.summary.failures, 0);
        assert_eq!(report.summary.unique_programs, 0, "nothing compiled");
        for (i, job) in report.jobs.iter().enumerate() {
            let r = job.report.as_ref().unwrap();
            assert_eq!(r.final_outputs[0].1.to_string(), (7 * i as i32).to_string());
        }
        // The runner must not have cleaned the caller's build dir.
        assert!(sim.simulator().exe().exists());
        sim.clean();
    }

    #[test]
    fn failures_are_per_job_not_global() {
        // Two gains in a feedback cycle with no delay: structurally valid,
        // but scheduling rejects it as an algebraic loop at plan time.
        let mut b = ModelBuilder::new("Loopy");
        b.actor("G1", ActorKind::Gain { gain: Scalar::I32(2) });
        b.actor("G2", ActorKind::Gain { gain: Scalar::I32(3) });
        b.outport("Out", DataType::I32);
        b.connect(("G1", 0), ("G2", 0));
        b.connect(("G2", 0), ("G1", 0));
        b.connect(("G2", 0), ("Out", 0));
        let looped = b.build().expect("cycle passes structural validation");

        let jobs = vec![
            BatchJob::model("good", gain_model("Good", 2), tests_for(1), 10),
            BatchJob::model("bad", looped, TestVectors::new(), 10),
        ];
        let report = BatchRunner::new(AccMoS::new()).run(jobs).unwrap();
        assert!(report.jobs[0].report.is_ok(), "healthy job unaffected");
        let err = report.jobs[1].report.as_ref().unwrap_err();
        assert!(
            err.to_string().contains("algebraic loop"),
            "loop failure stays on its own job: {err}"
        );
        assert_eq!(report.summary.failures, 1);
    }

    #[test]
    fn pool_contains_worker_panics() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let work: Vec<u32> = (0..8).collect();
        let done = AtomicUsize::new(0);
        run_on_pool(4, &work, |n| {
            assert!(*n != 3, "injected panic");
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 7, "one panic, seven survivors");
    }

    #[test]
    fn work_queue_drains_closed_backlog_exactly_once() {
        use std::collections::HashSet;
        let queue = WorkQueue::new();
        for i in 0..100 {
            queue.push(i);
        }
        queue.close();
        let seen: Mutex<HashSet<i32>> = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(i) = queue.pop() {
                        assert!(seen.lock().unwrap().insert(i), "item {i} dispatched twice");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 100, "every item dispatched");
        assert_eq!(queue.pop(), None, "closed and drained stays None");
    }

    #[test]
    fn work_queue_wakes_a_blocked_worker_on_push_and_all_on_close() {
        let queue: Arc<WorkQueue<u32>> = Arc::new(WorkQueue::new());
        let q = Arc::clone(&queue);
        // The worker blocks on the condvar (no backlog yet)...
        let worker = std::thread::spawn(move || {
            let first = q.pop();
            let second = q.pop();
            (first, second)
        });
        // ...and a push delivers without the worker ever polling.
        std::thread::sleep(Duration::from_millis(20));
        queue.push(7);
        // Close releases the still-blocked second pop.
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        let (first, second) = worker.join().unwrap();
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
        // Items pushed after close are backlog, not discarded.
        queue.push(9);
        assert_eq!(queue.pop(), Some(9));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn compile_failure_degrades_jobs_to_interpreter() {
        // A *file* where the build dir should be makes the shared compile
        // fail; the jobs still complete on the interpreter, flagged.
        let blocker = std::env::temp_dir()
            .join(format!("accmos-batch-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let pipeline = AccMoS::new().without_cache().with_work_dir(&blocker);
        let report = BatchRunner::new(pipeline)
            .run(vec![
                BatchJob::model("d0", gain_model("Degr", 2), tests_for(5), 4),
                BatchJob::model("d1", gain_model("Degr", 2), tests_for(7), 4),
            ])
            .unwrap();
        assert_eq!(report.summary.failures, 0, "degradation is not failure");
        assert_eq!(report.summary.degraded, 2);
        for (job, want) in report.jobs.iter().zip(["10", "14"]) {
            assert!(job.degraded(), "{} must be flagged degraded", job.label);
            assert!(
                job.fallback_reason.as_deref().unwrap().contains("compile failed"),
                "reason names the cause"
            );
            let r = job.report.as_ref().unwrap();
            assert_eq!(r.final_outputs[0].1.to_string(), want);
        }
        std::fs::remove_file(&blocker).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn quarantined_binary_degrades_remaining_jobs() {
        use std::os::unix::fs::PermissionsExt;
        let policy = crate::ExecPolicy::default()
            .with_retries(0)
            .with_quarantine_after(2)
            .with_kill_timeout(Duration::from_millis(500));
        let pipeline = AccMoS::new().without_cache().with_exec_policy(policy);
        let sim = Arc::new(pipeline.prepare(&gain_model("Quar", 3)).unwrap());
        // Sabotage the compiled binary: every invocation dies on SIGSEGV.
        let exe = sim.simulator().exe().to_path_buf();
        std::fs::write(&exe, "#!/bin/sh\nkill -SEGV $$\n").unwrap();
        std::fs::set_permissions(&exe, std::fs::Permissions::from_mode(0o755)).unwrap();

        let jobs: Vec<BatchJob> = (0..4)
            .map(|i| BatchJob::prepared(format!("q{i}"), Arc::clone(&sim), tests_for(i), 5))
            .collect();
        // One worker => deterministic order: q0 crashes (count 1, hard
        // failure), q1 crashes into quarantine and degrades, q2/q3 skip
        // the binary entirely and degrade.
        let report = BatchRunner::new(pipeline).with_workers(1).run(jobs).unwrap();
        assert_eq!(report.summary.quarantined, 1);
        assert_eq!(report.summary.failures, 1);
        assert_eq!(report.summary.degraded, 3);
        assert!(matches!(
            report.jobs[0].report.as_ref().unwrap_err(),
            AccMoSError::Backend(crate::BackendError::Supervised { .. })
        ));
        for (i, job) in report.jobs.iter().enumerate().skip(1) {
            assert!(job.degraded(), "{} must degrade after quarantine", job.label);
            let r = job.report.as_ref().unwrap();
            assert_eq!(r.final_outputs[0].1.to_string(), (3 * i as i32).to_string());
        }
        sim.clean();
    }

    #[test]
    fn batch_cache_counters_split_cold_and_cached() {
        let root = std::env::temp_dir()
            .join(format!("accmos-batch-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = crate::BuildCache::at(&root);
        let pipeline = AccMoS::new().with_cache(cache.clone());
        let model = gain_model("Counted", 4);

        let first = BatchRunner::new(pipeline.clone())
            .run(vec![BatchJob::model("cold", model.clone(), tests_for(1), 10)])
            .unwrap();
        assert_eq!(first.summary.cold_compiles, 1);
        assert_eq!(first.summary.cached_compiles, 0);

        let second = BatchRunner::new(pipeline)
            .run(vec![BatchJob::model("warm", model, tests_for(2), 10)])
            .unwrap();
        assert_eq!(second.summary.cold_compiles, 0);
        assert_eq!(second.summary.cached_compiles, 1);
        assert!(second.summary.cached_compile_time <= first.summary.cold_compile_time);
        cache.clear().unwrap();
    }
}
