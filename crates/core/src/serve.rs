//! `accmos serve` — a long-lived in-process simulation service.
//!
//! The daemon listens on a Unix-domain socket for line-delimited flat
//! JSON requests, keeps a persistent job queue, and executes generated
//! simulators **in process**: each job's C program is compiled as a
//! shared object ([`Compiler::compile_shared`]) and invoked through
//! [`DylibRunner`], eliminating the per-run `fork`/`exec`/pipe cost of
//! the subprocess engine. For a cached simulator the remaining dispatch
//! cost is a `dlopen` of a scratch copy plus one function call.
//!
//! ## Protocol
//!
//! One JSON object per line, both directions. Requests:
//!
//! ```text
//! {"op":"submit","model":"bench:SPV","steps":1000,"lanes":1,"rows":8,"seed":44101}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Replies stream back on the same connection: an immediate
//! `{"event":"queued","job":...}` acknowledgement, then a
//! `{"event":"done",...}` record when the job finishes (jobs submitted
//! on one connection report on that connection, in completion order).
//! `ping` answers `pong` with the number of jobs still pending;
//! `shutdown` answers `bye`, drains the queue, and stops the daemon.
//!
//! ## Persistence and recovery
//!
//! Every accepted job appends a `queued` record to `jobs.jsonl` in the
//! pipeline's state directory (under the same cross-process lease as the
//! run ledger), and a `done` record on completion. On start the daemon
//! re-enqueues every `queued` job without a matching `done` — so jobs
//! survive a daemon crash, a torn final line (the killed daemon's
//! half-written append) is skipped, and completed jobs are never re-run.
//! Recovered jobs have no client connection; their results go to the
//! ledger and `jobs.jsonl` only.
//!
//! ## Isolation policy
//!
//! In-process execution trades isolation for dispatch cost, so the
//! subprocess engine remains as the isolation fallback, and taking it is
//! never silent — the run record is flagged `degraded` with a note:
//!
//! - models from untrusted specs (`rand:SEED`, fuzz-generated) always
//!   run as a supervised child process;
//! - any dylib load or run failure (`dlopen` error, stale entry,
//!   stimulus mismatch) falls back to the child-process path;
//! - a cooperative-cancel timeout (the in-process deadline) is a real
//!   failure, not a fallback trigger: the budget is already spent.
//!
//! Successful in-process runs are recorded with engine `accmos-dylib`
//! (source `serve`), so ledger trends keep the two dispatch engines in
//! separate baselines.

use crate::batch::WorkQueue;
use crate::{preprocess, telemetry, AccMoS, AccMoSError, DylibRunner, RunOptions, RunRecord};
use accmos_ir::{Model, SimulationReport};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration for [`ServeHandle::start`].
#[derive(Debug)]
pub struct ServeConfig {
    socket: PathBuf,
    workers: usize,
    pipeline: AccMoS,
}

impl ServeConfig {
    /// A service on `socket` with 2 workers and a default [`AccMoS`]
    /// pipeline.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig { socket: socket.into(), workers: 2, pipeline: AccMoS::new() }
    }

    /// Builder-style: number of concurrent job workers (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style: the pipeline executing jobs (cache, exec policy,
    /// lanes default, tracer). Its state directory hosts `jobs.jsonl`
    /// and the ledger; a cache-less pipeline serves ephemerally.
    pub fn with_pipeline(mut self, pipeline: AccMoS) -> ServeConfig {
        self.pipeline = pipeline;
        self
    }
}

/// One queued simulation request.
struct ServeJob {
    id: String,
    spec: String,
    steps: u64,
    lanes: usize,
    rows: usize,
    seed: u64,
    /// Where to stream the `done` event; `None` for jobs recovered from
    /// `jobs.jsonl` (their submitter is gone).
    reply: Option<Sink>,
}

/// A shared write end of a client connection. Workers finishing jobs and
/// the connection's own acknowledgements interleave line-atomically.
type Sink = Arc<Mutex<UnixStream>>;

struct ServeShared {
    pipeline: AccMoS,
    jobs_file: Option<PathBuf>,
    pending: AtomicUsize,
    shutting_down: AtomicBool,
    seq: AtomicU64,
}

/// A running `accmos serve` daemon. Dropping the handle does **not**
/// stop the service; call [`ServeHandle::stop`] or send a `shutdown`
/// request and [`ServeHandle::join`].
pub struct ServeHandle {
    socket: PathBuf,
    shared: Arc<ServeShared>,
    queue: Arc<WorkQueue<ServeJob>>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// Bind the socket, recover unfinished jobs from `jobs.jsonl`, and
    /// start the accept loop plus the worker pool.
    ///
    /// # Errors
    ///
    /// Socket bind failures and state-directory I/O errors.
    pub fn start(config: ServeConfig) -> std::io::Result<ServeHandle> {
        let jobs_file = match config.pipeline.state_dir() {
            Some(dir) => {
                std::fs::create_dir_all(&dir)?;
                Some(dir.join("jobs.jsonl"))
            }
            None => None,
        };
        let shared = Arc::new(ServeShared {
            pipeline: config.pipeline,
            jobs_file,
            pending: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        });
        let queue = Arc::new(WorkQueue::new());
        for job in recover_jobs(shared.jobs_file.as_deref()) {
            shared.pending.fetch_add(1, Ordering::Relaxed);
            queue.push(job);
        }

        // A stale socket file from a crashed daemon blocks the bind.
        let _ = std::fs::remove_file(&config.socket);
        let listener = UnixListener::bind(&config.socket)?;

        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("accmos-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &queue))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let accept = {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            let socket = config.socket.clone();
            std::thread::Builder::new()
                .name("accmos-serve-accept".into())
                .spawn(move || accept_loop(&listener, &socket, &shared, &queue))?
        };

        Ok(ServeHandle { socket: config.socket, shared, queue, accept, workers })
    }

    /// The socket path the daemon is listening on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Jobs accepted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Relaxed)
    }

    /// Block until the daemon stops (a client sent `shutdown`), then
    /// reap its threads and remove the socket file.
    pub fn join(self) {
        let _ = self.accept.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }

    /// Initiate shutdown programmatically: stop accepting, drain the
    /// queued jobs, and wait for the workers to finish.
    pub fn stop(self) {
        initiate_shutdown(&self.shared, &self.queue, &self.socket);
        self.join();
    }
}

/// Flag the daemon as stopping, close the queue (workers drain the
/// backlog and exit), and wake the accept loop with a throwaway
/// connection so it observes the flag.
fn initiate_shutdown(shared: &ServeShared, queue: &WorkQueue<ServeJob>, socket: &Path) {
    shared.shutting_down.store(true, Ordering::Release);
    queue.close();
    let _ = UnixStream::connect(socket);
}

fn accept_loop(
    listener: &UnixListener,
    socket: &Path,
    shared: &Arc<ServeShared>,
    queue: &Arc<WorkQueue<ServeJob>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let queue = Arc::clone(queue);
        let socket = socket.to_path_buf();
        // Connection handlers are detached: they end when the client
        // hangs up, and nothing joins them. A handler that observes a
        // `shutdown` op initiates the daemon-wide shutdown itself.
        let _ = std::thread::Builder::new()
            .name("accmos-serve-conn".into())
            .spawn(move || handle_connection(stream, &socket, &shared, &queue));
    }
}

fn handle_connection(
    stream: UnixStream,
    socket: &Path,
    shared: &Arc<ServeShared>,
    queue: &Arc<WorkQueue<ServeJob>>,
) {
    let Ok(read_half) = stream.try_clone() else { return };
    let sink: Sink = Arc::new(Mutex::new(stream));
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let Some(req) = telemetry::parse_flat_object(&line) else {
            send_line(&sink, &event_error("request is not a flat JSON object"));
            continue;
        };
        match req.str("op").as_deref() {
            Some("submit") => {
                let spec = req.str("model").unwrap_or_default();
                if spec.is_empty() {
                    send_line(&sink, &event_error("submit requires a `model` spec"));
                    continue;
                }
                let job = ServeJob {
                    id: format!(
                        "j{}-{}",
                        std::process::id(),
                        shared.seq.fetch_add(1, Ordering::Relaxed)
                    ),
                    spec,
                    steps: req.num("steps").unwrap_or(1000),
                    lanes: usize::try_from(req.num("lanes").unwrap_or(1)).unwrap_or(1).max(1),
                    rows: usize::try_from(req.num("rows").unwrap_or(8)).unwrap_or(8).max(1),
                    seed: req.num("seed").unwrap_or(0xACC5),
                    reply: Some(Arc::clone(&sink)),
                };
                append_job_event(shared, &queued_record(&job));
                send_line(&sink, &format!("{{\"event\":\"queued\",\"job\":{}}}", json(&job.id)));
                shared.pending.fetch_add(1, Ordering::Relaxed);
                queue.push(job);
            }
            Some("ping") => {
                let pending = shared.pending.load(Ordering::Relaxed);
                send_line(&sink, &format!("{{\"event\":\"pong\",\"pending\":{pending}}}"));
            }
            Some("shutdown") => {
                send_line(&sink, "{\"event\":\"bye\"}");
                initiate_shutdown(shared, queue, socket);
                return;
            }
            other => {
                let detail = format!("unknown op `{}`", other.unwrap_or_default());
                send_line(&sink, &event_error(&detail));
            }
        }
    }
}

fn worker_loop(shared: &ServeShared, queue: &WorkQueue<ServeJob>) {
    while let Some(job) = queue.pop() {
        let start = shared.pipeline.tracer().map(|t| (t.clone(), t.now_us()));
        // A panicking job (a bug, not a policy outcome) must not take
        // the worker down with it — the daemon keeps serving.
        let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(&shared.pipeline, &job)
        }))
        .unwrap_or_else(|payload| {
            DoneEvent::failed(&job, format!("job panicked: {}", panic_message(payload.as_ref())))
        });
        if let Some((tracer, start_us)) = start {
            let dur = tracer.now_us().saturating_sub(start_us);
            tracer.span("serve", &format!("job {} {}", job.id, job.spec), start_us, dur, 1);
        }
        append_job_event(shared, &done.jobs_record(&job));
        if let Some(sink) = &job.reply {
            send_line(sink, &done.event_line(&job));
        }
        shared.pending.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The terminal state of one job, in both its on-wire and on-disk forms.
struct DoneEvent {
    outcome: &'static str,
    engine: String,
    digest: u64,
    steps: u64,
    note: String,
}

impl DoneEvent {
    fn failed(_job: &ServeJob, note: String) -> DoneEvent {
        DoneEvent {
            outcome: telemetry::outcome::FAILED,
            engine: String::new(),
            digest: 0,
            steps: 0,
            note,
        }
    }

    fn event_line(&self, job: &ServeJob) -> String {
        format!(
            "{{\"event\":\"done\",\"job\":{},\"model\":{},\"outcome\":{},\"engine\":{},\
             \"digest\":{},\"steps\":{},\"note\":{}}}",
            json(&job.id),
            json(&job.spec),
            json(self.outcome),
            json(&self.engine),
            json(&format!("{:016x}", self.digest)),
            self.steps,
            json(&self.note),
        )
    }

    fn jobs_record(&self, job: &ServeJob) -> String {
        format!(
            "{{\"schema\":1,\"ts_ms\":{},\"event\":\"done\",\"job\":{},\"outcome\":{}}}",
            now_ms(),
            json(&job.id),
            json(self.outcome),
        )
    }
}

/// Resolve a job's model spec. Mirrors the CLI's `load_model`, minus
/// the filesystem-free specs being validated instead of panicking.
fn resolve_spec(spec: &str) -> Result<Model, String> {
    if let Some(name) = spec.strip_prefix("bench:") {
        let upper = name.to_ascii_uppercase();
        if upper == "FIGURE1" {
            return Ok(accmos_models::figure1());
        }
        if accmos_models::TABLE1.iter().any(|(n, _, _)| *n == upper) {
            return Ok(accmos_models::by_name(&upper));
        }
        return Err(format!("unknown benchmark `{name}`"));
    }
    if let Some(seed) = spec.strip_prefix("rand:") {
        let seed: u64 = seed.parse().map_err(|_| format!("bad rand seed `{seed}`"))?;
        return crate::fuzz::planned_model(seed);
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("read {spec}: {e}"))?;
    crate::parse_mdlx(&text).map_err(|e| e.to_string())
}

/// Whether a spec's generated code may run in the daemon's own address
/// space. Fuzz-generated models (`rand:`) are exactly the programs the
/// differential campaigns exist to distrust; they keep child-process
/// isolation unconditionally.
fn trusted_spec(spec: &str) -> bool {
    !spec.starts_with("rand:")
}

fn execute_job(pipeline: &AccMoS, job: &ServeJob) -> DoneEvent {
    let model = match resolve_spec(&job.spec) {
        Ok(model) => model,
        Err(detail) => {
            let mut record = RunRecord::new("serve", &job.spec);
            record.steps = job.steps;
            record.lanes = job.lanes as u64;
            record.outcome = telemetry::outcome::FAILED.into();
            record.note = detail.clone();
            pipeline.record(&record);
            return DoneEvent::failed(job, detail);
        }
    };
    let pipeline = pipeline.clone().with_lanes(job.lanes);
    let mut record = RunRecord::new("serve", &model.name);
    record.steps = job.steps;
    record.lanes = job.lanes as u64;

    let fail = |mut record: RunRecord, note: String| {
        record.outcome = telemetry::outcome::FAILED.into();
        record.note = note.clone();
        pipeline.record(&record);
        DoneEvent::failed(job, note)
    };

    let pre_start = Instant::now();
    let pre = match preprocess(&model) {
        Ok(pre) => pre,
        Err(e) => return fail(record, e.to_string()),
    };
    record.phases.preprocess_us = telemetry::micros(pre_start.elapsed());
    let (tests, lane_tests) = crate::fuzz::lane_stimulus(&pre, job.rows, job.seed, job.lanes);
    let opts = RunOptions { lane_tests, ..RunOptions::default() };

    if trusted_spec(&job.spec) {
        let gen_start = Instant::now();
        let program = accmos_codegen::generate(&pre, pipeline.codegen_options());
        record.phases.analyze_us = telemetry::micros(program.analyze_time);
        record.phases.codegen_us = telemetry::micros(
            gen_start.elapsed().saturating_sub(program.analyze_time),
        );
        match run_in_process(&pipeline, &program, job.steps, &tests, &opts, &mut record) {
            Ok(report) => {
                record.engine = "accmos-dylib".into();
                record.outcome = telemetry::outcome::OK.into();
                pipeline.record(&record);
                return DoneEvent {
                    outcome: telemetry::outcome::OK,
                    engine: record.engine.clone(),
                    digest: report.output_digest,
                    steps: report.steps,
                    note: String::new(),
                };
            }
            // A cooperative-cancel timeout spent the whole budget; a
            // second subprocess attempt would just spend it again.
            Err(e @ crate::BackendError::Supervised { .. }) => {
                return fail(record, e.to_string());
            }
            Err(e) => {
                record.note = format!("dylib fallback: {e}");
            }
        }
    } else {
        record.note = "isolation: subprocess (untrusted rand: model)".into();
    }

    // The child-process path: the isolation fallback, always flagged.
    let note = record.note.clone();
    let sim = match pipeline.prepare(&model) {
        Ok(sim) => sim,
        Err(e) => return fail(record, format!("{note}; prepare: {e}")),
    };
    record.phases = sim.phase_micros();
    record.compile_cached = sim.cache_hit();
    let supervisor = pipeline.supervisor();
    let run_start = Instant::now();
    let out = sim.run_supervised(job.steps, &tests, &opts, &supervisor);
    record.phases.run_us = telemetry::micros(run_start.elapsed());
    sim.clean();
    match out {
        Ok(run) => {
            record.engine = run.report.engine.clone();
            record.retries = u64::from(run.retries);
            record.peak_rss_kb = run.peak_rss_kb;
            record.outcome = telemetry::outcome::DEGRADED.into();
            pipeline.record(&record);
            DoneEvent {
                outcome: telemetry::outcome::DEGRADED,
                engine: run.report.engine.clone(),
                digest: run.report.output_digest,
                steps: run.report.steps,
                note,
            }
        }
        Err(e) => fail(record, format!("{note}; {e}")),
    }
}

/// Compile as a shared object and run through [`DylibRunner`] with the
/// pipeline's kill timeout as the cooperative deadline.
fn run_in_process(
    pipeline: &AccMoS,
    program: &crate::GeneratedProgram,
    steps: u64,
    tests: &accmos_ir::TestVectors,
    opts: &RunOptions,
    record: &mut RunRecord,
) -> Result<SimulationReport, crate::BackendError> {
    let compiler = match pipeline.compiler() {
        Ok(c) => c,
        Err(AccMoSError::Backend(e)) => return Err(e),
        Err(e) => {
            return Err(crate::BackendError::RunFailed {
                exe: PathBuf::new(),
                detail: e.to_string(),
            })
        }
    };
    let dylib = compiler.compile_shared(program)?;
    record.phases.compile_us = telemetry::micros(dylib.compile_time());
    record.compile_cached = dylib.cache_hit();
    let runner = DylibRunner::for_dylib(&dylib);
    let run_start = Instant::now();
    let out = runner.run(steps, tests, opts, pipeline.exec_policy().kill_timeout);
    record.phases.run_us = telemetry::micros(run_start.elapsed());
    dylib.clean();
    out.map(|run| run.report)
}

/// Re-read `jobs.jsonl` and rebuild the queue a crashed daemon left
/// behind: every `queued` record without a matching `done`. Torn lines
/// (the final half-written append of a killed process) parse to `None`
/// and are skipped.
fn recover_jobs(jobs_file: Option<&Path>) -> Vec<ServeJob> {
    let Some(path) = jobs_file else { return Vec::new() };
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let mut queued: Vec<ServeJob> = Vec::new();
    for line in text.lines() {
        let Some(fields) = telemetry::parse_flat_object(line) else { continue };
        let Some(id) = fields.str("job") else { continue };
        match fields.str("event").as_deref() {
            Some("queued") => queued.push(ServeJob {
                id,
                spec: fields.str("model").unwrap_or_default(),
                steps: fields.num("steps").unwrap_or(1000),
                lanes: usize::try_from(fields.num("lanes").unwrap_or(1)).unwrap_or(1).max(1),
                rows: usize::try_from(fields.num("rows").unwrap_or(8)).unwrap_or(8).max(1),
                seed: fields.num("seed").unwrap_or(0xACC5),
                reply: None,
            }),
            Some("done") => queued.retain(|j| j.id != id),
            _ => {}
        }
    }
    queued.retain(|j| !j.spec.is_empty());
    queued
}

fn queued_record(job: &ServeJob) -> String {
    format!(
        "{{\"schema\":1,\"ts_ms\":{},\"event\":\"queued\",\"job\":{},\"model\":{},\
         \"steps\":{},\"lanes\":{},\"rows\":{},\"seed\":{}}}",
        now_ms(),
        json(&job.id),
        json(&job.spec),
        job.steps,
        job.lanes,
        job.rows,
        job.seed,
    )
}

/// Best-effort append under the state-dir lease; a full disk must not
/// fail a simulation that already ran.
fn append_job_event(shared: &ServeShared, line: &str) {
    if let Some(path) = &shared.jobs_file {
        let _ = telemetry::append_jsonl(path, line);
    }
}

fn send_line(sink: &Sink, line: &str) {
    if let Ok(mut stream) = sink.lock() {
        // A vanished client is not an error: the ledger still has the
        // result, exactly like a recovered job.
        let _ = stream.write_all(line.as_bytes()).and_then(|()| stream.write_all(b"\n"));
    }
}

fn event_error(detail: &str) -> String {
    format!("{{\"event\":\"error\",\"detail\":{}}}", json(detail))
}

fn json(s: &str) -> String {
    telemetry::json_str(s)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildCache;
    use std::time::Duration;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("accmos-serve-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn read_event(reader: &mut impl BufRead) -> telemetry::Fields {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        telemetry::parse_flat_object(&line)
            .unwrap_or_else(|| panic!("unparseable event: {line:?}"))
    }

    fn submit_line(spec: &str, steps: u64) -> String {
        format!("{{\"op\":\"submit\",\"model\":{},\"steps\":{steps}}}\n", json(spec))
    }

    #[test]
    fn serve_round_trip_runs_jobs_in_process_and_persists_the_queue() {
        let dir = TempDir::new("roundtrip");
        let pipeline = AccMoS::new().with_cache(BuildCache::at(dir.0.join("state")));
        let socket = dir.0.join("accmos.sock");
        let handle = ServeHandle::start(
            ServeConfig::new(&socket).with_workers(2).with_pipeline(pipeline.clone()),
        )
        .expect("daemon starts");

        let client = UnixStream::connect(&socket).expect("daemon is listening");
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut client = client;
        client.write_all(submit_line("bench:SPV", 200).as_bytes()).unwrap();
        client.write_all(submit_line("bench:TWC", 200).as_bytes()).unwrap();
        client.write_all(submit_line("bench:NOPE", 5).as_bytes()).unwrap();

        let mut queued = 0;
        let mut done = Vec::new();
        while done.len() < 3 {
            let ev = read_event(&mut reader);
            match ev.str("event").as_deref() {
                Some("queued") => queued += 1,
                Some("done") => done.push(ev),
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(queued, 3);
        for ev in &done {
            let model = ev.str("model").unwrap();
            if model == "bench:NOPE" {
                assert_eq!(ev.str("outcome").as_deref(), Some("failed"));
                assert!(ev.str("note").unwrap().contains("unknown benchmark"));
            } else {
                assert_eq!(ev.str("outcome").as_deref(), Some("ok"), "{model}");
                assert_eq!(ev.str("engine").as_deref(), Some("accmos-dylib"), "{model}");
                assert_ne!(ev.str("digest").as_deref(), Some("0000000000000000"), "{model}");
                assert_eq!(ev.num("steps"), Some(200), "{model}");
            }
        }

        client.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let bye = read_event(&mut reader);
        assert_eq!(bye.str("event").as_deref(), Some("bye"));
        handle.join();
        assert!(!socket.exists(), "socket file removed on join");

        // The persistent queue saw every job in and out.
        let journal = std::fs::read_to_string(dir.0.join("state/jobs.jsonl")).unwrap();
        let events: Vec<String> = journal
            .lines()
            .filter_map(telemetry::parse_flat_object)
            .filter_map(|f| f.str("event"))
            .collect();
        assert_eq!(events.iter().filter(|e| *e == "queued").count(), 3);
        assert_eq!(events.iter().filter(|e| *e == "done").count(), 3);

        // And the ledger holds the in-process runs under their own engine.
        let view = pipeline.ledger().unwrap().read();
        let serve: Vec<_> = view.records.iter().filter(|r| r.source == "serve").collect();
        assert_eq!(serve.len(), 3);
        assert_eq!(
            serve.iter().filter(|r| r.engine == "accmos-dylib" && r.outcome == "ok").count(),
            2
        );
        assert_eq!(serve.iter().filter(|r| r.outcome == "failed").count(), 1);
    }

    #[test]
    fn restart_recovers_queued_jobs_and_skips_completed_ones() {
        let dir = TempDir::new("recover");
        let state = dir.0.join("state");
        std::fs::create_dir_all(&state).unwrap();
        // The journal a crashed daemon left behind: job A completed, job
        // B still queued, and a torn final append.
        std::fs::write(
            state.join("jobs.jsonl"),
            "{\"schema\":1,\"ts_ms\":1,\"event\":\"queued\",\"job\":\"a\",\
             \"model\":\"bench:SPV\",\"steps\":100,\"lanes\":1,\"rows\":4,\"seed\":7}\n\
             {\"schema\":1,\"ts_ms\":2,\"event\":\"done\",\"job\":\"a\",\"outcome\":\"ok\"}\n\
             {\"schema\":1,\"ts_ms\":3,\"event\":\"queued\",\"job\":\"b\",\
             \"model\":\"bench:TWC\",\"steps\":150,\"lanes\":1,\"rows\":4,\"seed\":7}\n\
             {\"schema\":1,\"ts_ms\":4,\"event\":\"qu",
        )
        .unwrap();

        let pipeline = AccMoS::new().with_cache(BuildCache::at(&state));
        let socket = dir.0.join("accmos.sock");
        let handle =
            ServeHandle::start(ServeConfig::new(&socket).with_pipeline(pipeline.clone()))
                .expect("daemon starts despite the torn tail");

        // Job B runs without any client: poll the journal for its done
        // record.
        let deadline = Instant::now() + Duration::from_secs(60);
        let done_for = |id: &str| {
            std::fs::read_to_string(state.join("jobs.jsonl"))
                .unwrap_or_default()
                .lines()
                .filter_map(telemetry::parse_flat_object)
                .filter(|f| f.str("event").as_deref() == Some("done"))
                .filter(|f| f.str("job").as_deref() == Some(id))
                .count()
        };
        while done_for("b") == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        handle.stop();

        assert_eq!(done_for("b"), 1, "recovered job b ran exactly once");
        assert_eq!(done_for("a"), 1, "completed job a was not re-run");
        let view = pipeline.ledger().unwrap().read();
        let serve: Vec<_> = view.records.iter().filter(|r| r.source == "serve").collect();
        assert_eq!(serve.len(), 1, "only the recovered job reached the ledger");
        assert_eq!(serve[0].model, "TWC");
        assert_eq!(serve[0].engine, "accmos-dylib");
        assert_eq!(serve[0].outcome, "ok");
        assert_eq!(serve[0].steps, 150);
    }

    #[test]
    fn untrusted_specs_and_dylib_failures_take_the_flagged_subprocess_path() {
        // `rand:` models never enter the daemon's address space; the
        // done event and ledger record both carry the degraded flag and
        // the isolation note.
        let dir = TempDir::new("isolation");
        let pipeline = AccMoS::new().with_cache(BuildCache::at(dir.0.join("state")));
        let job = ServeJob {
            id: "t0".into(),
            spec: "rand:5".into(),
            steps: 50,
            lanes: 1,
            rows: 4,
            seed: 9,
            reply: None,
        };
        let done = execute_job(&pipeline, &job);
        assert_eq!(done.outcome, telemetry::outcome::DEGRADED);
        assert!(done.note.contains("isolation: subprocess"));
        assert_ne!(done.engine, "accmos-dylib");
        let view = pipeline.ledger().unwrap().read();
        assert_eq!(view.records.len(), 1);
        assert_eq!(view.records[0].outcome, "degraded");
        assert!(view.records[0].note.contains("isolation: subprocess"));
    }

    #[test]
    fn recovery_parses_only_well_formed_queued_records() {
        let dir = TempDir::new("parse");
        let path = dir.0.join("jobs.jsonl");
        std::fs::write(
            &path,
            "{\"schema\":1,\"event\":\"queued\",\"job\":\"x\",\"model\":\"bench:SPV\"}\n\
             {\"schema\":1,\"event\":\"queued\",\"job\":\"nospec\"}\n\
             not json at all\n\
             {\"schema\":1,\"event\":\"done\",\"job\":\"gone\"}\n",
        )
        .unwrap();
        let jobs = recover_jobs(Some(&path));
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, "x");
        assert_eq!(jobs[0].spec, "bench:SPV");
        assert_eq!(jobs[0].steps, 1000, "missing steps falls back to the default");
        assert!(recover_jobs(None).is_empty());
        assert!(recover_jobs(Some(Path::new("/no/such/file"))).is_empty());
    }
}
