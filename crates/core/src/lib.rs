//! # accmos
//!
//! AccMoS-RS: accelerating model simulation via instrumented code
//! generation — a Rust reproduction of *AccMoS: Accelerating Model
//! Simulation for Simulink via Code Generation* (DAC 2024).
//!
//! The [`AccMoS`] pipeline mirrors the paper's Figure 2:
//!
//! 1. **Model preprocessing** ([`preprocess`]) — parse / flatten the
//!    model, topologically sort the data flow, resolve signal types,
//!    enumerate coverage points;
//! 2. **Simulation-oriented instrumentation + code synthesis**
//!    ([`accmos_codegen::generate`]) — actor templates, coverage
//!    bitmaps, diagnostic functions, test-case import, `main()`;
//! 3. **Compile & execute** (`accmos-backend`) — GCC `-O3 -fwrapv`,
//!    run, parse results.
//!
//! The same model runs on the interpretive SSE stand-ins
//! ([`NormalEngine`], [`AcceleratorEngine`]) for comparison — that is the
//! paper's entire evaluation loop.
//!
//! ## Quickstart
//!
//! ```no_run
//! use accmos::{AccMoS, RunOptions};
//! use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar, TestVectors};
//!
//! // Figure 1: two accumulators into a sum that eventually wraps.
//! let mut b = ModelBuilder::new("Sample");
//! b.inport("A", DataType::I32);
//! b.inport("B", DataType::I32);
//! b.actor("AccA", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
//! b.actor("AccB", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
//! b.actor("Sum", ActorKind::Sum { signs: "++".into() });
//! b.outport("Out", DataType::I32);
//! b.connect(("A", 0), ("AccA", 0));
//! b.connect(("B", 0), ("AccB", 0));
//! b.connect(("AccA", 0), ("Sum", 0));
//! b.connect(("AccB", 0), ("Sum", 1));
//! b.connect(("Sum", 0), ("Out", 0));
//! let model = b.build()?;
//!
//! let sim = AccMoS::new().prepare(&model)?;
//! let mut tests = TestVectors::new();
//! tests.push_column("A", DataType::I32, vec![Scalar::I32(1000)]);
//! tests.push_column("B", DataType::I32, vec![Scalar::I32(2000)]);
//! let report = sim.run(1_000_000, &tests, &RunOptions::default())?;
//! println!("{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
pub mod fuzz;
#[cfg(unix)]
mod serve;

pub use batch::{BatchJob, BatchReport, BatchRunner, BatchSummary, JobResult, JobSource};
pub use fuzz::{CampaignSummary, FuzzCampaign, FuzzConfig, FuzzStore};
#[cfg(unix)]
pub use serve::{ServeConfig, ServeHandle};

pub use accmos_analyze::{
    analyze, analyze_with_tests, AnalysisFinding, LintRule, ModelAnalysis, Severity,
};
pub use accmos_backend::{
    default_state_dir, telemetry, BackendError, BuildCache, CacheStats, CompiledSimulator,
    Compiler, ExecPolicy, FailureKind, OptLevel, PhaseMicros, RetryStats, RunLedger,
    RunOptions, RunRecord, SupervisedRun, Supervisor, TraceNode, TraceSpan, Tracer,
};
#[cfg(unix)]
pub use accmos_backend::{CompiledDylib, DylibRun, DylibRunner};
pub use accmos_codegen::{
    ActorList, CodegenOptions, CustomProbe, GeneratedProgram, PROF_SAMPLE_PERIOD,
};
pub use accmos_graph::{preprocess, PreprocessedModel};
pub use accmos_interp::{AcceleratorEngine, Engine, NormalEngine, SimOptions};
pub use accmos_parse::{parse_mdlx, write_mdlx, MdlxError};

use accmos_ir::{Model, ModelError, SimulationReport, TestVectors};
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Errors from the end-to-end AccMoS pipeline.
#[derive(Debug)]
pub enum AccMoSError {
    /// The model is structurally invalid.
    Model(ModelError),
    /// The MDLX file could not be parsed.
    Mdlx(MdlxError),
    /// Compilation or execution of generated code failed.
    Backend(BackendError),
    /// A shared step of a batch (code generation or compilation performed
    /// once for several jobs) failed; carries the formatted underlying
    /// error, replicated to every job that depended on the step.
    Batch(String),
}

impl fmt::Display for AccMoSError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccMoSError::Model(e) => write!(f, "{e}"),
            AccMoSError::Mdlx(e) => write!(f, "{e}"),
            AccMoSError::Backend(e) => write!(f, "{e}"),
            AccMoSError::Batch(detail) => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for AccMoSError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccMoSError::Model(e) => Some(e),
            AccMoSError::Mdlx(e) => Some(e),
            AccMoSError::Backend(e) => Some(e),
            AccMoSError::Batch(_) => None,
        }
    }
}

impl From<ModelError> for AccMoSError {
    fn from(e: ModelError) -> Self {
        AccMoSError::Model(e)
    }
}

impl From<MdlxError> for AccMoSError {
    fn from(e: MdlxError) -> Self {
        AccMoSError::Mdlx(e)
    }
}

impl From<BackendError> for AccMoSError {
    fn from(e: BackendError) -> Self {
        AccMoSError::Backend(e)
    }
}

/// How the pipeline uses the compiled-artifact [`BuildCache`].
#[derive(Debug, Clone, Default)]
enum CachePolicy {
    /// The compiler's default cache (`$XDG_CACHE_HOME/accmos` or the
    /// temp-dir fallback).
    #[default]
    Default,
    /// No cache: every compile invokes the C compiler.
    Disabled,
    /// A caller-provided cache (shared counters across pipelines).
    Custom(BuildCache),
}

/// The AccMoS pipeline: preprocess → instrument → synthesize → compile.
#[derive(Debug, Clone)]
pub struct AccMoS {
    codegen: CodegenOptions,
    opt: OptLevel,
    work_dir: Option<PathBuf>,
    cache: CachePolicy,
    exec_policy: ExecPolicy,
    tracer: Option<Tracer>,
}

impl AccMoS {
    /// The default configuration: full instrumentation, GCC `-O3`, build
    /// cache enabled, default [`ExecPolicy`] supervision.
    pub fn new() -> AccMoS {
        AccMoS {
            codegen: CodegenOptions::accmos(),
            opt: OptLevel::O3,
            work_dir: None,
            cache: CachePolicy::Default,
            exec_policy: ExecPolicy::default(),
            tracer: None,
        }
    }

    /// The SSE Rapid Accelerator stand-in: uninstrumented code at `-O0`
    /// with per-step host data exchange.
    pub fn rapid_accelerator() -> AccMoS {
        AccMoS {
            codegen: CodegenOptions::rapid_accelerator(),
            opt: OptLevel::O0,
            work_dir: None,
            cache: CachePolicy::Default,
            exec_policy: ExecPolicy::default(),
            tracer: None,
        }
    }

    /// Builder-style: replace the code-generation options.
    pub fn with_codegen(mut self, codegen: CodegenOptions) -> AccMoS {
        self.codegen = codegen;
        self
    }

    /// Builder-style: set the compiler optimization level.
    pub fn with_opt(mut self, opt: OptLevel) -> AccMoS {
        self.opt = opt;
        self
    }

    /// Builder-style: generate a lane-parallel simulator stepping `n`
    /// test vectors per schedule iteration
    /// ([`CodegenOptions::lanes`]). Lane runs take the lane-0 stimulus
    /// as the primary `tests` argument and lanes `1..n` via
    /// [`RunOptions::lane_tests`]; results come back with per-lane
    /// sub-reports and OR-reduced coverage
    /// ([`SimulationReport::lane_reports`]).
    pub fn with_lanes(mut self, n: usize) -> AccMoS {
        self.codegen = self.codegen.lanes(n);
        self
    }

    /// Builder-style: build in a fixed directory (useful for inspecting
    /// the generated code).
    pub fn with_work_dir(mut self, dir: impl Into<PathBuf>) -> AccMoS {
        self.work_dir = Some(dir.into());
        self
    }

    /// Builder-style: use `cache` for compiled artifacts. Pass a shared
    /// [`BuildCache`] handle to aggregate hit/miss counters across
    /// pipelines.
    pub fn with_cache(mut self, cache: BuildCache) -> AccMoS {
        self.cache = CachePolicy::Custom(cache);
        self
    }

    /// Builder-style: disable the build cache so every [`AccMoS::prepare`]
    /// invokes the C compiler. Timing harnesses reproducing the paper's
    /// cold-compile numbers use this.
    pub fn without_cache(mut self) -> AccMoS {
        self.cache = CachePolicy::Disabled;
        self
    }

    /// Builder-style: set the supervised-execution policy (kill timeout,
    /// retries, backoff, output cap, quarantine threshold) used by
    /// [`AccMoS::run`] and [`BatchRunner`].
    pub fn with_exec_policy(mut self, policy: ExecPolicy) -> AccMoS {
        self.exec_policy = policy;
        self
    }

    /// Builder-style: record hierarchical trace spans — pipeline phases,
    /// supervisor child lifecycle, per-actor profile leaves — into
    /// `tracer`. The tracer is shared (clones share one buffer), so the
    /// caller drains it once at the end into a Chrome trace-event JSON
    /// file ([`Tracer::write_chrome_json`], the `--trace-out` flag).
    pub fn with_tracer(mut self, tracer: Tracer) -> AccMoS {
        self.tracer = Some(tracer);
        self
    }

    /// The trace collector threaded through this pipeline, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The supervised-execution policy in force.
    pub fn exec_policy(&self) -> &ExecPolicy {
        &self.exec_policy
    }

    /// The current code-generation options.
    pub fn codegen_options(&self) -> &CodegenOptions {
        &self.codegen
    }

    /// The state directory shared with the build cache — where the run
    /// ledger and the persistent quarantine store live. `None` when the
    /// cache is disabled: a cache-less pipeline is explicitly ephemeral
    /// (timing harnesses, tests), so it records no durable state either.
    pub fn state_dir(&self) -> Option<PathBuf> {
        match &self.cache {
            CachePolicy::Default => Some(accmos_backend::default_state_dir()),
            CachePolicy::Disabled => None,
            CachePolicy::Custom(cache) => Some(cache.root().to_path_buf()),
        }
    }

    /// The run ledger of this pipeline's state directory (`None` when the
    /// cache — and with it all durable state — is disabled).
    pub fn ledger(&self) -> Option<RunLedger> {
        self.state_dir().map(RunLedger::in_dir)
    }

    /// A supervisor under this pipeline's [`ExecPolicy`], inheriting (and
    /// extending) the persistent quarantine state of the state directory
    /// when one exists.
    pub(crate) fn supervisor(&self) -> Supervisor {
        let mut supervisor = Supervisor::new(self.exec_policy.clone());
        if let Some(tracer) = &self.tracer {
            supervisor = supervisor.with_tracer(tracer.clone());
        }
        match self.state_dir() {
            Some(dir) => supervisor.with_state_dir(dir),
            None => supervisor,
        }
    }

    /// Best-effort ledger append: telemetry must never fail a simulation.
    pub(crate) fn record(&self, record: &RunRecord) {
        if let Some(ledger) = self.ledger() {
            let _ = ledger.append(record);
        }
    }

    /// The compiler this pipeline configuration resolves to (used by both
    /// [`AccMoS::prepare`] and [`BatchRunner`], so batch jobs dedup under
    /// exactly the key they would compile under).
    pub(crate) fn compiler(&self) -> Result<Compiler, AccMoSError> {
        let mut compiler = Compiler::detect()?.with_opt(self.opt);
        if let Some(dir) = &self.work_dir {
            compiler = compiler.with_work_dir(dir.clone());
        }
        compiler = match &self.cache {
            CachePolicy::Default => compiler,
            CachePolicy::Disabled => compiler.without_cache(),
            CachePolicy::Custom(cache) => compiler.with_cache(cache.clone()),
        };
        Ok(compiler)
    }

    /// Run preprocessing and code generation without compiling (for code
    /// inspection).
    ///
    /// # Errors
    ///
    /// Returns validation/scheduling errors from preprocessing.
    pub fn generate(&self, model: &Model) -> Result<GeneratedProgram, AccMoSError> {
        let pre = preprocess(model)?;
        Ok(accmos_codegen::generate(&pre, &self.codegen))
    }

    /// Preprocess, generate, and compile a model into a runnable
    /// simulation.
    ///
    /// # Errors
    ///
    /// Propagates model validation errors and compiler failures.
    pub fn prepare(&self, model: &Model) -> Result<PreparedSimulation, AccMoSError> {
        let pre_start = std::time::Instant::now();
        let pre = preprocess(model)?;
        let preprocess_time = pre_start.elapsed();
        let gen_start = std::time::Instant::now();
        let program = accmos_codegen::generate(&pre, &self.codegen);
        let codegen_time = gen_start.elapsed();

        let sim = self.compiler()?.compile(&program)?;
        Ok(PreparedSimulation {
            pre,
            sim,
            parse_time: Duration::ZERO,
            preprocess_time,
            codegen_time,
        })
    }

    /// Parse an MDLX document and prepare it.
    ///
    /// # Errors
    ///
    /// Propagates parse, validation and compilation errors.
    pub fn prepare_mdlx(&self, text: &str) -> Result<PreparedSimulation, AccMoSError> {
        let parse_start = std::time::Instant::now();
        let model = parse_mdlx(text)?;
        let parse_time = parse_start.elapsed();
        let mut sim = self.prepare(&model)?;
        sim.parse_time = parse_time;
        Ok(sim)
    }

    /// End-to-end supervised run with graceful degradation: prepare the
    /// model, run the compiled simulator under this pipeline's
    /// [`ExecPolicy`], and — when compilation fails (no C compiler, broken
    /// toolchain) or the binary crashes into quarantine — fall back to the
    /// interpretive [`NormalEngine`] instead of failing the job. The
    /// fallback is never silent: [`RunOutcome::degraded`] is set and
    /// [`RunOutcome::fallback_reason`] carries the cause.
    ///
    /// # Errors
    ///
    /// Model validation and scheduling errors (which no engine could run),
    /// and supervised execution failures that do not trigger fallback
    /// (e.g. a timeout or a crash that has not yet reached quarantine).
    pub fn run(
        &self,
        model: &Model,
        steps: u64,
        tests: &TestVectors,
        opts: &RunOptions,
    ) -> Result<RunOutcome, AccMoSError> {
        let mut record = RunRecord::new("run", &model.name);
        record.steps = steps;
        record.lanes = self.codegen.effective_lanes() as u64;
        let prepare_start = self.tracer.as_ref().map(|t| t.now_us());
        let sim = match self.prepare(model) {
            Ok(sim) => sim,
            // Backend trouble (compiler missing, compile failed, build dir
            // unwritable) degrades to the interpreter; model errors do not
            // — the interpreter needs a valid, schedulable model too.
            Err(AccMoSError::Backend(e)) => {
                return self.run_fallback(model, steps, tests, opts, e.to_string(), record);
            }
            Err(e) => return Err(e),
        };
        record.phases = sim.phase_micros();
        record.compile_cached = sim.cache_hit();
        if let (Some(t), Some(start)) = (&self.tracer, prepare_start) {
            t.span("pipeline", "prepare", start, t.now_us().saturating_sub(start), 1);
            // The phase breakdown was measured as durations; lay it end to
            // end inside the prepare span (attribution view, same
            // convention as the per-actor profile leaves).
            let p = &record.phases;
            let mut at = start;
            for (name, us) in [
                ("parse", p.parse_us),
                ("preprocess", p.preprocess_us),
                ("analyze", p.analyze_us),
                ("codegen", p.codegen_us),
                ("compile", p.compile_us),
            ] {
                if us > 0 {
                    t.span("pipeline", name, at, us, 1);
                    at += us;
                }
            }
        }
        let supervisor = self.supervisor();
        let backoff_before = supervisor.retry_stats().backoff_sleep;
        let run_span_start = self.tracer.as_ref().map(|t| t.now_us());
        let run_start = std::time::Instant::now();
        let outcome = match sim.run_supervised(steps, tests, opts, &supervisor) {
            Ok(run) => {
                record.phases.run_us = telemetry::micros(run_start.elapsed());
                record.phases.backoff_us = telemetry::micros(
                    supervisor.retry_stats().backoff_sleep.saturating_sub(backoff_before),
                );
                record.engine = run.report.engine.clone();
                record.retries = u64::from(run.retries);
                record.peak_rss_kb = run.peak_rss_kb;
                record.prof = telemetry::encode_profile(&run.report.profile);
                record.outcome = telemetry::outcome::OK.into();
                if let (Some(t), Some(start)) = (&self.tracer, run_span_start) {
                    t.span("pipeline", "run", start, t.now_us().saturating_sub(start), 1);
                    t.record_profile(start, 1, &run.report.profile);
                }
                self.record(&record);
                Ok(RunOutcome {
                    report: run.report,
                    retries: run.retries,
                    fallback_reason: None,
                    peak_rss_kb: run.peak_rss_kb,
                })
            }
            Err(e) => {
                record.phases.run_us = telemetry::micros(run_start.elapsed());
                record.phases.backoff_us = telemetry::micros(
                    supervisor.retry_stats().backoff_sleep.saturating_sub(backoff_before),
                );
                if let (Some(t), Some(start)) = (&self.tracer, run_span_start) {
                    t.span("pipeline", "run", start, t.now_us().saturating_sub(start), 1);
                }
                if supervisor.is_quarantined(sim.simulator().exe()) {
                    let reason = e.to_string();
                    sim.clean();
                    return self.run_fallback(model, steps, tests, opts, reason, record);
                }
                record.outcome = telemetry::outcome::FAILED.into();
                record.note = e.to_string();
                self.record(&record);
                Err(e)
            }
        };
        sim.clean();
        outcome
    }

    /// Interpretive fallback for [`AccMoS::run`]. `record` carries the
    /// phase spans accumulated before the degradation (compile time of the
    /// failed artifact, run time burnt on the quarantined binary, ...).
    fn run_fallback(
        &self,
        model: &Model,
        steps: u64,
        tests: &TestVectors,
        opts: &RunOptions,
        reason: String,
        mut record: RunRecord,
    ) -> Result<RunOutcome, AccMoSError> {
        let pre = preprocess(model)?;
        let run_start = std::time::Instant::now();
        let report = interp_lane_run(&pre, tests, opts, steps);
        record.phases.run_us =
            record.phases.run_us.saturating_add(telemetry::micros(run_start.elapsed()));
        record.engine = report.engine.clone();
        record.outcome = telemetry::outcome::DEGRADED.into();
        record.note = reason.clone();
        self.record(&record);
        Ok(RunOutcome { report, retries: 0, fallback_reason: Some(reason), peak_rss_kb: 0 })
    }
}

/// Run the interpretive [`NormalEngine`] over the full lane stimulus set
/// (the primary `tests` plus [`RunOptions::lane_tests`]) and aggregate the
/// per-lane reports the way a lane-parallel compiled simulator does:
/// coverage bitmaps OR-reduced and re-summarized, the top-level digest an
/// FNV fold of the lane digests, diagnostics merged across lanes, final
/// outputs mirroring lane 0. Scalar runs (no `lane_tests`) go straight to
/// [`Engine::run`], byte-identical to the pre-lane behaviour.
///
/// One semantic difference from the compiled path is inherent to running
/// lanes sequentially: with [`RunOptions::stop_on_diagnostic`] each
/// interpreted lane stops on *its own* first diagnostic, while the fused
/// simulator stops every lane on *any* lane's diagnostic.
pub(crate) fn interp_lane_run(
    pre: &PreprocessedModel,
    tests: &TestVectors,
    opts: &RunOptions,
    steps: u64,
) -> SimulationReport {
    let engine = NormalEngine::new();
    let sim_opts = interp_options(steps, opts);
    if opts.lane_tests.is_empty() {
        return engine.run(pre, tests, &sim_opts);
    }
    let wall_start = std::time::Instant::now();
    let mut lanes = Vec::with_capacity(1 + opts.lane_tests.len());
    let mut union: Option<accmos_ir::CoverageBitmaps> = None;
    let mut digest = accmos_ir::OutputDigest::new();
    for lane_tests in std::iter::once(tests).chain(opts.lane_tests.iter()) {
        let (lane, bitmaps) = engine.run_with_bitmaps(pre, lane_tests, &sim_opts);
        match &mut union {
            Some(u) => u.merge(&bitmaps),
            None => union = Some(bitmaps),
        }
        digest.write_u64(lane.output_digest);
        lanes.push(lane);
    }
    let mut report = SimulationReport::new(lanes[0].model.clone(), lanes[0].engine.clone());
    report.steps = lanes.iter().map(|l| l.steps).max().unwrap_or(0);
    report.wall = wall_start.elapsed();
    report.output_digest = digest.finish();
    if lanes[0].coverage.is_some() {
        report.coverage = union.map(|u| pre.coverage.map.summarize(&u));
    }
    report.attach_lanes(lanes);
    report
}

/// Map compiled-path [`RunOptions`] onto the interpretive engine's
/// [`SimOptions`] (used by every interpreter-fallback path).
pub(crate) fn interp_options(steps: u64, opts: &RunOptions) -> SimOptions {
    let mut o = SimOptions::steps(steps);
    if opts.stop_on_diagnostic {
        o = o.stopping_on_diagnostic();
    }
    if let Some(budget) = opts.time_budget {
        o = o.with_budget(budget);
    }
    o
}

/// The result of a degradable end-to-end run ([`AccMoS::run`]).
#[derive(Debug)]
pub struct RunOutcome {
    /// The simulation report — from the compiled simulator, or from the
    /// interpretive fallback when degraded.
    pub report: SimulationReport,
    /// Retries the supervised run consumed (0 on the fallback path).
    pub retries: u32,
    /// Why the run degraded to the interpreter (`None` = compiled path).
    pub fallback_reason: Option<String>,
    /// Peak resident set size of the simulator child in KiB (`VmHWM`;
    /// 0 = not measured, including on the interpretive fallback path).
    pub peak_rss_kb: u64,
}

impl RunOutcome {
    /// Whether this result came from the interpretive fallback rather than
    /// the compiled simulator.
    pub fn degraded(&self) -> bool {
        self.fallback_reason.is_some()
    }
}

impl Default for AccMoS {
    fn default() -> Self {
        AccMoS::new()
    }
}

/// A compiled, ready-to-run AccMoS simulation.
#[derive(Debug)]
pub struct PreparedSimulation {
    pre: PreprocessedModel,
    sim: CompiledSimulator,
    parse_time: Duration,
    preprocess_time: Duration,
    codegen_time: Duration,
}

impl PreparedSimulation {
    /// Assemble from already-computed parts (the batch runner compiles
    /// each unique program once and shares the result across jobs).
    pub(crate) fn from_parts(
        pre: PreprocessedModel,
        sim: CompiledSimulator,
        preprocess_time: Duration,
        codegen_time: Duration,
    ) -> PreparedSimulation {
        PreparedSimulation { pre, sim, parse_time: Duration::ZERO, preprocess_time, codegen_time }
    }

    /// Whether the executable came out of the [`BuildCache`] without a
    /// compiler invocation.
    pub fn cache_hit(&self) -> bool {
        self.sim.cache_hit()
    }

    /// Run the compiled simulator.
    ///
    /// # Errors
    ///
    /// Propagates execution and protocol failures.
    pub fn run(
        &self,
        steps: u64,
        tests: &TestVectors,
        opts: &RunOptions,
    ) -> Result<SimulationReport, AccMoSError> {
        Ok(self.sim.run(steps, tests, opts)?)
    }

    /// Run the compiled simulator under `supervisor`: hard kill timeout,
    /// bounded retries, classified failures, quarantine.
    ///
    /// # Errors
    ///
    /// Propagates [`BackendError::Supervised`] /
    /// [`BackendError::Quarantined`] wrapped in [`AccMoSError::Backend`].
    pub fn run_supervised(
        &self,
        steps: u64,
        tests: &TestVectors,
        opts: &RunOptions,
        supervisor: &Supervisor,
    ) -> Result<SupervisedRun, AccMoSError> {
        Ok(self.sim.run_supervised(steps, tests, opts, supervisor)?)
    }

    /// The preprocessed model (execution order, coverage points, ...).
    pub fn preprocessed(&self) -> &PreprocessedModel {
        &self.pre
    }

    /// The generated program (for inspection of the emitted C).
    pub fn program(&self) -> &GeneratedProgram {
        self.sim.program()
    }

    /// The underlying compiled simulator.
    pub fn simulator(&self) -> &CompiledSimulator {
        &self.sim
    }

    /// Time spent parsing the MDLX source (zero for in-memory models).
    pub fn parse_time(&self) -> Duration {
        self.parse_time
    }

    /// Time spent flattening, type-checking and scheduling the model.
    pub fn preprocess_time(&self) -> Duration {
        self.preprocess_time
    }

    /// Time spent in code generation (including the proven-safe interval
    /// analysis, reported separately by
    /// [`GeneratedProgram::analyze_time`]).
    pub fn codegen_time(&self) -> Duration {
        self.codegen_time
    }

    /// This simulation's phase spans in ledger form (run/backoff spans
    /// unset — the caller fills them in after the run).
    pub fn phase_micros(&self) -> PhaseMicros {
        let analyze = self.program().analyze_time;
        PhaseMicros {
            parse_us: telemetry::micros(self.parse_time),
            preprocess_us: telemetry::micros(self.preprocess_time),
            analyze_us: telemetry::micros(analyze),
            codegen_us: telemetry::micros(self.codegen_time.saturating_sub(analyze)),
            compile_us: telemetry::micros(self.sim.compile_time()),
            run_us: 0,
            backoff_us: 0,
        }
    }

    /// Time spent in the C compiler.
    pub fn compile_time(&self) -> Duration {
        self.sim.compile_time()
    }

    /// Remove the build directory.
    pub fn clean(&self) {
        self.sim.clean();
    }
}

/// Run one of the interpretive SSE stand-ins on a model.
///
/// Convenience for the comparison harness: `engine` is `"sse"` or
/// `"sse-ac"`.
///
/// # Errors
///
/// Returns preprocessing errors.
pub fn run_reference_engine(
    engine: &str,
    model: &Model,
    tests: &TestVectors,
    opts: &SimOptions,
) -> Result<SimulationReport, AccMoSError> {
    let pre = preprocess(model)?;
    let report = match engine {
        "sse-ac" => AcceleratorEngine::new().run(&pre, tests, opts),
        _ => NormalEngine::new().run(&pre, tests, opts),
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar};

    fn small_model() -> Model {
        let mut b = ModelBuilder::new("Tiny");
        b.inport("In", DataType::I32);
        b.actor("Twice", ActorKind::Gain { gain: Scalar::I32(2) });
        b.outport("Out", DataType::I32);
        b.wire("In", "Twice");
        b.wire("Twice", "Out");
        b.build().unwrap()
    }

    #[test]
    fn generate_without_compiling() {
        let program = AccMoS::new().generate(&small_model()).unwrap();
        assert!(program.main_c.contains("Model_Exe"));
    }

    #[test]
    fn pipeline_end_to_end() {
        let sim = AccMoS::new().prepare(&small_model()).unwrap();
        let tests = TestVectors::constant("In", Scalar::I32(21), 1);
        let report = sim.run(5, &tests, &RunOptions::default()).unwrap();
        assert_eq!(report.final_outputs[0].1.to_string(), "42");
        assert!(sim.compile_time() > Duration::ZERO);
        sim.clean();
    }

    #[test]
    fn mdlx_pipeline() {
        let doc = r#"<Model name="M"><System kind="plain">
            <Block name="In" type="Inport" index="0" dtype="int32"/>
            <Block name="Out" type="Outport" index="0" dtype="int32"/>
            <Line src="In:0" dst="Out:0"/>
        </System></Model>"#;
        let sim = AccMoS::new().prepare_mdlx(doc).unwrap();
        let tests = TestVectors::constant("In", Scalar::I32(9), 1);
        let r = sim.run(3, &tests, &RunOptions::default()).unwrap();
        assert_eq!(r.final_outputs[0].1.to_string(), "9");
        sim.clean();
    }

    #[test]
    fn error_types_chain() {
        let err = AccMoS::new().prepare_mdlx("<oops").unwrap_err();
        assert!(matches!(err, AccMoSError::Mdlx(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn run_healthy_path_is_not_degraded() {
        let tests = TestVectors::constant("In", Scalar::I32(21), 1);
        let out = AccMoS::new().run(&small_model(), 5, &tests, &RunOptions::default()).unwrap();
        assert!(!out.degraded());
        assert_eq!(out.retries, 0);
        assert_eq!(out.report.final_outputs[0].1.to_string(), "42");
    }

    #[test]
    fn run_degrades_to_interpreter_when_compile_fails() {
        // A *file* where the build dir should be makes every compile fail
        // with a backend error — the degradable path, not a model error.
        let blocker =
            std::env::temp_dir().join(format!("accmos-run-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let pipeline = AccMoS::new().without_cache().with_work_dir(&blocker);
        let tests = TestVectors::constant("In", Scalar::I32(21), 1);
        let out = pipeline.run(&small_model(), 5, &tests, &RunOptions::default()).unwrap();
        assert!(out.degraded(), "compile failure must degrade, not error");
        assert!(out.fallback_reason.is_some());
        assert_eq!(out.report.final_outputs[0].1.to_string(), "42");
        std::fs::remove_file(&blocker).unwrap();
    }

    #[test]
    fn reference_engines_run() {
        let model = small_model();
        let tests = TestVectors::constant("In", Scalar::I32(3), 1);
        let sse = run_reference_engine("sse", &model, &tests, &SimOptions::steps(2)).unwrap();
        let ac = run_reference_engine("sse-ac", &model, &tests, &SimOptions::steps(2)).unwrap();
        assert_eq!(sse.output_digest, ac.output_digest);
        assert_eq!(sse.engine, "sse");
        assert_eq!(ac.engine, "sse-ac");
    }
}
