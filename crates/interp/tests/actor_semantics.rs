//! Per-actor semantics tests: one focused check for every template in the
//! library that the main engine tests do not already pin down.

use accmos_graph::preprocess;
use accmos_interp::semantics::{lcg_next, lcg_to_unit_f64};
use accmos_interp::{Engine as _, NormalEngine, SimOptions};
use accmos_ir::{
    Actor, ActorKind, BitOp, DataType, LookupMethod, MathOp, MinMaxOp, Model, ModelBuilder,
    RelOp, RoundOp, Scalar, ShiftDir, TestVectors, TrigOp, Value,
};

/// Build a model with one actor under test: inports feed its ports in
/// order, its (monitored) output feeds an outport.
fn single(kind: ActorKind, dtype: Option<DataType>, in_types: &[DataType]) -> Model {
    let mut b = ModelBuilder::new("T");
    for (i, dt) in in_types.iter().enumerate() {
        b.inport(&format!("In{i}"), *dt);
    }
    let mut actor = Actor::new(kind).monitored();
    actor.dtype = dtype;
    b.actor("X", actor);
    for i in 0..in_types.len() {
        b.connect((format!("In{i}").as_str(), 0), ("X", i));
    }
    b.outport("Out", dtype.unwrap_or(DataType::F64));
    b.wire("X", "Out");
    b.build().unwrap()
}

/// Run `steps` steps and return the monitored per-step outputs of `X`.
fn trace(model: &Model, tests: &TestVectors, steps: u64) -> Vec<Value> {
    let pre = preprocess(model).unwrap();
    let report = NormalEngine::new().run(&pre, tests, &SimOptions::steps(steps));
    report
        .signal_log
        .iter()
        .filter(|s| s.path == "T_X_out")
        .map(|s| s.value.clone())
        .collect()
}

fn i32s(values: &[i32]) -> Vec<Scalar> {
    values.iter().map(|v| Scalar::I32(*v)).collect()
}

fn f64s(values: &[f64]) -> Vec<Scalar> {
    values.iter().map(|v| Scalar::F64(*v)).collect()
}

fn col(name: &str, dt: DataType, values: Vec<Scalar>) -> TestVectors {
    let mut tv = TestVectors::new();
    tv.push_column(name, dt, values);
    tv
}

fn scalar_i32(v: &Value) -> i32 {
    match v.as_scalar().unwrap() {
        Scalar::I32(x) => x,
        other => panic!("expected i32, got {other:?}"),
    }
}

fn scalar_f64(v: &Value) -> f64 {
    match v.as_scalar().unwrap() {
        Scalar::F64(x) => x,
        other => panic!("expected f64, got {other:?}"),
    }
}

#[test]
fn step_source_switches_at_time() {
    let model = single(
        ActorKind::Step { time: 2, before: Scalar::I32(-1), after: Scalar::I32(7) },
        Some(DataType::I32),
        &[],
    );
    let out = trace(&model, &TestVectors::new(), 4);
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![-1, -1, 7, 7]);
}

#[test]
fn ramp_source_rises_from_start() {
    let model = single(
        ActorKind::Ramp { slope: 2.0, start: 1, initial: 10.0 },
        Some(DataType::F64),
        &[],
    );
    let out = trace(&model, &TestVectors::new(), 4);
    assert_eq!(out.iter().map(scalar_f64).collect::<Vec<_>>(), vec![10.0, 10.0, 12.0, 14.0]);
}

#[test]
fn sine_wave_matches_formula() {
    let model = single(
        ActorKind::SineWave { amplitude: 3.0, freq: 0.5, phase: 0.25, bias: 1.0 },
        Some(DataType::F64),
        &[],
    );
    let out = trace(&model, &TestVectors::new(), 3);
    for (t, v) in out.iter().enumerate() {
        let expect = 3.0 * (0.5 * t as f64 + 0.25).sin() + 1.0;
        assert_eq!(scalar_f64(v), expect, "step {t}");
    }
}

#[test]
fn pulse_generator_duty_cycle() {
    let model = single(
        ActorKind::PulseGenerator { period: 3, duty: 1, amplitude: Scalar::I32(5) },
        Some(DataType::I32),
        &[],
    );
    let out = trace(&model, &TestVectors::new(), 6);
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![5, 0, 0, 5, 0, 0]);
}

#[test]
fn clock_and_counter() {
    let clock = single(ActorKind::Clock, Some(DataType::I32), &[]);
    let out = trace(&clock, &TestVectors::new(), 3);
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![0, 1, 2]);

    let counter = single(ActorKind::Counter { limit: 1 }, Some(DataType::I32), &[]);
    let out = trace(&counter, &TestVectors::new(), 5);
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![0, 1, 0, 1, 0]);
}

#[test]
fn random_number_matches_shared_lcg() {
    let model = single(ActorKind::RandomNumber { seed: 99 }, Some(DataType::F64), &[]);
    let out = trace(&model, &TestVectors::new(), 3);
    let mut state = 99u64;
    for v in out {
        let expect = lcg_to_unit_f64(lcg_next(&mut state));
        assert_eq!(scalar_f64(&v), expect);
    }
}

#[test]
fn bias_and_sign() {
    let model = single(ActorKind::Bias { bias: Scalar::I32(-3) }, Some(DataType::I32), &[DataType::I32]);
    let out = trace(&model, &col("In0", DataType::I32, i32s(&[10])), 1);
    assert_eq!(scalar_i32(&out[0]), 7);

    let model = single(ActorKind::Sign, Some(DataType::I32), &[DataType::I32]);
    let tests = col("In0", DataType::I32, i32s(&[-9, 0, 4]));
    let out = trace(&model, &tests, 3);
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![-1, 0, 1]);
}

#[test]
fn math_functions_evaluate_in_f64() {
    let cases: Vec<(MathOp, f64, f64)> = vec![
        (MathOp::Exp, 1.0, 1f64.exp()),
        (MathOp::Log, std::f64::consts::E, 1.0),
        (MathOp::Log10, 100.0, 2.0),
        (MathOp::Pow10, 2.0, 100.0),
        (MathOp::Reciprocal, 4.0, 0.25),
    ];
    for (op, input, expect) in cases {
        let model = single(ActorKind::Math { op }, Some(DataType::F64), &[DataType::F64]);
        let out = trace(&model, &col("In0", DataType::F64, f64s(&[input])), 1);
        assert!((scalar_f64(&out[0]) - expect).abs() < 1e-12, "{op:?}");
    }
}

#[test]
fn integer_mod_follows_divisor_sign() {
    let model = single(
        ActorKind::Math { op: MathOp::Mod },
        Some(DataType::I32),
        &[DataType::I32, DataType::I32],
    );
    let mut tv = TestVectors::new();
    tv.push_column("In0", DataType::I32, i32s(&[7, -7, 7, -7]));
    tv.push_column("In1", DataType::I32, i32s(&[3, 3, -3, -3]));
    let out = trace(&model, &tv, 4);
    // MATLAB mod: sign of divisor.
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![1, 2, -2, -1]);
}

#[test]
fn integer_rem_follows_dividend_sign() {
    let model = single(
        ActorKind::Math { op: MathOp::Rem },
        Some(DataType::I32),
        &[DataType::I32, DataType::I32],
    );
    let mut tv = TestVectors::new();
    tv.push_column("In0", DataType::I32, i32s(&[7, -7]));
    tv.push_column("In1", DataType::I32, i32s(&[3, 3]));
    let out = trace(&model, &tv, 2);
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![1, -1]);
}

#[test]
fn trig_atan2_two_inputs() {
    let model = single(
        ActorKind::Trig { op: TrigOp::Atan2 },
        Some(DataType::F64),
        &[DataType::F64, DataType::F64],
    );
    let mut tv = TestVectors::new();
    tv.push_column("In0", DataType::F64, f64s(&[1.0]));
    tv.push_column("In1", DataType::F64, f64s(&[1.0]));
    let out = trace(&model, &tv, 1);
    assert_eq!(scalar_f64(&out[0]), 1f64.atan2(1.0));
}

#[test]
fn minmax_selects_extremes() {
    let model = single(
        ActorKind::MinMax { op: MinMaxOp::Max, inputs: 3 },
        Some(DataType::I32),
        &[DataType::I32, DataType::I32, DataType::I32],
    );
    let mut tv = TestVectors::new();
    tv.push_column("In0", DataType::I32, i32s(&[3]));
    tv.push_column("In1", DataType::I32, i32s(&[-5]));
    tv.push_column("In2", DataType::I32, i32s(&[1]));
    let out = trace(&model, &tv, 1);
    assert_eq!(scalar_i32(&out[0]), 3);
}

#[test]
fn rounding_modes() {
    for (op, expect) in [
        (RoundOp::Floor, -3.0),
        (RoundOp::Ceil, -2.0),
        (RoundOp::Round, -3.0),
        (RoundOp::Fix, -2.0),
    ] {
        let model = single(ActorKind::Rounding { op }, Some(DataType::F64), &[DataType::F64]);
        let out = trace(&model, &col("In0", DataType::F64, f64s(&[-2.5])), 1);
        assert_eq!(scalar_f64(&out[0]), expect, "{op:?}");
    }
}

#[test]
fn polynomial_horner() {
    // p(x) = 2x^2 - x + 3 at x = 4 -> 31.
    let model = single(
        ActorKind::Polynomial { coeffs: vec![2.0, -1.0, 3.0] },
        Some(DataType::F64),
        &[DataType::F64],
    );
    let out = trace(&model, &col("In0", DataType::F64, f64s(&[4.0])), 1);
    assert_eq!(scalar_f64(&out[0]), 31.0);
}

#[test]
fn elements_fold_sum_and_product() {
    let mut b = ModelBuilder::new("T");
    b.actor(
        "V",
        ActorKind::Constant {
            value: Value::vector(vec![Scalar::I32(2), Scalar::I32(3), Scalar::I32(4)]),
        },
    );
    b.actor("S", Actor::new(ActorKind::SumOfElements).monitored());
    b.actor("P", Actor::new(ActorKind::ProductOfElements).monitored());
    b.outport("Out", DataType::I32);
    b.wire("V", "S");
    b.wire("V", "P");
    b.wire("S", "Out");
    let model = b.build().unwrap();
    let pre = preprocess(&model).unwrap();
    let report = NormalEngine::new().run(&pre, &TestVectors::new(), &SimOptions::steps(1));
    let get = |path: &str| {
        report.signal_log.iter().find(|s| s.path == path).unwrap().value.clone()
    };
    assert_eq!(get("T_S_out"), Value::scalar(Scalar::I32(9)));
    assert_eq!(get("T_P_out"), Value::scalar(Scalar::I32(24)));
}

#[test]
fn compare_to_constant_and_bitwise_and_shift() {
    let model = single(
        ActorKind::CompareToConstant { op: RelOp::Le, constant: Scalar::I32(2) },
        None,
        &[DataType::I32],
    );
    let out = trace(&model, &col("In0", DataType::I32, i32s(&[2, 3])), 2);
    assert_eq!(out[0], Value::scalar(Scalar::Bool(true)));
    assert_eq!(out[1], Value::scalar(Scalar::Bool(false)));

    let model = single(
        ActorKind::Bitwise { op: BitOp::Xor },
        Some(DataType::U8),
        &[DataType::U8, DataType::U8],
    );
    let mut tv = TestVectors::new();
    tv.push_column("In0", DataType::U8, vec![Scalar::U8(0b1100)]);
    tv.push_column("In1", DataType::U8, vec![Scalar::U8(0b1010)]);
    let out = trace(&model, &tv, 1);
    assert_eq!(out[0], Value::scalar(Scalar::U8(0b0110)));

    let model = single(
        ActorKind::Shift { dir: ShiftDir::Left, amount: 3 },
        Some(DataType::I8),
        &[DataType::I8],
    );
    let out = trace(&model, &col("In0", DataType::I8, vec![Scalar::I8(0x21)]), 1);
    assert_eq!(out[0], Value::scalar(Scalar::I8(0x21i8.wrapping_shl(3))));
}

#[test]
fn multiport_switch_clamps_out_of_range_selector() {
    let mut b = ModelBuilder::new("T");
    b.inport("Sel", DataType::I32);
    b.constant("C1", Scalar::I32(11));
    b.constant("C2", Scalar::I32(22));
    b.actor("X", Actor::new(ActorKind::MultiportSwitch { cases: 2 }).monitored());
    b.outport("Out", DataType::I32);
    b.connect(("Sel", 0), ("X", 0));
    b.connect(("C1", 0), ("X", 1));
    b.connect(("C2", 0), ("X", 2));
    b.wire("X", "Out");
    let model = b.build().unwrap();
    let tests = col("Sel", DataType::I32, i32s(&[1, 2, 0, 9]));
    let out = trace(&model, &tests, 4);
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![11, 22, 11, 22]);
}

#[test]
fn dead_zone_offsets_outside_band() {
    let model = single(
        ActorKind::DeadZone { start: -1.0, end: 1.0 },
        Some(DataType::F64),
        &[DataType::F64],
    );
    let tests = col("In0", DataType::F64, f64s(&[-3.0, 0.5, 4.0]));
    let out = trace(&model, &tests, 3);
    assert_eq!(out.iter().map(scalar_f64).collect::<Vec<_>>(), vec![-2.0, 0.0, 3.0]);
}

#[test]
fn rate_limiter_limits_slew() {
    let model = single(
        ActorKind::RateLimiter { rising: 2.0, falling: -2.0 },
        Some(DataType::F64),
        &[DataType::F64],
    );
    let tests = col("In0", DataType::F64, f64s(&[10.0, 10.0, -10.0]));
    let out = trace(&model, &tests, 3);
    assert_eq!(out.iter().map(scalar_f64).collect::<Vec<_>>(), vec![2.0, 4.0, 2.0]);
}

#[test]
fn quantizer_rounds_to_interval() {
    let model = single(
        ActorKind::Quantizer { interval: 0.5 },
        Some(DataType::F64),
        &[DataType::F64],
    );
    let tests = col("In0", DataType::F64, f64s(&[1.2, 1.3]));
    let out = trace(&model, &tests, 2);
    assert_eq!(out.iter().map(scalar_f64).collect::<Vec<_>>(), vec![1.0, 1.5]);
}

#[test]
fn relay_hysteresis() {
    let model = single(
        ActorKind::Relay { on_threshold: 5.0, off_threshold: 2.0, on_value: 1.0, off_value: 0.0 },
        Some(DataType::F64),
        &[DataType::F64],
    );
    let tests = col("In0", DataType::F64, f64s(&[6.0, 3.0, 1.0, 3.0]));
    let out = trace(&model, &tests, 4);
    // on at 6; stays on at 3 (hysteresis); off at 1; stays off at 3.
    assert_eq!(out.iter().map(scalar_f64).collect::<Vec<_>>(), vec![1.0, 1.0, 0.0, 0.0]);
}

#[test]
fn memory_and_zero_order_hold() {
    let model = single(
        ActorKind::Memory { init: Scalar::I32(42) },
        Some(DataType::I32),
        &[DataType::I32],
    );
    let tests = col("In0", DataType::I32, i32s(&[1, 2, 3]));
    let out = trace(&model, &tests, 3);
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![42, 1, 2]);

    let model = single(
        ActorKind::ZeroOrderHold { sample: 2 },
        Some(DataType::I32),
        &[DataType::I32],
    );
    let tests = col("In0", DataType::I32, i32s(&[10, 20, 30, 40]));
    let out = trace(&model, &tests, 4);
    assert_eq!(out.iter().map(scalar_i32).collect::<Vec<_>>(), vec![10, 10, 30, 30]);
}

#[test]
fn edge_detector_rising_and_falling() {
    let model = single(
        ActorKind::EdgeDetector { rising: true, falling: true },
        None,
        &[DataType::Bool],
    );
    let tests = col(
        "In0",
        DataType::Bool,
        vec![Scalar::Bool(true), Scalar::Bool(true), Scalar::Bool(false), Scalar::Bool(true)],
    );
    let out = trace(&model, &tests, 4);
    let bools: Vec<bool> =
        out.iter().map(|v| v.as_scalar().unwrap().as_bool()).collect();
    assert_eq!(bools, vec![true, false, true, true]);
}

#[test]
fn demux_and_static_selector() {
    let mut b = ModelBuilder::new("T");
    b.actor(
        "V",
        ActorKind::Constant {
            value: Value::vector(vec![
                Scalar::I32(1),
                Scalar::I32(2),
                Scalar::I32(3),
                Scalar::I32(4),
            ]),
        },
    );
    b.actor("D", Actor::new(ActorKind::Demux { outputs: 2 }));
    b.actor("Sel", Actor::new(ActorKind::Selector { indices: vec![3, 0], dynamic: false }).monitored());
    b.outport("Lo", DataType::I32);
    b.outport("Hi", DataType::I32);
    b.wire("V", "D");
    b.wire("V", "Sel");
    b.connect(("D", 0), ("Lo", 0));
    b.connect(("D", 1), ("Hi", 0));
    let model = b.build().unwrap();
    let pre = preprocess(&model).unwrap();
    let report = NormalEngine::new().run(&pre, &TestVectors::new(), &SimOptions::steps(1));
    assert_eq!(report.final_outputs[0].1, Value::vector(vec![Scalar::I32(1), Scalar::I32(2)]));
    assert_eq!(report.final_outputs[1].1, Value::vector(vec![Scalar::I32(3), Scalar::I32(4)]));
    let sel = report.signal_log.iter().find(|s| s.path == "T_Sel_out").unwrap();
    assert_eq!(sel.value, Value::vector(vec![Scalar::I32(4), Scalar::I32(1)]));
}

#[test]
fn lookup_1d_methods() {
    let bps = vec![0.0, 10.0];
    let tab = vec![0.0, 100.0];
    for (method, input, expect) in [
        (LookupMethod::Interpolate, 2.5, 25.0),
        (LookupMethod::Nearest, 2.5, 0.0),
        (LookupMethod::Nearest, 7.5, 100.0),
        (LookupMethod::Below, 9.9, 0.0),
        (LookupMethod::Interpolate, -5.0, 0.0),  // clipped
        (LookupMethod::Interpolate, 50.0, 100.0), // clipped
    ] {
        let model = single(
            ActorKind::Lookup1D { breakpoints: bps.clone(), table: tab.clone(), method },
            Some(DataType::F64),
            &[DataType::F64],
        );
        let out = trace(&model, &col("In0", DataType::F64, f64s(&[input])), 1);
        assert_eq!(scalar_f64(&out[0]), expect, "{method:?} at {input}");
    }
}

#[test]
fn lookup_2d_bilinear() {
    let model = single(
        ActorKind::Lookup2D {
            row_bps: vec![0.0, 1.0],
            col_bps: vec![0.0, 1.0],
            table: vec![0.0, 10.0, 20.0, 30.0],
            method: LookupMethod::Interpolate,
        },
        Some(DataType::F64),
        &[DataType::F64, DataType::F64],
    );
    let mut tv = TestVectors::new();
    tv.push_column("In0", DataType::F64, f64s(&[0.5]));
    tv.push_column("In1", DataType::F64, f64s(&[0.5]));
    let out = trace(&model, &tv, 1);
    assert_eq!(scalar_f64(&out[0]), 15.0);
}

#[test]
fn data_type_conversion_saturates_floats() {
    let model = single(
        ActorKind::DataTypeConversion { to: DataType::I8 },
        None,
        &[DataType::F64],
    );
    let tests = col("In0", DataType::F64, f64s(&[300.0, -300.0, 3.7]));
    let out = trace(&model, &tests, 3);
    let vals: Vec<i8> = out
        .iter()
        .map(|v| match v.as_scalar().unwrap() {
            Scalar::I8(x) => x,
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(vals, vec![i8::MAX, i8::MIN, 3]);
}

#[test]
fn ground_emits_zero() {
    let model = single(ActorKind::Ground, Some(DataType::U16), &[]);
    let out = trace(&model, &TestVectors::new(), 1);
    assert_eq!(out[0], Value::scalar(Scalar::U16(0)));
}
