//! Simulation options and the engine abstraction.

use accmos_graph::PreprocessedModel;
use accmos_ir::{DiagnosticPolicy, SimulationReport, TestVectors};
use std::time::Duration;

/// Options controlling one simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Number of simulation steps (`TOTAL_STEP` in the paper's Figure 5).
    pub steps: u64,
    /// Optional wall-clock budget; the run stops early when exceeded
    /// (used by the Table 3 equal-time coverage experiment).
    pub time_budget: Option<Duration>,
    /// Which runtime diagnostics to perform.
    pub policy: DiagnosticPolicy,
    /// Whether to collect the four coverage metrics.
    pub coverage: bool,
    /// Maximum number of monitored-signal samples to retain.
    pub signal_log_limit: usize,
    /// Stop at the end of the first step that produced any diagnostic
    /// (time-to-first-error experiments).
    pub stop_on_diagnostic: bool,
}

impl SimOptions {
    /// Run `steps` steps with full diagnostics and coverage (SSE normal
    /// mode defaults).
    pub fn steps(steps: u64) -> SimOptions {
        SimOptions { steps, ..SimOptions::default() }
    }

    /// Builder-style: set a wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> SimOptions {
        self.time_budget = Some(budget);
        self
    }

    /// Builder-style: stop on the first diagnostic.
    pub fn stopping_on_diagnostic(mut self) -> SimOptions {
        self.stop_on_diagnostic = true;
        self
    }

    /// Builder-style: set the diagnostic policy.
    pub fn with_policy(mut self, policy: DiagnosticPolicy) -> SimOptions {
        self.policy = policy;
        self
    }
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            steps: 1,
            time_budget: None,
            policy: DiagnosticPolicy::all(),
            coverage: true,
            signal_log_limit: 4096,
            stop_on_diagnostic: false,
        }
    }
}

/// A simulation engine: anything that can run a preprocessed model against
/// test vectors and produce a [`SimulationReport`].
///
/// Implementations in this workspace:
///
/// - [`crate::NormalEngine`] — the SSE stand-in (interpretive, full
///   diagnostics and coverage);
/// - [`crate::AcceleratorEngine`] — the SSE Accelerator stand-in
///   (pre-flattened interpretive tape, no diagnostics/coverage, per-step
///   host synchronization);
/// - `accmos_backend::CompiledSimulator` — generated C, the AccMoS path
///   (and, uninstrumented at `-O0` with host exchange, the SSE Rapid
///   Accelerator stand-in).
pub trait Engine {
    /// Engine name used in reports (`sse`, `sse-ac`, ...).
    fn name(&self) -> &'static str;

    /// Run the simulation.
    fn run(
        &self,
        pre: &PreprocessedModel,
        tests: &TestVectors,
        opts: &SimOptions,
    ) -> SimulationReport;
}
