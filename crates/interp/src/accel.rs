//! The SSE Accelerator-mode stand-in.
//!
//! Accelerator mode compiles the model *"into an intermediate MEX file"*
//! but *"still relies on interpretive execution for simulations"* and pays
//! for *"frequent synchronization with Simulink and data transfer"*
//! (paper §2/§4). This engine models exactly that: the schedule is
//! pre-flattened once (no per-step schedule walk, no diagnostics, no
//! coverage, no signal monitor), execution remains interpretive over boxed
//! values, and every step ends with a full synchronization of all signal
//! values into a host-side mirror.

use crate::normal::RunBook;
use crate::options::{Engine, SimOptions};
use crate::semantics::{eval_actor, widen, RuntimeState};
use accmos_graph::PreprocessedModel;
use accmos_ir::{OutputDigest, SimulationReport, TestVectors, Value};
use std::time::Instant;

/// The SSE Accelerator (`SSE_ac`) stand-in engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceleratorEngine;

impl AcceleratorEngine {
    /// A new engine.
    pub fn new() -> AcceleratorEngine {
        AcceleratorEngine
    }
}

impl Engine for AcceleratorEngine {
    fn name(&self) -> &'static str {
        "sse-ac"
    }

    fn run(
        &self,
        pre: &PreprocessedModel,
        tests: &TestVectors,
        opts: &SimOptions,
    ) -> SimulationReport {
        let flat = &pre.flat;
        let book = RunBook::new(flat);
        let mut rt = RuntimeState::new(flat);
        let mut digest = OutputDigest::new();
        let mut finals: Vec<(String, Value)> = Vec::new();
        // The host-side mirror every signal is synchronized into each step.
        let mut host_mirror: Vec<Value> = rt.signals.clone();

        // Pre-flatten the schedule: actor references resolved once.
        let tape: Vec<usize> = flat.order.iter().map(|id| id.0).collect();

        let start = Instant::now();
        let mut executed = 0u64;
        for step in 0..opts.steps {
            if let Some(budget) = opts.time_budget {
                if step % 512 == 0 && start.elapsed() >= budget {
                    break;
                }
            }
            rt.begin_step();
            for &idx in &tape {
                let actor = &flat.actors[idx];
                if !rt.actor_active(flat, actor) {
                    continue;
                }
                let _ = eval_actor(flat, actor, &mut rt, tests, &book.inport_col);
            }
            finals.clear();
            for id in &flat.root_outports {
                let actor = flat.actor(*id);
                let v = widen(rt.signals[actor.inputs[0].0].cast(actor.dtype), actor.width);
                for e in v.elems() {
                    digest.write_u64(e.to_bits_u64());
                }
                finals.push((actor.path.name().to_owned(), v));
            }
            // Host synchronization: transfer every signal value back to the
            // modeling environment.
            host_mirror.clone_from_slice(&rt.signals);
            std::hint::black_box(&host_mirror);
            rt.end_step(flat);
            executed = step + 1;
        }

        let mut report = SimulationReport::new(&flat.name, self.name());
        report.steps = executed;
        report.wall = start.elapsed();
        report.output_digest = digest.finish();
        report.final_outputs = finals;
        report
    }
}
