//! Reference execution semantics.
//!
//! One step of a preprocessed model is executed actor-by-actor in the
//! scheduled order. These semantics are the single source of truth that
//! the generated C code must match bit-for-bit (for integer and logic
//! actors) — the conventions are listed in [`accmos_ir::Scalar`]'s module
//! documentation.
//!
//! Key rules:
//!
//! - data inputs are cast to the actor's resolved output type before the
//!   operation (control/selector ports and boolean inputs excepted);
//! - delay-class actors emit state during the sweep and update state at
//!   the end of the step ([`update_state`]);
//! - actors inside an inactive conditional group are skipped; their output
//!   signals hold the previous step's values;
//! - math functions evaluate in `f64` and cast to the output type.

use accmos_graph::{FlatActor, FlatModel, GroupId};
use accmos_ir::{
    ActorKind, BinOp, DataType, LogicOp, LookupMethod, MathOp, MinMaxOp, RelOp, RoundOp, Scalar,
    ShiftDir, SwitchCriteria, SystemKind, TestVectors, TrigOp, Value,
};
use std::collections::VecDeque;

/// Per-actor persistent state.
#[derive(Debug, Clone, PartialEq)]
pub enum ActorState {
    /// Stateless actor.
    None,
    /// A single held value (delays, integrators, holds, rate limiters).
    Held(Value),
    /// A FIFO of values (the N-step `Delay`).
    Buffer(VecDeque<Value>),
    /// A boolean flag (`Relay` on/off, `EdgeDetector` previous input).
    Flag(bool),
    /// A counter value.
    Count(u64),
    /// A 64-bit LCG state.
    Rng(u64),
}

/// The mutable state of one simulation run.
#[derive(Debug, Clone)]
pub struct RuntimeState {
    /// Current value of every signal (persistent across steps so skipped
    /// actors hold their outputs).
    pub signals: Vec<Value>,
    /// Per-actor state.
    pub states: Vec<ActorState>,
    /// Data-store values.
    pub stores: Vec<Scalar>,
    /// Per-step cache of group activity.
    pub group_active: Vec<Option<bool>>,
    /// Previous-step control truth per group (for triggered groups).
    pub group_prev: Vec<bool>,
    /// Current step index.
    pub step: u64,
}

impl RuntimeState {
    /// Fresh state for `flat`: zeroed signals, initial actor state, store
    /// initial values.
    pub fn new(flat: &FlatModel) -> RuntimeState {
        let signals =
            flat.signals.iter().map(|s| Value::zero(s.dtype, s.width)).collect();
        let states = flat.actors.iter().map(initial_state).collect();
        let stores = flat.stores.iter().map(|s| s.init.cast(s.dtype)).collect();
        RuntimeState {
            signals,
            states,
            stores,
            group_active: vec![None; flat.groups.len()],
            group_prev: vec![false; flat.groups.len()],
            step: 0,
        }
    }

    /// Reset the per-step caches; call at the start of every step.
    pub fn begin_step(&mut self) {
        for slot in &mut self.group_active {
            *slot = None;
        }
    }

    /// Finish the step: update delay-class actor state (for active actors)
    /// and the triggered groups' previous-control flags, then advance the
    /// step counter.
    pub fn end_step(&mut self, flat: &FlatModel) {
        for id in flat.order.clone() {
            let actor = flat.actor(id);
            if actor.kind.breaks_algebraic_loops() && self.actor_active(flat, actor) {
                update_state(flat, actor, self);
            }
        }
        for g in &flat.groups {
            self.group_prev[g.id.0] = self.signals[g.control.0]
                .get(0)
                .map(Scalar::as_bool)
                .unwrap_or(false);
        }
        self.step += 1;
    }

    /// Whether a group is active this step (cached).
    pub fn group_is_active(&mut self, flat: &FlatModel, gid: GroupId) -> bool {
        if let Some(v) = self.group_active[gid.0] {
            return v;
        }
        let group = flat.group(gid);
        let parent_ok = match group.parent {
            Some(p) => self.group_is_active(flat, p),
            None => true,
        };
        let control = self.signals[group.control.0].get(0).map(Scalar::as_bool).unwrap_or(false);
        let own = match group.kind {
            SystemKind::Enabled => control,
            SystemKind::Triggered => control && !self.group_prev[gid.0],
            SystemKind::Plain => true,
        };
        let active = parent_ok && own;
        self.group_active[gid.0] = Some(active);
        active
    }

    /// Whether an actor executes this step.
    pub fn actor_active(&mut self, flat: &FlatModel, actor: &FlatActor) -> bool {
        match actor.group {
            None => true,
            Some(g) => self.group_is_active(flat, g),
        }
    }
}

fn initial_state(actor: &FlatActor) -> ActorState {
    use ActorKind::*;
    match &actor.kind {
        UnitDelay { init } | Memory { init } => {
            ActorState::Held(broadcast(init.cast(actor.dtype), actor.width))
        }
        Delay { steps, init } => {
            let v = broadcast(init.cast(actor.dtype), actor.width);
            ActorState::Buffer(std::iter::repeat_n(v, *steps).collect())
        }
        DiscreteIntegrator { init, .. } => {
            ActorState::Held(broadcast(init.cast(actor.dtype), actor.width))
        }
        DiscreteDerivative | ZeroOrderHold { .. } | RateLimiter { .. } => {
            ActorState::Held(Value::zero(actor.dtype, actor.width))
        }
        Relay { .. } | EdgeDetector { .. } => ActorState::Flag(false),
        Counter { .. } => ActorState::Count(0),
        RandomNumber { seed } => ActorState::Rng(*seed),
        Merge { .. } => ActorState::Held(Value::zero(actor.dtype, actor.width)),
        _ => ActorState::None,
    }
}

fn broadcast(s: Scalar, width: usize) -> Value {
    if width == 1 {
        Value::scalar(s)
    } else {
        Value::vector(vec![s; width])
    }
}

/// Scalar expansion to a resolved vector width, mirroring the generated
/// C: assigning a scalar signal to a vector slot replicates the scalar
/// per element. Choosers (Switch, MultiportSwitch, Merge) can pick a
/// scalar branch for a vector-resolved output; without this the stored
/// value would be narrower than the signal's declared width.
pub(crate) fn widen(v: Value, width: usize) -> Value {
    if width > 1 && v.width() == 1 {
        broadcast(v.get(0).expect("scalar value"), width)
    } else {
        v
    }
}

/// Runtime observations of one actor evaluation, feeding coverage and
/// diagnosis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalOutcome {
    /// Branch outcomes taken (one per evaluated element) for branch actors.
    pub branches: Vec<usize>,
    /// Boolean decision outcomes (one per element) for boolean-logic actors.
    pub decisions: Vec<bool>,
    /// For combination conditions: the input condition vector per element.
    pub mcdc_conds: Vec<Vec<bool>>,
    /// An integer result wrapped during evaluation.
    pub overflow: bool,
    /// A division (or mod/rem/reciprocal) had a zero divisor.
    pub div_zero: bool,
    /// A runtime index left its valid range (clamped).
    pub oob: bool,
    /// A math function was evaluated outside its domain.
    pub domain: bool,
}

/// The pseudo-random step shared with the generated C runtime
/// (`accmos_rand_next` in `accmos_rt.h`).
pub fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Convert an LCG word to a uniform `f64` in `[0, 1)` (53-bit mantissa),
/// exactly as the generated C runtime does.
pub fn lcg_to_unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Evaluate one actor: read its input signals, compute its outputs, write
/// them to the signal store, and report coverage/diagnosis observations.
///
/// `inport_col` maps root inport actors to their test-vector column.
///
/// # Panics
///
/// Panics on engine bugs (type or width mismatches that resolution should
/// have rejected).
pub fn eval_actor(
    flat: &FlatModel,
    actor: &FlatActor,
    rt: &mut RuntimeState,
    tests: &TestVectors,
    inport_col: &[Option<usize>],
) -> EvalOutcome {
    use ActorKind::*;
    let mut outcome = EvalOutcome::default();
    let dt = actor.dtype;
    let width = actor.width;
    let step = rt.step;

    // Raw input values (uncast).
    let raw: Vec<Value> = actor.inputs.iter().map(|s| rt.signals[s.0].clone()).collect();
    // A data input cast to the output type.
    let data = |i: usize| raw[i].cast(dt);

    let out: Vec<Value> = match &actor.kind {
        // ---- sources -----------------------------------------------------
        Inport { .. } => {
            let v = if raw.is_empty() {
                // Root inport: take the test case (paper Fig. 5 line 5-6).
                let s = match inport_col[actor.id.0] {
                    Some(col) if col < tests.width() => tests.value_at(col, step),
                    _ => Scalar::zero(dt),
                };
                broadcast(s.cast(dt), width)
            } else {
                // Subsystem boundary: pass through with cast.
                data(0)
            };
            vec![v]
        }
        Constant { value } => vec![value.clone()],
        Step { time, before, after } => {
            let s = if step >= *time { *after } else { *before };
            vec![broadcast(s.cast(dt), width)]
        }
        Ramp { slope, start, initial } => {
            let v = if step < *start {
                *initial
            } else {
                initial + slope * (step - start) as f64
            };
            vec![broadcast(Scalar::from_f64(dt, v), width)]
        }
        SineWave { amplitude, freq, phase, bias } => {
            let v = amplitude * (freq * step as f64 + phase).sin() + bias;
            vec![broadcast(Scalar::from_f64(dt, v), width)]
        }
        PulseGenerator { period, duty, amplitude } => {
            let high = step % period < *duty;
            let s = if high { amplitude.cast(dt) } else { Scalar::zero(dt) };
            vec![broadcast(s, width)]
        }
        Clock => vec![broadcast(Scalar::from_i128(dt, step as i128), width)],
        Counter { limit } => {
            let count = match &mut rt.states[actor.id.0] {
                ActorState::Count(c) => {
                    let cur = *c;
                    *c = if cur >= *limit { 0 } else { cur + 1 };
                    cur
                }
                _ => unreachable!("counter state"),
            };
            vec![broadcast(Scalar::from_i128(dt, count as i128), width)]
        }
        RandomNumber { .. } => {
            let word = match &mut rt.states[actor.id.0] {
                ActorState::Rng(x) => lcg_next(x),
                _ => unreachable!("rng state"),
            };
            let s = if dt.is_float() {
                Scalar::from_f64(dt, lcg_to_unit_f64(word))
            } else {
                Scalar::from_i128(dt, (word >> 32) as i128)
            };
            vec![broadcast(s, width)]
        }
        Ground => vec![Value::zero(dt, width)],

        // ---- math ----------------------------------------------------------
        Sum { signs } => {
            let mut elems = Vec::with_capacity(width);
            for e in 0..width {
                let mut exact: i128 = 0;
                let mut acc = Scalar::zero(dt);
                for (i, sign) in signs.chars().enumerate() {
                    let v = elem(&data(i), e);
                    let op = if sign == '+' { BinOp::Add } else { BinOp::Sub };
                    if dt.is_integer() {
                        exact = if sign == '+' { exact + v.to_i128() } else { exact - v.to_i128() };
                    }
                    acc = acc.binop(op, v);
                }
                if dt.is_integer() && acc.to_i128() != exact {
                    outcome.overflow = true;
                }
                elems.push(acc);
            }
            vec![assemble(elems)]
        }
        Product { ops } => {
            let mut elems = Vec::with_capacity(width);
            for e in 0..width {
                let mut acc = Scalar::one(dt);
                let mut exact: i128 = 1;
                for (i, op) in ops.chars().enumerate() {
                    let v = elem(&data(i), e);
                    if op == '*' {
                        if dt.is_integer() {
                            exact = exact.saturating_mul(v.to_i128());
                        }
                        acc = acc.binop(BinOp::Mul, v);
                    } else {
                        if is_zero(v) {
                            outcome.div_zero = true;
                        }
                        if dt.is_integer() {
                            exact = if v.to_i128() == 0 { 0 } else { exact.wrapping_div(v.to_i128()) };
                        }
                        acc = acc.binop(BinOp::Div, v);
                    }
                }
                if dt.is_integer() && acc.to_i128() != exact {
                    outcome.overflow = true;
                }
                elems.push(acc);
            }
            vec![assemble(elems)]
        }
        Gain { gain } => {
            let g = gain.cast(dt);
            let v = map_checked(&data(0), dt, &mut outcome, |x| {
                (x.binop(BinOp::Mul, g), x.to_i128().checked_mul(g.to_i128()))
            });
            vec![v]
        }
        Bias { bias } => {
            let b = bias.cast(dt);
            let v = map_checked(&data(0), dt, &mut outcome, |x| {
                (x.binop(BinOp::Add, b), x.to_i128().checked_add(b.to_i128()))
            });
            vec![v]
        }
        Abs => {
            let v = map_checked(&data(0), dt, &mut outcome, |x| {
                let r = x.abs();
                (r, Some(x.to_i128().abs()))
            });
            vec![v]
        }
        Sign => {
            let v = data(0).map(|x| {
                let s = if x.to_f64() > 0.0 {
                    1
                } else if x.to_f64() < 0.0 {
                    -1
                } else {
                    0
                };
                Scalar::from_i128(dt, s)
            });
            vec![v]
        }
        Sqrt => {
            let v = data(0).map(|x| {
                let f = x.to_f64();
                if f < 0.0 {
                    outcome.domain = true;
                }
                Scalar::from_f64(dt, f.sqrt())
            });
            vec![v]
        }
        Math { op } => vec![eval_math(*op, dt, &raw, &data(0), &mut outcome)],
        Trig { op } => {
            let v = if *op == TrigOp::Atan2 {
                data(0).zip(&data(1), |a, b| Scalar::from_f64(dt, a.to_f64().atan2(b.to_f64())))
            } else {
                data(0).map(|x| {
                    let f = x.to_f64();
                    let r = match op {
                        TrigOp::Sin => f.sin(),
                        TrigOp::Cos => f.cos(),
                        TrigOp::Tan => f.tan(),
                        TrigOp::Asin => {
                            if f.abs() > 1.0 {
                                outcome.domain = true;
                            }
                            f.asin()
                        }
                        TrigOp::Acos => {
                            if f.abs() > 1.0 {
                                outcome.domain = true;
                            }
                            f.acos()
                        }
                        TrigOp::Atan => f.atan(),
                        TrigOp::Sinh => f.sinh(),
                        TrigOp::Cosh => f.cosh(),
                        TrigOp::Tanh => f.tanh(),
                        TrigOp::Atan2 => unreachable!(),
                    };
                    Scalar::from_f64(dt, r)
                })
            };
            vec![v]
        }
        MinMax { op, inputs } => {
            let bin = if *op == MinMaxOp::Min { BinOp::Min } else { BinOp::Max };
            let mut acc = data(0);
            for i in 1..*inputs {
                acc = acc.zip(&data(i), |a, b| a.binop(bin, b));
            }
            vec![acc]
        }
        Rounding { op } => {
            let v = data(0).map(|x| {
                if dt.is_float() {
                    let f = x.to_f64();
                    let r = match op {
                        RoundOp::Floor => f.floor(),
                        RoundOp::Ceil => f.ceil(),
                        RoundOp::Round => f.round(),
                        RoundOp::Fix => f.trunc(),
                    };
                    Scalar::from_f64(dt, r)
                } else {
                    x
                }
            });
            vec![v]
        }
        Polynomial { coeffs } => {
            let v = data(0).map(|x| {
                let f = x.to_f64();
                let mut acc = 0.0;
                for c in coeffs {
                    acc = acc * f + c;
                }
                Scalar::from_f64(dt, acc)
            });
            vec![v]
        }
        DotProduct => {
            let a = data(0);
            let b = data(1);
            let mut acc = Scalar::zero(dt);
            let mut exact: i128 = 0;
            for e in 0..a.width() {
                let p = elem(&a, e).binop(BinOp::Mul, elem(&b, e));
                if dt.is_integer() {
                    exact += elem(&a, e).to_i128() * elem(&b, e).to_i128();
                }
                acc = acc.binop(BinOp::Add, p);
            }
            if dt.is_integer() && acc.to_i128() != exact {
                outcome.overflow = true;
            }
            vec![Value::scalar(acc)]
        }
        SumOfElements => {
            let a = data(0);
            let mut acc = Scalar::zero(dt);
            let mut exact: i128 = 0;
            for e in 0..a.width() {
                exact += elem(&a, e).to_i128();
                acc = acc.binop(BinOp::Add, elem(&a, e));
            }
            if dt.is_integer() && acc.to_i128() != exact {
                outcome.overflow = true;
            }
            vec![Value::scalar(acc)]
        }
        ProductOfElements => {
            let a = data(0);
            let mut acc = Scalar::one(dt);
            let mut exact: i128 = 1;
            for e in 0..a.width() {
                exact = exact.saturating_mul(elem(&a, e).to_i128());
                acc = acc.binop(BinOp::Mul, elem(&a, e));
            }
            if dt.is_integer() && acc.to_i128() != exact {
                outcome.overflow = true;
            }
            vec![Value::scalar(acc)]
        }

        // ---- logic & comparison --------------------------------------------
        Relational { op } => {
            let any_float = raw[0].dtype().is_float() || raw[1].dtype().is_float();
            let v = raw[0].zip(&raw[1], |x, y| {
                let r = compare_mixed(*op, x, y, any_float);
                outcome.decisions.push(r);
                Scalar::Bool(r)
            });
            vec![v]
        }
        CompareToConstant { op, constant } => {
            let any_float = raw[0].dtype().is_float() || constant.dtype().is_float();
            let c = *constant;
            let v = raw[0].map(|x| {
                let r = compare_mixed(*op, x, c, any_float);
                outcome.decisions.push(r);
                Scalar::Bool(r)
            });
            vec![v]
        }
        Logical { op, inputs } => {
            let n = if *op == LogicOp::Not { 1 } else { *inputs };
            let w = (0..n).map(|i| raw[i].width()).max().unwrap_or(1);
            let mut elems = Vec::with_capacity(w);
            for e in 0..w {
                let conds: Vec<bool> =
                    (0..n).map(|i| elem_b(&raw[i], e)).collect();
                let r = eval_logic(*op, &conds);
                outcome.decisions.push(r);
                if actor.kind.is_combination_condition() {
                    outcome.mcdc_conds.push(conds);
                }
                elems.push(Scalar::Bool(r));
            }
            vec![assemble(elems)]
        }
        Bitwise { op } => {
            let v = match op {
                accmos_ir::BitOp::Not => data(0).map(|x| Scalar::from_i128(dt, !x.to_i128())),
                _ => data(0).zip(&data(1), |a, b| {
                    let (x, y) = (a.to_i128(), b.to_i128());
                    let r = match op {
                        accmos_ir::BitOp::And => x & y,
                        accmos_ir::BitOp::Or => x | y,
                        accmos_ir::BitOp::Xor => x ^ y,
                        accmos_ir::BitOp::Not => unreachable!(),
                    };
                    Scalar::from_i128(dt, r)
                }),
            };
            vec![v]
        }
        Shift { dir, amount } => {
            let v = map_checked(&data(0), dt, &mut outcome, |x| {
                let w = x.to_i128();
                match dir {
                    ShiftDir::Left => {
                        let exact = w.checked_shl(*amount);
                        (Scalar::from_i128(dt, w << amount), exact)
                    }
                    ShiftDir::Right => (Scalar::from_i128(dt, w >> amount), Some(w >> amount)),
                }
            });
            vec![v]
        }

        // ---- control & nonlinear --------------------------------------------
        Switch { criteria } => {
            let ctrl = raw[1].get(0).expect("scalar control").to_f64();
            let pass_first = match criteria {
                SwitchCriteria::GreaterEqual(t) => ctrl >= *t,
                SwitchCriteria::Greater(t) => ctrl > *t,
                SwitchCriteria::NotEqualZero => ctrl != 0.0,
            };
            outcome.branches.push(if pass_first { 0 } else { 1 });
            vec![if pass_first { data(0) } else { data(2) }]
        }
        MultiportSwitch { cases } => {
            let sel = raw[0].get(0).expect("scalar selector").to_i128();
            let idx = if sel < 1 || sel > *cases as i128 {
                outcome.oob = true;
                sel.clamp(1, *cases as i128)
            } else {
                sel
            } as usize;
            outcome.branches.push(idx - 1);
            vec![data(idx)]
        }
        Merge { inputs } => {
            let mut chosen: Option<Value> = None;
            for (sig, value) in actor.inputs.iter().zip(&raw).take(*inputs) {
                let src = flat.signal(*sig).source;
                let src_actor = flat.actor(src);
                if rt.actor_active(flat, src_actor) {
                    chosen = Some(value.cast(dt));
                }
            }
            let v = match chosen {
                Some(v) => {
                    rt.states[actor.id.0] = ActorState::Held(v.clone());
                    v
                }
                None => match &rt.states[actor.id.0] {
                    ActorState::Held(v) => v.clone(),
                    _ => unreachable!("merge state"),
                },
            };
            vec![v]
        }
        Saturation { lo, hi } => {
            let v = data(0).map(|x| {
                let f = x.to_f64();
                if f < *lo {
                    outcome.branches.push(0);
                    Scalar::from_f64(dt, *lo)
                } else if f > *hi {
                    outcome.branches.push(2);
                    Scalar::from_f64(dt, *hi)
                } else {
                    outcome.branches.push(1);
                    x
                }
            });
            vec![v]
        }
        DeadZone { start, end } => {
            let v = data(0).map(|x| {
                let f = x.to_f64();
                if f < *start {
                    outcome.branches.push(0);
                    Scalar::from_f64(dt, f - start)
                } else if f > *end {
                    outcome.branches.push(2);
                    Scalar::from_f64(dt, f - end)
                } else {
                    outcome.branches.push(1);
                    Scalar::zero(dt)
                }
            });
            vec![v]
        }
        RateLimiter { rising, falling } => {
            let prev = match &rt.states[actor.id.0] {
                ActorState::Held(v) => v.clone(),
                _ => unreachable!("rate limiter state"),
            };
            let input = data(0);
            let v = input.zip(&prev, |x, p| {
                let delta = x.to_f64() - p.to_f64();
                if delta > *rising {
                    outcome.branches.push(2);
                    Scalar::from_f64(dt, p.to_f64() + rising)
                } else if delta < *falling {
                    outcome.branches.push(0);
                    Scalar::from_f64(dt, p.to_f64() + falling)
                } else {
                    outcome.branches.push(1);
                    x
                }
            });
            rt.states[actor.id.0] = ActorState::Held(v.clone());
            vec![v]
        }
        Quantizer { interval } => {
            let v = data(0).map(|x| {
                Scalar::from_f64(dt, interval * (x.to_f64() / interval).round())
            });
            vec![v]
        }
        Relay { on_threshold, off_threshold, on_value, off_value } => {
            let mut on = match rt.states[actor.id.0] {
                ActorState::Flag(b) => b,
                _ => unreachable!("relay state"),
            };
            let x = data(0).get(0).expect("relay is scalar").to_f64();
            if x >= *on_threshold {
                on = true;
            } else if x <= *off_threshold {
                on = false;
            }
            rt.states[actor.id.0] = ActorState::Flag(on);
            outcome.branches.push(on as usize);
            let v = if on { *on_value } else { *off_value };
            vec![broadcast(Scalar::from_f64(dt, v), width)]
        }

        // ---- discrete state -------------------------------------------------
        UnitDelay { .. } | Memory { .. } | DiscreteIntegrator { .. } => {
            let v = match &rt.states[actor.id.0] {
                ActorState::Held(v) => v.clone(),
                _ => unreachable!("held state"),
            };
            vec![v]
        }
        Delay { .. } => {
            let v = match &rt.states[actor.id.0] {
                ActorState::Buffer(buf) => buf.front().expect("delay buffer").clone(),
                _ => unreachable!("delay state"),
            };
            vec![v]
        }
        DiscreteDerivative => {
            let input = data(0);
            let prev = match &rt.states[actor.id.0] {
                ActorState::Held(v) => v.clone(),
                _ => unreachable!("derivative state"),
            };
            let mut wrapped = false;
            let v = input.zip(&prev, |x, p| {
                let r = x.binop(BinOp::Sub, p);
                if dt.is_integer() && r.to_i128() != x.to_i128() - p.to_i128() {
                    wrapped = true;
                }
                r
            });
            outcome.overflow |= wrapped;
            rt.states[actor.id.0] = ActorState::Held(input);
            vec![v]
        }
        ZeroOrderHold { sample } => {
            if step.is_multiple_of(*sample) {
                let v = data(0);
                rt.states[actor.id.0] = ActorState::Held(v.clone());
                vec![v]
            } else {
                let v = match &rt.states[actor.id.0] {
                    ActorState::Held(v) => v.clone(),
                    _ => unreachable!("zoh state"),
                };
                vec![v]
            }
        }
        EdgeDetector { rising, falling } => {
            let cur = elem_b(&raw[0], 0);
            let prev = match rt.states[actor.id.0] {
                ActorState::Flag(b) => b,
                _ => unreachable!("edge state"),
            };
            rt.states[actor.id.0] = ActorState::Flag(cur);
            let r = (*rising && cur && !prev) || (*falling && !cur && prev);
            outcome.decisions.push(r);
            vec![Value::scalar(Scalar::Bool(r))]
        }

        // ---- routing ----------------------------------------------------------
        Mux { inputs } => {
            let mut elems = Vec::new();
            for i in 0..*inputs {
                elems.extend(data(i).elems().iter().copied());
            }
            vec![Value::vector(elems)]
        }
        Demux { outputs } => {
            let input = data(0);
            let part = input.width() / outputs;
            (0..*outputs)
                .map(|o| {
                    let elems: Vec<Scalar> =
                        (0..part).map(|e| elem(&input, o * part + e)).collect();
                    assemble(elems)
                })
                .collect()
        }
        Selector { indices, dynamic } => {
            let input = data(0);
            if *dynamic {
                let sel = raw[1].get(0).expect("selector index").to_i128();
                let w = input.width() as i128;
                let idx = if sel < 1 || sel > w {
                    outcome.oob = true;
                    sel.clamp(1, w)
                } else {
                    sel
                } as usize;
                vec![Value::scalar(elem(&input, idx - 1))]
            } else {
                let elems: Vec<Scalar> = indices.iter().map(|&i| elem(&input, i)).collect();
                vec![assemble(elems)]
            }
        }
        DataTypeConversion { .. } => vec![data(0)],

        // ---- lookup -------------------------------------------------------------
        Lookup1D { breakpoints, table, method } => {
            let v = raw[0].map(|x| {
                Scalar::from_f64(dt, lookup_1d(breakpoints, table, *method, x.to_f64()))
            });
            vec![v]
        }
        Lookup2D { row_bps, col_bps, table, method } => {
            let r = raw[0].get(0).expect("lookup row").to_f64();
            let c = raw[1].get(0).expect("lookup col").to_f64();
            let v = lookup_2d(row_bps, col_bps, table, *method, r, c);
            vec![broadcast(Scalar::from_f64(dt, v), width)]
        }

        // ---- data store -----------------------------------------------------------
        DataStoreMemory { .. } => Vec::new(),
        DataStoreRead { store } => {
            let i = flat.store_index(store).expect("validated store");
            vec![broadcast(rt.stores[i], width)]
        }
        DataStoreWrite { store } => {
            let i = flat.store_index(store).expect("validated store");
            let dtype = flat.stores[i].dtype;
            rt.stores[i] = raw[0].get(0).expect("scalar store").cast(dtype);
            Vec::new()
        }

        // ---- sinks ----------------------------------------------------------------
        Outport { .. } => {
            if actor.outputs.is_empty() {
                Vec::new() // root outport: recorded by the engine
            } else {
                vec![data(0)] // subsystem boundary
            }
        }
        Scope | Display | ToWorkspace { .. } | Terminator => Vec::new(),
    };

    debug_assert_eq!(out.len(), actor.outputs.len(), "output arity for {}", actor.path);
    for (sig, value) in actor.outputs.iter().zip(out) {
        rt.signals[sig.0] = widen(value, flat.signal(*sig).width);
    }
    outcome
}

/// End-of-step state update for delay-class actors.
pub fn update_state(flat: &FlatModel, actor: &FlatActor, rt: &mut RuntimeState) {
    use ActorKind::*;
    let dt = actor.dtype;
    let input = rt.signals[actor.inputs[0].0].cast(dt);
    match &actor.kind {
        UnitDelay { .. } | Memory { .. } => {
            rt.states[actor.id.0] = ActorState::Held(input);
        }
        Delay { .. } => {
            if let ActorState::Buffer(buf) = &mut rt.states[actor.id.0] {
                buf.push_back(input);
                buf.pop_front();
            }
        }
        DiscreteIntegrator { gain, .. } => {
            if let ActorState::Held(acc) = &rt.states[actor.id.0] {
                let next = acc.zip(&input, |a, x| {
                    let incr = if *gain == 1.0 {
                        x
                    } else {
                        Scalar::from_f64(dt, gain * x.to_f64()).cast(dt)
                    };
                    a.binop(BinOp::Add, incr)
                });
                rt.states[actor.id.0] = ActorState::Held(next);
            }
        }
        _ => {}
    }
    let _ = flat;
}

/// Whether a delay-class actor's accumulator update wrapped this step
/// (checked by the engines for overflow diagnosis on integrators).
pub fn integrator_update_wraps(actor: &FlatActor, rt: &RuntimeState) -> bool {
    let dt = actor.dtype;
    if !dt.is_integer() {
        return false;
    }
    if let ActorKind::DiscreteIntegrator { gain, .. } = &actor.kind {
        if let ActorState::Held(acc) = &rt.states[actor.id.0] {
            let input = rt.signals[actor.inputs[0].0].cast(dt);
            for e in 0..acc.width().max(input.width()) {
                let a = elem(acc, e.min(acc.width() - 1));
                let x = elem(&input, e.min(input.width() - 1));
                let incr = if *gain == 1.0 {
                    x
                } else {
                    Scalar::from_f64(dt, gain * x.to_f64()).cast(dt)
                };
                let wrapped = a.binop(BinOp::Add, incr);
                if wrapped.to_i128() != a.to_i128() + incr.to_i128() {
                    return true;
                }
            }
        }
    }
    false
}

fn elem(v: &Value, e: usize) -> Scalar {
    if v.width() == 1 {
        v.get(0).unwrap()
    } else {
        v.get(e).unwrap()
    }
}

fn elem_b(v: &Value, e: usize) -> bool {
    elem(v, e.min(v.width() - 1)).as_bool()
}

fn assemble(elems: Vec<Scalar>) -> Value {
    if elems.len() == 1 {
        Value::scalar(elems[0])
    } else {
        Value::vector(elems)
    }
}

fn is_zero(s: Scalar) -> bool {
    match s {
        Scalar::F32(v) => v == 0.0,
        Scalar::F64(v) => v == 0.0,
        other => other.to_i128() == 0,
    }
}

/// Promote two types for comparison: any float -> `f64`; otherwise exact
/// integer comparison (the generated C uses `__int128`).
pub fn promote(a: DataType, b: DataType) -> DataType {
    if a == b {
        a
    } else if a.is_float() || b.is_float() {
        DataType::F64
    } else if a.bits() >= b.bits() {
        a
    } else {
        b
    }
}

/// Comparison of possibly mixed-typed scalars: through `f64` when either
/// side is floating, otherwise exact integer comparison (the generated C
/// backend uses `__int128` for the mixed-integer case).
pub fn compare_mixed(op: RelOp, a: Scalar, b: Scalar, any_float: bool) -> bool {
    if any_float {
        Scalar::F64(a.to_f64()).compare(op, Scalar::F64(b.to_f64()))
    } else {
        let (x, y) = (a.to_i128(), b.to_i128());
        match op {
            RelOp::Eq => x == y,
            RelOp::Ne => x != y,
            RelOp::Lt => x < y,
            RelOp::Le => x <= y,
            RelOp::Gt => x > y,
            RelOp::Ge => x >= y,
        }
    }
}

fn eval_logic(op: LogicOp, conds: &[bool]) -> bool {
    match op {
        LogicOp::And => conds.iter().all(|c| *c),
        LogicOp::Or => conds.iter().any(|c| *c),
        LogicOp::Nand => !conds.iter().all(|c| *c),
        LogicOp::Nor => !conds.iter().any(|c| *c),
        LogicOp::Xor => conds.iter().filter(|c| **c).count() % 2 == 1,
        LogicOp::Not => !conds[0],
    }
}

fn map_checked(
    v: &Value,
    dt: DataType,
    outcome: &mut EvalOutcome,
    mut f: impl FnMut(Scalar) -> (Scalar, Option<i128>),
) -> Value {
    v.map(|x| {
        let (r, exact) = f(x);
        if dt.is_integer() {
            match exact {
                Some(e) if r.to_i128() == e => {}
                _ => outcome.overflow = true,
            }
        }
        r
    })
}

fn eval_math(
    op: MathOp,
    dt: DataType,
    raw: &[Value],
    first: &Value,
    outcome: &mut EvalOutcome,
) -> Value {
    match op {
        MathOp::Exp => first.map(|x| Scalar::from_f64(dt, x.to_f64().exp())),
        MathOp::Log => first.map(|x| {
            let f = x.to_f64();
            if f <= 0.0 {
                outcome.domain = true;
            }
            Scalar::from_f64(dt, f.ln())
        }),
        MathOp::Log10 => first.map(|x| {
            let f = x.to_f64();
            if f <= 0.0 {
                outcome.domain = true;
            }
            Scalar::from_f64(dt, f.log10())
        }),
        MathOp::Pow10 => first.map(|x| Scalar::from_f64(dt, 10f64.powf(x.to_f64()))),
        MathOp::Square => {
            let mut wrapped = false;
            let v = first.map(|x| {
                let r = x.binop(BinOp::Mul, x);
                if dt.is_integer() && r.to_i128() != x.to_i128() * x.to_i128() {
                    wrapped = true;
                }
                r
            });
            outcome.overflow |= wrapped;
            v
        }
        MathOp::Pow => {
            let b = raw[1].cast(dt);
            first.zip(&b, |x, y| Scalar::from_f64(dt, x.to_f64().powf(y.to_f64())))
        }
        MathOp::Reciprocal => first.map(|x| {
            if is_zero(x) {
                outcome.div_zero = true;
            }
            if dt.is_integer() {
                Scalar::one(dt).binop(BinOp::Div, x)
            } else {
                Scalar::from_f64(dt, 1.0 / x.to_f64())
            }
        }),
        MathOp::Mod | MathOp::Rem => {
            let b = raw[1].cast(dt);
            first.zip(&b, |x, y| {
                if is_zero(y) {
                    outcome.div_zero = true;
                }
                if dt.is_integer() {
                    let r = x.binop(BinOp::Rem, y);
                    if op == MathOp::Mod && !is_zero(r) && (r.to_i128() < 0) != (y.to_i128() < 0) {
                        r.binop(BinOp::Add, y)
                    } else {
                        r
                    }
                } else {
                    let r = x.to_f64() % y.to_f64();
                    let r = if op == MathOp::Mod && r != 0.0 && (r < 0.0) != (y.to_f64() < 0.0) {
                        r + y.to_f64()
                    } else {
                        r
                    };
                    Scalar::from_f64(dt, r)
                }
            })
        }
        MathOp::Hypot => {
            let b = raw[1].cast(dt);
            first.zip(&b, |x, y| Scalar::from_f64(dt, x.to_f64().hypot(y.to_f64())))
        }
    }
}

fn lookup_index(bps: &[f64], x: f64) -> usize {
    // Largest i in [0, len-2] with bps[i] <= x. The linear scan mirrors the
    // generated C helper statement-for-statement (including NaN behaviour:
    // all comparisons false leaves i = 0).
    let mut i = 0;
    #[allow(clippy::needless_range_loop)] // index loop mirrors the C helper
    for j in 1..bps.len().saturating_sub(1) {
        if bps[j] <= x {
            i = j;
        }
    }
    i
}

/// One-dimensional table lookup in `f64` (clipped at the ends).
pub fn lookup_1d(bps: &[f64], table: &[f64], method: LookupMethod, x: f64) -> f64 {
    if x <= bps[0] {
        return table[0];
    }
    if x >= bps[bps.len() - 1] {
        return table[table.len() - 1];
    }
    let i = lookup_index(bps, x);
    match method {
        LookupMethod::Below => table[i],
        LookupMethod::Nearest => {
            if i + 1 < bps.len() && (x - bps[i]) > (bps[i + 1] - x) {
                table[i + 1]
            } else {
                table[i]
            }
        }
        LookupMethod::Interpolate => {
            let t = (x - bps[i]) / (bps[i + 1] - bps[i]);
            table[i] + t * (table[i + 1] - table[i])
        }
    }
}

/// Two-dimensional table lookup (row-major table) in `f64`.
pub fn lookup_2d(
    row_bps: &[f64],
    col_bps: &[f64],
    table: &[f64],
    method: LookupMethod,
    r: f64,
    c: f64,
) -> f64 {
    let cols = col_bps.len();
    let at = |ri: usize, ci: usize| table[ri * cols + ci];
    match method {
        LookupMethod::Interpolate => {
            let ri = lookup_index(row_bps, r.clamp(row_bps[0], row_bps[row_bps.len() - 1]));
            let ci = lookup_index(col_bps, c.clamp(col_bps[0], col_bps[cols - 1]));
            let ri1 = (ri + 1).min(row_bps.len() - 1);
            let ci1 = (ci + 1).min(cols - 1);
            let tr = if ri1 == ri {
                0.0
            } else {
                ((r - row_bps[ri]) / (row_bps[ri1] - row_bps[ri])).clamp(0.0, 1.0)
            };
            let tc = if ci1 == ci {
                0.0
            } else {
                ((c - col_bps[ci]) / (col_bps[ci1] - col_bps[ci])).clamp(0.0, 1.0)
            };
            let top = at(ri, ci) + tc * (at(ri, ci1) - at(ri, ci));
            let bot = at(ri1, ci) + tc * (at(ri1, ci1) - at(ri1, ci));
            top + tr * (bot - top)
        }
        _ => {
            let pick = |bps: &[f64], x: f64| -> usize {
                if x <= bps[0] {
                    return 0;
                }
                if x >= bps[bps.len() - 1] {
                    return bps.len() - 1;
                }
                let i = lookup_index(bps, x);
                if method == LookupMethod::Nearest
                    && i + 1 < bps.len()
                    && (x - bps[i]) > (bps[i + 1] - x)
                {
                    i + 1
                } else {
                    i
                }
            };
            at(pick(row_bps, r), pick(col_bps, c))
        }
    }
}
