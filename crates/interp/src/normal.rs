//! The SSE stand-in: interpretive simulation with full runtime
//! diagnostics, four-metric coverage and signal monitoring.
//!
//! This engine evaluates the model step by step through dynamic dispatch
//! over boxed [`accmos_ir::Value`]s — the *"interpreted execution method"*
//! whose overhead the paper identifies as the root cause of SSE's
//! slowness. It is the correctness reference for the generated code.

use crate::options::{Engine, SimOptions};
use crate::semantics::{
    eval_actor, integrator_update_wraps, widen, EvalOutcome, RuntimeState,
};
use accmos_graph::{FlatActor, FlatModel, PreprocessedModel};
use accmos_ir::{
    applicable_diagnoses, ActorKind, DiagnosticEvent, DiagnosticKind, LogicOp, OutputDigest,
    SignalSample, SimulationReport, SystemKind, TestVectors, Value,
};
use std::collections::BTreeMap;
use std::time::Instant;

/// The SSE (normal simulation mode) stand-in engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalEngine;

impl NormalEngine {
    /// A new engine.
    pub fn new() -> NormalEngine {
        NormalEngine
    }

    /// Like [`Engine::run`], but also return the raw coverage bitmaps the
    /// run set. Lane-parallel consumers use this to OR-reduce coverage
    /// across per-lane runs ([`accmos_ir::CoverageBitmaps::merge`]) and
    /// re-summarize the union with the model's coverage map — per-kind
    /// covered *counts* cannot be unioned, only bitmaps can.
    pub fn run_with_bitmaps(
        &self,
        pre: &PreprocessedModel,
        tests: &TestVectors,
        opts: &SimOptions,
    ) -> (SimulationReport, accmos_ir::CoverageBitmaps) {
        run_normal(self.name(), pre, tests, opts)
    }
}

/// Shared per-run bookkeeping used by both interpretive engines.
pub(crate) struct RunBook {
    pub inport_col: Vec<Option<usize>>,
    pub diag_lists: Vec<Vec<DiagnosticKind>>,
}

impl RunBook {
    pub fn new(flat: &FlatModel) -> RunBook {
        let mut inport_col = vec![None; flat.actors.len()];
        for (col, id) in flat.root_inports.iter().enumerate() {
            inport_col[id.0] = Some(col);
        }
        // The paper's default `diagnoseList` holds the calculation actors;
        // others are not instrumented (matching the code generator).
        let diag_lists = flat
            .actors
            .iter()
            .map(|a| {
                if !a.kind.is_calculation() {
                    return Vec::new();
                }
                let ins = flat.input_dtypes(a);
                applicable_diagnoses(&a.kind, &ins, a.dtype)
            })
            .collect();
        RunBook { inport_col, diag_lists }
    }
}

struct DiagAgg {
    events: BTreeMap<(usize, DiagnosticKind), (u64, u64)>,
}

impl DiagAgg {
    fn new() -> DiagAgg {
        DiagAgg { events: BTreeMap::new() }
    }

    fn hit(&mut self, actor: usize, kind: DiagnosticKind, step: u64) {
        let entry = self.events.entry((actor, kind)).or_insert((step, 0));
        entry.1 += 1;
    }

    fn any(&self) -> bool {
        !self.events.is_empty()
    }

    fn into_events(self, flat: &FlatModel) -> Vec<DiagnosticEvent> {
        let mut out: Vec<DiagnosticEvent> = self
            .events
            .into_iter()
            .map(|((actor, kind), (first_step, count))| DiagnosticEvent {
                actor: flat.actors[actor].path.key(),
                kind,
                first_step,
                count,
            })
            .collect();
        out.sort_by_key(|e| (e.first_step, e.actor.clone()));
        out
    }
}

impl Engine for NormalEngine {
    fn name(&self) -> &'static str {
        "sse"
    }

    fn run(
        &self,
        pre: &PreprocessedModel,
        tests: &TestVectors,
        opts: &SimOptions,
    ) -> SimulationReport {
        run_normal(self.name(), pre, tests, opts).0
    }
}

/// The engine body, returning the report together with the raw bitmaps.
fn run_normal(
    name: &str,
    pre: &PreprocessedModel,
    tests: &TestVectors,
    opts: &SimOptions,
) -> (SimulationReport, accmos_ir::CoverageBitmaps) {
    let flat = &pre.flat;
    let book = RunBook::new(flat);
    let mut rt = RuntimeState::new(flat);
    let mut bitmaps = pre.coverage.map.new_bitmaps();
    let mut diag = DiagAgg::new();
    let mut digest = OutputDigest::new();
    let mut log: Vec<SignalSample> = Vec::new();
    let mut finals: Vec<(String, Value)> = Vec::new();

    let start = Instant::now();
    let mut executed = 0u64;
    'steps: for step in 0..opts.steps {
        if let Some(budget) = opts.time_budget {
            if step % 512 == 0 && start.elapsed() >= budget {
                break 'steps;
            }
        }
        rt.begin_step();
        for idx in 0..flat.order.len() {
            let id = flat.order[idx];
            let actor = flat.actor(id);
            if !rt.actor_active(flat, actor) {
                continue;
            }
            let raw_inputs: Vec<Value> =
                actor.inputs.iter().map(|s| rt.signals[s.0].clone()).collect();
            let outcome = eval_actor(flat, actor, &mut rt, tests, &book.inport_col);
            if opts.coverage {
                record_coverage(pre, actor, &outcome, &mut bitmaps);
            }
            if opts.policy.any() {
                record_diagnostics(
                    flat,
                    actor,
                    &book.diag_lists[id.0],
                    &outcome,
                    &raw_inputs,
                    opts,
                    step,
                    &mut diag,
                );
            }
            if log.len() < opts.signal_log_limit {
                monitor(flat, actor, &rt, &raw_inputs, step, &mut log, opts.signal_log_limit);
            }
        }
        if opts.coverage {
            record_group_coverage(pre, &mut rt, &mut bitmaps);
        }
        // Integrator accumulators can wrap during the end-of-step
        // update; diagnose before applying it.
        if opts.policy.enabled(DiagnosticKind::WrapOnOverflow) {
            for id in &flat.order {
                let actor = flat.actor(*id);
                if matches!(actor.kind, ActorKind::DiscreteIntegrator { .. })
                    && rt.actor_active(flat, actor)
                    && integrator_update_wraps(actor, &rt)
                {
                    diag.hit(id.0, DiagnosticKind::WrapOnOverflow, step);
                }
            }
        }
        // Root outputs: digest + final values.
        finals.clear();
        for id in &flat.root_outports {
            let actor = flat.actor(*id);
            // Widen scalar feeds to the outport's resolved width: the
            // generated C records one element per declared lane of the
            // output array, broadcasting a scalar source.
            let v = widen(rt.signals[actor.inputs[0].0].cast(actor.dtype), actor.width);
            for e in v.elems() {
                digest.write_u64(e.to_bits_u64());
            }
            finals.push((actor.path.name().to_owned(), v));
        }
        rt.end_step(flat);
        executed = step + 1;
        if opts.stop_on_diagnostic && diag.any() {
            break 'steps;
        }
    }

    let mut report = SimulationReport::new(&flat.name, name);
    report.steps = executed;
    report.wall = start.elapsed();
    if opts.coverage {
        report.coverage = Some(pre.coverage.map.summarize(&bitmaps));
    }
    report.diagnostics = diag.into_events(flat);
    report.signal_log = log;
    report.output_digest = digest.finish();
    report.final_outputs = finals;
    (report, bitmaps)
}

/// Coverage updates for one executed actor.
pub(crate) fn record_coverage(
    pre: &PreprocessedModel,
    actor: &FlatActor,
    outcome: &EvalOutcome,
    bitmaps: &mut accmos_ir::CoverageBitmaps,
) {
    use accmos_ir::CoverageKind::*;
    let idx = &pre.coverage;
    bitmaps.set(Actor, idx.actor_point[actor.id.0]);

    if let Some((base, count)) = idx.condition[actor.id.0] {
        for &b in &outcome.branches {
            debug_assert!(b < count);
            bitmaps.set(Condition, base + b.min(count - 1));
        }
    }
    if let Some(base) = idx.decision[actor.id.0] {
        for &d in &outcome.decisions {
            bitmaps.set(Decision, base + usize::from(!d));
        }
    }
    if let Some((base, inputs)) = idx.mcdc[actor.id.0] {
        let op = match &actor.kind {
            ActorKind::Logical { op, .. } => *op,
            _ => return,
        };
        for conds in &outcome.mcdc_conds {
            for i in 0..inputs.min(conds.len()) {
                if mcdc_masked(op, conds, i) {
                    bitmaps.set(Mcdc, base + 2 * i + usize::from(!conds[i]));
                }
            }
        }
    }
}

/// Whether condition `i` independently determines the gate's outcome given
/// the other conditions (the masking test used for MC/DC).
pub(crate) fn mcdc_masked(op: LogicOp, conds: &[bool], i: usize) -> bool {
    let others = conds.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, c)| *c);
    match op {
        LogicOp::And | LogicOp::Nand => others.clone().all(|c| c),
        LogicOp::Or | LogicOp::Nor => !others.clone().any(|c| c),
        LogicOp::Xor => true,
        LogicOp::Not => true,
    }
}

/// Group enable conditions contribute condition-coverage points whenever
/// they are evaluated (i.e. their parent chain is active).
pub(crate) fn record_group_coverage(
    pre: &PreprocessedModel,
    rt: &mut RuntimeState,
    bitmaps: &mut accmos_ir::CoverageBitmaps,
) {
    use accmos_ir::CoverageKind::Condition;
    let flat = &pre.flat;
    for g in &flat.groups {
        let parent_ok = match g.parent {
            Some(p) => rt.group_is_active(flat, p),
            None => true,
        };
        if !parent_ok {
            continue;
        }
        let control = rt.signals[g.control.0].get(0).map(accmos_ir::Scalar::as_bool).unwrap_or(false);
        let own = match g.kind {
            SystemKind::Enabled => control,
            SystemKind::Triggered => control && !rt.group_prev[g.id.0],
            SystemKind::Plain => true,
        };
        let (t, f) = pre.coverage.group_bits(g.id);
        bitmaps.set(Condition, if own { t } else { f });
    }
}

#[allow(clippy::too_many_arguments)]
fn record_diagnostics(
    flat: &FlatModel,
    actor: &FlatActor,
    applicable: &[DiagnosticKind],
    outcome: &EvalOutcome,
    raw_inputs: &[Value],
    opts: &SimOptions,
    step: u64,
    diag: &mut DiagAgg,
) {
    use DiagnosticKind::*;
    let id = actor.id.0;
    let has = |k: DiagnosticKind| applicable.contains(&k) && opts.policy.enabled(k);

    if outcome.overflow && has(WrapOnOverflow) {
        diag.hit(id, WrapOnOverflow, step);
    }
    if outcome.div_zero && has(DivisionByZero) {
        diag.hit(id, DivisionByZero, step);
    }
    if outcome.oob && has(ArrayOutOfBounds) {
        diag.hit(id, ArrayOutOfBounds, step);
    }
    if outcome.domain && has(DomainError) {
        diag.hit(id, DomainError, step);
    }
    // Downcast is a static property of the port types (paper Fig. 4 line 4:
    // a sizeof comparison); it fires once, on first execution.
    if has(Downcast) && !diag.events.contains_key(&(id, Downcast)) {
        diag.hit(id, Downcast, step);
    }
    // Precision loss fires when a concrete input value does not survive the
    // round-trip through the output type.
    if has(PrecisionLoss) {
        let dt = actor.dtype;
        let lossy = raw_inputs.iter().any(|v| {
            v.dtype().precision_loss_to(dt)
                && v.elems().iter().any(|e| e.cast(dt).cast(e.dtype()) != *e)
        });
        if lossy {
            diag.hit(id, PrecisionLoss, step);
        }
    }
    let _ = flat;
}

fn monitor(
    flat: &FlatModel,
    actor: &FlatActor,
    rt: &RuntimeState,
    raw_inputs: &[Value],
    step: u64,
    log: &mut Vec<SignalSample>,
    limit: usize,
) {
    if actor.monitor {
        for sig in &actor.outputs {
            if log.len() >= limit {
                return;
            }
            log.push(SignalSample {
                path: flat.signal(*sig).name.clone(),
                step,
                value: rt.signals[sig.0].clone(),
            });
        }
    }
    if actor.kind.is_monitor_sink() && !raw_inputs.is_empty() && log.len() < limit {
        log.push(SignalSample {
            path: format!("{}_in", actor.path.key()),
            step,
            value: raw_inputs[0].clone(),
        });
    }
}
