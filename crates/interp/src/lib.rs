//! # accmos-interp
//!
//! Interpretive simulation engines — the stand-ins for Simulink's
//! simulation engine that AccMoS is measured against:
//!
//! - [`NormalEngine`] (`sse`): step-by-step interpretation with full
//!   runtime diagnostics, four-metric coverage and signal monitoring;
//! - [`AcceleratorEngine`] (`sse-ac`): pre-flattened interpretive tape,
//!   no diagnostics or coverage, per-step host synchronization.
//!
//! (The Rapid Accelerator stand-in is produced by `accmos-codegen` /
//! `accmos-backend`: uninstrumented generated C at `-O0` with per-step
//! host data exchange.)
//!
//! The [`semantics`] module is the reference the generated C code must
//! match; differential tests in the workspace compare both paths
//! bit-for-bit on integer models.
//!
//! ## Example
//!
//! ```
//! use accmos_interp::{Engine, NormalEngine, SimOptions};
//! use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar, TestVectors};
//!
//! let mut b = ModelBuilder::new("M");
//! b.inport("In", DataType::I32);
//! b.actor("Twice", ActorKind::Gain { gain: Scalar::I32(2) });
//! b.outport("Out", DataType::I32);
//! b.wire("In", "Twice");
//! b.wire("Twice", "Out");
//! let pre = accmos_graph::preprocess(&b.build()?)?;
//!
//! let tests = TestVectors::constant("In", Scalar::I32(21), 1);
//! let report = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(3));
//! assert_eq!(report.final_outputs[0].1.to_string(), "42");
//! # Ok::<(), accmos_ir::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accel;
mod normal;
mod options;
pub mod semantics;

pub use accel::AcceleratorEngine;
pub use normal::NormalEngine;
pub use options::{Engine, SimOptions};

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_graph::preprocess;
    use accmos_ir::{
        ActorKind, CoverageKind, DataType, DiagnosticKind, LogicOp, Model, ModelBuilder, RelOp,
        Scalar, SimulationReport, SwitchCriteria, SystemKind, TestVectors, Value,
    };

    fn run(model: &Model, tests: &TestVectors, steps: u64) -> SimulationReport {
        let pre = preprocess(model).unwrap();
        NormalEngine::new().run(&pre, tests, &SimOptions::steps(steps))
    }

    fn out0(report: &SimulationReport) -> &Value {
        &report.final_outputs[0].1
    }

    #[test]
    fn passthrough_reads_test_vectors_cyclically() {
        let mut b = ModelBuilder::new("M");
        b.inport("In", DataType::I32);
        b.outport("Out", DataType::I32);
        b.wire("In", "Out");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column("In", DataType::I32, vec![Scalar::I32(10), Scalar::I32(20)]);
        let r = run(&model, &tv, 3); // steps 0,1,2 -> values 10,20,10
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(10)));
        assert_eq!(r.steps, 3);
    }

    #[test]
    fn figure1_overflow_detected() {
        // The paper's Figure 1: two accumulators into a sum; int32 wraps
        // after enough steps.
        let mut b = ModelBuilder::new("Sample");
        b.inport("A", DataType::I32);
        b.inport("B", DataType::I32);
        b.actor("AccA", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
        b.actor("AccB", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
        b.actor("Sum", ActorKind::Sum { signs: "++".into() });
        b.outport("Out", DataType::I32);
        b.connect(("A", 0), ("AccA", 0));
        b.connect(("B", 0), ("AccB", 0));
        b.connect(("AccA", 0), ("Sum", 0));
        b.connect(("AccB", 0), ("Sum", 1));
        b.connect(("Sum", 0), ("Out", 0));
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        let big = i32::MAX / 4;
        tv.push_column("A", DataType::I32, vec![Scalar::I32(big)]);
        tv.push_column("B", DataType::I32, vec![Scalar::I32(big)]);
        let pre = preprocess(&model).unwrap();
        let r = NormalEngine::new().run(
            &pre,
            &tv,
            &SimOptions::steps(100).stopping_on_diagnostic(),
        );
        assert!(r.has_diagnostic(DiagnosticKind::WrapOnOverflow), "{r}");
        let first = r.first_diagnostic(DiagnosticKind::WrapOnOverflow).unwrap();
        assert_eq!(first.actor, "Sample_Sum");
        assert!(r.steps < 100, "stopped early at {}", r.steps);
    }

    #[test]
    fn unit_delay_shifts_by_one_step() {
        let mut b = ModelBuilder::new("M");
        b.inport("In", DataType::I32);
        b.actor("D", ActorKind::UnitDelay { init: Scalar::I32(-1) });
        b.outport("Out", DataType::I32);
        b.wire("In", "D");
        b.wire("D", "Out");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column(
            "In",
            DataType::I32,
            (0..5).map(|i| Scalar::I32(i * 10)).collect(),
        );
        // After step 0 the output is the init; after step k it is in[k-1].
        let r = run(&model, &tv, 1);
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(-1)));
        let r = run(&model, &tv, 3);
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(10)));
    }

    #[test]
    fn delay_n_uses_buffer() {
        let mut b = ModelBuilder::new("M");
        b.actor("Clk", ActorKind::Clock);
        b.actor("D", ActorKind::Delay { steps: 3, init: Scalar::I32(99) });
        b.outport("Out", DataType::I32);
        b.wire("Clk", "D");
        b.wire("D", "Out");
        let model = b.build().unwrap();
        let r = run(&model, &TestVectors::new(), 3);
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(99)));
        let r = run(&model, &TestVectors::new(), 5);
        // step 4 emits clock value from step 1
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(1)));
    }

    #[test]
    fn feedback_counter_via_unit_delay() {
        let mut b = ModelBuilder::new("M");
        b.constant("One", Scalar::I32(1));
        b.actor("D", ActorKind::UnitDelay { init: Scalar::I32(0) });
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.outport("Out", DataType::I32);
        b.connect(("D", 0), ("Add", 0));
        b.connect(("One", 0), ("Add", 1));
        b.connect(("Add", 0), ("D", 0));
        b.wire("Add", "Out");
        let model = b.build().unwrap();
        let r = run(&model, &TestVectors::new(), 10);
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(10)));
    }

    #[test]
    fn switch_selects_by_criteria_and_covers_branches() {
        let mut b = ModelBuilder::new("M");
        b.inport("C", DataType::F64);
        b.constant("Hi", Scalar::F64(1.0));
        b.constant("Lo", Scalar::F64(-1.0));
        b.actor("Sw", ActorKind::Switch { criteria: SwitchCriteria::GreaterEqual(0.5) });
        b.outport("Out", DataType::F64);
        b.connect(("Hi", 0), ("Sw", 0));
        b.connect(("C", 0), ("Sw", 1));
        b.connect(("Lo", 0), ("Sw", 2));
        b.wire("Sw", "Out");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column("C", DataType::F64, vec![Scalar::F64(0.9)]);
        let r = run(&model, &tv, 1);
        assert_eq!(out0(&r), &Value::scalar(Scalar::F64(1.0)));
        let cov = r.coverage.unwrap();
        assert_eq!(cov.counts(CoverageKind::Condition).covered, 1);
        assert_eq!(cov.counts(CoverageKind::Condition).total, 2);

        // Alternate control exercises both branches.
        let mut tv = TestVectors::new();
        tv.push_column("C", DataType::F64, vec![Scalar::F64(0.9), Scalar::F64(0.0)]);
        let r = run(&model, &tv, 2);
        assert_eq!(r.coverage.unwrap().percent(CoverageKind::Condition), 100.0);
    }

    #[test]
    fn decision_and_mcdc_coverage_for_and_gate() {
        let mut b = ModelBuilder::new("M");
        b.inport("A", DataType::Bool);
        b.inport("B", DataType::Bool);
        b.actor("And", ActorKind::Logical { op: LogicOp::And, inputs: 2 });
        b.outport("Y", DataType::Bool);
        b.connect(("A", 0), ("And", 0));
        b.connect(("B", 0), ("And", 1));
        b.wire("And", "Y");
        let model = b.build().unwrap();

        // Only (T,T): decision true seen; MC/DC: both inputs shown true.
        let mut tv = TestVectors::new();
        tv.push_column("A", DataType::Bool, vec![Scalar::Bool(true)]);
        tv.push_column("B", DataType::Bool, vec![Scalar::Bool(true)]);
        let r = run(&model, &tv, 1);
        let cov = r.coverage.unwrap();
        assert_eq!(cov.counts(CoverageKind::Decision).covered, 1);
        assert_eq!(cov.counts(CoverageKind::Mcdc).covered, 2);
        assert_eq!(cov.counts(CoverageKind::Mcdc).total, 4);

        // (T,T), (T,F), (F,T) achieves full decision + MC/DC.
        let mut tv = TestVectors::new();
        tv.push_column(
            "A",
            DataType::Bool,
            vec![Scalar::Bool(true), Scalar::Bool(true), Scalar::Bool(false)],
        );
        tv.push_column(
            "B",
            DataType::Bool,
            vec![Scalar::Bool(true), Scalar::Bool(false), Scalar::Bool(true)],
        );
        let r = run(&model, &tv, 3);
        let cov = r.coverage.unwrap();
        assert_eq!(cov.percent(CoverageKind::Decision), 100.0);
        assert_eq!(cov.percent(CoverageKind::Mcdc), 100.0);
    }

    #[test]
    fn enabled_subsystem_holds_outputs_when_inactive() {
        let mut b = ModelBuilder::new("M");
        b.inport("En", DataType::Bool);
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.actor("Cnt", ActorKind::Counter { limit: 100 });
            s.outport("y", DataType::I32);
            s.wire("Cnt", "y");
        });
        b.outport("Y", DataType::I32);
        b.wire_to("En", "Sub", 0);
        b.wire("Sub", "Y");
        let model = b.build().unwrap();
        // Enabled on steps 0,1 then disabled.
        let mut tv = TestVectors::new();
        tv.push_column(
            "En",
            DataType::Bool,
            vec![Scalar::Bool(true), Scalar::Bool(true), Scalar::Bool(false), Scalar::Bool(false)],
        );
        let r = run(&model, &tv, 4);
        // Counter ran twice (0 then 1); output held at 1 afterwards.
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(1)));
        let cov = r.coverage.unwrap();
        assert_eq!(cov.percent(CoverageKind::Condition), 100.0);
    }

    #[test]
    fn disabled_subsystem_never_executes_actors() {
        let mut b = ModelBuilder::new("M");
        b.constant("Off", Scalar::Bool(false));
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.actor("Cnt", ActorKind::Counter { limit: 100 });
            s.outport("y", DataType::I32);
            s.wire("Cnt", "y");
        });
        b.outport("Y", DataType::I32);
        b.wire_to("Off", "Sub", 0);
        b.wire("Sub", "Y");
        let model = b.build().unwrap();
        let r = run(&model, &TestVectors::new(), 3);
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(0)));
        let cov = r.coverage.unwrap();
        // Off constant + root outport executed; Cnt + boundary outport did not.
        assert!(cov.percent(CoverageKind::Actor) < 100.0);
    }

    #[test]
    fn triggered_subsystem_fires_on_rising_edge_only() {
        let mut b = ModelBuilder::new("M");
        b.inport("T", DataType::Bool);
        b.subsystem("Sub", SystemKind::Triggered, |s| {
            s.actor("Cnt", ActorKind::Counter { limit: 100 });
            s.outport("y", DataType::I32);
            s.wire("Cnt", "y");
        });
        b.outport("Y", DataType::I32);
        b.wire_to("T", "Sub", 0);
        b.wire("Sub", "Y");
        let model = b.build().unwrap();
        // T: 1,1,0,1 -> rising edges at steps 0 and 3 (prev starts false).
        let mut tv = TestVectors::new();
        tv.push_column(
            "T",
            DataType::Bool,
            vec![Scalar::Bool(true), Scalar::Bool(true), Scalar::Bool(false), Scalar::Bool(true)],
        );
        let r = run(&model, &tv, 4);
        // Counter executed twice -> outputs 0 then 1; final held at 1.
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(1)));
    }

    #[test]
    fn division_by_zero_diagnosed() {
        let mut b = ModelBuilder::new("M");
        b.inport("A", DataType::I32);
        b.inport("B", DataType::I32);
        b.actor("Div", ActorKind::Product { ops: "*/".into() });
        b.outport("Y", DataType::I32);
        b.connect(("A", 0), ("Div", 0));
        b.connect(("B", 0), ("Div", 1));
        b.wire("Div", "Y");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column("A", DataType::I32, vec![Scalar::I32(6)]);
        tv.push_column("B", DataType::I32, vec![Scalar::I32(3), Scalar::I32(0)]);
        let r = run(&model, &tv, 2);
        assert!(r.has_diagnostic(DiagnosticKind::DivisionByZero));
        let e = r.first_diagnostic(DiagnosticKind::DivisionByZero).unwrap();
        assert_eq!(e.first_step, 1);
        assert_eq!(e.count, 1);
    }

    #[test]
    fn downcast_fires_once_at_first_execution() {
        // The paper's second CSEV fault: product of int32s into int16.
        let mut b = ModelBuilder::new("M");
        b.inport("V", DataType::I32);
        b.inport("I", DataType::I32);
        b.actor(
            "Power",
            accmos_ir::Actor::new(ActorKind::Product { ops: "**".into() })
                .with_dtype(DataType::I16),
        );
        b.outport("P", DataType::I16);
        b.connect(("V", 0), ("Power", 0));
        b.connect(("I", 0), ("Power", 1));
        b.wire("Power", "P");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column("V", DataType::I32, vec![Scalar::I32(2)]);
        tv.push_column("I", DataType::I32, vec![Scalar::I32(3)]);
        let r = run(&model, &tv, 5);
        let e = r.first_diagnostic(DiagnosticKind::Downcast).unwrap();
        assert_eq!(e.first_step, 0);
        assert_eq!(e.count, 1);
    }

    #[test]
    fn precision_loss_on_fractional_float_to_int() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::F64);
        b.actor("Cvt", ActorKind::DataTypeConversion { to: DataType::I32 });
        b.outport("Y", DataType::I32);
        b.wire("X", "Cvt");
        b.wire("Cvt", "Y");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column("X", DataType::F64, vec![Scalar::F64(2.0), Scalar::F64(2.5)]);
        let r = run(&model, &tv, 2);
        let e = r.first_diagnostic(DiagnosticKind::PrecisionLoss).unwrap();
        assert_eq!(e.first_step, 1, "2.0 converts exactly; 2.5 does not");
    }

    #[test]
    fn oob_selector_diagnosed_and_clamped() {
        let mut b = ModelBuilder::new("M");
        b.actor(
            "V",
            ActorKind::Constant {
                value: Value::vector(vec![Scalar::F64(10.0), Scalar::F64(20.0)]),
            },
        );
        b.inport("I", DataType::I32);
        b.actor("Sel", ActorKind::Selector { indices: vec![], dynamic: true });
        b.outport("Y", DataType::F64);
        b.wire_to("V", "Sel", 0);
        b.connect(("I", 0), ("Sel", 1));
        b.wire("Sel", "Y");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column("I", DataType::I32, vec![Scalar::I32(7)]);
        let r = run(&model, &tv, 1);
        assert!(r.has_diagnostic(DiagnosticKind::ArrayOutOfBounds));
        assert_eq!(out0(&r), &Value::scalar(Scalar::F64(20.0)), "clamped to last");
    }

    #[test]
    fn domain_error_for_sqrt_of_negative() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::F64);
        b.actor("Root", ActorKind::Sqrt);
        b.outport("Y", DataType::F64);
        b.wire("X", "Root");
        b.wire("Root", "Y");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column("X", DataType::F64, vec![Scalar::F64(-4.0)]);
        let r = run(&model, &tv, 1);
        assert!(r.has_diagnostic(DiagnosticKind::DomainError));
    }

    #[test]
    fn data_store_read_write_roundtrip() {
        // quantity += 3 each step, via data store (the CSEV pattern).
        let mut b = ModelBuilder::new("M");
        b.actor("Mem", ActorKind::DataStoreMemory { store: "q".into(), init: Scalar::I32(0) });
        b.actor("R", ActorKind::DataStoreRead { store: "q".into() });
        b.constant("Three", Scalar::I32(3));
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.actor("W", ActorKind::DataStoreWrite { store: "q".into() });
        b.outport("Y", DataType::I32);
        b.connect(("R", 0), ("Add", 0));
        b.connect(("Three", 0), ("Add", 1));
        b.wire("Add", "W");
        b.wire("Add", "Y");
        let model = b.build().unwrap();
        let r = run(&model, &TestVectors::new(), 4);
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(12)));
    }

    #[test]
    fn monitored_signals_are_logged() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::I32);
        b.actor("Neg", accmos_ir::Actor::new(ActorKind::Gain { gain: Scalar::I32(-1) }).monitored());
        b.actor("Scope", ActorKind::Scope);
        b.wire("X", "Neg");
        b.wire("Neg", "Scope");
        let model = b.build().unwrap();
        let tv = TestVectors::constant("X", Scalar::I32(5), 1);
        let r = run(&model, &tv, 2);
        let paths: Vec<&str> = r.signal_log.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"M_Neg_out"), "{paths:?}");
        assert!(paths.contains(&"M_Scope_in"), "{paths:?}");
        assert_eq!(r.signal_log[0].value, Value::scalar(Scalar::I32(-5)));
    }

    #[test]
    fn accelerator_matches_normal_outputs_without_reports() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::I32);
        b.actor("Sq", ActorKind::Math { op: accmos_ir::MathOp::Square });
        b.actor("D", ActorKind::UnitDelay { init: Scalar::I32(0) });
        b.actor("Add", ActorKind::Sum { signs: "+-".into() });
        b.outport("Y", DataType::I32);
        b.wire("X", "Sq");
        b.wire("Sq", "D");
        b.connect(("Sq", 0), ("Add", 0));
        b.connect(("D", 0), ("Add", 1));
        b.wire("Add", "Y");
        let model = b.build().unwrap();
        let pre = preprocess(&model).unwrap();
        let mut tv = TestVectors::new();
        tv.push_column(
            "X",
            DataType::I32,
            (0..7).map(|i| Scalar::I32(i * 3 - 10)).collect(),
        );
        let opts = SimOptions::steps(20);
        let normal = NormalEngine::new().run(&pre, &tv, &opts);
        let accel = AcceleratorEngine::new().run(&pre, &tv, &opts);
        assert_eq!(normal.output_digest, accel.output_digest);
        assert_eq!(normal.final_outputs, accel.final_outputs);
        assert!(accel.coverage.is_none());
        assert!(accel.diagnostics.is_empty());
    }

    #[test]
    fn relational_compares_mixed_integer_types_exactly() {
        let mut b = ModelBuilder::new("M");
        b.constant("Big", Scalar::U64(u64::MAX));
        b.constant("Neg", Scalar::I32(-1));
        b.actor("Gt", ActorKind::Relational { op: RelOp::Gt });
        b.outport("Y", DataType::Bool);
        b.connect(("Big", 0), ("Gt", 0));
        b.connect(("Neg", 0), ("Gt", 1));
        b.wire("Gt", "Y");
        let model = b.build().unwrap();
        let r = run(&model, &TestVectors::new(), 1);
        assert_eq!(out0(&r), &Value::scalar(Scalar::Bool(true)));
    }

    #[test]
    fn time_budget_stops_early() {
        let mut b = ModelBuilder::new("M");
        b.actor("Rand", ActorKind::RandomNumber { seed: 1 });
        b.outport("Y", DataType::F64);
        b.wire("Rand", "Y");
        let model = b.build().unwrap();
        let pre = preprocess(&model).unwrap();
        let opts = SimOptions::steps(u64::MAX / 2)
            .with_budget(std::time::Duration::from_millis(30));
        let r = NormalEngine::new().run(&pre, &TestVectors::new(), &opts);
        assert!(r.steps > 0);
        assert!(r.wall < std::time::Duration::from_secs(5));
    }

    #[test]
    fn merge_takes_last_active_input() {
        let mut b = ModelBuilder::new("M");
        b.inport("Sel", DataType::Bool);
        b.actor("NotSel", ActorKind::Logical { op: LogicOp::Not, inputs: 1 });
        b.subsystem("OnTrue", SystemKind::Enabled, |s| {
            s.constant("K", Scalar::I32(111));
            s.outport("y", DataType::I32);
            s.wire("K", "y");
        });
        b.subsystem("OnFalse", SystemKind::Enabled, |s| {
            s.constant("K", Scalar::I32(222));
            s.outport("y", DataType::I32);
            s.wire("K", "y");
        });
        b.actor("Merge", ActorKind::Merge { inputs: 2 });
        b.outport("Y", DataType::I32);
        b.wire("Sel", "NotSel");
        b.wire_to("Sel", "OnTrue", 0);
        b.wire_to("NotSel", "OnFalse", 0);
        b.connect(("OnTrue", 0), ("Merge", 0));
        b.connect(("OnFalse", 0), ("Merge", 1));
        b.wire("Merge", "Y");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column("Sel", DataType::Bool, vec![Scalar::Bool(true)]);
        let r = run(&model, &tv, 1);
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(111)));
        let mut tv = TestVectors::new();
        tv.push_column("Sel", DataType::Bool, vec![Scalar::Bool(false)]);
        let r = run(&model, &tv, 1);
        assert_eq!(out0(&r), &Value::scalar(Scalar::I32(222)));
    }

    #[test]
    fn saturation_covers_three_branches() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::F64);
        b.actor("Sat", ActorKind::Saturation { lo: -1.0, hi: 1.0 });
        b.outport("Y", DataType::F64);
        b.wire("X", "Sat");
        b.wire("Sat", "Y");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column(
            "X",
            DataType::F64,
            vec![Scalar::F64(-5.0), Scalar::F64(0.5), Scalar::F64(5.0)],
        );
        let r = run(&model, &tv, 3);
        assert_eq!(r.coverage.unwrap().percent(CoverageKind::Condition), 100.0);
        assert_eq!(out0(&r), &Value::scalar(Scalar::F64(1.0)));
    }

    #[test]
    fn vector_pipeline_mux_dot() {
        let mut b = ModelBuilder::new("M");
        b.inport("A", DataType::I64);
        b.inport("B", DataType::I64);
        b.actor("Mux", ActorKind::Mux { inputs: 2 });
        b.actor("Dot", ActorKind::DotProduct);
        b.outport("Y", DataType::I64);
        b.connect(("A", 0), ("Mux", 0));
        b.connect(("B", 0), ("Mux", 1));
        b.connect(("Mux", 0), ("Dot", 0));
        b.connect(("Mux", 0), ("Dot", 1));
        b.wire("Dot", "Y");
        let model = b.build().unwrap();
        let mut tv = TestVectors::new();
        tv.push_column("A", DataType::I64, vec![Scalar::I64(3)]);
        tv.push_column("B", DataType::I64, vec![Scalar::I64(4)]);
        let r = run(&model, &tv, 1);
        assert_eq!(out0(&r), &Value::scalar(Scalar::I64(25)));
    }
}
