//! A small, dependency-free, seed-deterministic PRNG.
//!
//! The generators in this crate only need reproducible streams with a
//! reasonable statistical spread — not cryptographic quality — so a
//! SplitMix64 stream (Steele et al., *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) is sufficient and keeps the crate free of
//! external dependencies. The API mirrors the subset of `rand` the
//! generators use (`seed_from_u64`, `gen_range`, `gen_bool`) so call
//! sites read the same.

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 pseudorandom number generator.
///
/// The same seed always produces the same stream, across platforms and
/// releases — the differential test suite depends on that.
///
/// # Examples
///
/// ```
/// use accmos_testgen::TestRng;
///
/// let mut a = TestRng::seed_from_u64(7);
/// let mut b = TestRng::seed_from_u64(7);
/// let x: u32 = a.gen_range(0..100u32);
/// assert_eq!(x, b.gen_range(0..100u32));
/// ```
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a `u64`.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next raw 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of the stream).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Ranges [`TestRng::gen_range`] can sample from.
///
/// Blanket-implemented for `Range` and `RangeInclusive` of every
/// [`Uniform`] type, mirroring `rand`'s `SampleRange` so that an integer
/// literal's type is inferred from how the sampled value is used.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut TestRng) -> T;
}

/// Types [`TestRng`] can sample uniformly from a bounded range.
pub trait Uniform: Copy + PartialOrd {
    /// A uniform value in `[lo, hi]` (both bounds inclusive).
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// The largest value strictly below `hi` (to turn `lo..hi` into
    /// `lo..=pred(hi)`; for floats this keeps `hi` excluded by sampling
    /// in `[0, 1)`).
    fn pred(hi: Self) -> Self;
}

impl<T: Uniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(self.start, T::pred(self.end), rng)
    }
}

impl<T: Uniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn pred(hi: $t) -> $t {
                hi - 1
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Uniform for i128 {
    fn sample_inclusive(lo: i128, hi: i128, rng: &mut TestRng) -> i128 {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        // Two's-complement modular span; zero means the full i128 range,
        // where every 128-bit pattern is a valid sample.
        let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
        if span == 0 {
            wide as i128
        } else {
            lo.wrapping_add((wide % span) as i128)
        }
    }
    fn pred(hi: i128) -> i128 {
        hi - 1
    }
}

impl Uniform for f64 {
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut TestRng) -> f64 {
        lo + rng.next_f64() * (hi - lo)
    }
    fn pred(hi: f64) -> f64 {
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::seed_from_u64(43);
        assert_ne!(TestRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let v = rng.gen_range(0..=3usize);
            assert!(v <= 3);
            let v = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&v));
            let v = rng.gen_range(i128::from(i64::MIN)..=i128::from(i64::MAX));
            assert!(v >= i128::from(i64::MIN) && v <= i128::from(i64::MAX));
        }
    }

    #[test]
    fn all_values_of_small_range_appear() {
        let mut rng = TestRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = TestRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
