//! # accmos-testgen
//!
//! Test-case and model generation for AccMoS-RS:
//!
//! - [`random_tests`] produces seeded random stimulus vectors for a
//!   preprocessed model (the paper's coverage experiment uses *"equivalent
//!   test cases generated through a random approach"*, §4);
//! - [`RandomModelGen`] produces seeded random, well-formed discrete
//!   models over the actor library, used by the differential tests that
//!   compare the interpreter against the generated C simulators
//!   bit-for-bit.
//!
//! ## Example
//!
//! ```
//! use accmos_testgen::{ModelGenConfig, RandomModelGen};
//!
//! let model = RandomModelGen::new(ModelGenConfig { seed: 7, actors: 20, ..Default::default() })
//!     .generate();
//! let pre = accmos_graph::preprocess(&model)?;
//! assert!(pre.flat.actors.len() >= 20);
//! # Ok::<(), accmos_ir::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use accmos_graph::PreprocessedModel;
use accmos_ir::{
    Actor, ActorKind, DataType, LogicOp, LookupMethod, MathOp, MinMaxOp, Model, ModelBuilder,
    RelOp, Scalar, ShiftDir, SwitchCriteria, SystemKind, TestVectors, TrigOp,
};
use std::fmt;
mod rng;
pub use rng::{SampleRange, TestRng, Uniform};

/// Generate seeded random test vectors for every root input of `pre`.
///
/// Values are drawn from a mix of small magnitudes, type boundaries and
/// full-range values so that both nominal paths and overflow/branch edges
/// get exercised.
pub fn random_tests(pre: &PreprocessedModel, rows: usize, seed: u64) -> TestVectors {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut tv = TestVectors::new();
    for id in &pre.flat.root_inports {
        let actor = pre.flat.actor(*id);
        let name = actor.path.name().to_owned();
        let dtype = actor.dtype;
        let values: Vec<Scalar> =
            (0..rows.max(1)).map(|_| random_scalar(&mut rng, dtype)).collect();
        tv.push_column(&name, dtype, values);
    }
    tv
}

/// One random scalar of the given type (boundary-biased).
pub fn random_scalar(rng: &mut TestRng, dtype: DataType) -> Scalar {
    let class = rng.gen_range(0..10u32);
    match dtype {
        DataType::Bool => Scalar::Bool(rng.gen_bool(0.5)),
        DataType::F32 => Scalar::F32(random_float(rng, class) as f32),
        DataType::F64 => Scalar::F64(random_float(rng, class)),
        t => {
            let v: i128 = match class {
                // small values around zero keep arithmetic mostly sane
                0..=5 => rng.gen_range(-8..=8),
                // mid-range
                6 | 7 => rng.gen_range(-1_000_000..=1_000_000),
                // type boundaries provoke wrap/downcast behaviour
                8 => t.max_f64() as i128,
                _ => t.min_f64() as i128,
            };
            Scalar::from_i128(t, v)
        }
    }
}

fn random_float(rng: &mut TestRng, class: u32) -> f64 {
    match class {
        0..=6 => rng.gen_range(-10.0..10.0),
        7 => rng.gen_range(-1e6..1e6),
        8 => 0.0,
        _ => rng.gen_range(-1.0..1.0) * 1e12,
    }
}

/// Configuration of the random model generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Approximate number of non-port actors to generate.
    pub actors: usize,
    /// Candidate data types for signals.
    pub dtypes: Vec<DataType>,
    /// Whether to include actors that evaluate through `f64` math
    /// (transcendentals, quantizers, lookup tables, sine sources). The
    /// interpreter and the generated C share one libm, so differential
    /// tests stay bit-exact on Linux/glibc.
    pub float_math: bool,
    /// Whether to include vector signals (`Mux`/`Demux`/`Selector`/
    /// `DotProduct` and element-wise vector arithmetic).
    pub vectors: bool,
    /// Whether to include conditional groups: Enabled/Triggered subsystems
    /// with a control port, stateful bodies (held state while disabled)
    /// and randomly-typed control signals. These exercise the scheduler's
    /// group gating and the analyzer's three-valued activity domain on
    /// structure nobody hand-wrote.
    pub conditional: bool,
    /// Whether conditional groups may contain a *nested* conditional
    /// subsystem (parent-chained groups), so flattening and group-gated
    /// scheduling see depth, not just breadth. Only effective together
    /// with [`ModelGenConfig::conditional`].
    pub nested: bool,
    /// Number of root input ports.
    pub inports: usize,
}

/// Why a [`ModelGenConfig`] cannot generate a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelGenError {
    /// `actors == 0`: the generator would emit a model with no computation
    /// between its ports.
    NoActors,
    /// `inports == 0`: every generated model draws stimulus through root
    /// input ports.
    NoInports,
    /// `dtypes` is empty: no signal type can be drawn.
    NoDtypes,
}

impl fmt::Display for ModelGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelGenError::NoActors => {
                write!(f, "ModelGenConfig.actors is 0; at least one actor is required")
            }
            ModelGenError::NoInports => {
                write!(f, "ModelGenConfig.inports is 0; at least one root input port is required")
            }
            ModelGenError::NoDtypes => {
                write!(f, "ModelGenConfig.dtypes is empty; at least one candidate data type is required")
            }
        }
    }
}

impl std::error::Error for ModelGenError {}

impl ModelGenConfig {
    /// Check the configuration can generate a model at all.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: zero actors, zero inports,
    /// or an empty dtype catalogue. Without this check those values
    /// surface later as opaque index panics deep in the generator.
    pub fn validate(&self) -> Result<(), ModelGenError> {
        if self.actors == 0 {
            return Err(ModelGenError::NoActors);
        }
        if self.inports == 0 {
            return Err(ModelGenError::NoInports);
        }
        if self.dtypes.is_empty() {
            return Err(ModelGenError::NoDtypes);
        }
        Ok(())
    }
}

impl Default for ModelGenConfig {
    fn default() -> ModelGenConfig {
        ModelGenConfig {
            seed: 0,
            actors: 24,
            dtypes: vec![
                DataType::I8,
                DataType::I16,
                DataType::I32,
                DataType::I64,
                DataType::U8,
                DataType::U16,
                DataType::U32,
                DataType::Bool,
            ],
            float_math: false,
            vectors: false,
            conditional: false,
            nested: false,
            inports: 2,
        }
    }
}

/// Seeded random generator of well-formed discrete models.
#[derive(Debug)]
pub struct RandomModelGen {
    config: ModelGenConfig,
}

impl RandomModelGen {
    /// A generator with the given configuration.
    pub fn new(config: ModelGenConfig) -> RandomModelGen {
        RandomModelGen { config }
    }

    /// Generate one model. The same configuration always produces the same
    /// model.
    ///
    /// # Panics
    ///
    /// Panics with the [`ModelGenError`] message when the configuration is
    /// invalid ([`ModelGenConfig::validate`]), and if the generated model
    /// fails structural validation — the latter would be a generator bug,
    /// and the differential test suite relies on it.
    pub fn generate(&self) -> Model {
        self.try_generate().unwrap_or_else(|e| panic!("invalid model generator config: {e}"))
    }

    /// Generate one model, reporting an invalid configuration as an error
    /// instead of panicking. Fuzz campaigns route through this so a bad
    /// trial plan is classified, never fatal.
    ///
    /// # Errors
    ///
    /// Returns [`ModelGenError`] when the configuration cannot generate a
    /// model (see [`ModelGenConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics if the generated model fails structural validation — that
    /// would be a generator bug, and the differential test suite relies
    /// on it.
    pub fn try_generate(&self) -> Result<Model, ModelGenError> {
        self.config.validate()?;
        Ok(self.generate_validated())
    }

    fn generate_validated(&self) -> Model {
        let cfg = &self.config;
        let mut rng = TestRng::seed_from_u64(cfg.seed);
        let mut b = ModelBuilder::new(format!("Rand{}", cfg.seed));

        let mut dtypes = cfg.dtypes.clone();
        if cfg.float_math {
            dtypes.push(DataType::F32);
            dtypes.push(DataType::F64);
        }

        // Pool of producible signals: (block name, dtype, width).
        let mut pool: Vec<(String, DataType, usize)> = Vec::new();

        // Scalar picker shared by control ports and subsystem inputs
        // (root inports are scalar, so the pool always has one).
        let pick_scalar =
            |rng: &mut TestRng, pool: &[(String, DataType, usize)]| -> (String, DataType, usize) {
                let scalars: Vec<&(String, DataType, usize)> =
                    pool.iter().filter(|(_, _, w)| *w == 1).collect();
                scalars[rng.gen_range(0..scalars.len())].clone()
            };

        for i in 0..cfg.inports {
            let dt = dtypes[rng.gen_range(0..dtypes.len())];
            let name = format!("In{i}");
            b.inport(&name, dt);
            pool.push((name, dt, 1));
        }

        for i in 0..cfg.actors {
            let name = format!("A{i}");
            let dt = dtypes[rng.gen_range(0..dtypes.len())];
            let int_dt = if dt == DataType::Bool || dt.is_float() { DataType::I16 } else { dt };
            let num_dt = if dt == DataType::Bool { DataType::I16 } else { dt };

            // Occasionally wrap state behind a conditional group: an
            // Enabled/Triggered subsystem whose control signal comes from
            // anywhere in the pool, with a stateful body so disabled
            // groups exercise held state, optionally nesting a second
            // conditional subsystem so flattening sees parent chains.
            if cfg.conditional && rng.gen_bool(0.10) {
                let n_in = rng.gen_range(1..=2usize);
                let srcs: Vec<(String, DataType, usize)> =
                    (0..n_in).map(|_| pick_scalar(&mut rng, &pool)).collect();
                let ctrl = pick_scalar(&mut rng, &pool);
                let kind =
                    if rng.gen_bool(0.5) { SystemKind::Enabled } else { SystemKind::Triggered };
                // Integer body: conditional semantics (gating, held state,
                // edge detection) are what this path targets; float and
                // vector math have their own generator paths.
                let body_dt = if dt == DataType::Bool || dt.is_float() { DataType::I32 } else { dt };
                let nest = cfg.nested && rng.gen_bool(0.4);
                let nest_kind =
                    if rng.gen_bool(0.5) { SystemKind::Triggered } else { SystemKind::Enabled };
                let cmp_op = RelOp::ALL[rng.gen_range(0..RelOp::ALL.len())];
                let gain = rng.gen_range(-3..=3i128);
                b.subsystem(&name, kind, |s| {
                    for (j, (_, sdt, _)) in srcs.iter().enumerate() {
                        s.inport(&format!("u{j}"), *sdt);
                    }
                    s.actor(
                        "Acc",
                        Actor::new(ActorKind::Sum { signs: "++".into() }).with_dtype(body_dt),
                    );
                    s.connect(("u0", 0), ("Acc", 0));
                    s.connect((if n_in > 1 { "u1" } else { "u0" }, 0), ("Acc", 1));
                    // State inside the group: held while the group is
                    // disabled, which is the interesting divergence
                    // surface between engines.
                    s.actor("D", ActorKind::UnitDelay { init: Scalar::zero(body_dt) });
                    s.connect(("Acc", 0), ("D", 0));
                    if nest {
                        s.actor(
                            "Cmp",
                            ActorKind::CompareToConstant {
                                op: cmp_op,
                                constant: Scalar::from_i128(DataType::I32, 1),
                            },
                        );
                        s.connect(("u0", 0), ("Cmp", 0));
                        s.subsystem("N", nest_kind, |t| {
                            t.inport("v", body_dt);
                            t.actor(
                                "G",
                                Actor::new(ActorKind::Gain {
                                    gain: Scalar::from_i128(body_dt, gain),
                                })
                                .with_dtype(body_dt),
                            );
                            t.connect(("v", 0), ("G", 0));
                            t.outport("w", body_dt);
                            t.connect(("G", 0), ("w", 0));
                        });
                        s.connect(("D", 0), ("N", 0));
                        s.connect(("Cmp", 0), ("N", 1)); // nested control port
                        s.outport("y", body_dt);
                        s.connect(("N", 0), ("y", 0));
                    } else {
                        s.outport("y", body_dt);
                        s.connect(("D", 0), ("y", 0));
                    }
                });
                for (j, (src, _, _)) in srcs.iter().enumerate() {
                    b.connect((src.as_str(), 0), (name.as_str(), j));
                }
                // The control port is the subsystem's last input.
                b.connect((ctrl.0.as_str(), 0), (name.as_str(), n_in));
                pool.push((name, body_dt, 1));
                continue;
            }

            // Occasionally build a vector via Mux, or consume one.
            if cfg.vectors && rng.gen_bool(0.12) && pool.len() >= 2 {
                let n = rng.gen_range(2..=3usize);
                let srcs: Vec<(String, DataType, usize)> =
                    (0..n).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect();
                let width: usize = srcs.iter().map(|(_, _, w)| w).sum();
                b.actor(&name, Actor::new(ActorKind::Mux { inputs: n }).with_dtype(num_dt));
                for (port, (src, _, _)) in srcs.iter().enumerate() {
                    b.connect((src.as_str(), 0), (name.as_str(), port));
                }
                pool.push((name, num_dt, width));
                continue;
            }
            if cfg.vectors && rng.gen_bool(0.10) {
                if let Some((src, sdt, w)) =
                    pool.iter().filter(|(_, _, w)| *w > 1).cloned().next_back()
                {
                    match rng.gen_range(0..3u32) {
                        0 => {
                            // Static selector of one element.
                            let idx = rng.gen_range(0..w);
                            b.actor(
                                &name,
                                ActorKind::Selector { indices: vec![idx], dynamic: false },
                            );
                            b.connect((src.as_str(), 0), (name.as_str(), 0));
                            pool.push((name, sdt, 1));
                        }
                        1 => {
                            // Dot product with itself (exact overflow site).
                            b.actor(&name, Actor::new(ActorKind::DotProduct).with_dtype(int_dt));
                            b.connect((src.as_str(), 0), (name.as_str(), 0));
                            b.connect((src.as_str(), 0), (name.as_str(), 1));
                            pool.push((name, int_dt, 1));
                        }
                        _ => {
                            b.actor(&name, Actor::new(ActorKind::SumOfElements).with_dtype(int_dt));
                            b.connect((src.as_str(), 0), (name.as_str(), 0));
                            pool.push((name, int_dt, 1));
                        }
                    }
                    continue;
                }
            }

            // Pick data inputs with compatible widths (scalar broadcast).
            let first = pool[rng.gen_range(0..pool.len())].clone();
            let width = first.2;
            let pick_compat = |rng: &mut TestRng, pool: &[(String, DataType, usize)]| -> (String, DataType, usize) {
                let compat: Vec<&(String, DataType, usize)> =
                    pool.iter().filter(|(_, _, w)| *w == 1 || *w == width).collect();
                compat[rng.gen_range(0..compat.len())].clone()
            };
            let float_choice = cfg.float_math && rng.gen_bool(0.25);
            let kind: ActorKind = if float_choice {
                let fdt = if dt.is_float() { dt } else { DataType::F64 };
                let _ = fdt;
                match rng.gen_range(0..7u32) {
                    0 => ActorKind::Sqrt,
                    1 => ActorKind::Math {
                        op: [MathOp::Exp, MathOp::Log, MathOp::Square, MathOp::Reciprocal]
                            [rng.gen_range(0..4)],
                    },
                    2 => ActorKind::Trig {
                        op: [TrigOp::Sin, TrigOp::Cos, TrigOp::Tanh, TrigOp::Atan]
                            [rng.gen_range(0..4)],
                    },
                    3 => ActorKind::Quantizer { interval: 0.5 },
                    4 => ActorKind::Lookup1D {
                        breakpoints: vec![-4.0, -1.0, 0.0, 2.0, 5.0],
                        table: vec![10.0, 4.0, 0.5, -3.0, 8.0],
                        method: [LookupMethod::Interpolate, LookupMethod::Nearest, LookupMethod::Below]
                            [rng.gen_range(0..3)],
                    },
                    5 => ActorKind::SineWave {
                        amplitude: 2.0,
                        freq: 0.125,
                        phase: 0.5,
                        bias: 0.25,
                    },
                    _ => ActorKind::Polynomial { coeffs: vec![0.5, -1.0, 2.0] },
                }
            } else {
                match rng.gen_range(0..16u32) {
                    0 => ActorKind::Sum {
                        signs: if rng.gen_bool(0.5) { "++" } else { "+-" }.into(),
                    },
                    1 => ActorKind::Product {
                        ops: if rng.gen_bool(0.7) { "**" } else { "*/" }.into(),
                    },
                    2 => ActorKind::Gain { gain: Scalar::from_i128(int_dt, rng.gen_range(-4..=4)) },
                    3 => ActorKind::Bias { bias: Scalar::from_i128(int_dt, rng.gen_range(-9..=9)) },
                    4 => ActorKind::Abs,
                    5 => ActorKind::MinMax {
                        op: if rng.gen_bool(0.5) { MinMaxOp::Min } else { MinMaxOp::Max },
                        inputs: 2,
                    },
                    6 => ActorKind::Relational {
                        op: RelOp::ALL[rng.gen_range(0..RelOp::ALL.len())],
                    },
                    7 => ActorKind::Logical {
                        op: [LogicOp::And, LogicOp::Or, LogicOp::Xor, LogicOp::Not]
                            [rng.gen_range(0..4)],
                        inputs: 2,
                    },
                    8 => ActorKind::CompareToConstant {
                        op: RelOp::ALL[rng.gen_range(0..RelOp::ALL.len())],
                        constant: Scalar::from_i128(DataType::I32, rng.gen_range(-5..=5)),
                    },
                    9 => ActorKind::Bitwise {
                        op: [accmos_ir::BitOp::And, accmos_ir::BitOp::Or, accmos_ir::BitOp::Xor]
                            [rng.gen_range(0..3)],
                    },
                    10 => ActorKind::Shift {
                        dir: if rng.gen_bool(0.5) { ShiftDir::Left } else { ShiftDir::Right },
                        amount: rng.gen_range(0..6),
                    },
                    11 => ActorKind::Switch {
                        criteria: match rng.gen_range(0..3u32) {
                            0 => SwitchCriteria::NotEqualZero,
                            1 => SwitchCriteria::Greater(0.0),
                            _ => SwitchCriteria::GreaterEqual(1.0),
                        },
                    },
                    12 => ActorKind::UnitDelay { init: Scalar::zero(num_dt) },
                    13 => ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::zero(int_dt) },
                    14 => ActorKind::Saturation { lo: -100.0, hi: 100.0 },
                    _ => ActorKind::DataTypeConversion {
                        to: dtypes[rng.gen_range(0..dtypes.len())],
                    },
                }
            };

            // Integer-only ops must land on an integer output type; most
            // other kinds get an explicit type so wrap semantics are hit.
            let forced_dtype: Option<DataType> = match &kind {
                ActorKind::Bitwise { .. } | ActorKind::Shift { .. } => Some(int_dt),
                ActorKind::UnitDelay { .. } | ActorKind::DiscreteIntegrator { .. } => None,
                ActorKind::DataTypeConversion { .. }
                | ActorKind::Relational { .. }
                | ActorKind::Logical { .. }
                | ActorKind::CompareToConstant { .. } => None,
                ActorKind::Sqrt
                | ActorKind::Math { .. }
                | ActorKind::Trig { .. }
                | ActorKind::Quantizer { .. }
                | ActorKind::Lookup1D { .. }
                | ActorKind::SineWave { .. }
                | ActorKind::Polynomial { .. } => {
                    Some(if dt.is_float() { dt } else { DataType::F64 })
                }
                _ => Some(num_dt),
            };
            let mut actor = Actor::new(kind.clone());
            if let Some(fdt) = forced_dtype {
                actor.dtype = Some(fdt);
            }
            // Loop breakers must carry an explicit width for vector inputs.
            if kind.breaks_algebraic_loops() && width > 1 {
                actor.width = Some(width);
            }
            b.actor(&name, actor);
            for port in 0..kind.in_count() {
                let (src, _, _) = match &kind {
                    // Control/selector ports must be scalar.
                    ActorKind::Switch { .. } if port == 1 => pick_scalar(&mut rng, &pool),
                    _ if port == 0 => first.clone(),
                    _ => pick_compat(&mut rng, &pool),
                };
                b.connect((src.as_str(), 0), (name.as_str(), port));
            }
            let out_dt = if kind.forces_bool_output() {
                DataType::Bool
            } else {
                match &kind {
                    ActorKind::DataTypeConversion { to } => *to,
                    ActorKind::UnitDelay { init }
                    | ActorKind::DiscreteIntegrator { init, .. } => init.dtype(),
                    _ => forced_dtype.unwrap_or(num_dt),
                }
            };
            if kind.out_count() > 0 {
                pool.push((name, out_dt, width));
            }
        }

        // One or two outports from the most recently produced signals.
        let outs = 2usize.min(pool.len());
        for o in 0..outs {
            let (src, dt, w) = pool[pool.len() - 1 - o].clone();
            let name = format!("Out{o}");
            let mut out = Actor::new(ActorKind::Outport { index: o }).with_dtype(dt);
            if w > 1 {
                out = out.with_width(w);
            }
            b.actor(&name, out);
            b.connect((src.as_str(), 0), (name.as_str(), 0));
        }

        b.build().expect("random model generator produced an invalid model")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_graph::preprocess;

    #[test]
    fn random_models_are_valid_and_deterministic() {
        for seed in 0..25 {
            let cfg = ModelGenConfig { seed, ..ModelGenConfig::default() };
            let m1 = RandomModelGen::new(cfg.clone()).generate();
            let m2 = RandomModelGen::new(cfg).generate();
            assert_eq!(m1, m2, "seed {seed} not deterministic");
            let pre = preprocess(&m1).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!pre.flat.order.is_empty());
        }
    }

    #[test]
    fn invalid_configs_yield_descriptive_errors_not_panics() {
        let zero_actors = ModelGenConfig { actors: 0, ..ModelGenConfig::default() };
        assert_eq!(zero_actors.validate(), Err(ModelGenError::NoActors));
        assert!(RandomModelGen::new(zero_actors).try_generate().is_err());

        let zero_inports = ModelGenConfig { inports: 0, ..ModelGenConfig::default() };
        assert_eq!(zero_inports.validate(), Err(ModelGenError::NoInports));
        let err = RandomModelGen::new(zero_inports).try_generate().unwrap_err();
        assert!(err.to_string().contains("inports"), "error names the field: {err}");

        let no_dtypes = ModelGenConfig { dtypes: vec![], ..ModelGenConfig::default() };
        assert_eq!(no_dtypes.validate(), Err(ModelGenError::NoDtypes));
        let err = RandomModelGen::new(no_dtypes).try_generate().unwrap_err();
        assert!(err.to_string().contains("dtypes"), "error names the field: {err}");

        assert!(ModelGenConfig::default().validate().is_ok());
    }

    #[test]
    fn conditional_models_contain_groups_and_are_deterministic() {
        let mut saw_group = false;
        for seed in 0..20 {
            let cfg = ModelGenConfig { seed, conditional: true, ..ModelGenConfig::default() };
            let m1 = RandomModelGen::new(cfg.clone()).generate();
            let m2 = RandomModelGen::new(cfg).generate();
            assert_eq!(m1, m2, "seed {seed} not deterministic");
            let pre = preprocess(&m1).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            saw_group |= !pre.flat.groups.is_empty();
        }
        assert!(saw_group, "20 conditional seeds should produce at least one group");
    }

    #[test]
    fn nested_models_chain_group_parents() {
        let mut saw_nested = false;
        for seed in 0..40 {
            let cfg = ModelGenConfig {
                seed,
                conditional: true,
                nested: true,
                ..ModelGenConfig::default()
            };
            let model = RandomModelGen::new(cfg).generate();
            let pre = preprocess(&model).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            saw_nested |= pre.flat.groups.iter().any(|g| g.parent.is_some());
        }
        assert!(saw_nested, "40 nested seeds should produce at least one parent chain");
    }

    #[test]
    fn random_tests_cover_all_inports() {
        let model =
            RandomModelGen::new(ModelGenConfig { seed: 3, ..Default::default() }).generate();
        let pre = preprocess(&model).unwrap();
        let tv = random_tests(&pre, 16, 99);
        assert_eq!(tv.width(), pre.flat.root_inports.len());
        assert_eq!(tv.rows(), 16);
        // deterministic per seed
        let tv2 = random_tests(&pre, 16, 99);
        assert_eq!(tv, tv2);
        assert_ne!(tv, random_tests(&pre, 16, 100));
    }

    #[test]
    fn boundary_values_appear() {
        let mut rng = TestRng::seed_from_u64(1);
        let mut hit_max = false;
        for _ in 0..200 {
            if random_scalar(&mut rng, DataType::I8) == Scalar::I8(i8::MAX) {
                hit_max = true;
            }
        }
        assert!(hit_max, "boundary class should appear within 200 draws");
    }

    #[test]
    fn csv_roundtrip_of_random_tests() {
        let model =
            RandomModelGen::new(ModelGenConfig { seed: 11, ..Default::default() }).generate();
        let pre = preprocess(&model).unwrap();
        let tv = random_tests(&pre, 8, 5);
        let back = TestVectors::from_csv(&tv.to_csv()).unwrap();
        for col in 0..tv.width() {
            for step in 0..8 {
                assert_eq!(tv.value_at(col, step), back.value_at(col, step));
            }
        }
    }
}
