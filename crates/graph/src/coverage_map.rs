//! Coverage-point enumeration.
//!
//! Both simulation paths — the interpretive engine and the generated C
//! code — must agree on which bitmap bit belongs to which coverage point.
//! [`CoverageIndex`] enumerates all points of a preprocessed model once, in
//! execution order, following the paper's metric definitions (§3.2A):
//!
//! - **Actor**: one point per actor (`actorBitmap[actorID] = 1`);
//! - **Condition**: one point per branch outcome of each branch actor,
//!   plus two per conditional group (its enable condition, true and false);
//! - **Decision**: two points (true/false outcome) per boolean-logic actor;
//! - **MC/DC**: two points per input of each combination condition — the
//!   input was observed independently driving the decision as true and as
//!   false (masking test).

use crate::flat::{ActorId, FlatModel, GroupId};
use accmos_ir::{CoverageKind, CoverageMap};

/// Dense bitmap indices for every coverage point of one model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageIndex {
    /// The registered points (totals and descriptions).
    pub map: CoverageMap,
    /// Per actor: its actor-coverage bit.
    pub actor_point: Vec<usize>,
    /// Per actor: `(first_bit, outcome_count)` for branch actors.
    pub condition: Vec<Option<(usize, usize)>>,
    /// Per actor: first of two decision bits (`+0` true, `+1` false).
    pub decision: Vec<Option<usize>>,
    /// Per actor: `(first_bit, input_count)`; two MC/DC bits per input
    /// (`first + 2*i` shown-true, `first + 2*i + 1` shown-false).
    pub mcdc: Vec<Option<(usize, usize)>>,
    /// Per group: first of two condition bits (`+0` active, `+1` inactive).
    pub group_condition: Vec<usize>,
}

impl CoverageIndex {
    /// Enumerate the coverage points of `flat` (requires a schedule).
    pub fn build(flat: &FlatModel) -> CoverageIndex {
        let n = flat.actors.len();
        let mut index = CoverageIndex {
            map: CoverageMap::new(),
            actor_point: vec![0; n],
            condition: vec![None; n],
            decision: vec![None; n],
            mcdc: vec![None; n],
            group_condition: vec![0; flat.groups.len()],
        };

        for actor in flat.ordered_actors() {
            let key = actor.path.key();
            index.actor_point[actor.id.0] = index.map.add(CoverageKind::Actor, &key, "executed");

            if let Some(outcomes) = actor.kind.branch_outcomes() {
                let base = index.map.add(
                    CoverageKind::Condition,
                    &key,
                    format!("branch 0 of {outcomes}"),
                );
                for i in 1..outcomes {
                    index.map.add(CoverageKind::Condition, &key, format!("branch {i} of {outcomes}"));
                }
                index.condition[actor.id.0] = Some((base, outcomes));
            }

            if actor.kind.contains_boolean_logic() {
                let base = index.map.add(CoverageKind::Decision, &key, "outcome true");
                index.map.add(CoverageKind::Decision, &key, "outcome false");
                index.decision[actor.id.0] = Some(base);
            }

            if actor.kind.is_combination_condition() {
                let inputs = actor.inputs.len();
                let mut first = None;
                for i in 0..inputs {
                    let t = index.map.add(
                        CoverageKind::Mcdc,
                        &key,
                        format!("condition {i} independently true"),
                    );
                    index.map.add(
                        CoverageKind::Mcdc,
                        &key,
                        format!("condition {i} independently false"),
                    );
                    first.get_or_insert(t);
                }
                index.mcdc[actor.id.0] = first.map(|f| (f, inputs));
            }
        }

        for group in &flat.groups {
            let key = group.path.key();
            let base = index.map.add(CoverageKind::Condition, &key, "group active");
            index.map.add(CoverageKind::Condition, &key, "group inactive");
            index.group_condition[group.id.0] = base;
        }

        index
    }

    /// Actor-coverage bit of `actor`.
    pub fn actor_bit(&self, actor: ActorId) -> usize {
        self.actor_point[actor.0]
    }

    /// Condition bits of a group.
    pub fn group_bits(&self, group: GroupId) -> (usize, usize) {
        let base = self.group_condition[group.0];
        (base, base + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flatten::flatten, schedule::schedule};
    use accmos_ir::{
        ActorKind, DataType, LogicOp, ModelBuilder, RelOp, Scalar, SwitchCriteria, SystemKind,
    };

    fn prep(b: ModelBuilder) -> FlatModel {
        let mut flat = flatten(&b.build().unwrap()).unwrap();
        schedule(&mut flat).unwrap();
        flat
    }

    #[test]
    fn counts_by_metric() {
        let mut b = ModelBuilder::new("M");
        b.inport("A", DataType::F64);
        b.inport("B", DataType::F64);
        b.actor("Lt", ActorKind::Relational { op: RelOp::Lt });
        b.actor("Gt", ActorKind::Relational { op: RelOp::Gt });
        b.actor("And", ActorKind::Logical { op: LogicOp::And, inputs: 2 });
        b.actor("Sw", ActorKind::Switch { criteria: SwitchCriteria::NotEqualZero });
        b.outport("Y", DataType::F64);
        b.connect(("A", 0), ("Lt", 0));
        b.connect(("B", 0), ("Lt", 1));
        b.connect(("A", 0), ("Gt", 0));
        b.connect(("B", 0), ("Gt", 1));
        b.connect(("Lt", 0), ("And", 0));
        b.connect(("Gt", 0), ("And", 1));
        b.connect(("A", 0), ("Sw", 0));
        b.connect(("And", 0), ("Sw", 1));
        b.connect(("B", 0), ("Sw", 2));
        b.wire("Sw", "Y");
        let flat = prep(b);
        let idx = CoverageIndex::build(&flat);
        assert_eq!(idx.map.total(CoverageKind::Actor), 7);
        assert_eq!(idx.map.total(CoverageKind::Condition), 2); // switch branches
        assert_eq!(idx.map.total(CoverageKind::Decision), 6); // Lt, Gt, And
        assert_eq!(idx.map.total(CoverageKind::Mcdc), 4); // 2 inputs x 2
        let and = flat.actors.iter().find(|a| a.path.key() == "M_And").unwrap();
        assert_eq!(idx.mcdc[and.id.0].unwrap().1, 2);
        assert!(idx.decision[and.id.0].is_some());
    }

    #[test]
    fn group_condition_points_registered() {
        let mut b = ModelBuilder::new("M");
        b.constant("En", Scalar::Bool(true));
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.constant("K", Scalar::F64(1.0));
            s.outport("y", DataType::F64);
            s.wire("K", "y");
        });
        b.outport("Y", DataType::F64);
        b.wire_to("En", "Sub", 0);
        b.wire("Sub", "Y");
        let flat = prep(b);
        let idx = CoverageIndex::build(&flat);
        assert_eq!(idx.map.total(CoverageKind::Condition), 2);
        let (t, f) = idx.group_bits(GroupId(0));
        assert_eq!(f, t + 1);
        let pts = idx.map.points(CoverageKind::Condition);
        assert!(pts[t].detail.contains("active"));
    }

    #[test]
    fn actor_bits_follow_execution_order() {
        let mut b = ModelBuilder::new("M");
        b.outport("Y", DataType::I32);
        b.constant("C", Scalar::I32(1));
        b.wire("C", "Y");
        let flat = prep(b);
        let idx = CoverageIndex::build(&flat);
        // C executes before Y even though declared after.
        let c = flat.actors.iter().find(|a| a.path.key() == "M_C").unwrap();
        let y = flat.actors.iter().find(|a| a.path.key() == "M_Y").unwrap();
        assert!(idx.actor_bit(c.id) < idx.actor_bit(y.id));
    }
}
