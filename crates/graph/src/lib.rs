//! # accmos-graph
//!
//! The *Model Preprocessing* step of AccMoS-RS (paper §3.1): subsystem
//! [flattening](flatten()), data-flow [scheduling](schedule()) via
//! topological sort with delay-broken feedback loops, signal type/width
//! [resolution](resolve()), and [coverage-point enumeration](CoverageIndex)
//! shared by the interpreter and the code generator.
//!
//! Use [`preprocess`] to run the whole pipeline:
//!
//! ```
//! use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar};
//!
//! let mut b = ModelBuilder::new("M");
//! b.inport("In", DataType::I32);
//! b.actor("Twice", ActorKind::Gain { gain: Scalar::I32(2) });
//! b.outport("Out", DataType::I32);
//! b.wire("In", "Twice");
//! b.wire("Twice", "Out");
//! let pre = accmos_graph::preprocess(&b.build()?)?;
//! assert_eq!(pre.flat.order.len(), 3);
//! # Ok::<(), accmos_ir::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coverage_map;
mod flat;
mod flatten;
mod resolve;
mod schedule;

pub use coverage_map::CoverageIndex;
pub use flat::{
    ActorId, ExecGroup, FlatActor, FlatModel, GroupId, SignalId, SignalInfo, StoreInfo,
};
pub use flatten::flatten;
pub use resolve::resolve;
pub use schedule::schedule;

use accmos_ir::{Model, ModelError};

/// A fully preprocessed model: flattened, scheduled, type-resolved and with
/// its coverage points enumerated.
#[derive(Debug, Clone, PartialEq)]
pub struct PreprocessedModel {
    /// The flat model with execution order and resolved signals.
    pub flat: FlatModel,
    /// Bitmap indices for every coverage point.
    pub coverage: CoverageIndex,
}

/// Run the whole preprocessing pipeline on a hierarchical model.
///
/// # Errors
///
/// Propagates validation errors, [`ModelError::AlgebraicLoop`] from the
/// scheduler and [`ModelError::TypeMismatch`] from resolution.
pub fn preprocess(model: &Model) -> Result<PreprocessedModel, ModelError> {
    model.validate()?;
    let mut flat = flatten(model)?;
    schedule(&mut flat)?;
    resolve(&mut flat)?;
    let coverage = CoverageIndex::build(&flat);
    Ok(PreprocessedModel { flat, coverage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar};

    #[test]
    fn preprocess_resolves_types_and_widths() {
        let mut b = ModelBuilder::new("M");
        b.inport("In", DataType::I16);
        b.actor("Abs", ActorKind::Abs);
        b.actor("Cvt", ActorKind::DataTypeConversion { to: DataType::I8 });
        b.outport("Out", DataType::I8);
        b.wire("In", "Abs");
        b.wire("Abs", "Cvt");
        b.wire("Cvt", "Out");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let abs = pre.flat.actors.iter().find(|a| a.path.key() == "M_Abs").unwrap();
        assert_eq!(abs.dtype, DataType::I16, "Abs inherits from its input");
        let cvt = pre.flat.actors.iter().find(|a| a.path.key() == "M_Cvt").unwrap();
        assert_eq!(cvt.dtype, DataType::I8);
        assert_eq!(pre.flat.signal(cvt.outputs[0]).name, "M_Cvt_out");
    }

    #[test]
    fn boolean_actors_force_bool() {
        let mut b = ModelBuilder::new("M");
        b.inport("A", DataType::F64);
        b.inport("B", DataType::F64);
        b.actor("Lt", ActorKind::Relational { op: accmos_ir::RelOp::Lt });
        b.outport("Y", DataType::Bool);
        b.connect(("A", 0), ("Lt", 0));
        b.connect(("B", 0), ("Lt", 1));
        b.wire("Lt", "Y");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let lt = pre.flat.actors.iter().find(|a| a.path.key() == "M_Lt").unwrap();
        assert_eq!(lt.dtype, DataType::Bool);
    }

    #[test]
    fn vector_widths_propagate_through_mux_demux() {
        let mut b = ModelBuilder::new("M");
        b.inport("A", DataType::F32);
        b.inport("B", DataType::F32);
        b.actor("Mux", ActorKind::Mux { inputs: 2 });
        b.actor("Demux", ActorKind::Demux { outputs: 2 });
        b.outport("Y0", DataType::F32);
        b.outport("Y1", DataType::F32);
        b.connect(("A", 0), ("Mux", 0));
        b.connect(("B", 0), ("Mux", 1));
        b.wire("Mux", "Demux");
        b.connect(("Demux", 0), ("Y0", 0));
        b.connect(("Demux", 1), ("Y1", 0));
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let mux = pre.flat.actors.iter().find(|a| a.path.key() == "M_Mux").unwrap();
        assert_eq!(mux.width, 2);
        let demux = pre.flat.actors.iter().find(|a| a.path.key() == "M_Demux").unwrap();
        assert_eq!(demux.width, 1);
        assert_eq!(pre.flat.signal(demux.outputs[1]).name, "M_Demux_out1");
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut b = ModelBuilder::new("M");
        b.actor(
            "V3",
            accmos_ir::Actor::new(ActorKind::Constant {
                value: accmos_ir::Value::vector(vec![
                    Scalar::F64(1.0),
                    Scalar::F64(2.0),
                    Scalar::F64(3.0),
                ]),
            }),
        );
        b.actor(
            "V2",
            accmos_ir::Actor::new(ActorKind::Constant {
                value: accmos_ir::Value::vector(vec![Scalar::F64(1.0), Scalar::F64(2.0)]),
            }),
        );
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.outport("Y", DataType::F64);
        b.connect(("V3", 0), ("Add", 0));
        b.connect(("V2", 0), ("Add", 1));
        b.wire("Add", "Y");
        let err = preprocess(&b.build().unwrap()).unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }), "{err}");
    }

    #[test]
    fn bitwise_on_floats_rejected() {
        let mut b = ModelBuilder::new("M");
        b.inport("A", DataType::F64);
        b.inport("B", DataType::F64);
        b.actor("X", ActorKind::Bitwise { op: accmos_ir::BitOp::And });
        b.outport("Y", DataType::F64);
        b.connect(("A", 0), ("X", 0));
        b.connect(("B", 0), ("X", 1));
        b.wire("X", "Y");
        assert!(matches!(
            preprocess(&b.build().unwrap()).unwrap_err(),
            ModelError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn delay_dtype_comes_from_init() {
        let mut b = ModelBuilder::new("M");
        b.inport("In", DataType::I64);
        b.actor("D", ActorKind::UnitDelay { init: Scalar::I64(0) });
        b.outport("Out", DataType::I64);
        b.wire("In", "D");
        b.wire("D", "Out");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let d = pre.flat.actors.iter().find(|a| a.path.key() == "M_D").unwrap();
        assert_eq!(d.dtype, DataType::I64);
    }

    #[test]
    fn static_selector_bounds_checked() {
        let mut b = ModelBuilder::new("M");
        b.actor(
            "V",
            accmos_ir::Actor::new(ActorKind::Constant {
                value: accmos_ir::Value::vector(vec![Scalar::F64(1.0), Scalar::F64(2.0)]),
            }),
        );
        b.actor("Sel", ActorKind::Selector { indices: vec![5], dynamic: false });
        b.outport("Y", DataType::F64);
        b.wire("V", "Sel");
        b.wire("Sel", "Y");
        assert!(matches!(
            preprocess(&b.build().unwrap()).unwrap_err(),
            ModelError::TypeMismatch { .. }
        ));
    }
}
