//! Execution-order scheduling.
//!
//! The paper's *schedule convert* module employs *"a directed computation
//! graph to analyze the data flow of all signals"* and obtains *"the
//! execution order of all actors through a topological sorting technique"*
//! (§3.1). Feedback cycles are legal only through delay-class actors
//! (`UnitDelay`, `Delay`, `Memory`, `DiscreteIntegrator`), whose outputs
//! depend on state rather than on the current step's inputs: their data
//! edges are cut, and their state updates run at the end of each step.

use crate::flat::{ActorId, FlatModel};
use accmos_ir::ModelError;
use std::collections::BTreeSet;

/// Compute the execution order of `flat` and store it in `flat.order`.
///
/// The sort is deterministic: among ready actors, the lowest actor id
/// (declaration order) executes first, so the interpreter and the code
/// generator emit identical orders.
///
/// # Errors
///
/// Returns [`ModelError::AlgebraicLoop`] with the loop members if a cycle
/// is not broken by a delay-class actor.
pub fn schedule(flat: &mut FlatModel) -> Result<(), ModelError> {
    let n = flat.actors.len();
    let mut successors: Vec<Vec<ActorId>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];

    let add_edge = |successors: &mut Vec<Vec<ActorId>>, indegree: &mut Vec<usize>, from: ActorId, to: ActorId| {
        if from == to {
            return; // self-loop through state is legal only on cut edges
        }
        successors[from.0].push(to);
        indegree[to.0] += 1;
    };

    for actor in &flat.actors {
        // Data edges, unless the actor's output ignores current inputs.
        if !actor.kind.breaks_algebraic_loops() {
            for sig in &actor.inputs {
                let src = flat.signals[sig.0].source;
                add_edge(&mut successors, &mut indegree, src, actor.id);
            }
        }
        // Control edges: every member of a conditional group must run
        // after the group's control signal is produced.
        for gid in flat.enclosing_groups(actor) {
            let src = flat.signals[flat.groups[gid.0].control.0].source;
            add_edge(&mut successors, &mut indegree, src, actor.id);
        }
    }

    let mut ready: BTreeSet<ActorId> =
        (0..n).map(ActorId).filter(|id| indegree[id.0] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&next) = ready.iter().next() {
        ready.remove(&next);
        order.push(next);
        for &succ in &successors[next.0] {
            indegree[succ.0] -= 1;
            if indegree[succ.0] == 0 {
                ready.insert(succ);
            }
        }
    }

    if order.len() != n {
        let members = flat
            .actors
            .iter()
            .filter(|a| indegree[a.id.0] > 0)
            .map(|a| a.path.to_string())
            .collect();
        return Err(ModelError::AlgebraicLoop { members });
    }
    flat.order = order;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::flatten;
    use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar, SystemKind};

    fn order_keys(flat: &FlatModel) -> Vec<String> {
        flat.ordered_actors().map(|a| a.path.key()).collect()
    }

    #[test]
    fn order_respects_dataflow() {
        let mut b = ModelBuilder::new("M");
        // Declare out of dataflow order on purpose.
        b.outport("Out", DataType::I32);
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.inport("In", DataType::I32);
        b.constant("C", Scalar::I32(1));
        b.connect(("In", 0), ("Add", 0));
        b.connect(("C", 0), ("Add", 1));
        b.wire("Add", "Out");
        let mut flat = flatten(&b.build().unwrap()).unwrap();
        schedule(&mut flat).unwrap();
        let keys = order_keys(&flat);
        let pos = |k: &str| keys.iter().position(|x| x == k).unwrap();
        assert!(pos("M_In") < pos("M_Add"));
        assert!(pos("M_C") < pos("M_Add"));
        assert!(pos("M_Add") < pos("M_Out"));
    }

    #[test]
    fn delay_breaks_feedback_loop() {
        // counter: Delay -> Add(+1) -> back to Delay
        let mut b = ModelBuilder::new("M");
        b.constant("One", Scalar::I32(1));
        b.actor("Acc", ActorKind::UnitDelay { init: Scalar::I32(0) });
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.outport("Out", DataType::I32);
        b.connect(("Acc", 0), ("Add", 0));
        b.connect(("One", 0), ("Add", 1));
        b.connect(("Add", 0), ("Acc", 0));
        b.wire("Add", "Out");
        let mut flat = flatten(&b.build().unwrap()).unwrap();
        schedule(&mut flat).unwrap();
        let keys = order_keys(&flat);
        let pos = |k: &str| keys.iter().position(|x| x == k).unwrap();
        // The delay emits before the adder consumes it.
        assert!(pos("M_Acc") < pos("M_Add"));
    }

    #[test]
    fn algebraic_loop_detected() {
        let mut b = ModelBuilder::new("M");
        b.actor("A", ActorKind::Abs);
        b.actor("B", ActorKind::Abs);
        b.wire("A", "B");
        b.wire("B", "A");
        let mut flat = flatten(&b.build().unwrap()).unwrap();
        let err = schedule(&mut flat).unwrap_err();
        match err {
            ModelError::AlgebraicLoop { members } => {
                assert_eq!(members.len(), 2);
                assert!(members.contains(&"M/A".to_string()));
            }
            other => panic!("expected loop, got {other}"),
        }
    }

    #[test]
    fn control_signal_scheduled_before_group_members() {
        let mut b = ModelBuilder::new("M");
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.constant("K", Scalar::F64(1.0));
            s.outport("y", DataType::F64);
            s.wire("K", "y");
        });
        b.constant("En", Scalar::Bool(true));
        b.outport("Y", DataType::F64);
        b.wire_to("En", "Sub", 0);
        b.wire("Sub", "Y");
        let mut flat = flatten(&b.build().unwrap()).unwrap();
        schedule(&mut flat).unwrap();
        let keys = order_keys(&flat);
        let pos = |k: &str| keys.iter().position(|x| x == k).unwrap();
        assert!(pos("M_En") < pos("M_Sub_K"), "{keys:?}");
        assert!(pos("M_En") < pos("M_Sub_y"), "{keys:?}");
    }

    #[test]
    fn deterministic_tiebreak_by_declaration_order() {
        let mut b = ModelBuilder::new("M");
        b.constant("Z", Scalar::I32(0));
        b.constant("A", Scalar::I32(1));
        let mut flat = flatten(&b.build().unwrap()).unwrap();
        schedule(&mut flat).unwrap();
        assert_eq!(order_keys(&flat), vec!["M_Z", "M_A"]);
    }
}
