//! Signal type and width resolution.
//!
//! The model file stores I/O *"data types recorded as default values with
//! no signal connections"* (paper §3.1); preprocessing resolves them by
//! propagating along the execution order: explicit annotations win,
//! boolean-logic actors force `boolean`, conversions force their target,
//! and everything else inherits from its first data input. Widths follow
//! Simulink's scalar-broadcast rule.

use crate::flat::{FlatActor, FlatModel};
use accmos_ir::{ActorKind, DataType, ModelError};

/// Resolve every signal's data type and width in execution order.
///
/// Must run after [`crate::schedule`]. Also fills in monitor names for
/// every signal (`<key>_out`, paper Figure 5).
///
/// # Errors
///
/// Returns [`ModelError::TypeMismatch`] on width conflicts, non-integer
/// bitwise operands, out-of-range static selector indices, or non-divisible
/// demux splits.
pub fn resolve(flat: &mut FlatModel) -> Result<(), ModelError> {
    assert!(!flat.order.is_empty() || flat.actors.is_empty(), "schedule before resolve");
    for idx in 0..flat.order.len() {
        let id = flat.order[idx];
        resolve_actor(flat, id.0)?;
    }
    // Group controls must be scalar.
    for g in &flat.groups {
        let sig = &flat.signals[g.control.0];
        if sig.width != 1 {
            return Err(ModelError::TypeMismatch {
                block: g.path.to_string(),
                detail: "conditional subsystem control signal must be scalar".into(),
            });
        }
    }
    Ok(())
}

fn mismatch(actor: &FlatActor, detail: impl Into<String>) -> ModelError {
    ModelError::TypeMismatch { block: actor.path.to_string(), detail: detail.into() }
}

/// The input port an inheriting actor takes its type from.
fn inherit_port(kind: &ActorKind) -> usize {
    match kind {
        // Input 0 of a multiport switch is the selector.
        ActorKind::MultiportSwitch { .. } => 1,
        _ => 0,
    }
}

fn resolve_actor(flat: &mut FlatModel, idx: usize) -> Result<(), ModelError> {
    use ActorKind::*;

    let actor = &flat.actors[idx];
    let in_types: Vec<DataType> = actor.inputs.iter().map(|s| flat.signals[s.0].dtype).collect();
    let in_widths: Vec<usize> = actor.inputs.iter().map(|s| flat.signals[s.0].width).collect();
    let explicit_dtype = explicit(&flat.actors[idx]);
    let actor = &flat.actors[idx];

    // ---- data type -------------------------------------------------------
    let dtype = if actor.kind.forces_bool_output() {
        DataType::Bool
    } else if let DataTypeConversion { to } = &actor.kind {
        *to
    } else if let Constant { value } = &actor.kind {
        value.dtype()
    } else if let DataStoreRead { store } = &actor.kind {
        let i = flat.store_index(store).expect("validated store");
        flat.stores[i].dtype
    } else if let Some(dt) = explicit_dtype {
        dt
    } else if let Some(init) = state_init(&actor.kind) {
        init
    } else if actor.kind.is_source() {
        default_source_dtype(&actor.kind)
    } else if let Some(&dt) = in_types.get(inherit_port(&actor.kind)) {
        dt
    } else {
        DataType::F64
    };

    // ---- width -----------------------------------------------------------
    let width = match &actor.kind {
        Constant { value } => value.width(),
        Mux { .. } => in_widths.iter().sum(),
        Demux { outputs } => {
            let w = in_widths[0];
            if !w.is_multiple_of(*outputs) || w / outputs == 0 {
                return Err(mismatch(actor, format!("cannot demux width {w} into {outputs} parts")));
            }
            w / outputs
        }
        Selector { indices, dynamic } => {
            let w = in_widths[0];
            if *dynamic {
                1
            } else {
                if let Some(&max) = indices.iter().max() {
                    if max >= w {
                        return Err(mismatch(actor, format!("selector index {max} >= input width {w}")));
                    }
                }
                indices.len()
            }
        }
        DotProduct | SumOfElements | ProductOfElements => 1,
        _ => {
            if let Some(w) = explicit_width(actor) {
                w
            } else if actor.kind.is_source() || actor.kind.breaks_algebraic_loops() {
                1
            } else {
                // Broadcast: the widest input; others must be width 1 or equal.
                let w = data_widths(&actor.kind, &in_widths).max().unwrap_or(1);
                w
            }
        }
    };

    // ---- per-kind structural checks ---------------------------------------
    match &actor.kind {
        Bitwise { .. } | Shift { .. }
            // Boolean signals are excluded: C `~` on the byte storage would
            // produce non-0/1 values that diverge from boolean semantics.
            if !dtype.is_integer() => {
                return Err(mismatch(actor, format!("bitwise/shift requires an integer type, got {dtype}")));
            }
        DotProduct
            if in_widths[0] != in_widths[1] => {
                return Err(mismatch(
                    actor,
                    format!("dot product widths differ: {} vs {}", in_widths[0], in_widths[1]),
                ));
            }
        Switch { .. }
            if in_widths[1] != 1 => {
                return Err(mismatch(actor, "switch control must be scalar"));
            }
        MultiportSwitch { .. }
            if in_widths[0] != 1 => {
                return Err(mismatch(actor, "multiport switch selector must be scalar"));
            }
        Lookup2D { .. }
            if (in_widths[0] != 1 || in_widths[1] != 1) => {
                return Err(mismatch(actor, "2-D lookup inputs must be scalar"));
            }
        Selector { dynamic: true, .. }
            if in_widths[1] != 1 => {
                return Err(mismatch(actor, "selector index input must be scalar"));
            }
        DataStoreWrite { .. }
            if in_widths[0] != 1 => {
                return Err(mismatch(actor, "data stores hold scalars"));
            }
        _ => {}
    }
    for (port, &w) in data_width_slice(&actor.kind, &in_widths).iter().enumerate() {
        if w != 1 && w != width && !matches!(actor.kind, Mux { .. } | Demux { .. } | Selector { .. } | DotProduct | SumOfElements | ProductOfElements) {
            return Err(mismatch(
                actor,
                format!("input {port} width {w} incompatible with output width {width}"),
            ));
        }
    }

    let _ = in_types;
    let (out_dtype, out_width) = (dtype, width);
    let actor = &mut flat.actors[idx];
    actor.dtype = out_dtype;
    actor.width = out_width;
    let key = actor.path.key();
    let outputs = actor.outputs.clone();
    let kind = actor.kind.clone();
    for (port, sig) in outputs.iter().enumerate() {
        let info = &mut flat.signals[sig.0];
        info.dtype = out_dtype;
        info.width = out_width;
        info.name = if outputs.len() == 1 {
            format!("{key}_out")
        } else {
            format!("{key}_out{port}")
        };
    }
    // Sinks take their input type for reporting purposes.
    if kind.is_sink() {
        if explicit_dtype.is_none() {
            if let Some(&dt) = in_types_of(flat, idx).first() {
                flat.actors[idx].dtype = dt;
            }
        }
        let w = in_widths_of(flat, idx).first().copied().unwrap_or(1);
        flat.actors[idx].width = w;
    }
    Ok(())
}

fn in_types_of(flat: &FlatModel, idx: usize) -> Vec<DataType> {
    flat.actors[idx].inputs.iter().map(|s| flat.signals[s.0].dtype).collect()
}

fn in_widths_of(flat: &FlatModel, idx: usize) -> Vec<usize> {
    flat.actors[idx].inputs.iter().map(|s| flat.signals[s.0].width).collect()
}

fn explicit(actor: &FlatActor) -> Option<DataType> {
    // `FlatActor::dtype` starts as the explicit annotation (or the default
    // F64 when absent); the flattener keeps the distinction via `width`...
    // -- we instead rely on the original annotation captured at flatten
    // time: flatten stores `actor.dtype.unwrap_or_default()`. To keep the
    // inheritance rule honest, sources and annotated actors carry their
    // annotation in `dtype`; inheritance applies only when the annotation
    // was absent, which the flattener marks by `explicit_dtype` below.
    actor.explicit_dtype
}

fn explicit_width(actor: &FlatActor) -> Option<usize> {
    actor.explicit_width
}

fn state_init(kind: &ActorKind) -> Option<DataType> {
    use ActorKind::*;
    match kind {
        UnitDelay { init } | Memory { init } | Delay { init, .. }
        | DiscreteIntegrator { init, .. } => Some(init.dtype()),
        _ => None,
    }
}

fn default_source_dtype(kind: &ActorKind) -> DataType {
    use ActorKind::*;
    match kind {
        Clock | Counter { .. } => DataType::I32,
        Step { after, .. } => after.dtype(),
        PulseGenerator { amplitude, .. } => amplitude.dtype(),
        _ => DataType::F64,
    }
}

/// The widths of the *data* inputs (excluding selector/control ports that
/// are checked separately).
fn data_widths<'a>(kind: &ActorKind, widths: &'a [usize]) -> impl Iterator<Item = usize> + 'a {
    data_width_slice(kind, widths).iter().copied()
}

fn data_width_slice<'a>(kind: &ActorKind, widths: &'a [usize]) -> &'a [usize] {
    use ActorKind::*;
    match kind {
        MultiportSwitch { .. } => &widths[1.min(widths.len())..],
        Selector { dynamic: true, .. } => &widths[..1.min(widths.len())],
        _ => widths,
    }
}
