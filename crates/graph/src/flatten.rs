//! Subsystem flattening and signal wiring.
//!
//! Implements the first half of the paper's *Model Preprocessing* step:
//! the hierarchical block/line structure is inlined into a [`FlatModel`]
//! with one entry per leaf actor, numbered signals in place of lines, and
//! one [`ExecGroup`] per conditional subsystem.

use crate::flat::{ActorId, ExecGroup, FlatActor, FlatModel, GroupId, SignalId, SignalInfo, StoreInfo};
use accmos_ir::{
    ActorKind, ActorPath, BlockBody, Model, ModelError, System,
};
use std::collections::{BTreeMap, BTreeSet};

/// Flatten a validated hierarchical [`Model`].
///
/// The returned [`FlatModel`] has an **empty** execution order and
/// unresolved signal types; [`crate::schedule`] and [`crate::resolve`]
/// complete it (use [`crate::preprocess`] for the full pipeline).
///
/// # Errors
///
/// Returns [`ModelError::Structural`] if sanitized actor path keys collide,
/// plus any wiring error that validation would also catch.
pub fn flatten(model: &Model) -> Result<FlatModel, ModelError> {
    let mut fl = Flattener::default();
    let path = ActorPath::new([model.name.as_str()]);
    fl.flatten_system(&model.root, &path, None, &[], &[])?;

    // Path keys must be unique: they index coverage, diagnosis and
    // generated identifiers.
    let mut keys = BTreeSet::new();
    for actor in &fl.actors {
        if !keys.insert(actor.path.key()) {
            return Err(ModelError::Structural {
                detail: format!("actor path key `{}` is not unique", actor.path.key()),
            });
        }
    }

    fl.root_inports.sort();
    fl.root_outports.sort();
    Ok(FlatModel {
        name: model.name.clone(),
        actors: fl.actors,
        signals: fl.signals,
        groups: fl.groups,
        stores: fl.stores,
        root_inports: fl.root_inports.into_iter().map(|(_, id)| id).collect(),
        root_outports: fl.root_outports.into_iter().map(|(_, id)| id).collect(),
        order: Vec::new(),
    })
}

#[derive(Default)]
struct Flattener {
    actors: Vec<FlatActor>,
    signals: Vec<SignalInfo>,
    groups: Vec<ExecGroup>,
    stores: Vec<StoreInfo>,
    root_inports: Vec<(usize, ActorId)>,
    root_outports: Vec<(usize, ActorId)>,
}

/// Placeholder until the producing actor is known (subsystem interfaces).
const PENDING: ActorId = ActorId(usize::MAX);

impl Flattener {
    fn new_signal(&mut self, source: ActorId, source_port: usize) -> SignalId {
        let id = SignalId(self.signals.len());
        self.signals.push(SignalInfo {
            id,
            source,
            source_port,
            dtype: accmos_ir::DataType::F64,
            width: 1,
            name: String::new(),
        });
        id
    }

    fn new_actor(&mut self, path: ActorPath, actor: &accmos_ir::Actor, group: Option<GroupId>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(FlatActor {
            id,
            path,
            kind: actor.kind.clone(),
            dtype: actor.dtype.unwrap_or_default(),
            width: actor.width.unwrap_or(1),
            explicit_dtype: actor.dtype,
            explicit_width: actor.width,
            inputs: Vec::new(),
            outputs: Vec::new(),
            group,
            monitor: actor.monitor,
        });
        id
    }

    /// Flatten one system. `ext_inputs[i]` feeds the system's `Inport`
    /// with index `i`; `reserved_outputs[i]` is the pre-allocated signal
    /// that the system's `Outport` with index `i` must drive.
    fn flatten_system(
        &mut self,
        system: &System,
        path: &ActorPath,
        group: Option<GroupId>,
        ext_inputs: &[SignalId],
        reserved_outputs: &[SignalId],
    ) -> Result<(), ModelError> {
        // Pass 1: allocate interfaces — an actor id per leaf block and the
        // output signals of every block (leaf or subsystem).
        enum Slot {
            Leaf(ActorId),
            Sub { outputs: Vec<SignalId> },
        }
        let mut slots: BTreeMap<&str, Slot> = BTreeMap::new();
        let mut out_signals: BTreeMap<(&str, usize), SignalId> = BTreeMap::new();

        for block in &system.blocks {
            let block_path = path.child(&block.name);
            match &block.body {
                BlockBody::Actor(actor) => {
                    let id = self.new_actor(block_path.clone(), actor, group);
                    // Boundary port actors gain extra ports; all others use
                    // the template arity.
    let is_root = path.segments().len() == 1;
                    let outs = match &actor.kind {
                        ActorKind::Outport { index } => {
                            if is_root {
                                self.root_outports.push((*index, id));
                            } else {
                                // Subsystem boundary outport: drives the
                                // reserved external signal.
                                let sig = reserved_outputs[*index];
                                self.signals[sig.0].source = id;
                                self.signals[sig.0].source_port = 0;
                                self.actors[id.0].outputs.push(sig);
                                out_signals.insert((block.name.as_str(), 0), sig);
                            }
                            0
                        }
                        _ => actor.kind.out_count(),
                    };
                    for port in 0..outs {
                        let sig = self.new_signal(id, port);
                        self.actors[id.0].outputs.push(sig);
                        out_signals.insert((block.name.as_str(), port), sig);
                    }
                    if let ActorKind::DataStoreMemory { store, init } = &actor.kind {
                        self.stores.push(StoreInfo {
                            name: store.clone(),
                            dtype: init.dtype(),
                            init: *init,
                        });
                    }
                    slots.insert(&block.name, Slot::Leaf(id));
                }
                BlockBody::Subsystem(sub) => {
                    let mut outputs = Vec::new();
                    for port in 0..sub.outport_count() {
                        let sig = self.new_signal(PENDING, 0);
                        out_signals.insert((block.name.as_str(), port), sig);
                        outputs.push(sig);
                    }
                    slots.insert(&block.name, Slot::Sub { outputs });
                }
            }
        }

        // Pass 2: wiring — input port -> driving signal.
        let mut wiring: BTreeMap<(&str, usize), SignalId> = BTreeMap::new();
        for line in &system.lines {
            let sig = *out_signals.get(&(line.src.block.as_str(), line.src.port)).ok_or_else(
                || ModelError::UnknownBlock {
                    system: path.to_string(),
                    name: line.src.block.clone(),
                },
            )?;
            wiring.insert((line.dst.block.as_str(), line.dst.port), sig);
        }
        let input_of = |block: &str, port: usize| -> Result<SignalId, ModelError> {
            wiring.get(&(block, port)).copied().ok_or_else(|| ModelError::UnconnectedInput {
                block: format!("{path}/{block}"),
                port,
            })
        };

        // Pass 3: connect leaf inputs and recurse into subsystems.
        for block in &system.blocks {
            match &block.body {
                BlockBody::Actor(actor) => {
                    let id = match slots.get(block.name.as_str()) {
                        Some(Slot::Leaf(id)) => *id,
                        _ => unreachable!("leaf slot"),
                    };
                    match &actor.kind {
                        ActorKind::Inport { index } => {
                            if let Some(sig) = ext_inputs.get(*index) {
                                // Boundary inport: pass-through of the outer
                                // driving signal.
                                self.actors[id.0].inputs.push(*sig);
                            } else {
                                self.root_inports.push((*index, id));
                            }
                        }
                        _ => {
                            for port in 0..actor.kind.in_count() {
                                let sig = input_of(&block.name, port)?;
                                self.actors[id.0].inputs.push(sig);
                            }
                        }
                    }
                }
                BlockBody::Subsystem(sub) => {
                    let block_path = path.child(&block.name);
                    let mut sub_inputs = Vec::new();
                    for port in 0..sub.inport_count() {
                        sub_inputs.push(input_of(&block.name, port)?);
                    }
                    let sub_group = if sub.kind.is_conditional() {
                        let control = input_of(&block.name, sub.inport_count())?;
                        let gid = GroupId(self.groups.len());
                        self.groups.push(ExecGroup {
                            id: gid,
                            parent: group,
                            kind: sub.kind,
                            control,
                            path: block_path.clone(),
                        });
                        Some(gid)
                    } else {
                        group
                    };
                    let outputs = match slots.get(block.name.as_str()) {
                        Some(Slot::Sub { outputs }) => outputs.clone(),
                        _ => unreachable!("sub slot"),
                    };
                    self.flatten_system(sub, &block_path, sub_group, &sub_inputs, &outputs)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar, SystemKind};

    #[test]
    fn flat_passthrough() {
        let mut b = ModelBuilder::new("M");
        b.inport("In", DataType::I32);
        b.outport("Out", DataType::I32);
        b.wire("In", "Out");
        let flat = flatten(&b.build().unwrap()).unwrap();
        assert_eq!(flat.actors.len(), 2);
        assert_eq!(flat.root_inports.len(), 1);
        assert_eq!(flat.root_outports.len(), 1);
        let out = flat.actor(flat.root_outports[0]);
        assert_eq!(out.inputs.len(), 1);
        assert_eq!(flat.signal(out.inputs[0]).source, flat.root_inports[0]);
    }

    #[test]
    fn subsystem_boundary_ports_become_passthrough_actors() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::F64);
        b.subsystem("Sub", SystemKind::Plain, |s| {
            s.inport("u", DataType::F64);
            s.actor("G", ActorKind::Gain { gain: Scalar::F64(2.0) });
            s.outport("y", DataType::F64);
            s.wire("u", "G");
            s.wire("G", "y");
        });
        b.outport("Y", DataType::F64);
        b.wire("X", "Sub");
        b.wire("Sub", "Y");
        let flat = flatten(&b.build().unwrap()).unwrap();
        // X, Sub/u, Sub/G, Sub/y, Y
        assert_eq!(flat.actors.len(), 5);
        let keys: Vec<String> = flat.actors.iter().map(|a| a.path.key()).collect();
        assert!(keys.contains(&"M_Sub_G".to_string()), "{keys:?}");
        // boundary inport has one input (the outer signal)
        let u = flat.actors.iter().find(|a| a.path.key() == "M_Sub_u").unwrap();
        assert_eq!(u.inputs.len(), 1);
        assert_eq!(u.outputs.len(), 1);
        // boundary outport drives the signal consumed by root Y
        let y_root = flat.actors.iter().find(|a| a.path.key() == "M_Y").unwrap();
        let drive = flat.signal(y_root.inputs[0]);
        let y_sub = flat.actors.iter().find(|a| a.path.key() == "M_Sub_y").unwrap();
        assert_eq!(drive.source, y_sub.id);
        assert!(flat.groups.is_empty());
    }

    #[test]
    fn enabled_subsystem_creates_group() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::F64);
        b.constant("En", Scalar::Bool(true));
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.inport("u", DataType::F64);
            s.outport("y", DataType::F64);
            s.wire("u", "y");
        });
        b.outport("Y", DataType::F64);
        b.wire("X", "Sub");
        b.wire_to("En", "Sub", 1);
        b.wire("Sub", "Y");
        let flat = flatten(&b.build().unwrap()).unwrap();
        assert_eq!(flat.groups.len(), 1);
        let g = &flat.groups[0];
        assert_eq!(g.kind, SystemKind::Enabled);
        assert_eq!(g.parent, None);
        // control driven by the constant
        let en = flat.actors.iter().find(|a| a.path.key() == "M_En").unwrap();
        assert_eq!(flat.signal(g.control).source, en.id);
        // members tagged with the group
        let u = flat.actors.iter().find(|a| a.path.key() == "M_Sub_u").unwrap();
        assert_eq!(u.group, Some(g.id));
        assert_eq!(en.group, None);
    }

    #[test]
    fn nested_groups_chain_parents() {
        let mut b = ModelBuilder::new("M");
        b.constant("En", Scalar::Bool(true));
        b.inport("X", DataType::F64);
        b.subsystem("Outer", SystemKind::Enabled, |s| {
            s.inport("u", DataType::F64);
            s.constant("En2", Scalar::Bool(true));
            s.subsystem("Inner", SystemKind::Triggered, |t| {
                t.inport("v", DataType::F64);
                t.outport("w", DataType::F64);
                t.wire("v", "w");
            });
            s.outport("y", DataType::F64);
            s.wire("u", "Inner");
            s.wire_to("En2", "Inner", 1);
            s.wire("Inner", "y");
        });
        b.outport("Y", DataType::F64);
        b.wire("X", "Outer");
        b.wire_to("En", "Outer", 1);
        b.wire("Outer", "Y");
        let flat = flatten(&b.build().unwrap()).unwrap();
        assert_eq!(flat.groups.len(), 2);
        let inner = flat.groups.iter().find(|g| g.kind == SystemKind::Triggered).unwrap();
        let outer = flat.groups.iter().find(|g| g.kind == SystemKind::Enabled).unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        let w = flat.actors.iter().find(|a| a.path.key() == "M_Outer_Inner_w").unwrap();
        assert_eq!(flat.enclosing_groups(w), vec![inner.id, outer.id]);
    }

    #[test]
    fn data_store_registered() {
        let mut b = ModelBuilder::new("M");
        b.actor("Mem", ActorKind::DataStoreMemory { store: "q".into(), init: Scalar::I32(5) });
        b.actor("R", ActorKind::DataStoreRead { store: "q".into() });
        b.outport("Y", DataType::I32);
        b.wire("R", "Y");
        let flat = flatten(&b.build().unwrap()).unwrap();
        assert_eq!(flat.stores.len(), 1);
        assert_eq!(flat.stores[0].dtype, DataType::I32);
        assert_eq!(flat.store_index("q"), Some(0));
        assert_eq!(flat.store_index("zz"), None);
    }

    #[test]
    fn colliding_sanitized_keys_rejected() {
        let mut b = ModelBuilder::new("M");
        b.constant("A B", Scalar::I32(1));
        b.constant("A_B", Scalar::I32(2));
        let err = flatten(&b.build().unwrap()).unwrap_err();
        assert!(matches!(err, ModelError::Structural { .. }));
    }
}
