//! Flattened models.
//!
//! Preprocessing inlines the subsystem hierarchy into a [`FlatModel`]:
//! a list of leaf actors connected by numbered signals, plus *execution
//! groups* representing conditional (enabled/triggered) subsystems.
//! Boundary `Inport`/`Outport` actors are kept as pass-through actors so
//! that actor counts and coverage match the hierarchical model.

use accmos_ir::{ActorKind, ActorPath, DataType, Scalar, SystemKind};

/// Index of a flat actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

/// Index of a signal (one per actor output port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub usize);

/// Index of a conditional-execution group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub usize);

/// A leaf actor of the flattened model.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatActor {
    /// Dense id (also the index into [`FlatModel::actors`]).
    pub id: ActorId,
    /// Hierarchical path (model name first).
    pub path: ActorPath,
    /// The actor template and configuration.
    pub kind: ActorKind,
    /// Resolved output data type. For pure sinks this is the input type.
    pub dtype: DataType,
    /// Resolved output vector width (1 = scalar).
    pub width: usize,
    /// The model's explicit type annotation, if any (resolution input).
    pub explicit_dtype: Option<DataType>,
    /// The model's explicit width annotation, if any (resolution input).
    pub explicit_width: Option<usize>,
    /// Input signals, one per input port. Boundary `Inport` actors inside
    /// subsystems gain one input (the outer driving signal).
    pub inputs: Vec<SignalId>,
    /// Output signals, one per output port. Boundary `Outport` actors
    /// inside subsystems gain one output (the signal visible outside).
    pub outputs: Vec<SignalId>,
    /// Innermost conditional group containing this actor, if any.
    pub group: Option<GroupId>,
    /// Whether the actor's output is on the signal-monitor collect list.
    pub monitor: bool,
}

/// A signal: one output port of one actor.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalInfo {
    /// Dense id.
    pub id: SignalId,
    /// Producing actor.
    pub source: ActorId,
    /// Output port index on the producing actor.
    pub source_port: usize,
    /// Resolved data type.
    pub dtype: DataType,
    /// Resolved width.
    pub width: usize,
    /// Monitor name, e.g. `Model_Minus_out` (paper Figure 5 line 6).
    pub name: String,
}

/// A conditional-execution group (one per enabled/triggered subsystem).
///
/// A group's actors execute only while the group is *active*:
///
/// - `Enabled`: active while the control signal is nonzero;
/// - `Triggered`: active on a rising edge of the control signal (the
///   previous control value is engine state, updated every step).
///
/// A nested group is active only if its parent is also active. Signals of
/// skipped actors hold their previous values.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecGroup {
    /// Dense id.
    pub id: GroupId,
    /// Enclosing group, if nested.
    pub parent: Option<GroupId>,
    /// `Enabled` or `Triggered`.
    pub kind: SystemKind,
    /// The control signal (scalar).
    pub control: SignalId,
    /// Path of the conditional subsystem.
    pub path: ActorPath,
}

/// A global data store declared by a `DataStoreMemory` actor.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreInfo {
    /// Store name (global).
    pub name: String,
    /// Element type (from the initial value).
    pub dtype: DataType,
    /// Initial value.
    pub init: Scalar,
}

/// The fully preprocessed model: flat actors, resolved signals, execution
/// groups, data stores, and the data-flow execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatModel {
    /// Model name.
    pub name: String,
    /// All leaf actors, in declaration order.
    pub actors: Vec<FlatActor>,
    /// All signals.
    pub signals: Vec<SignalInfo>,
    /// Conditional-execution groups.
    pub groups: Vec<ExecGroup>,
    /// Global data stores.
    pub stores: Vec<StoreInfo>,
    /// Root input actors, in port-index order.
    pub root_inports: Vec<ActorId>,
    /// Root output actors, in port-index order.
    pub root_outports: Vec<ActorId>,
    /// Execution order (topological over the data-flow graph).
    pub order: Vec<ActorId>,
}

impl FlatModel {
    /// The actor with the given id.
    pub fn actor(&self, id: ActorId) -> &FlatActor {
        &self.actors[id.0]
    }

    /// The signal with the given id.
    pub fn signal(&self, id: SignalId) -> &SignalInfo {
        &self.signals[id.0]
    }

    /// The group with the given id.
    pub fn group(&self, id: GroupId) -> &ExecGroup {
        &self.groups[id.0]
    }

    /// Data types of an actor's inputs, in port order.
    pub fn input_dtypes(&self, actor: &FlatActor) -> Vec<DataType> {
        actor.inputs.iter().map(|s| self.signal(*s).dtype).collect()
    }

    /// All groups enclosing `actor`, innermost first.
    pub fn enclosing_groups(&self, actor: &FlatActor) -> Vec<GroupId> {
        let mut out = Vec::new();
        let mut cur = actor.group;
        while let Some(g) = cur {
            out.push(g);
            cur = self.group(g).parent;
        }
        out
    }

    /// The index of a store by name.
    pub fn store_index(&self, name: &str) -> Option<usize> {
        self.stores.iter().position(|s| s.name == name)
    }

    /// Actors in execution order.
    pub fn ordered_actors(&self) -> impl Iterator<Item = &FlatActor> {
        self.order.iter().map(|id| self.actor(*id))
    }

    /// Number of calculation actors (the default diagnose list size).
    pub fn calculation_count(&self) -> usize {
        self.actors.iter().filter(|a| a.kind.is_calculation()).count()
    }
}
