//! Consumers of the interval fixpoint: proven-never-fires facts for
//! diagnosis pruning, unsatisfiable coverage points, and the lint
//! catalogue.
//!
//! Everything here is *post*-fixpoint: it reads the converged signal,
//! state and liveness data from the [`Engine`] and re-derives per-actor
//! proof obligations. The cardinal rule is stated in the crate docs:
//! a fact is only emitted when the intervals *prove* it — anything short
//! of a proof keeps the runtime check and the coverage point.

use std::collections::{BTreeSet, HashSet};

use accmos_graph::{ActorId, CoverageIndex, FlatActor};
use accmos_ir::{
    applicable_diagnoses, ActorKind, CoverageKind, DataType, DiagnosticKind, Interval, LogicOp,
    MathOp, ShiftDir, SystemKind, TrigOp,
};

use crate::fixpoint::{wrap_fold, Act, Engine};
use crate::{AnalysisFinding, BranchSpec, GroupActivity, LintRule};

fn kind_slot(kind: CoverageKind) -> usize {
    CoverageKind::ALL.iter().position(|k| *k == kind).unwrap_or(0)
}

/// Compute pruning facts and unsatisfiable coverage points.
pub fn facts(
    engine: &Engine<'_>,
    coverage: &CoverageIndex,
) -> (HashSet<(ActorId, DiagnosticKind)>, [BTreeSet<usize>; 4]) {
    let flat = engine.flat;
    let mut never = HashSet::new();
    let mut unsat: [BTreeSet<usize>; 4] = Default::default();
    let mark = |kind: CoverageKind, bit: usize, set: &mut [BTreeSet<usize>; 4]| {
        set[kind_slot(kind)].insert(bit);
    };

    for actor in &flat.actors {
        let id = actor.id;
        let applicable =
            applicable_diagnoses(&actor.kind, &flat.input_dtypes(actor), actor.dtype);

        if !engine.live[id.0] {
            // A provably-dead actor can fire nothing and cover nothing.
            for kind in applicable {
                never.insert((id, kind));
            }
            mark(CoverageKind::Actor, coverage.actor_point[id.0], &mut unsat);
            if let Some((base, outcomes)) = coverage.condition[id.0] {
                for i in 0..outcomes {
                    mark(CoverageKind::Condition, base + i, &mut unsat);
                }
            }
            if let Some(base) = coverage.decision[id.0] {
                mark(CoverageKind::Decision, base, &mut unsat);
                mark(CoverageKind::Decision, base + 1, &mut unsat);
            }
            if let Some((first, inputs)) = coverage.mcdc[id.0] {
                for i in 0..inputs * 2 {
                    mark(CoverageKind::Mcdc, first + i, &mut unsat);
                }
            }
            continue;
        }

        for kind in applicable {
            if proves_check_safe(engine, actor, kind) {
                never.insert((id, kind));
            }
        }

        // --- unsatisfiable branch outcomes (condition coverage) ----------
        if let Some((base, outcomes)) = coverage.condition[id.0] {
            for i in unsat_branches(engine, actor, outcomes) {
                mark(CoverageKind::Condition, base + i, &mut unsat);
            }
        }

        // --- constant decisions ------------------------------------------
        if let Some(base) = coverage.decision[id.0] {
            match engine.tri_decision(actor) {
                Some(true) => mark(CoverageKind::Decision, base + 1, &mut unsat),
                Some(false) => mark(CoverageKind::Decision, base, &mut unsat),
                None => {}
            }
        }

        // --- MC/DC objectives --------------------------------------------
        if let Some((first, inputs)) = coverage.mcdc[id.0] {
            if let ActorKind::Logical { op, .. } = &actor.kind {
                for bit in unsat_mcdc(engine, actor, *op, inputs) {
                    mark(CoverageKind::Mcdc, first + bit, &mut unsat);
                }
            }
        }
    }

    // --- group enable-condition points -----------------------------------
    for group in &flat.groups {
        let (t, f) = coverage.group_bits(group.id);
        let parent = group.parent.map(|p| engine.final_act(p)).unwrap_or(Act::Always);
        if parent == Act::Never {
            // Recorded only while the parent is active: never recorded.
            mark(CoverageKind::Condition, t, &mut unsat);
            mark(CoverageKind::Condition, f, &mut unsat);
            continue;
        }
        let ctrl = engine.sig[group.control.0];
        match group.kind {
            SystemKind::Enabled => {
                if ctrl.always_zero() {
                    mark(CoverageKind::Condition, t, &mut unsat);
                } else if ctrl.always_nonzero() {
                    mark(CoverageKind::Condition, f, &mut unsat);
                }
            }
            SystemKind::Triggered => {
                // A constantly-zero control never rises. A nonzero control
                // still de-asserts after the first step, so only the
                // "fired" outcome can be ruled out.
                if ctrl.always_zero() {
                    mark(CoverageKind::Condition, t, &mut unsat);
                }
            }
            SystemKind::Plain => {}
        }
    }

    (never, unsat)
}

/// Whether the fixpoint proves the diagnosis check of `kind` on `actor`
/// can never fire on any input.
fn proves_check_safe(engine: &Engine<'_>, actor: &FlatActor, kind: DiagnosticKind) -> bool {
    use ActorKind::*;
    let dt = actor.dtype;
    match kind {
        DiagnosticKind::WrapOnOverflow => match &actor.kind {
            Sum { signs } => {
                wrap_fold(
                    dt,
                    Interval::exact(0.0),
                    signs.chars().enumerate().map(|(i, s)| (s, engine.iv_in_cast(actor, i))),
                )
                .1
            }
            Product { ops } => {
                // Division results are checked with wide arithmetic that
                // interacts with the zero-divisor guard; don't prune.
                !ops.contains('/')
                    && wrap_fold(
                        dt,
                        Interval::exact(1.0),
                        ops.chars().enumerate().map(|(i, _)| ('*', engine.iv_in_cast(actor, i))),
                    )
                    .1
            }
            Gain { gain } => {
                let g = Interval::exact(gain.cast(dt).to_f64());
                wrap_fold(dt, engine.iv_in_cast(actor, 0), [('*', g)]).1
            }
            Bias { bias } => {
                let b = Interval::exact(bias.cast(dt).to_f64());
                wrap_fold(dt, engine.iv_in_cast(actor, 0), [('+', b)]).1
            }
            Abs => engine.iv_in_cast(actor, 0).abs().fits(dt),
            Math { op: MathOp::Square } => {
                let x = engine.iv_in_cast(actor, 0);
                wrap_fold(dt, x, [('*', x)]).1
            }
            Shift { dir: ShiftDir::Left, amount } => {
                let f = Interval::exact((2.0f64).powi(*amount as i32));
                wrap_fold(dt, engine.iv_in_cast(actor, 0), [('*', f)]).1
            }
            Shift { dir: ShiftDir::Right, .. } => true, // shrinks magnitude
            SumOfElements => {
                let w = engine.in_width(actor, 0);
                let x = engine.iv_in_cast(actor, 0);
                wrap_fold(dt, Interval::exact(0.0), (0..w).map(|_| ('+', x))).1
            }
            ProductOfElements => {
                let w = engine.in_width(actor, 0);
                let x = engine.iv_in_cast(actor, 0);
                wrap_fold(dt, Interval::exact(1.0), (0..w).map(|_| ('*', x))).1
            }
            DotProduct => {
                let w = engine.in_width(actor, 0);
                let a = engine.iv_in_cast(actor, 0);
                let b = engine.iv_in_cast(actor, 1);
                let term = a * b;
                // Every partial product and partial sum must fit.
                term.fits(dt)
                    && wrap_fold(dt, Interval::exact(0.0), (0..w).map(|_| ('+', term))).1
            }
            DiscreteDerivative => {
                wrap_fold(dt, engine.iv_in_cast(actor, 0), [('-', engine.state[actor.id.0])]).1
            }
            DiscreteIntegrator { .. } => {
                let incr = engine.integrator_increment(actor);
                wrap_fold(dt, engine.state[actor.id.0], [('+', incr)]).1
            }
            // The generated checker has no recompute arm for polynomials:
            // the check is vacuous and trivially prunable.
            Polynomial { .. } => true,
            _ => false,
        },
        DiagnosticKind::DivisionByZero => {
            let ports: Vec<usize> = match &actor.kind {
                Product { ops } => {
                    ops.chars().enumerate().filter(|(_, c)| *c == '/').map(|(i, _)| i).collect()
                }
                Math { op: MathOp::Reciprocal } => vec![0],
                Math { op: MathOp::Mod } | Math { op: MathOp::Rem } => vec![1],
                _ => return false,
            };
            // The runtime check compares the *cast* input against zero;
            // cast_interval already folds NaN→0 for integer targets, so
            // excludes_zero is exactly the no-fire proof.
            !ports.is_empty()
                && ports.iter().all(|p| engine.iv_in_cast(actor, *p).excludes_zero())
        }
        DiagnosticKind::DomainError => {
            let x = engine.iv_in_cast(actor, 0);
            match &actor.kind {
                // `x < 0.0` — NaN compares false, so NaN can't fire it.
                Sqrt => x.numeric_empty() || x.lo >= 0.0,
                // `x <= 0.0` — likewise NaN-immune.
                Math { op: MathOp::Log } | Math { op: MathOp::Log10 } => {
                    x.numeric_empty() || x.lo > 0.0
                }
                // `fabs(x) > 1.0` — NaN-immune.
                Trig { op: TrigOp::Asin } | Trig { op: TrigOp::Acos } => {
                    x.numeric_empty() || (x.lo >= -1.0 && x.hi <= 1.0)
                }
                _ => false,
            }
        }
        DiagnosticKind::ArrayOutOfBounds => {
            let (sel, limit) = match &actor.kind {
                MultiportSwitch { cases } => (engine.iv_in(actor, 0), *cases),
                Selector { dynamic: true, .. } => {
                    (engine.iv_in(actor, 1), engine.in_width(actor, 0))
                }
                _ => return false,
            };
            // The check truncates to a wide integer: `sel < 1 || sel > n`.
            !sel.nan
                && !sel.numeric_empty()
                && sel.lo.is_finite()
                && sel.hi.is_finite()
                && sel.lo.trunc() >= 1.0
                && sel.hi.trunc() <= limit as f64
        }
        DiagnosticKind::PrecisionLoss => {
            // The site round-trips every flagged input through the output
            // type; all of them must provably survive the trip. An interval
            // only bounds the values — it says nothing about *which* floats
            // occur inside it — so a float-typed input is provable only when
            // pinned to a single constant whose round-trip is exact. An
            // integer-typed input holds integral values by construction, so
            // bounds inside the target mantissa's exact range suffice.
            actor.inputs.iter().enumerate().all(|(i, s)| {
                let from = engine.flat.signal(*s).dtype;
                if !from.precision_loss_to(dt) {
                    return true;
                }
                let iv = engine.iv_in(actor, i);
                if iv.nan {
                    return false;
                }
                if from.is_float() {
                    match iv.as_const() {
                        Some(c) => round_trip_exact(c, from, dt),
                        None => false,
                    }
                } else {
                    let bound = crate::fixpoint::mantissa_exact_bound(dt);
                    !iv.numeric_empty() && iv.lo >= -bound && iv.hi <= bound
                }
            })
        }
        // Fires once unconditionally on the first execution; only a dead
        // actor (handled by the caller) makes it unreachable.
        DiagnosticKind::Downcast => false,
    }
}

/// Branch outcomes (0-based, `..outcomes`) this actor can never take.
/// Whether the constant `c` (a value of type `from`) survives the
/// generated round-trip cast `from -> dt -> from` bit-for-bit. Mirrors
/// the C helpers: float->int truncates and saturates, NaN maps to zero
/// (NaN inputs are rejected before this is called).
fn round_trip_exact(c: f64, from: DataType, dt: DataType) -> bool {
    let forward = if dt.is_float() {
        if dt == DataType::F32 { (c as f32) as f64 } else { c }
    } else {
        let range = Interval::of_dtype(dt);
        c.trunc().clamp(range.lo, range.hi)
    };
    let back = if from == DataType::F32 { (forward as f32) as f64 } else { forward };
    back == c
}

/// Everything the specialization verdict layer derives from the narrowed
/// fixpoint, packaged for `ModelAnalysis`.
pub(crate) struct SpecParts {
    pub fold: std::collections::HashMap<ActorId, Vec<f64>>,
    pub branch_spec: std::collections::HashMap<ActorId, BranchSpec>,
    pub group_act: Vec<GroupActivity>,
    pub lane_safe: HashSet<ActorId>,
    pub syntactic_lane_safe: usize,
    pub explain: Vec<String>,
}

/// Kinds whose templates are pure straight-line computations with no
/// coverage writes, no state advance and no side effects (stimulus
/// consumption, store writes): replacing the body with literal output
/// stores is observationally identical when every output is pinned.
fn fold_eligible(kind: &ActorKind) -> bool {
    use ActorKind::*;
    matches!(
        kind,
        Constant { .. }
            | Ground
            | Sum { .. }
            | Product { .. }
            | Gain { .. }
            | Bias { .. }
            | Abs
            | Sign
            | Sqrt
            | Math { .. }
            | Trig { .. }
            | MinMax { .. }
            | Rounding { .. }
            | Polynomial { .. }
            | DotProduct
            | SumOfElements
            | ProductOfElements
            | Bitwise { .. }
            | Shift { .. }
            | Mux { .. }
            | Demux { .. }
            | DataTypeConversion { .. }
            | Lookup1D { .. }
            | Lookup2D { .. }
            | Quantizer { .. }
            | Selector { dynamic: false, .. }
    )
}

/// Kinds whose templates contain data-dependent control flow or
/// per-value coverage writes. Everything else is semantically
/// branch-free: lane-uniform step tests (`Step`, `ZeroOrderHold`) and
/// per-lane state advances are fine inside a fused lane loop.
fn branchy_template(kind: &ActorKind) -> bool {
    use ActorKind::*;
    matches!(
        kind,
        Switch { .. }
            | MultiportSwitch { .. }
            | Merge { .. }
            | Saturation { .. }
            | DeadZone { .. }
            | RateLimiter { .. }
            | Relay { .. }
            | Relational { .. }
            | CompareToConstant { .. }
            | Logical { .. }
            | EdgeDetector { .. }
    )
}

/// The original purely syntactic fused-segment allowlist (mirrors the C
/// backend's `branch_free_template`), kept only as the reported baseline
/// the semantic proof is measured against.
fn syntactic_lane_safe(kind: &ActorKind) -> bool {
    use ActorKind::*;
    matches!(
        kind,
        Inport { .. }
            | Constant { .. }
            | Ground
            | Clock
            | Sum { .. }
            | Product { .. }
            | Gain { .. }
            | Bias { .. }
            | Abs
            | Sign
            | Sqrt
            | DataTypeConversion { .. }
            | Mux { .. }
            | Demux { .. }
            | DotProduct
            | SumOfElements
            | ProductOfElements
            | Bitwise { .. }
            | Shift { .. }
            | Outport { .. }
    )
}

/// Whether a pinned output value is safe to re-emit as a literal of the
/// signal's type, bit-for-bit. Floats must be finite and nonzero: an
/// interval `[0, 0]` cannot distinguish `+0.0` from a computed `-0.0`,
/// whose bit patterns differ under the digest.
fn literal_exact(v: f64, dt: DataType) -> bool {
    if dt.is_float() {
        v.is_finite() && v != 0.0
    } else {
        true
    }
}

/// Derive the specialization verdicts from the narrowed fixpoint.
pub(crate) fn specialize(engine: &Engine<'_>) -> SpecParts {
    use ActorKind::*;
    let flat = engine.flat;
    let mut parts = SpecParts {
        fold: Default::default(),
        branch_spec: Default::default(),
        group_act: Vec::with_capacity(flat.groups.len()),
        lane_safe: HashSet::new(),
        syntactic_lane_safe: 0,
        explain: Vec::new(),
    };

    for group in &flat.groups {
        let act = match engine.final_act(group.id) {
            Act::Never => GroupActivity::Never,
            Act::Maybe => GroupActivity::Maybe,
            Act::Always => GroupActivity::Always,
        };
        if act != GroupActivity::Maybe {
            parts.explain.push(format!(
                "group {}: provably {} active — guard specialized to a constant",
                group.path.key(),
                if act == GroupActivity::Always { "always" } else { "never" }
            ));
        }
        parts.group_act.push(act);
    }

    for actor in &flat.actors {
        let id = actor.id;
        let key = actor.path.key();
        if syntactic_lane_safe(&actor.kind) {
            parts.syntactic_lane_safe += 1;
        }
        if !engine.live[id.0] {
            parts.explain.push(format!(
                "elide {key}: conditional chain provably never active"
            ));
            continue;
        }

        // Constant folding: every output pinned, template pure.
        if fold_eligible(&actor.kind) && !actor.outputs.is_empty() {
            let pinned: Option<Vec<f64>> = actor
                .outputs
                .iter()
                .map(|out| {
                    let sig = flat.signal(*out);
                    engine.sig[out.0]
                        .as_const()
                        .filter(|v| literal_exact(*v, sig.dtype))
                })
                .collect();
            if let Some(values) = pinned {
                parts.explain.push(format!(
                    "fold {key}: output(s) pinned to {values:?}"
                ));
                parts.fold.insert(id, values);
            }
        }

        // Proven-constant arms of branchy templates.
        let spec = match &actor.kind {
            Switch { criteria } => {
                engine.tri_switch(actor, criteria).map(BranchSpec::SwitchTaken)
            }
            MultiportSwitch { cases } => {
                let (lo, hi) = engine.multiport_range(actor, *cases);
                (lo == hi).then_some(BranchSpec::MultiportCase(lo))
            }
            Saturation { lo, hi } => {
                let dead = unsat_branches(engine, actor, 3);
                let reachable: Vec<usize> =
                    (0..3).filter(|b| !dead.contains(b)).collect();
                let _ = (lo, hi);
                match reachable.as_slice() {
                    [only] => Some(BranchSpec::SaturationBranch(*only)),
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(spec) = spec {
            parts.explain.push(match spec {
                BranchSpec::SwitchTaken(v) => format!(
                    "specialize {key}: switch criteria constantly {v}, only the {} arm is emitted",
                    if v { "pass-through" } else { "else" }
                ),
                BranchSpec::MultiportCase(c) => {
                    format!("specialize {key}: selector always picks case {c}")
                }
                BranchSpec::SaturationBranch(b) => format!(
                    "specialize {key}: only the {} branch is reachable",
                    ["below", "pass-through", "above"][b.min(2)]
                ),
            });
            parts.branch_spec.insert(id, spec);
        }

        if !branchy_template(&actor.kind) || parts.branch_spec.contains_key(&id) {
            parts.lane_safe.insert(id);
        }
    }

    parts
}

fn unsat_branches(engine: &Engine<'_>, actor: &FlatActor, outcomes: usize) -> Vec<usize> {
    use ActorKind::*;
    let mut dead = Vec::new();
    match &actor.kind {
        Switch { criteria } => match engine.tri_switch(actor, criteria) {
            Some(true) => dead.push(1),
            Some(false) => dead.push(0),
            None => {}
        },
        MultiportSwitch { cases } => {
            let (lo, hi) = engine.multiport_range(actor, *cases);
            for case in 1..=*cases {
                if case < lo || case > hi {
                    dead.push(case - 1);
                }
            }
        }
        Saturation { lo, hi } => {
            let x = engine.iv_in_cast(actor, 0);
            // Branches: 0 = below lo, 1 = pass (incl. NaN), 2 = above hi.
            if x.numeric_empty() || x.lo >= *lo {
                dead.push(0);
            }
            if !x.nan && (x.numeric_empty() || x.hi < *lo || x.lo > *hi) {
                dead.push(1);
            }
            if x.numeric_empty() || x.hi <= *hi {
                dead.push(2);
            }
        }
        DeadZone { start, end } => {
            let x = engine.iv_in_cast(actor, 0);
            if x.numeric_empty() || x.lo >= *start {
                dead.push(0);
            }
            if !x.nan && (x.numeric_empty() || x.hi < *start || x.lo > *end) {
                dead.push(1);
            }
            if x.numeric_empty() || x.hi <= *end {
                dead.push(2);
            }
        }
        Relay { on_threshold, .. } => {
            let x = engine.iv_in_cast(actor, 0);
            // Branch 1 = on. Turning on requires some value >= threshold.
            if x.numeric_empty() || x.hi < *on_threshold {
                dead.push(1);
            }
            // Branch 0 = off, recorded unless the relay latches on from
            // the very first step (NaN never compares true, so a possible
            // NaN keeps the off branch reachable).
            if !x.numeric_empty() && x.lo >= *on_threshold && !x.nan {
                dead.push(0);
            }
        }
        // RateLimiter reachability depends on the step-to-step trajectory,
        // which the per-signal domain doesn't track: claim nothing.
        RateLimiter { .. } => {}
        _ => {}
    }
    dead.retain(|b| *b < outcomes);
    dead
}

/// Unsatisfiable MC/DC bit offsets (relative to the actor's first bit).
fn unsat_mcdc(engine: &Engine<'_>, actor: &FlatActor, op: LogicOp, inputs: usize) -> Vec<usize> {
    let cs: Vec<Option<bool>> = (0..inputs).map(|i| engine.tri_nonzero(actor, i)).collect();
    let mut bits = BTreeSet::new();
    for i in 0..inputs {
        // A constant input can never be observed at its other value.
        match cs[i] {
            Some(true) => {
                bits.insert(2 * i + 1);
            }
            Some(false) => {
                bits.insert(2 * i);
            }
            None => {}
        }
        // Masking: input i is only observable when every other input is
        // at the op's neutral element (true for AND-like, false for
        // OR-like). A constant other input at the wrong polarity makes
        // the mask — and both objectives of input i — unsatisfiable.
        let mask_dead = match op {
            LogicOp::And | LogicOp::Nand => {
                (0..inputs).any(|j| j != i && cs[j] == Some(false))
            }
            LogicOp::Or | LogicOp::Nor => {
                (0..inputs).any(|j| j != i && cs[j] == Some(true))
            }
            LogicOp::Xor | LogicOp::Not => false,
        };
        if mask_dead {
            bits.insert(2 * i);
            bits.insert(2 * i + 1);
        }
    }
    bits.into_iter().collect()
}

/// Produce the lint catalogue from a (possibly test-seeded) fixpoint.
pub fn lints(engine: &Engine<'_>) -> Vec<AnalysisFinding> {
    use ActorKind::*;
    let flat = engine.flat;
    let mut out = Vec::new();
    let mut push = |rule: LintRule, actor: String, message: String| {
        out.push(AnalysisFinding { rule, severity: rule.severity(), actor, message });
    };

    for actor in &flat.actors {
        let key = actor.path.key();
        let dt = actor.dtype;

        if !engine.live[actor.id.0] {
            push(
                LintRule::DeadActor,
                key,
                "inside a conditional group whose control is provably never active".into(),
            );
            continue;
        }

        // Constant branches / decisions.
        let mut const_notes: Vec<String> = Vec::new();
        match &actor.kind {
            Switch { criteria } => if let Some(v) = engine.tri_switch(actor, criteria) {
                const_notes.push(format!(
                    "switch criteria is constantly {v}; the {} branch is unreachable",
                    if v { "else" } else { "pass-through" }
                ));
                push(
                    LintRule::AlwaysTakenSwitchArm,
                    key.clone(),
                    format!(
                        "the {} arm is always taken: the switch never switches",
                        if v { "pass-through" } else { "else" }
                    ),
                );
            },
            MultiportSwitch { cases } => {
                let (lo, hi) = engine.multiport_range(actor, *cases);
                if (hi - lo + 1) < *cases {
                    const_notes
                        .push(format!("selector only reaches cases {lo}..={hi} of {cases}"));
                }
                if lo == hi {
                    push(
                        LintRule::AlwaysTakenSwitchArm,
                        key.clone(),
                        format!("case {lo} is always selected: the switch never switches"),
                    );
                }
            }
            _ => {}
        }
        if let Some(v) = engine.tri_decision(actor) {
            const_notes.push(format!("decision is constantly {v}"));
        }
        for note in const_notes {
            push(LintRule::ConstantBranch, key.clone(), note);
        }

        // Guaranteed downcast truncation: an input whose entire value
        // range lies outside what the output type can represent.
        for (i, s) in actor.inputs.iter().enumerate() {
            let from = flat.signal(*s).dtype;
            if !from.downcast_to(dt) {
                continue;
            }
            let iv = engine.iv_in(actor, i);
            if !iv.numeric_empty() && (iv.lo > dt.max_f64() || iv.hi < dt.min_f64()) {
                push(
                    LintRule::GuaranteedDowncast,
                    key.clone(),
                    format!(
                        "input {i} ({from}) ranges over {iv}, entirely outside {dt}: \
                         every value truncates"
                    ),
                );
            }
        }

        // Possible division by zero.
        let div_ports: Vec<usize> = match &actor.kind {
            Product { ops } => {
                ops.chars().enumerate().filter(|(_, c)| *c == '/').map(|(i, _)| i).collect()
            }
            Math { op: MathOp::Reciprocal } => vec![0],
            Math { op: MathOp::Mod } | Math { op: MathOp::Rem } => vec![1],
            _ => Vec::new(),
        };
        for p in div_ports {
            let iv = engine.iv_in_cast(actor, p);
            if !iv.excludes_zero() {
                push(
                    LintRule::PossibleDivisionByZero,
                    key.clone(),
                    format!("divisor (input {p}) ranges over {iv}, which includes zero"),
                );
            }
        }

        // Constant out-of-range indices.
        match &actor.kind {
            MultiportSwitch { cases } => {
                let sel = engine.iv_in(actor, 0);
                if let Some(c) = sel.as_const() {
                    if c.fract() == 0.0 && (c < 1.0 || c > *cases as f64) {
                        push(
                            LintRule::ConstantIndexOutOfRange,
                            key.clone(),
                            format!("selector is constantly {c}, outside 1..={cases} (clamped)"),
                        );
                    }
                }
            }
            Selector { indices, dynamic } => {
                let width = engine.in_width(actor, 0);
                if *dynamic {
                    let sel = engine.iv_in(actor, 1);
                    if let Some(c) = sel.as_const() {
                        if c.fract() == 0.0 && (c < 1.0 || c > width as f64) {
                            push(
                                LintRule::ConstantIndexOutOfRange,
                                key.clone(),
                                format!(
                                    "runtime index is constantly {c}, outside 1..={width} (clamped)"
                                ),
                            );
                        }
                    }
                } else {
                    for idx in indices {
                        if *idx >= width {
                            push(
                                LintRule::ConstantIndexOutOfRange,
                                key.clone(),
                                format!("static index {idx} out of range for width {width}"),
                            );
                        }
                    }
                }
            }
            _ => {}
        }

        // Implicit float → integer type flow.
        if dt.is_integer()
            && actor.kind.is_calculation()
            && !matches!(actor.kind, DataTypeConversion { .. })
        {
            let float_ins: Vec<usize> = actor
                .inputs
                .iter()
                .enumerate()
                .filter(|(_, s)| flat.signal(**s).dtype.is_float())
                .map(|(i, _)| i)
                .collect();
            if !float_ins.is_empty() {
                push(
                    LintRule::TypeFlowMismatch,
                    key.clone(),
                    format!(
                        "float input(s) {float_ins:?} are implicitly converted to {dt} \
                         (saturating, NaN becomes 0)"
                    ),
                );
            }
        }
    }

    // Never-active groups: the whole activation chain (own control plus
    // every ancestor) is provably inactive — stronger than a single
    // constant control, hence its own rule.
    for group in &flat.groups {
        if engine.final_act(group.id) == Act::Never {
            push(
                LintRule::NeverActiveGroup,
                group.path.key(),
                "the group's activation chain is provably never active: \
                 every member is dead weight"
                    .into(),
            );
        }
    }

    // Constant group controls.
    for group in &flat.groups {
        let ctrl = engine.sig[group.control.0];
        let note = match group.kind {
            SystemKind::Enabled if ctrl.always_zero() => {
                Some("enable control is constantly zero: the subsystem never runs")
            }
            SystemKind::Enabled if ctrl.always_nonzero() => {
                Some("enable control is constantly nonzero: the subsystem always runs")
            }
            SystemKind::Triggered if ctrl.always_zero() => {
                Some("trigger control is constantly zero: the subsystem never fires")
            }
            _ => None,
        };
        if let Some(note) = note {
            push(LintRule::ConstantBranch, group.path.key(), note.into());
        }
    }

    // Most severe first, stable within a severity class.
    out.sort_by_key(|f| std::cmp::Reverse(f.severity));
    out
}
