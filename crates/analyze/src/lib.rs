//! # accmos-analyze
//!
//! Static model analysis for AccMoS-RS: a fixpoint **abstract
//! interpretation** over the preprocessed (flattened, scheduled, resolved)
//! model that assigns every signal a value [`Interval`], plus three
//! consumers of those intervals:
//!
//! 1. a **lint catalogue** ([`AnalysisFinding`]) — dead actors, constant
//!    branch conditions, guaranteed downcast truncation, possible division
//!    by zero, constant out-of-range indices and implicit float→integer
//!    type flows;
//! 2. **proven-safe instrumentation pruning** — per `(actor, diagnostic)`
//!    facts ([`ModelAnalysis::proves_never_fires`]) that codegen uses to
//!    drop runtime diagnosis checks which can *never* fire on any input;
//! 3. **unsatisfiable coverage points** — bitmap bits (e.g. the false
//!    outcome of a constantly-true decision) no stimulus can ever cover,
//!    so coverage reports can show honest reachable denominators.
//!
//! The soundness contract is one-directional: the analysis may *fail* to
//! prove a safe site safe (the check stays, costing only time), but it
//! must never prune a check that some input could trip. Every transfer
//! function therefore over-approximates the generated C semantics —
//! `-fwrapv` modular integers, saturating NaN→0 float-to-int conversion,
//! checked division — and every proof obligation falls back to "don't
//! know" (⊤) rather than guess.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fixpoint;
mod verdict;

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::str::FromStr;

use accmos_graph::{ActorId, GroupId, PreprocessedModel, SignalId};
use accmos_ir::{CoverageKind, DiagnosticKind, Interval, TestVectors};

use fixpoint::Engine;

pub use fixpoint::{cast_interval, float_outward, wrap_fold};

/// Conditional-group activity proven at the fixpoint (three-valued).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupActivity {
    /// The group's members provably never execute: dead path.
    Never,
    /// Undetermined — the runtime guard must stay.
    Maybe,
    /// Provably active every step: the guard can specialize to `1`.
    Always,
}

/// Proven-constant resolution of a branchy actor template, licensing
/// codegen to emit only the taken arm. The elided arms' coverage bits are
/// exactly the ones [`ModelAnalysis::unsatisfiable_points`] already
/// marks, so digests and coverage counters stay identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchSpec {
    /// `Switch`: the criteria is constantly true (pass-through) or false.
    SwitchTaken(bool),
    /// `MultiportSwitch`: only this 1-based case is ever selected
    /// (after the template's clamp).
    MultiportCase(usize),
    /// `Saturation`: only this branch is reachable
    /// (0 = below, 1 = pass-through, 2 = above).
    SaturationBranch(usize),
}

/// Specialization verdict of one actor, most aggressive first.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecVerdict {
    /// Provably never executes: the whole body can be elided.
    DeadPath,
    /// Every output is pinned to one value (one entry per output port):
    /// the calculation can be replaced by literal stores.
    ConstantFoldable(Vec<f64>),
    /// Semantically branch-free (natively, or after proven-arm elision):
    /// eligible for the fused auto-vectorizable lane-segment shape.
    LaneSafe,
    /// No specialization applies.
    Opaque,
}

/// Lint severity, ordered `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational; never gates CI.
    Info,
    /// Likely-unintended modeling; worth a look.
    Warning,
    /// Almost certainly a modeling bug.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

impl FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Severity, String> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" | "warn" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!("unknown severity '{other}' (info|warning|error)")),
        }
    }
}

/// The lint catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    /// An actor (or whole conditional group) provably never executes.
    DeadActor,
    /// A branch or decision outcome is statically fixed, so some coverage
    /// objective is unsatisfiable.
    ConstantBranch,
    /// An input's value range lies entirely outside the output type's
    /// range: the downcast *always* truncates.
    GuaranteedDowncast,
    /// A divisor's value range includes zero.
    PossibleDivisionByZero,
    /// A constant selector/index lies outside the valid range.
    ConstantIndexOutOfRange,
    /// A float signal flows implicitly into an integer computation.
    TypeFlowMismatch,
    /// A conditional group's whole activation chain is provably never
    /// active: everything inside it is dead weight.
    NeverActiveGroup,
    /// A Switch (or MultiportSwitch) provably always takes the same arm;
    /// the block adds a branch that never branches.
    AlwaysTakenSwitchArm,
}

impl LintRule {
    /// Stable kebab-case rule name (CLI / JSON).
    pub fn name(self) -> &'static str {
        match self {
            LintRule::DeadActor => "dead-actor",
            LintRule::ConstantBranch => "constant-branch",
            LintRule::GuaranteedDowncast => "guaranteed-downcast",
            LintRule::PossibleDivisionByZero => "possible-division-by-zero",
            LintRule::ConstantIndexOutOfRange => "constant-index-out-of-range",
            LintRule::TypeFlowMismatch => "type-flow-mismatch",
            LintRule::NeverActiveGroup => "never-active-group",
            LintRule::AlwaysTakenSwitchArm => "always-taken-switch-arm",
        }
    }

    /// Default severity of the rule.
    pub fn severity(self) -> Severity {
        match self {
            LintRule::DeadActor => Severity::Warning,
            LintRule::ConstantBranch => Severity::Warning,
            LintRule::GuaranteedDowncast => Severity::Error,
            LintRule::PossibleDivisionByZero => Severity::Warning,
            LintRule::ConstantIndexOutOfRange => Severity::Error,
            LintRule::TypeFlowMismatch => Severity::Info,
            LintRule::NeverActiveGroup => Severity::Warning,
            LintRule::AlwaysTakenSwitchArm => Severity::Warning,
        }
    }
}

/// One reported lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisFinding {
    /// The violated rule.
    pub rule: LintRule,
    /// Severity (normally [`LintRule::severity`]).
    pub severity: Severity,
    /// Hierarchical key of the offending actor or group.
    pub actor: String,
    /// Human-readable explanation with concrete ranges.
    pub message: String,
}

/// The result of analyzing one preprocessed model.
#[derive(Debug, Clone)]
pub struct ModelAnalysis {
    model: String,
    sig: Vec<Interval>,
    live: Vec<bool>,
    iterations: usize,
    narrow_passes: usize,
    converged: bool,
    findings: Vec<AnalysisFinding>,
    never_fires: HashSet<(ActorId, DiagnosticKind)>,
    unsat: [BTreeSet<usize>; 4],
    fold: HashMap<ActorId, Vec<f64>>,
    branch_spec: HashMap<ActorId, BranchSpec>,
    group_act: Vec<GroupActivity>,
    lane_safe: HashSet<ActorId>,
    syntactic_lane_safe: usize,
    explain: Vec<String>,
}

/// Analyze a preprocessed model with no stimulus assumption: root inports
/// range over their full data type. Results are safe to use for pruning
/// and unsatisfiable-coverage marking under *any* test vectors.
pub fn analyze(pre: &PreprocessedModel) -> ModelAnalysis {
    build(pre, None)
}

/// Like [`analyze`], but when `tests` is given the *lints* are sharpened
/// by seeding each root inport with the hull of its declared test column
/// (matched by name and type). Pruning facts and unsatisfiable points are
/// still computed without the seed — they must hold for any stimulus.
pub fn analyze_with_tests(pre: &PreprocessedModel, tests: Option<&TestVectors>) -> ModelAnalysis {
    build(pre, tests)
}

fn build(pre: &PreprocessedModel, tests: Option<&TestVectors>) -> ModelAnalysis {
    let mut engine = Engine::new(&pre.flat, None);
    engine.run();
    let (never_fires, unsat) = verdict::facts(&engine, &pre.coverage);
    let spec = verdict::specialize(&engine);

    let findings = if tests.is_some() {
        let mut seeded = Engine::new(&pre.flat, tests);
        seeded.run();
        verdict::lints(&seeded)
    } else {
        verdict::lints(&engine)
    };

    ModelAnalysis {
        model: pre.flat.name.clone(),
        sig: engine.sig.clone(),
        live: engine.live.clone(),
        iterations: engine.iterations,
        narrow_passes: engine.narrow_passes,
        converged: engine.converged,
        findings,
        never_fires,
        unsat,
        fold: spec.fold,
        branch_spec: spec.branch_spec,
        group_act: spec.group_act,
        lane_safe: spec.lane_safe,
        syntactic_lane_safe: spec.syntactic_lane_safe,
        explain: spec.explain,
    }
}

fn kind_slot(kind: CoverageKind) -> usize {
    CoverageKind::ALL.iter().position(|k| *k == kind).unwrap_or(0)
}

impl ModelAnalysis {
    /// The analyzed model's name.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The value interval of a signal at the fixpoint.
    pub fn signal(&self, id: SignalId) -> Interval {
        self.sig.get(id.0).copied().unwrap_or(Interval::TOP)
    }

    /// Whether the actor can execute at all (its conditional-group chain
    /// is not provably inactive).
    pub fn is_live(&self, id: ActorId) -> bool {
        self.live.get(id.0).copied().unwrap_or(true)
    }

    /// Fixpoint passes executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Descending (narrowing) passes that refined at least one interval
    /// after the widened fixpoint.
    pub fn narrow_passes(&self) -> usize {
        self.narrow_passes
    }

    /// Per-port constant values when every output of the actor is pinned
    /// to one value, licensing codegen to replace the calculation body
    /// with literal stores. Only pure, coverage-free templates qualify.
    pub fn constant_fold(&self, id: ActorId) -> Option<&[f64]> {
        self.fold.get(&id).map(Vec::as_slice)
    }

    /// The proven-constant branch resolution of a branchy template, if
    /// any (Switch criteria, MultiportSwitch case, Saturation branch).
    pub fn branch_spec(&self, id: ActorId) -> Option<BranchSpec> {
        self.branch_spec.get(&id).copied()
    }

    /// Proven activity of a conditional group at the fixpoint.
    pub fn group_activity(&self, g: GroupId) -> GroupActivity {
        self.group_act.get(g.0).copied().unwrap_or(GroupActivity::Maybe)
    }

    /// Whether the actor's computation is semantically branch-free —
    /// natively, or after the proven-arm elision of [`Self::branch_spec`]
    /// — making it a candidate for fused lane segments. Group activity is
    /// judged separately via [`Self::group_activity`].
    pub fn lane_safe(&self, id: ActorId) -> bool {
        self.lane_safe.contains(&id)
    }

    /// The specialization verdict of one actor, most aggressive first.
    pub fn actor_verdict(&self, id: ActorId) -> SpecVerdict {
        if !self.is_live(id) {
            return SpecVerdict::DeadPath;
        }
        if let Some(values) = self.fold.get(&id) {
            return SpecVerdict::ConstantFoldable(values.clone());
        }
        if self.lane_safe.contains(&id) {
            return SpecVerdict::LaneSafe;
        }
        SpecVerdict::Opaque
    }

    /// Number of constant-foldable actors.
    pub fn foldable_actors(&self) -> usize {
        self.fold.len()
    }

    /// Number of semantically lane-safe actors.
    pub fn lane_safe_count(&self) -> usize {
        self.lane_safe.len()
    }

    /// Number of actors the purely syntactic template allowlist (the
    /// pre-specialization baseline) would accept.
    pub fn syntactic_lane_safe_count(&self) -> usize {
        self.syntactic_lane_safe
    }

    /// Number of branchy actors with a proven-constant arm.
    pub fn specializable_branches(&self) -> usize {
        self.branch_spec.len()
    }

    /// Whether the iteration stabilized before the hard pass cap (it
    /// should always, thanks to widening; the result is sound either way).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// All lints, most severe first.
    pub fn findings(&self) -> &[AnalysisFinding] {
        &self.findings
    }

    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Whether the intervals prove the given diagnosis check can never
    /// fire on any input — the license to prune it from generated code.
    pub fn proves_never_fires(&self, actor: ActorId, kind: DiagnosticKind) -> bool {
        self.never_fires.contains(&(actor, kind))
    }

    /// Total number of prunable diagnosis checks.
    pub fn prunable_checks(&self) -> usize {
        self.never_fires.len()
    }

    /// Bitmap bits of `kind` no stimulus can cover.
    pub fn unsatisfiable_points(&self, kind: CoverageKind) -> &BTreeSet<usize> {
        &self.unsat[kind_slot(kind)]
    }

    /// Number of unsatisfiable points of `kind`.
    pub fn unsatisfiable_count(&self, kind: CoverageKind) -> usize {
        self.unsat[kind_slot(kind)].len()
    }

    /// Plain-text report (CLI `--format text`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "analysis of {}: {} pass(es), {}\n",
            self.model,
            self.iterations,
            if self.converged { "converged" } else { "pass cap hit (sound, imprecise)" }
        ));
        out.push_str(&format!(
            "  dead actors: {}\n  prunable diagnosis checks: {}\n",
            self.live.iter().filter(|l| !**l).count(),
            self.prunable_checks(),
        ));
        out.push_str(&format!(
            "  narrowing passes: {}\n  foldable actors: {}\n  lane-safe actors: {} (syntactic baseline {})\n",
            self.narrow_passes,
            self.foldable_actors(),
            self.lane_safe_count(),
            self.syntactic_lane_safe,
        ));
        for kind in CoverageKind::ALL {
            let n = self.unsatisfiable_count(kind);
            if n > 0 {
                out.push_str(&format!("  unsatisfiable {kind} points: {n}\n"));
            }
        }
        if self.findings.is_empty() {
            out.push_str("no findings\n");
        } else {
            out.push_str(&format!("{} finding(s):\n", self.findings.len()));
            for f in &self.findings {
                out.push_str(&format!(
                    "  [{}] {}: {} — {}\n",
                    f.severity,
                    f.rule.name(),
                    f.actor,
                    f.message
                ));
            }
        }
        out
    }

    /// JSON report (CLI `--format json`). Hand-rolled, stable key order.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        out.push_str(&format!("\"model\":{},", json_str(&self.model)));
        out.push_str(&format!("\"iterations\":{},", self.iterations));
        out.push_str(&format!("\"narrow_passes\":{},", self.narrow_passes));
        out.push_str(&format!("\"converged\":{},", self.converged));
        out.push_str(&format!(
            "\"dead_actors\":{},",
            self.live.iter().filter(|l| !**l).count()
        ));
        out.push_str(&format!("\"prunable_checks\":{},", self.prunable_checks()));
        out.push_str(&format!("\"foldable_actors\":{},", self.foldable_actors()));
        out.push_str(&format!("\"lane_safe_actors\":{},", self.lane_safe_count()));
        out.push_str(&format!(
            "\"syntactic_lane_safe\":{},",
            self.syntactic_lane_safe
        ));
        out.push_str(&format!(
            "\"specializable_branches\":{},",
            self.specializable_branches()
        ));
        out.push_str("\"unsatisfiable\":{");
        for (i, kind) in CoverageKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{}",
                json_str(&kind.to_string()),
                self.unsatisfiable_count(*kind)
            ));
        }
        out.push_str("},");
        out.push_str(&format!(
            "\"max_severity\":{},",
            match self.max_severity() {
                Some(s) => json_str(&s.to_string()),
                None => "null".to_string(),
            }
        ));
        out.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"severity\":{},\"actor\":{},\"message\":{}}}",
                json_str(f.rule.name()),
                json_str(&f.severity.to_string()),
                json_str(&f.actor),
                json_str(&f.message)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human-readable specialization report (CLI `--explain`): what would
    /// be folded, elided or guard-specialized in generated code, and why.
    pub fn render_explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "specialization plan for {}: {} ascending + {} narrowing pass(es)\n",
            self.model, self.iterations, self.narrow_passes
        ));
        out.push_str(&format!(
            "  fold {} actor(s), elide {} dead actor(s), specialize {} branch(es), \
             {} group guard(s) constant\n",
            self.foldable_actors(),
            self.live.iter().filter(|l| !**l).count(),
            self.specializable_branches(),
            self.group_act
                .iter()
                .filter(|a| !matches!(a, GroupActivity::Maybe))
                .count(),
        ));
        out.push_str(&format!(
            "  lane-safe: {} of {} actor(s) (syntactic baseline {})\n",
            self.lane_safe_count(),
            self.live.len(),
            self.syntactic_lane_safe,
        ));
        if self.explain.is_empty() {
            out.push_str("no specialization opportunities\n");
        } else {
            for line in &self.explain {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_graph::preprocess;
    use accmos_ir::{
        Actor, ActorKind, DataType, LogicOp, Model, ModelBuilder, RelOp, Scalar, SwitchCriteria,
        SystemKind,
    };

    fn analyzed(model: &Model) -> (PreprocessedModel, ModelAnalysis) {
        let pre = preprocess(model).expect("preprocess");
        let analysis = analyze(&pre);
        (pre, analysis)
    }

    fn actor_id(pre: &PreprocessedModel, key: &str) -> ActorId {
        pre.flat
            .actors
            .iter()
            .find(|a| a.path.key() == key)
            .unwrap_or_else(|| panic!("no actor {key}"))
            .id
    }

    fn has_finding(a: &ModelAnalysis, rule: LintRule, key: &str) -> bool {
        a.findings.iter().any(|f| f.rule == rule && f.actor == key)
    }

    #[test]
    fn constant_arithmetic_reaches_exact_fixpoint() {
        let mut b = ModelBuilder::new("M");
        b.constant("A", Scalar::I32(3));
        b.constant("B", Scalar::I32(4));
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.outport("Y", DataType::I32);
        b.connect(("A", 0), ("Add", 0));
        b.connect(("B", 0), ("Add", 1));
        b.wire("Add", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        assert!(a.converged());
        let add = pre.flat.actor(actor_id(&pre, "M_Add"));
        assert_eq!(a.signal(add.outputs[0]).as_const(), Some(7.0));
        // 3 + 4 provably fits i32: the overflow check is prunable.
        assert!(a.proves_never_fires(add.id, DiagnosticKind::WrapOnOverflow));
    }

    #[test]
    fn unbounded_inport_blocks_overflow_proof() {
        let mut b = ModelBuilder::new("M");
        b.inport("A", DataType::I32);
        b.inport("B", DataType::I32);
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.outport("Y", DataType::I32);
        b.connect(("A", 0), ("Add", 0));
        b.connect(("B", 0), ("Add", 1));
        b.wire("Add", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let add = actor_id(&pre, "M_Add");
        assert!(!a.proves_never_fires(add, DiagnosticKind::WrapOnOverflow));
    }

    #[test]
    fn feedback_loop_widens_and_terminates() {
        // Classic accumulator: UnitDelay -> (+1) -> UnitDelay. The exact
        // range grows forever; widening must close it out quickly.
        let mut b = ModelBuilder::new("M");
        b.constant("One", Scalar::I32(1));
        b.actor("Z", ActorKind::UnitDelay { init: Scalar::I32(0) });
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.outport("Y", DataType::I32);
        b.connect(("Z", 0), ("Add", 0));
        b.connect(("One", 0), ("Add", 1));
        b.connect(("Add", 0), ("Z", 0));
        b.wire("Add", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        assert!(a.converged(), "widening must terminate the loop");
        assert!(a.iterations() < 16, "few passes expected, got {}", a.iterations());
        let add = pre.flat.actor(actor_id(&pre, "M_Add"));
        // The accumulator can genuinely wrap: no overflow pruning.
        assert!(!a.proves_never_fires(add.id, DiagnosticKind::WrapOnOverflow));
        let iv = a.signal(add.outputs[0]);
        assert!(iv.contains(1.0) && iv.contains(i32::MAX as f64));
    }

    #[test]
    fn dead_group_actors_are_flagged_and_fully_prunable() {
        let mut b = ModelBuilder::new("M");
        b.constant("Off", Scalar::Bool(false));
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.inport("u", DataType::F64);
            s.actor("Sq", ActorKind::Sqrt);
            s.outport("y", DataType::F64);
            s.wire("u", "Sq");
            s.wire("Sq", "y");
        });
        b.inport("U", DataType::F64);
        b.outport("Y", DataType::F64);
        // Port 0 is the declared inport `u`; the enable control is the
        // port after the declared inports.
        b.connect(("U", 0), ("Sub", 0));
        b.wire_to("Off", "Sub", 1);
        b.wire("Sub", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let sq = actor_id(&pre, "M_Sub_Sq");
        assert!(!a.is_live(sq));
        assert!(has_finding(&a, LintRule::DeadActor, "M_Sub_Sq"));
        // Dead actors' checks can never fire (sqrt domain included).
        assert!(a.proves_never_fires(sq, DiagnosticKind::DomainError));
        // Its actor-coverage bit is unsatisfiable.
        let bit = pre.coverage.actor_bit(sq);
        assert!(a.unsatisfiable_points(CoverageKind::Actor).contains(&bit));
        // The group's "active" condition bit is unsatisfiable too.
        let (t, _f) = pre.coverage.group_bits(pre.flat.groups[0].id);
        assert!(a.unsatisfiable_points(CoverageKind::Condition).contains(&t));
    }

    #[test]
    fn constant_decision_marks_unsat_and_lints() {
        let mut b = ModelBuilder::new("M");
        b.constant("C", Scalar::I32(5));
        b.actor(
            "Cmp",
            ActorKind::CompareToConstant { op: RelOp::Gt, constant: Scalar::I32(3) },
        );
        b.outport("Y", DataType::Bool);
        b.wire("C", "Cmp");
        b.wire("Cmp", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let cmp = actor_id(&pre, "M_Cmp");
        assert!(has_finding(&a, LintRule::ConstantBranch, "M_Cmp"));
        let base = pre.coverage.decision[cmp.0].expect("decision point");
        // 5 > 3 is constantly true: the false outcome is unsatisfiable.
        assert!(a.unsatisfiable_points(CoverageKind::Decision).contains(&(base + 1)));
        assert!(!a.unsatisfiable_points(CoverageKind::Decision).contains(&base));
    }

    #[test]
    fn constant_switch_branch_is_unsatisfiable() {
        let mut b = ModelBuilder::new("M");
        b.constant("Ctl", Scalar::F64(2.0));
        b.inport("A", DataType::F64);
        b.inport("B", DataType::F64);
        b.actor("Sw", ActorKind::Switch { criteria: SwitchCriteria::Greater(1.0) });
        b.outport("Y", DataType::F64);
        b.connect(("A", 0), ("Sw", 0));
        b.connect(("Ctl", 0), ("Sw", 1));
        b.connect(("B", 0), ("Sw", 2));
        b.wire("Sw", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let sw = actor_id(&pre, "M_Sw");
        let (base, outcomes) = pre.coverage.condition[sw.0].expect("branch point");
        assert_eq!(outcomes, 2);
        // Control 2.0 > 1.0 always: the else branch (bit base+1) is dead.
        assert!(a.unsatisfiable_points(CoverageKind::Condition).contains(&(base + 1)));
        assert!(has_finding(&a, LintRule::ConstantBranch, "M_Sw"));
    }

    #[test]
    fn logical_mcdc_masking_unsat() {
        // And(x, false): the false input fixes the decision; neither input
        // can independently drive it while the mask requires the other
        // input to be true.
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::Bool);
        b.constant("F", Scalar::Bool(false));
        b.actor("And", ActorKind::Logical { op: LogicOp::And, inputs: 2 });
        b.outport("Y", DataType::Bool);
        b.connect(("X", 0), ("And", 0));
        b.connect(("F", 0), ("And", 1));
        b.wire("And", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let and = actor_id(&pre, "M_And");
        let (first, inputs) = pre.coverage.mcdc[and.0].expect("mcdc point");
        assert_eq!(inputs, 2);
        let unsat = a.unsatisfiable_points(CoverageKind::Mcdc);
        // Input 0's mask (input 1 true) never holds: both bits unsat.
        assert!(unsat.contains(&first) && unsat.contains(&(first + 1)));
        // Input 1 is constantly false: its shown-true bit is unsat.
        assert!(unsat.contains(&(first + 2)));
        // Decision constantly false -> true outcome unsat.
        let dbase = pre.coverage.decision[and.0].unwrap();
        assert!(a.unsatisfiable_points(CoverageKind::Decision).contains(&dbase));
    }

    #[test]
    fn guaranteed_downcast_lint_fires() {
        let mut b = ModelBuilder::new("M");
        b.constant("Big", Scalar::I32(300));
        b.actor("Cast", Actor::new(ActorKind::DataTypeConversion { to: DataType::I8 }).with_dtype(DataType::I8));
        b.outport("Y", DataType::I8);
        b.wire("Big", "Cast");
        b.wire("Cast", "Y");
        let (_pre, a) = analyzed(&b.build().unwrap());
        assert!(has_finding(&a, LintRule::GuaranteedDowncast, "M_Cast"));
        assert_eq!(a.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn division_lints_and_proofs() {
        // Divisor includes zero -> warning, no prune. Divisor bounded away
        // from zero (via a nonzero constant) -> prunable, no warning.
        let mut b = ModelBuilder::new("M");
        b.inport("U", DataType::F64);
        b.constant("K", Scalar::F64(4.0));
        b.actor("DivU", ActorKind::Product { ops: "*/".into() });
        b.actor("DivK", ActorKind::Product { ops: "*/".into() });
        b.outport("Y", DataType::F64);
        b.outport("Z", DataType::F64);
        b.connect(("K", 0), ("DivU", 0));
        b.connect(("U", 0), ("DivU", 1));
        b.connect(("U", 0), ("DivK", 0));
        b.connect(("K", 0), ("DivK", 1));
        b.wire("DivU", "Y");
        b.wire("DivK", "Z");
        let (pre, a) = analyzed(&b.build().unwrap());
        assert!(has_finding(&a, LintRule::PossibleDivisionByZero, "M_DivU"));
        assert!(!has_finding(&a, LintRule::PossibleDivisionByZero, "M_DivK"));
        assert!(!a.proves_never_fires(actor_id(&pre, "M_DivU"), DiagnosticKind::DivisionByZero));
        assert!(a.proves_never_fires(actor_id(&pre, "M_DivK"), DiagnosticKind::DivisionByZero));
    }

    #[test]
    fn constant_out_of_range_selector_lint() {
        let mut b = ModelBuilder::new("M");
        b.constant("Sel", Scalar::I32(7));
        b.inport("A", DataType::F64);
        b.inport("B", DataType::F64);
        b.actor("Mp", ActorKind::MultiportSwitch { cases: 2 });
        b.outport("Y", DataType::F64);
        b.connect(("Sel", 0), ("Mp", 0));
        b.connect(("A", 0), ("Mp", 1));
        b.connect(("B", 0), ("Mp", 2));
        b.wire("Mp", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        assert!(has_finding(&a, LintRule::ConstantIndexOutOfRange, "M_Mp"));
        // The out-of-range check genuinely fires: must NOT be prunable.
        assert!(!a.proves_never_fires(actor_id(&pre, "M_Mp"), DiagnosticKind::ArrayOutOfBounds));
    }

    #[test]
    fn in_range_selector_proves_bounds_check_safe() {
        let mut b = ModelBuilder::new("M");
        b.constant("Sel", Scalar::I32(2));
        b.inport("A", DataType::F64);
        b.inport("B", DataType::F64);
        b.actor("Mp", ActorKind::MultiportSwitch { cases: 2 });
        b.outport("Y", DataType::F64);
        b.connect(("Sel", 0), ("Mp", 0));
        b.connect(("A", 0), ("Mp", 1));
        b.connect(("B", 0), ("Mp", 2));
        b.wire("Mp", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let mp = actor_id(&pre, "M_Mp");
        assert!(a.proves_never_fires(mp, DiagnosticKind::ArrayOutOfBounds));
        // Case 1 (branch bit base+0) is unsatisfiable, case 2 reachable.
        let (base, _) = pre.coverage.condition[mp.0].unwrap();
        assert!(a.unsatisfiable_points(CoverageKind::Condition).contains(&base));
        assert!(!a.unsatisfiable_points(CoverageKind::Condition).contains(&(base + 1)));
    }

    #[test]
    fn type_flow_mismatch_info() {
        let mut b = ModelBuilder::new("M");
        b.inport("U", DataType::F64);
        b.actor("Add", Actor::new(ActorKind::Sum { signs: "++".into() }).with_dtype(DataType::I32));
        b.outport("Y", DataType::I32);
        b.connect(("U", 0), ("Add", 0));
        b.connect(("U", 0), ("Add", 1));
        b.wire("Add", "Y");
        let (_pre, a) = analyzed(&b.build().unwrap());
        assert!(has_finding(&a, LintRule::TypeFlowMismatch, "M_Add"));
        let f = a
            .findings()
            .iter()
            .find(|f| f.rule == LintRule::TypeFlowMismatch)
            .unwrap();
        assert_eq!(f.severity, Severity::Info);
    }

    #[test]
    fn domain_error_proof_for_nonnegative_sqrt() {
        let mut b = ModelBuilder::new("M");
        b.inport("U", DataType::F64);
        b.actor("AbsU", ActorKind::Abs);
        b.actor("Root", ActorKind::Sqrt);
        b.outport("Y", DataType::F64);
        b.wire("U", "AbsU");
        b.wire("AbsU", "Root");
        b.wire("Root", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        // |u| >= 0, NaN can't satisfy `x < 0.0`: domain check prunable.
        assert!(a.proves_never_fires(actor_id(&pre, "M_Root"), DiagnosticKind::DomainError));
    }

    #[test]
    fn saturation_branch_reachability() {
        let mut b = ModelBuilder::new("M");
        b.constant("C", Scalar::F64(5.0));
        b.actor("Sat", ActorKind::Saturation { lo: -1.0, hi: 1.0 });
        b.outport("Y", DataType::F64);
        b.wire("C", "Sat");
        b.wire("Sat", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let sat = actor_id(&pre, "M_Sat");
        let (base, outcomes) = pre.coverage.condition[sat.0].unwrap();
        assert_eq!(outcomes, 3);
        let unsat = a.unsatisfiable_points(CoverageKind::Condition);
        // 5.0 is always above: below (base+0) and pass (base+1) are unsat.
        assert!(unsat.contains(&base));
        assert!(unsat.contains(&(base + 1)));
        assert!(!unsat.contains(&(base + 2)));
        let out = pre.flat.actor(sat);
        assert_eq!(a.signal(out.outputs[0]).as_const(), Some(1.0));
    }

    #[test]
    fn render_json_is_well_formed_enough() {
        let mut b = ModelBuilder::new("M");
        b.constant("C", Scalar::F64(1.0));
        b.outport("Y", DataType::F64);
        b.wire("C", "Y");
        let (_pre, a) = analyzed(&b.build().unwrap());
        let json = a.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"model\":\"M\""));
        assert!(json.contains("\"findings\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn precision_loss_needs_a_constant_for_float_inputs() {
        // An interval only bounds a float signal; it cannot prove every
        // value inside is representable after the round trip. A UnitDelay
        // alternating {0, 10} has interval [0, 10] with exact-integer
        // bounds — pruning on bounds alone was a soundness bug.
        let mut b = ModelBuilder::new("M");
        b.constant("Ten", Scalar::F64(10.0));
        b.actor("Dly", ActorKind::UnitDelay { init: Scalar::F64(0.0) });
        b.actor(
            "ToInt",
            Actor::new(ActorKind::Gain { gain: Scalar::F64(1.0) }).with_dtype(DataType::I32),
        );
        b.outport("Y", DataType::I32);
        b.wire("Ten", "Dly");
        b.wire("Dly", "ToInt");
        b.wire("ToInt", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let to_int = actor_id(&pre, "M_ToInt");
        assert!(
            !a.proves_never_fires(to_int, DiagnosticKind::PrecisionLoss),
            "a non-constant float interval must keep the round-trip check"
        );

        // A pinned constant that round-trips exactly is provable...
        let mut b = ModelBuilder::new("M");
        b.constant("C", Scalar::F64(2.5));
        b.actor(
            "Narrow",
            Actor::new(ActorKind::Gain { gain: Scalar::F32(2.0) }).with_dtype(DataType::F32),
        );
        b.outport("Y", DataType::F32);
        b.wire("C", "Narrow");
        b.wire("Narrow", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let narrow = actor_id(&pre, "M_Narrow");
        assert!(a.proves_never_fires(narrow, DiagnosticKind::PrecisionLoss), "2.5 is exact in f32");

        // ...while one that does not (0.1 has no exact f32) is not.
        let mut b = ModelBuilder::new("M");
        b.constant("C", Scalar::F64(0.1));
        b.actor(
            "Narrow",
            Actor::new(ActorKind::Gain { gain: Scalar::F32(2.0) }).with_dtype(DataType::F32),
        );
        b.outport("Y", DataType::F32);
        b.wire("C", "Narrow");
        b.wire("Narrow", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let narrow = actor_id(&pre, "M_Narrow");
        assert!(!a.proves_never_fires(narrow, DiagnosticKind::PrecisionLoss));
    }

    #[test]
    fn severity_parse_and_order() {
        assert!(Severity::Info < Severity::Warning && Severity::Warning < Severity::Error);
        assert_eq!("error".parse::<Severity>().unwrap(), Severity::Error);
        assert_eq!("warn".parse::<Severity>().unwrap(), Severity::Warning);
        assert!("fatal".parse::<Severity>().is_err());
    }

    #[test]
    fn test_vector_seeding_sharpens_lints_but_not_proofs() {
        // U in [-8, 8] per declared tests: the division warning remains
        // (0 inside), but a Bias by 100 into i8... stays unproven because
        // proofs must ignore the seed.
        let mut b = ModelBuilder::new("M");
        b.inport("U", DataType::I8);
        b.actor("Inc", ActorKind::Bias { bias: Scalar::I8(1) });
        b.outport("Y", DataType::I8);
        b.wire("U", "Inc");
        b.wire("Inc", "Y");
        let model = b.build().unwrap();
        let pre = preprocess(&model).unwrap();
        let mut tests = TestVectors::new();
        tests.push_column(
            "U",
            DataType::I8,
            (-8i8..=8).map(Scalar::I8).collect::<Vec<_>>(),
        );
        let a = analyze_with_tests(&pre, Some(&tests));
        let inc = actor_id(&pre, "M_Inc");
        // Even though the seeded range can't wrap, the proof must assume
        // the full i8 range (127 + 1 wraps): not prunable.
        assert!(!a.proves_never_fires(inc, DiagnosticKind::WrapOnOverflow));
    }

    #[test]
    fn narrowing_recovers_precision_after_widening() {
        // Clamped accumulator: Z -> +1 -> Sat[0,1000] -> Z. The ascending
        // passes widen the adder toward the type maximum; the descending
        // passes must pull it back to the clamp's successor range.
        let mut b = ModelBuilder::new("M");
        b.constant("One", Scalar::F64(1.0));
        b.actor("Z", ActorKind::UnitDelay { init: Scalar::F64(0.0) });
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.actor("Sat", ActorKind::Saturation { lo: 0.0, hi: 1000.0 });
        b.outport("Y", DataType::F64);
        b.connect(("Z", 0), ("Add", 0));
        b.connect(("One", 0), ("Add", 1));
        b.wire("Add", "Sat");
        b.connect(("Sat", 0), ("Z", 0));
        b.wire("Sat", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        assert!(a.converged());
        assert!(a.narrow_passes() >= 1, "narrowing must refine the widened loop");
        let add = pre.flat.actor(actor_id(&pre, "M_Add"));
        let iv = a.signal(add.outputs[0]);
        assert!(iv.contains(1001.0));
        assert!(iv.hi <= 1001.0, "widened adder must narrow to clamp + 1, got {iv}");
    }

    #[test]
    fn proven_constants_fold_with_explanation() {
        let mut b = ModelBuilder::new("M");
        b.constant("A", Scalar::I32(3));
        b.constant("B", Scalar::I32(4));
        b.actor("Add", ActorKind::Sum { signs: "++".into() });
        b.outport("Y", DataType::I32);
        b.connect(("A", 0), ("Add", 0));
        b.connect(("B", 0), ("Add", 1));
        b.wire("Add", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let add = actor_id(&pre, "M_Add");
        assert_eq!(a.constant_fold(add), Some(&[7.0][..]));
        assert!(matches!(a.actor_verdict(add), SpecVerdict::ConstantFoldable(_)));
        assert!(a.foldable_actors() >= 1);
        assert!(a.render_explain().contains("fold M_Add"));
    }

    #[test]
    fn constant_switch_specializes_arm_and_lints() {
        let mut b = ModelBuilder::new("M");
        b.constant("Ctl", Scalar::F64(2.0));
        b.inport("A", DataType::F64);
        b.inport("B", DataType::F64);
        b.actor("Sw", ActorKind::Switch { criteria: SwitchCriteria::Greater(1.0) });
        b.outport("Y", DataType::F64);
        b.connect(("A", 0), ("Sw", 0));
        b.connect(("Ctl", 0), ("Sw", 1));
        b.connect(("B", 0), ("Sw", 2));
        b.wire("Sw", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let sw = actor_id(&pre, "M_Sw");
        assert_eq!(a.branch_spec(sw), Some(BranchSpec::SwitchTaken(true)));
        assert_eq!(a.specializable_branches(), 1);
        assert!(a.lane_safe(sw), "a switch with a proven arm is semantically lane-safe");
        assert!(
            a.lane_safe_count() > a.syntactic_lane_safe_count(),
            "the semantic proof must admit more than the syntactic allowlist"
        );
        assert!(has_finding(&a, LintRule::AlwaysTakenSwitchArm, "M_Sw"));
        assert!(a.render_explain().contains("specialize M_Sw"));
    }

    #[test]
    fn never_active_group_lints_and_dead_path_verdict() {
        let mut b = ModelBuilder::new("M");
        b.constant("Off", Scalar::Bool(false));
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.inport("u", DataType::F64);
            s.actor("Sq", ActorKind::Sqrt);
            s.outport("y", DataType::F64);
            s.wire("u", "Sq");
            s.wire("Sq", "y");
        });
        b.inport("U", DataType::F64);
        b.outport("Y", DataType::F64);
        b.connect(("U", 0), ("Sub", 0));
        b.wire_to("Off", "Sub", 1);
        b.wire("Sub", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let g = pre.flat.groups[0].id;
        assert_eq!(a.group_activity(g), GroupActivity::Never);
        let group_key = pre.flat.groups[0].path.key();
        assert!(has_finding(&a, LintRule::NeverActiveGroup, &group_key));
        let sq = actor_id(&pre, "M_Sub_Sq");
        assert!(matches!(a.actor_verdict(sq), SpecVerdict::DeadPath));
        assert!(a.render_explain().contains("elide M_Sub_Sq"));
    }

    #[test]
    fn always_active_group_specializes_guard() {
        let mut b = ModelBuilder::new("M");
        b.constant("On", Scalar::Bool(true));
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.inport("u", DataType::F64);
            s.actor("Neg", ActorKind::Gain { gain: Scalar::F64(-1.0) });
            s.outport("y", DataType::F64);
            s.wire("u", "Neg");
            s.wire("Neg", "y");
        });
        b.inport("U", DataType::F64);
        b.outport("Y", DataType::F64);
        b.connect(("U", 0), ("Sub", 0));
        b.wire_to("On", "Sub", 1);
        b.wire("Sub", "Y");
        let (pre, a) = analyzed(&b.build().unwrap());
        let g = pre.flat.groups[0].id;
        assert_eq!(a.group_activity(g), GroupActivity::Always);
        let neg = actor_id(&pre, "M_Sub_Neg");
        assert!(a.is_live(neg));
        assert!(a.lane_safe(neg), "members of an always-active group stay lane-safe");
        assert!(!has_finding(&a, LintRule::NeverActiveGroup, "M_Sub"));
    }
}
