//! The interval fixpoint engine: abstract interpretation of a
//! [`FlatModel`] in schedule order.
//!
//! Every signal gets an [`Interval`] over-approximating all values it can
//! carry over any run; stateful actors and data stores carry their own
//! interval that grows monotonically across passes (with widening, so the
//! iteration terminates). The transfer functions mirror the *generated C*
//! semantics — `-fwrapv` modular integer arithmetic, saturating
//! float→int conversion (NaN → 0), checked division — because the
//! analysis results gate which generated checks may be pruned.

use accmos_graph::{FlatActor, FlatModel, GroupId};
use accmos_ir::{
    ActorKind, DataType, Interval, LogicOp, MathOp, MinMaxOp, RelOp, RoundOp, SwitchCriteria,
    SystemKind, TestVectors, TrigOp, F64_EXACT_INT,
};

/// Passes before widening kicks in (a little precision on short chains).
const WIDEN_AFTER: usize = 3;
/// Hard pass cap; beyond it every state is forced to ⊤ (still sound).
const MAX_PASSES: usize = 64;
/// Bounded descending (narrowing) passes after the widened ascending
/// fixpoint. Each pass re-applies the transfer functions and *meets* every
/// state/store with `init ⊔ contribution` instead of joining, clawing back
/// precision widening threw away. Soundness: if `S` over-approximates the
/// reachable states then so does `init ⊔ F(S)` (the concrete states are
/// exactly the initializer plus one transfer step from a reachable state),
/// and the intersection of two over-approximations over-approximates.
const NARROW_PASSES: usize = 3;

/// Largest magnitude exactly representable in an f32 mantissa (2^24).
const F32_EXACT_INT: f64 = 16_777_216.0;

/// Conservative outward rounding for results that land in `to`-typed
/// storage: covers f32 round-off (and f64 rounding of huge integers), so
/// interval endpoints computed in f64 stay sound bounds.
pub fn float_outward(iv: Interval, to: DataType) -> Interval {
    if iv.numeric_empty() {
        return iv;
    }
    let inflate = |b: f64, up: bool| -> f64 {
        if !b.is_finite() {
            return b;
        }
        let (rel, abs) = match to {
            DataType::F32 => (1e-6, 1e-37),
            _ if b.abs() > F64_EXACT_INT => (1e-15, 0.0),
            _ => return b,
        };
        let d = b.abs() * rel + abs;
        let b = if up { b + d } else { b - d };
        // Values beyond f32 range round to ±inf.
        if to == DataType::F32 && b.abs() >= f32::MAX as f64
            && up == (b > 0.0) {
                return if up { f64::INFINITY } else { f64::NEG_INFINITY };
            }
        b
    };
    Interval { lo: inflate(iv.lo, false), hi: inflate(iv.hi, true), nan: iv.nan }
}

/// Abstract counterpart of codegen's `cast_expr`: identity, `!= 0` for
/// Bool, saturating `accmos_f64_to_*` (NaN → 0) for float→int, modular
/// wrap (collapse to the full type range) for int→int that may not fit.
pub fn cast_interval(iv: Interval, from: DataType, to: DataType) -> Interval {
    if iv.is_empty() || from == to {
        return iv;
    }
    if to == DataType::Bool {
        if iv.always_nonzero() {
            return Interval::exact(1.0);
        }
        if iv.always_zero() {
            return Interval::exact(0.0);
        }
        return Interval::any_bool();
    }
    if from.is_float() && to.is_integer() {
        let mut r = if iv.numeric_empty() {
            Interval::EMPTY
        } else {
            Interval::new(
                iv.lo.trunc().clamp(to.min_f64(), to.max_f64()),
                iv.hi.trunc().clamp(to.min_f64(), to.max_f64()),
            )
        };
        if iv.nan {
            r = r.join(Interval::exact(0.0));
        }
        return r;
    }
    if to.is_float() {
        return float_outward(iv, to);
    }
    // Plain C integer cast: exact when it provably fits, full wrap else.
    if iv.fits(to) {
        iv
    } else {
        Interval::of_dtype(to)
    }
}

/// Abstract counterpart of `cast_f64_expr` (an already-double expression
/// stored into `to`).
pub fn cast_f64_interval(iv: Interval, to: DataType) -> Interval {
    cast_interval(iv, DataType::F64, to)
}

/// Clamp a transfer result into what `dt`-typed storage can hold.
fn land(iv: Interval, dt: DataType) -> Interval {
    if iv.is_empty() {
        return iv;
    }
    if dt.is_float() {
        return float_outward(iv, dt);
    }
    // Integer/Bool storage cannot hold NaN and stays within the type.
    let mut r = iv.meet(Interval::of_dtype(dt));
    r.nan = false;
    if r.is_empty() {
        // A sound transfer never produces an impossible integer value;
        // if rounding artifacts emptied the meet, fall back to ⊤.
        return Interval::of_dtype(dt);
    }
    r
}

/// Modular fold over `dt`: applies `steps` exactly and reports whether
/// *every* partial result provably fits `dt` (in which case the wrapped C
/// computation equals the exact one and an overflow check cannot fire).
pub fn wrap_fold(
    dt: DataType,
    init: Interval,
    steps: impl IntoIterator<Item = (char, Interval)>,
) -> (Interval, bool) {
    let mut ex = init;
    let mut all_fit = ex.fits(dt);
    for (op, rhs) in steps {
        ex = match op {
            '+' => ex + rhs,
            '-' => ex - rhs,
            '*' => ex * rhs,
            _ => Interval::of_dtype(dt),
        };
        all_fit &= ex.fits(dt);
    }
    if all_fit {
        (ex, true)
    } else {
        (Interval::of_dtype(dt), false)
    }
}

/// Float interval division (divisor spanning zero → ⊤ with NaN).
fn fdiv(a: Interval, b: Interval) -> Interval {
    if a.numeric_empty() || b.numeric_empty() {
        return Interval { lo: f64::INFINITY, hi: f64::NEG_INFINITY, nan: a.nan || b.nan };
    }
    if !b.excludes_zero() {
        return Interval::TOP;
    }
    let corners = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
    if corners.iter().any(|c| c.is_nan()) {
        return Interval::TOP;
    }
    let mut r = Interval::new(
        corners.iter().copied().fold(f64::INFINITY, f64::min),
        corners.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    r.nan = a.nan || b.nan;
    r
}

/// Group activity over one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// The group's members never execute.
    Never,
    /// May or may not execute on any given step.
    Maybe,
    /// Executes every step.
    Always,
}

/// The three-valued truth of a C condition (`Some` = provably constant).
pub type Tri = Option<bool>;

/// Fixpoint state over one model.
pub struct Engine<'a> {
    pub flat: &'a FlatModel,
    /// Per-signal value interval (recomputed each pass; includes the
    /// zero-initialized "held" value for conditionally-executed outputs).
    pub sig: Vec<Interval>,
    /// Per-actor state interval (delay lines, accumulators, held samples).
    pub state: Vec<Interval>,
    /// Per-store value interval.
    pub store: Vec<Interval>,
    /// Per-actor liveness (false = the group chain is provably inactive).
    pub live: Vec<bool>,
    /// Optional per-root-inport seed from declared test vectors.
    seed: Vec<Option<Interval>>,
    /// Passes executed.
    pub iterations: usize,
    /// Narrowing (descending) passes that refined at least one interval.
    pub narrow_passes: usize,
    /// Whether the loop stabilized before the hard cap.
    pub converged: bool,
}

impl<'a> Engine<'a> {
    pub fn new(flat: &'a FlatModel, tests: Option<&TestVectors>) -> Engine<'a> {
        let seed = flat
            .root_inports
            .iter()
            .map(|id| tests.and_then(|t| inport_seed(flat.actor(*id), t)))
            .collect();
        Engine {
            flat,
            sig: vec![Interval::EMPTY; flat.signals.len()],
            state: flat.actors.iter().map(initial_state).collect(),
            store: flat
                .stores
                .iter()
                .map(|s| Interval::exact(s.init.cast(s.dtype).to_f64()))
                .collect(),
            live: vec![true; flat.actors.len()],
            seed,
            iterations: 0,
            narrow_passes: 0,
            converged: false,
        }
    }

    /// Iterate to a fixpoint (widening-bounded), then narrow.
    pub fn run(&mut self) {
        let mut settled = false;
        for pass in 0..MAX_PASSES {
            self.iterations = pass + 1;
            if !self.pass(pass >= WIDEN_AFTER, false) {
                self.converged = true;
                settled = true;
                break;
            }
        }
        if !settled {
            // Cap hit (should not happen with widening): force every state
            // to ⊤ and settle with one final pass — still a sound fixpoint.
            for (i, actor) in self.flat.actors.iter().enumerate() {
                self.state[i] = Interval::of_dtype(actor.dtype);
            }
            for (i, s) in self.flat.stores.iter().enumerate() {
                self.store[i] = Interval::of_dtype(s.dtype);
            }
            self.pass(true, false);
            self.pass(true, false);
        }
        // Descending phase: claw back precision the widening threw away.
        // Bounded, and every iterate is itself sound, so stopping anywhere
        // (including after a non-fixpoint pass) is safe.
        for _ in 0..NARROW_PASSES {
            if !self.pass(false, true) {
                break;
            }
            self.narrow_passes += 1;
        }
    }

    /// One pass in schedule order; returns whether anything changed.
    /// With `narrow` set, state/store contributions are meet-refined
    /// against `init ⊔ contribution` instead of joined (see
    /// `NARROW_PASSES` for the soundness argument).
    fn pass(&mut self, widen: bool, narrow: bool) -> bool {
        let mut changed = false;
        let mut acts: Vec<Option<Act>> = vec![None; self.flat.groups.len()];
        for actor in self.flat.ordered_actors() {
            let act = match actor.group {
                None => Act::Always,
                Some(g) => self.group_act(g, &mut acts),
            };
            let id = actor.id.0;
            if act == Act::Never {
                if self.live[id] {
                    self.live[id] = false;
                    changed = true;
                }
                for out in &actor.outputs {
                    // Never-executed outputs hold their zero-initialized
                    // C static forever.
                    let z = Interval::exact(0.0);
                    if self.sig[out.0] != z {
                        self.sig[out.0] = z;
                        changed = true;
                    }
                }
                continue;
            }
            if !self.live[id] {
                self.live[id] = true;
                changed = true;
            }
            let outs = self.transfer(actor);
            debug_assert_eq!(outs.len(), actor.outputs.len());
            for (p, out) in actor.outputs.iter().enumerate() {
                let mut v = land(outs[p], self.flat.signal(*out).dtype);
                if actor.group.is_some() && act != Act::Always {
                    // Held output: zero-initialized until first executed.
                    v = v.join(Interval::exact(0.0));
                }
                if self.sig[out.0] != v {
                    self.sig[out.0] = v;
                    changed = true;
                }
            }
            changed |= self.update_state(actor, widen, narrow);
        }
        changed
    }

    /// Activity of group `g` (memoized per pass).
    fn group_act(&self, g: GroupId, memo: &mut Vec<Option<Act>>) -> Act {
        if let Some(a) = memo[g.0] {
            return a;
        }
        let group = &self.flat.groups[g.0];
        let parent = match group.parent {
            Some(p) => self.group_act(p, memo),
            None => Act::Always,
        };
        let ctrl = self.sig[group.control.0];
        let own = match group.kind {
            SystemKind::Plain => Act::Always,
            SystemKind::Enabled => {
                if ctrl.always_zero() {
                    Act::Never
                } else if ctrl.always_nonzero() {
                    Act::Always
                } else {
                    Act::Maybe
                }
            }
            // A trigger needs a rising edge; a constantly-zero control
            // never rises, anything else might (at least once).
            SystemKind::Triggered => {
                if ctrl.always_zero() {
                    Act::Never
                } else {
                    Act::Maybe
                }
            }
        };
        let combined = match (parent, own) {
            (Act::Never, _) | (_, Act::Never) => Act::Never,
            (Act::Always, o) => o,
            (Act::Maybe, _) => Act::Maybe,
        };
        memo[g.0] = Some(combined);
        combined
    }

    /// Raw input interval of `port`.
    pub fn iv_in(&self, actor: &FlatActor, port: usize) -> Interval {
        self.sig[actor.inputs[port].0]
    }

    /// Resolved vector width of input `port`.
    pub fn in_width(&self, actor: &FlatActor, port: usize) -> usize {
        self.flat.signal(actor.inputs[port]).width.max(1)
    }

    /// Group activity at the fixpoint (fresh memo over final signals).
    pub fn final_act(&self, g: GroupId) -> Act {
        let mut memo = vec![None; self.flat.groups.len()];
        self.group_act(g, &mut memo)
    }

    /// Input interval cast to the actor's output type (`in_cast`).
    pub fn iv_in_cast(&self, actor: &FlatActor, port: usize) -> Interval {
        let sig = self.flat.signal(actor.inputs[port]);
        cast_interval(self.sig[sig.id.0], sig.dtype, actor.dtype)
    }

    /// Truth of `(input != 0)` for raw input `port`.
    pub fn tri_nonzero(&self, actor: &FlatActor, port: usize) -> Tri {
        let iv = self.iv_in(actor, port);
        if iv.always_nonzero() {
            Some(true)
        } else if iv.always_zero() {
            Some(false)
        } else {
            None
        }
    }

    /// Truth of a Switch criteria over its control input.
    pub fn tri_switch(&self, actor: &FlatActor, criteria: &SwitchCriteria) -> Tri {
        let c = self.iv_in(actor, 1);
        match criteria {
            SwitchCriteria::GreaterEqual(th) => tri_cmp(c, RelOp::Ge, Interval::exact(*th)),
            SwitchCriteria::Greater(th) => tri_cmp(c, RelOp::Gt, Interval::exact(*th)),
            SwitchCriteria::NotEqualZero => {
                if c.always_nonzero() {
                    Some(true)
                } else if c.always_zero() {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    /// The clamped case range `[lo, hi]` a MultiportSwitch can select.
    pub fn multiport_range(&self, actor: &FlatActor, cases: usize) -> (usize, usize) {
        let sel = self.iv_in(actor, 0);
        let n = cases.max(1);
        if sel.nan || sel.numeric_empty() || !sel.lo.is_finite() || !sel.hi.is_finite() {
            return (1, n);
        }
        let lo = sel.lo.trunc().clamp(1.0, n as f64) as usize;
        let hi = sel.hi.trunc().clamp(1.0, n as f64) as usize;
        (lo.min(hi), lo.max(hi))
    }

    /// Truth of a decision-point expression (the boolean output of a
    /// logic actor), or `None` when not provably constant.
    pub fn tri_decision(&self, actor: &FlatActor) -> Tri {
        match &actor.kind {
            ActorKind::Relational { op } => {
                tri_cmp(self.iv_in(actor, 0), *op, self.iv_in(actor, 1))
            }
            ActorKind::CompareToConstant { op, constant } => {
                tri_cmp(self.iv_in(actor, 0), *op, Interval::exact(constant.to_f64()))
            }
            ActorKind::Logical { op, inputs } => {
                let n = if *op == LogicOp::Not { 1 } else { *inputs };
                let cs: Vec<Tri> = (0..n).map(|i| self.tri_nonzero(actor, i)).collect();
                tri_logic(*op, &cs)
            }
            ActorKind::EdgeDetector { .. } => {
                // A constantly-zero input never produces an edge; anything
                // else may (the very first step can rise).
                if self.iv_in(actor, 0).always_zero() {
                    Some(false)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Compute the output intervals of one live actor.
    fn transfer(&self, actor: &FlatActor) -> Vec<Interval> {
        use ActorKind::*;
        let dt = actor.dtype;
        let top = || Interval::of_dtype(dt);
        let one = |iv: Interval| vec![iv];
        if actor.outputs.is_empty() {
            return Vec::new();
        }
        match &actor.kind {
            Inport { .. } => {
                if actor.inputs.is_empty() {
                    let col = self
                        .flat
                        .root_inports
                        .iter()
                        .position(|id| *id == actor.id)
                        .unwrap_or(usize::MAX);
                    one(self.seed.get(col).copied().flatten().unwrap_or_else(top))
                } else {
                    one(self.iv_in_cast(actor, 0))
                }
            }
            Constant { value } => {
                let mut hull = Interval::EMPTY;
                for s in value.elems() {
                    hull = hull.join(Interval::exact(s.to_f64()));
                }
                one(cast_interval(hull, value.dtype(), dt))
            }
            Step { before, after, .. } => {
                let b = Interval::exact(before.cast(dt).to_f64());
                let a = Interval::exact(after.cast(dt).to_f64());
                one(b.join(a))
            }
            Ramp { slope, initial, .. } => {
                let iv = if *slope == 0.0 {
                    Interval::exact(*initial)
                } else if *slope > 0.0 {
                    Interval::new(*initial, f64::INFINITY)
                } else {
                    Interval::new(f64::NEG_INFINITY, *initial)
                };
                one(cast_f64_interval(iv, dt))
            }
            SineWave { amplitude, bias, .. } => {
                let amp = amplitude.abs();
                one(cast_f64_interval(Interval::new(bias - amp, bias + amp), dt))
            }
            PulseGenerator { amplitude, .. } => {
                let a = Interval::exact(amplitude.cast(dt).to_f64());
                one(a.join(Interval::exact(0.0)))
            }
            Clock => one(cast_interval(Interval::of_dtype(DataType::U64), DataType::U64, dt)),
            Counter { limit } => one(cast_interval(
                Interval::new(0.0, *limit as f64).meet(Interval::of_dtype(DataType::U64)),
                DataType::U64,
                dt,
            )),
            RandomNumber { .. } => {
                if dt.is_float() {
                    one(cast_f64_interval(Interval::new(0.0, 1.0), dt))
                } else {
                    one(cast_interval(
                        Interval::new(0.0, u32::MAX as f64),
                        DataType::U64,
                        dt,
                    ))
                }
            }
            Ground => one(Interval::exact(0.0)),

            Sum { signs } => {
                let steps = signs
                    .chars()
                    .enumerate()
                    .map(|(i, s)| (s, self.iv_in_cast(actor, i)));
                if dt.is_integer() {
                    one(wrap_fold(dt, Interval::exact(0.0), steps).0)
                } else {
                    let mut acc = Interval::exact(0.0);
                    for (s, iv) in steps {
                        acc = land(
                            if s == '+' { acc + iv } else { acc - iv },
                            dt,
                        );
                    }
                    one(acc)
                }
            }
            Product { ops } => {
                if dt.is_integer() {
                    if ops.contains('/') {
                        one(top())
                    } else {
                        let steps = ops
                            .chars()
                            .enumerate()
                            .map(|(i, _)| ('*', self.iv_in_cast(actor, i)));
                        one(wrap_fold(dt, Interval::exact(1.0), steps).0)
                    }
                } else {
                    let mut acc = Interval::exact(1.0);
                    for (i, op) in ops.chars().enumerate() {
                        let iv = self.iv_in_cast(actor, i);
                        acc = land(
                            if op == '*' { acc * iv } else { fdiv(acc, iv) },
                            dt,
                        );
                    }
                    one(acc)
                }
            }
            Gain { gain } => {
                let g = Interval::exact(gain.cast(dt).to_f64());
                let x = self.iv_in_cast(actor, 0);
                if dt.is_integer() {
                    one(wrap_fold(dt, x, [('*', g)]).0)
                } else {
                    one(land(x * g, dt))
                }
            }
            Bias { bias } => {
                let b = Interval::exact(bias.cast(dt).to_f64());
                let x = self.iv_in_cast(actor, 0);
                if dt.is_integer() {
                    one(wrap_fold(dt, x, [('+', b)]).0)
                } else {
                    one(land(x + b, dt))
                }
            }
            Abs => {
                let x = self.iv_in_cast(actor, 0);
                let a = x.abs();
                if dt.is_signed() && !a.fits(dt) {
                    one(top()) // abs(MIN) wraps
                } else {
                    one(land(a, dt))
                }
            }
            Sign => {
                let x = self.iv_in_cast(actor, 0);
                let may_zero = x.numeric_empty() || x.contains(0.0) || x.nan;
                let lo = if !x.numeric_empty() && x.lo < 0.0 {
                    -1.0
                } else if may_zero {
                    0.0
                } else {
                    1.0
                };
                let hi = if !x.numeric_empty() && x.hi > 0.0 {
                    1.0
                } else if may_zero {
                    0.0
                } else {
                    -1.0
                };
                one(land(Interval::new(lo, hi), dt))
            }
            Sqrt => {
                let x = self.iv_in_cast(actor, 0);
                let mut r = if x.numeric_empty() {
                    Interval::EMPTY
                } else {
                    Interval::new(x.lo.max(0.0).sqrt(), x.hi.max(0.0).sqrt())
                };
                r.nan = x.nan || x.lo < 0.0;
                one(cast_f64_interval(r, dt))
            }
            Math { op } => one(self.transfer_math(actor, *op)),
            Trig { op } => one(cast_f64_interval(trig_range(*op, self.iv_in_cast(actor, 0)), dt)),
            MinMax { op, inputs } => {
                let mut acc = self.iv_in_cast(actor, 0);
                for i in 1..*inputs {
                    let x = self.iv_in_cast(actor, i);
                    acc = if *op == MinMaxOp::Min { acc.min_with(x) } else { acc.max_with(x) };
                }
                one(land(acc, dt))
            }
            Rounding { op } => {
                let x = self.iv_in_cast(actor, 0);
                if !dt.is_float() {
                    return one(x);
                }
                if x.numeric_empty() {
                    return one(x);
                }
                let f: fn(f64) -> f64 = match op {
                    RoundOp::Floor => f64::floor,
                    RoundOp::Ceil => f64::ceil,
                    RoundOp::Round => f64::round,
                    RoundOp::Fix => f64::trunc,
                };
                let mut r = Interval::new(f(x.lo), f(x.hi));
                r.nan = x.nan;
                one(cast_f64_interval(r, dt))
            }
            Relational { .. } | CompareToConstant { .. } | Logical { .. } => {
                one(match self.tri_decision(actor) {
                    Some(true) => Interval::exact(1.0),
                    Some(false) => Interval::exact(0.0),
                    None => Interval::any_bool(),
                })
            }
            EdgeDetector { .. } => one(match self.tri_decision(actor) {
                Some(false) => Interval::exact(0.0),
                _ => Interval::any_bool(),
            }),
            Switch { criteria } => {
                let (a, b) = (self.iv_in_cast(actor, 0), self.iv_in_cast(actor, 2));
                one(match self.tri_switch(actor, criteria) {
                    Some(true) => a,
                    Some(false) => b,
                    None => a.join(b),
                })
            }
            MultiportSwitch { cases } => {
                let (lo, hi) = self.multiport_range(actor, *cases);
                let mut hull = Interval::EMPTY;
                for case in lo..=hi {
                    hull = hull.join(self.iv_in_cast(actor, case));
                }
                one(hull)
            }
            Merge { inputs } => {
                let mut hull = Interval::exact(0.0);
                for i in 0..*inputs {
                    hull = hull.join(self.iv_in_cast(actor, i));
                }
                one(hull)
            }
            Saturation { lo, hi } => {
                let x = self.iv_in_cast(actor, 0);
                let mut r = x.clamp_to(*lo, *hi);
                // The saturated branches store the f64 literal cast to dt.
                if x.numeric_empty() {
                    r = Interval::EMPTY;
                }
                if x.lo < *lo {
                    r = r.join(cast_f64_interval(Interval::exact(*lo), dt));
                }
                if x.hi > *hi {
                    r = r.join(cast_f64_interval(Interval::exact(*hi), dt));
                }
                r.nan = x.nan;
                one(land(r, dt))
            }
            DeadZone { start, end } => {
                let x = self.iv_in_cast(actor, 0);
                let mut r = Interval::exact(0.0);
                if x.lo < *start {
                    r = r.join(cast_f64_interval(
                        Interval::new(x.lo - *start, 0.0),
                        dt,
                    ));
                }
                if x.hi > *end {
                    r = r.join(cast_f64_interval(Interval::new(0.0, x.hi - *end), dt));
                }
                r.nan = x.nan;
                one(land(r, dt))
            }
            RateLimiter { rising, falling } => {
                let x = self.iv_in_cast(actor, 0);
                let prev = self.state[actor.id.0];
                let r = x
                    .join(cast_f64_interval(prev + Interval::exact(*rising), dt))
                    .join(cast_f64_interval(prev + Interval::exact(*falling), dt));
                one(land(r, dt))
            }
            Quantizer { interval } => {
                let x = self.iv_in_cast(actor, 0);
                if *interval > 0.0 && !x.numeric_empty() {
                    let q = *interval;
                    let mut r =
                        Interval::new(q * (x.lo / q).round(), q * (x.hi / q).round());
                    r.nan = x.nan;
                    one(cast_f64_interval(r, dt))
                } else {
                    one(top())
                }
            }
            Relay { on_threshold, off_threshold: _, on_value, off_value } => {
                let x = self.iv_in_cast(actor, 0);
                let on = cast_f64_interval(Interval::exact(*on_value), dt);
                let off = cast_f64_interval(Interval::exact(*off_value), dt);
                let can_on = x.hi >= *on_threshold;
                let always_on =
                    !x.numeric_empty() && x.lo >= *on_threshold && !x.nan;
                one(if always_on {
                    on
                } else if can_on {
                    on.join(off)
                } else {
                    off
                })
            }
            UnitDelay { .. } | Memory { .. } | Delay { .. } | DiscreteIntegrator { .. } => {
                one(self.state[actor.id.0])
            }
            DiscreteDerivative => {
                let x = self.iv_in_cast(actor, 0);
                let prev = self.state[actor.id.0];
                if dt.is_integer() {
                    one(wrap_fold(dt, x, [('-', prev)]).0)
                } else {
                    one(land(x - prev, dt))
                }
            }
            ZeroOrderHold { .. } => one(self.state[actor.id.0].join(self.iv_in_cast(actor, 0))),
            Mux { inputs } => {
                let mut hull = Interval::EMPTY;
                for i in 0..*inputs {
                    hull = hull.join(self.iv_in_cast(actor, i));
                }
                one(hull)
            }
            Demux { outputs } => {
                let x = self.iv_in_cast(actor, 0);
                vec![x; *outputs]
            }
            Selector { .. } => one(self.iv_in_cast(actor, 0)),
            DataTypeConversion { .. } => one(self.iv_in_cast(actor, 0)),
            Lookup1D { table, .. } => {
                let mut hull = Interval::EMPTY;
                for v in table {
                    hull = hull.join(Interval::exact(*v));
                }
                one(cast_f64_interval(hull, dt))
            }
            Lookup2D { table, .. } => {
                let mut hull = Interval::EMPTY;
                for v in table {
                    hull = hull.join(Interval::exact(*v));
                }
                one(cast_f64_interval(hull, dt))
            }
            DataStoreRead { store } => {
                let i = self.flat.store_index(store).expect("validated store");
                one(cast_interval(self.store[i], self.flat.stores[i].dtype, dt))
            }
            DataStoreMemory { .. } | DataStoreWrite { .. } => {
                vec![Interval::of_dtype(dt); actor.outputs.len()]
            }
            Outport { .. } => one(self.iv_in_cast(actor, 0)),
            // Anything not modeled precisely: the full type range.
            _ => vec![Interval::of_dtype(dt); actor.outputs.len()],
        }
    }

    fn transfer_math(&self, actor: &FlatActor, op: MathOp) -> Interval {
        let dt = actor.dtype;
        let x = self.iv_in_cast(actor, 0);
        let monotone = |f: fn(f64) -> f64, nan_extra: bool| -> Interval {
            if x.numeric_empty() {
                return Interval { nan: x.nan || nan_extra, ..Interval::EMPTY };
            }
            let mut r = Interval::new(f(x.lo), f(x.hi));
            r.nan = x.nan || nan_extra;
            cast_f64_interval(r, dt)
        };
        match op {
            MathOp::Exp => monotone(f64::exp, false),
            MathOp::Log => monotone(|v| v.max(0.0).ln(), x.lo <= 0.0),
            MathOp::Log10 => monotone(|v| v.max(0.0).log10(), x.lo <= 0.0),
            MathOp::Pow10 => monotone(|v| 10f64.powf(v), false),
            MathOp::Square => {
                if dt.is_integer() {
                    wrap_fold(dt, x, [('*', x)]).0
                } else {
                    land(x * x, dt)
                }
            }
            MathOp::Reciprocal => {
                if dt.is_integer() {
                    Interval::of_dtype(dt)
                } else {
                    land(fdiv(Interval::exact(1.0), x), dt)
                }
            }
            MathOp::Hypot => {
                let y = self.iv_in_cast(actor, 1);
                let r = x.abs() + y.abs();
                cast_f64_interval(Interval { lo: 0.0, ..r }, dt)
            }
            // Mod/Rem/Pow: bounded by the divisor/base in subtle ways;
            // stay at ⊤ rather than risk an unsound refinement.
            _ => Interval::of_dtype(dt),
        }
    }

    /// Join this pass's state contribution (with widening) into the
    /// actor's state interval; returns whether it changed. In `narrow`
    /// mode the old state is meet-refined against `init ⊔ contribution`
    /// instead (descending phase; never widens, never grows).
    fn update_state(&mut self, actor: &FlatActor, widen: bool, narrow: bool) -> bool {
        use ActorKind::*;
        let dt = actor.dtype;
        let id = actor.id.0;
        let contribution = match &actor.kind {
            UnitDelay { .. } | Memory { .. } | Delay { .. } => {
                Some(self.iv_in_cast(actor, 0))
            }
            ZeroOrderHold { .. } => Some(self.iv_in_cast(actor, 0)),
            DiscreteDerivative => Some(self.iv_in_cast(actor, 0)),
            RateLimiter { .. } => {
                // prev := the freshly computed output.
                Some(self.sig[actor.outputs[0].0])
            }
            DiscreteIntegrator { .. } => {
                let incr = self.integrator_increment(actor);
                let acc = self.state[id];
                Some(if dt.is_integer() {
                    wrap_fold(dt, acc, [('+', incr)]).0
                } else {
                    land(acc + incr, dt)
                })
            }
            DataStoreWrite { store } => {
                let i = self.flat.store_index(store).expect("validated store");
                let sdt = self.flat.stores[i].dtype;
                let in_dt = self.flat.signal(actor.inputs[0]).dtype;
                let v = cast_interval(self.iv_in(actor, 0), in_dt, sdt);
                let next = if narrow {
                    let init = Interval::exact(self.flat.stores[i].init.cast(sdt).to_f64());
                    narrow_refine(self.store[i], init, v)
                } else {
                    let joined = self.store[i].join(v);
                    if widen {
                        self.store[i].widen(joined, Interval::of_dtype(sdt))
                    } else {
                        joined
                    }
                };
                let changed = next != self.store[i];
                self.store[i] = next;
                return changed;
            }
            _ => None,
        };
        let Some(v) = contribution else { return false };
        let next = if narrow {
            narrow_refine(self.state[id], initial_state(actor), v)
        } else {
            let joined = self.state[id].join(v);
            if widen {
                self.state[id].widen(joined, Interval::of_dtype(dt))
            } else {
                joined
            }
        };
        let changed = next != self.state[id];
        self.state[id] = next;
        changed
    }

    /// The per-step increment interval of a DiscreteIntegrator (computed
    /// in f64 and converted with saturation, mirroring the generated C).
    pub fn integrator_increment(&self, actor: &FlatActor) -> Interval {
        let ActorKind::DiscreteIntegrator { gain, .. } = &actor.kind else {
            return Interval::of_dtype(actor.dtype);
        };
        let g = Interval::exact(*gain);
        // Over-approximate both raw and cast input readings.
        let x = self.iv_in(actor, 0).join(self.iv_in_cast(actor, 0));
        cast_f64_interval(x * g, actor.dtype)
    }
}

/// One narrowing step: the concrete reachable states are exactly
/// `{init} ∪ F(reachable)`, so `init ⊔ contribution` over-approximates
/// them, and intersecting it with the previous (sound) bound stays sound
/// while only shrinking. An empty meet can only arise from rounding
/// artifacts, so keep the old bound in that case.
fn narrow_refine(old: Interval, init: Interval, contribution: Interval) -> Interval {
    let refined = old.meet(init.join(contribution));
    if refined.is_empty() && !old.is_empty() {
        old
    } else {
        refined
    }
}

/// Initial state interval of a stateful actor (its C initializer).
fn initial_state(actor: &FlatActor) -> Interval {
    use ActorKind::*;
    let dt = actor.dtype;
    match &actor.kind {
        UnitDelay { init } | Memory { init } | Delay { init, .. }
        | DiscreteIntegrator { init, .. } => Interval::exact(init.cast(dt).to_f64()),
        // `static T x;` zero-initializes.
        DiscreteDerivative | RateLimiter { .. } | ZeroOrderHold { .. } => Interval::exact(0.0),
        _ => Interval::EMPTY,
    }
}

/// Seed interval of a root inport from declared test vectors (the hull of
/// the matching column), if the column's type matches.
fn inport_seed(actor: &FlatActor, tests: &TestVectors) -> Option<Interval> {
    let name = actor.path.name();
    let col = tests.columns().iter().find(|c| c.name == name)?;
    if col.dtype != actor.dtype || col.values.is_empty() {
        return None;
    }
    let mut hull = Interval::EMPTY;
    for v in &col.values {
        hull = hull.join(Interval::exact(v.to_f64()));
    }
    Some(hull)
}

/// Truth of `a <op> b` in C semantics (NaN compares false except `!=`).
pub fn tri_cmp(a: Interval, op: RelOp, b: Interval) -> Tri {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let no_nan = !a.nan && !b.nan;
    let lt = |x: Interval, y: Interval| !x.numeric_empty() && !y.numeric_empty() && x.hi < y.lo;
    let le = |x: Interval, y: Interval| !x.numeric_empty() && !y.numeric_empty() && x.hi <= y.lo;
    // "Vacuously ordered": a pure-NaN side makes every comparison false.
    let vac = a.numeric_empty() || b.numeric_empty();
    match op {
        RelOp::Lt => {
            if no_nan && lt(a, b) {
                Some(true)
            } else if vac || le(b, a) {
                Some(false)
            } else {
                None
            }
        }
        RelOp::Le => {
            if no_nan && le(a, b) {
                Some(true)
            } else if vac || lt(b, a) {
                Some(false)
            } else {
                None
            }
        }
        RelOp::Gt => {
            if no_nan && lt(b, a) {
                Some(true)
            } else if vac || le(a, b) {
                Some(false)
            } else {
                None
            }
        }
        RelOp::Ge => {
            if no_nan && le(b, a) {
                Some(true)
            } else if vac || lt(a, b) {
                Some(false)
            } else {
                None
            }
        }
        RelOp::Eq => {
            if no_nan && a.as_const().is_some() && a.as_const() == b.as_const() {
                Some(true)
            } else if vac || lt(a, b) || lt(b, a) {
                Some(false)
            } else {
                None
            }
        }
        RelOp::Ne => {
            if (a.numeric_empty() && a.nan)
                || (b.numeric_empty() && b.nan)
                || lt(a, b)
                || lt(b, a)
            {
                Some(true)
            } else if no_nan && a.as_const().is_some() && a.as_const() == b.as_const() {
                Some(false)
            } else {
                None
            }
        }
    }
}

/// Truth of a logic gate over per-input truths.
pub fn tri_logic(op: LogicOp, cs: &[Tri]) -> Tri {
    let fold_and = || -> Tri {
        if cs.contains(&Some(false)) {
            Some(false)
        } else if cs.iter().all(|c| *c == Some(true)) {
            Some(true)
        } else {
            None
        }
    };
    let fold_or = || -> Tri {
        if cs.contains(&Some(true)) {
            Some(true)
        } else if cs.iter().all(|c| *c == Some(false)) {
            Some(false)
        } else {
            None
        }
    };
    match op {
        LogicOp::And => fold_and(),
        LogicOp::Nand => fold_and().map(|v| !v),
        LogicOp::Or => fold_or(),
        LogicOp::Nor => fold_or().map(|v| !v),
        LogicOp::Xor => {
            let mut acc = false;
            for c in cs {
                acc ^= (*c)?;
            }
            Some(acc)
        }
        LogicOp::Not => cs.first().copied().flatten().map(|v| !v),
    }
}

/// Exactly representable magnitude bound for precision-loss proofs.
pub fn mantissa_exact_bound(dt: DataType) -> f64 {
    match dt {
        DataType::F32 => F32_EXACT_INT,
        _ => F64_EXACT_INT,
    }
}

/// Trig output ranges (post-C-library semantics; NaN for domain errors).
fn trig_range(op: TrigOp, x: Interval) -> Interval {
    let nan_dom = |bad: bool| x.nan || bad;
    match op {
        TrigOp::Sin | TrigOp::Cos => Interval::new(-1.0, 1.0).maybe_nan(x.nan),
        TrigOp::Tan => Interval::TOP,
        TrigOp::Asin => Interval::new(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2)
            .maybe_nan(nan_dom(x.lo < -1.0 || x.hi > 1.0)),
        TrigOp::Acos => Interval::new(0.0, std::f64::consts::PI)
            .maybe_nan(nan_dom(x.lo < -1.0 || x.hi > 1.0)),
        TrigOp::Atan => Interval::new(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2)
            .maybe_nan(x.nan),
        TrigOp::Atan2 => {
            Interval::new(-std::f64::consts::PI, std::f64::consts::PI).maybe_nan(x.nan)
        }
        TrigOp::Sinh | TrigOp::Cosh => Interval::TOP,
        TrigOp::Tanh => Interval::new(-1.0, 1.0).maybe_nan(x.nan),
    }
}

trait MaybeNan {
    fn maybe_nan(self, nan: bool) -> Interval;
}

impl MaybeNan for Interval {
    fn maybe_nan(mut self, nan: bool) -> Interval {
        self.nan |= nan;
        self
    }
}
