//! Signal data types.
//!
//! AccMoS-RS supports the discrete-time Simulink numeric types: `boolean`,
//! the fixed-width integers, and the two IEEE-754 floating types (`single`,
//! `double`). Each [`DataType`] knows its C and Rust spellings so that the
//! interpreter, the code generator and the diagnosis template library agree
//! on widths and conversion semantics.

use std::fmt;
use std::str::FromStr;

/// A scalar signal data type.
///
/// # Examples
///
/// ```
/// use accmos_ir::DataType;
///
/// let t: DataType = "int32".parse()?;
/// assert_eq!(t, DataType::I32);
/// assert_eq!(t.c_name(), "int32_t");
/// assert!(t.is_signed());
/// # Ok::<(), accmos_ir::ParseDataTypeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// `boolean` — one byte, values 0 or 1.
    Bool,
    /// `int8`
    I8,
    /// `int16`
    I16,
    /// `int32`
    I32,
    /// `int64`
    I64,
    /// `uint8`
    U8,
    /// `uint16`
    U16,
    /// `uint32`
    U32,
    /// `uint64`
    U64,
    /// `single` — IEEE-754 binary32.
    F32,
    /// `double` — IEEE-754 binary64.
    F64,
}

impl DataType {
    /// All supported data types, in a stable order.
    pub const ALL: [DataType; 11] = [
        DataType::Bool,
        DataType::I8,
        DataType::I16,
        DataType::I32,
        DataType::I64,
        DataType::U8,
        DataType::U16,
        DataType::U32,
        DataType::U64,
        DataType::F32,
        DataType::F64,
    ];

    /// Width of the type in bits (8 for `Bool`, matching its storage size).
    pub fn bits(self) -> u32 {
        match self {
            DataType::Bool | DataType::I8 | DataType::U8 => 8,
            DataType::I16 | DataType::U16 => 16,
            DataType::I32 | DataType::U32 | DataType::F32 => 32,
            DataType::I64 | DataType::U64 | DataType::F64 => 64,
        }
    }

    /// Storage size in bytes.
    pub fn size_bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// `true` for the signed integer types.
    pub fn is_signed(self) -> bool {
        matches!(self, DataType::I8 | DataType::I16 | DataType::I32 | DataType::I64)
    }

    /// `true` for the unsigned integer types (excluding `Bool`).
    pub fn is_unsigned(self) -> bool {
        matches!(self, DataType::U8 | DataType::U16 | DataType::U32 | DataType::U64)
    }

    /// `true` for any integer type, signed or unsigned (excluding `Bool`).
    pub fn is_integer(self) -> bool {
        self.is_signed() || self.is_unsigned()
    }

    /// `true` for `single` and `double`.
    pub fn is_float(self) -> bool {
        matches!(self, DataType::F32 | DataType::F64)
    }

    /// `true` for `boolean`.
    pub fn is_bool(self) -> bool {
        self == DataType::Bool
    }

    /// The Simulink-style name, as stored in MDLX model files.
    pub fn simulink_name(self) -> &'static str {
        match self {
            DataType::Bool => "boolean",
            DataType::I8 => "int8",
            DataType::I16 => "int16",
            DataType::I32 => "int32",
            DataType::I64 => "int64",
            DataType::U8 => "uint8",
            DataType::U16 => "uint16",
            DataType::U32 => "uint32",
            DataType::U64 => "uint64",
            DataType::F32 => "single",
            DataType::F64 => "double",
        }
    }

    /// The `<stdint.h>` spelling used by the C backend.
    pub fn c_name(self) -> &'static str {
        match self {
            DataType::Bool => "uint8_t",
            DataType::I8 => "int8_t",
            DataType::I16 => "int16_t",
            DataType::I32 => "int32_t",
            DataType::I64 => "int64_t",
            DataType::U8 => "uint8_t",
            DataType::U16 => "uint16_t",
            DataType::U32 => "uint32_t",
            DataType::U64 => "uint64_t",
            DataType::F32 => "float",
            DataType::F64 => "double",
        }
    }

    /// The Rust spelling used by the Rust backend.
    pub fn rust_name(self) -> &'static str {
        match self {
            DataType::Bool => "u8",
            DataType::I8 => "i8",
            DataType::I16 => "i16",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::U8 => "u8",
            DataType::U16 => "u16",
            DataType::U32 => "u32",
            DataType::U64 => "u64",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        }
    }

    /// Short mnemonic used in result-protocol lines and signal monitors
    /// (`i32`, `f64`, ... as in the paper's Figure 5 `outputCollect` call).
    pub fn mnemonic(self) -> &'static str {
        match self {
            DataType::Bool => "b8",
            DataType::I8 => "i8",
            DataType::I16 => "i16",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::U8 => "u8",
            DataType::U16 => "u16",
            DataType::U32 => "u32",
            DataType::U64 => "u64",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        }
    }

    /// Smallest representable value, as `f64` (approximate for 64-bit ints).
    pub fn min_f64(self) -> f64 {
        match self {
            DataType::Bool => 0.0,
            DataType::I8 => i8::MIN as f64,
            DataType::I16 => i16::MIN as f64,
            DataType::I32 => i32::MIN as f64,
            DataType::I64 => i64::MIN as f64,
            DataType::U8 | DataType::U16 | DataType::U32 | DataType::U64 => 0.0,
            DataType::F32 => f32::MIN as f64,
            DataType::F64 => f64::MIN,
        }
    }

    /// Largest representable value, as `f64` (approximate for 64-bit ints).
    pub fn max_f64(self) -> f64 {
        match self {
            DataType::Bool => 1.0,
            DataType::I8 => i8::MAX as f64,
            DataType::I16 => i16::MAX as f64,
            DataType::I32 => i32::MAX as f64,
            DataType::I64 => i64::MAX as f64,
            DataType::U8 => u8::MAX as f64,
            DataType::U16 => u16::MAX as f64,
            DataType::U32 => u32::MAX as f64,
            DataType::U64 => u64::MAX as f64,
            DataType::F32 => f32::MAX as f64,
            DataType::F64 => f64::MAX,
        }
    }

    /// Whether converting a value of `self` into `target` can lose range
    /// (the *downcast* condition of the paper's Figure 4, line 4: a narrower
    /// output than input).
    pub fn downcast_to(self, target: DataType) -> bool {
        if self == target {
            return false;
        }
        match (self.is_float(), target.is_float()) {
            // float -> narrower float
            (true, true) => target.bits() < self.bits(),
            // float -> any integer always risks range loss
            (true, false) => true,
            // integer -> float: 64-bit ints do not fit f64 exactly but that
            // is precision, not range; not a downcast.
            (false, true) => false,
            (false, false) => {
                if target == DataType::Bool {
                    return self != DataType::Bool;
                }
                if self == DataType::Bool {
                    return false;
                }
                // Narrower width, or sign change that shrinks range.
                target.bits() < self.bits()
                    || (self.is_signed() != target.is_signed() && target.bits() <= self.bits())
            }
        }
    }

    /// Whether converting `self` into `target` can lose precision without
    /// losing range (e.g. `double -> single`, `int64 -> double`, or any
    /// float -> integer truncation).
    pub fn precision_loss_to(self, target: DataType) -> bool {
        if self == target {
            return false;
        }
        match (self.is_float(), target.is_float()) {
            (true, true) => target.bits() < self.bits(),
            (true, false) => true,
            (false, true) => {
                // Mantissa of f32 is 24 bits, f64 is 53 bits.
                let mantissa = if target == DataType::F32 { 24 } else { 53 };
                self.is_integer() && self.bits() > mantissa
            }
            (false, false) => false,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.simulink_name())
    }
}

impl Default for DataType {
    /// Simulink's default signal type is `double`.
    fn default() -> Self {
        DataType::F64
    }
}

/// Error returned when parsing a [`DataType`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataTypeError {
    text: String,
}

impl ParseDataTypeError {
    /// The rejected input text.
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for ParseDataTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown data type `{}`", self.text)
    }
}

impl std::error::Error for ParseDataTypeError {}

impl FromStr for DataType {
    type Err = ParseDataTypeError;

    /// Accepts both Simulink names (`int32`, `single`, `boolean`) and Rust
    /// mnemonics (`i32`, `f32`, `bool`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = match s {
            "boolean" | "bool" | "b8" => DataType::Bool,
            "int8" | "i8" => DataType::I8,
            "int16" | "i16" => DataType::I16,
            "int32" | "i32" => DataType::I32,
            "int64" | "i64" => DataType::I64,
            "uint8" | "u8" => DataType::U8,
            "uint16" | "u16" => DataType::U16,
            "uint32" | "u32" => DataType::U32,
            "uint64" | "u64" => DataType::U64,
            "single" | "f32" | "float" => DataType::F32,
            "double" | "f64" => DataType::F64,
            _ => return Err(ParseDataTypeError { text: s.to_owned() }),
        };
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_all() {
        for t in DataType::ALL {
            assert_eq!(t.simulink_name().parse::<DataType>().unwrap(), t);
            assert_eq!(t.mnemonic().parse::<DataType>().unwrap(), t);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("quadruple".parse::<DataType>().is_err());
        let err = "x".parse::<DataType>().unwrap_err();
        assert_eq!(err.text(), "x");
    }

    #[test]
    fn widths_are_consistent() {
        for t in DataType::ALL {
            assert_eq!(t.size_bytes() * 8, t.bits() as usize);
        }
        assert_eq!(DataType::I64.bits(), 64);
        assert_eq!(DataType::Bool.size_bytes(), 1);
    }

    #[test]
    fn classification_partition() {
        for t in DataType::ALL {
            let classes =
                [t.is_bool(), t.is_float(), t.is_signed(), t.is_unsigned()].iter().filter(|b| **b).count();
            assert_eq!(classes, 1, "{t} must be in exactly one class");
        }
    }

    #[test]
    fn downcast_relations() {
        use DataType::*;
        assert!(I32.downcast_to(I16));
        assert!(I32.downcast_to(U32)); // sign change, same width
        assert!(F64.downcast_to(F32));
        assert!(F64.downcast_to(I64)); // float -> int loses range
        assert!(!I16.downcast_to(I32));
        assert!(!I32.downcast_to(I32));
        assert!(!I32.downcast_to(F64));
        assert!(!Bool.downcast_to(I8));
        assert!(I8.downcast_to(Bool));
    }

    #[test]
    fn precision_loss_relations() {
        use DataType::*;
        assert!(F64.precision_loss_to(F32));
        assert!(F32.precision_loss_to(I32));
        assert!(I64.precision_loss_to(F64)); // 64 > 53 mantissa bits
        assert!(I32.precision_loss_to(F32)); // 32 > 24 mantissa bits
        assert!(!I16.precision_loss_to(F32));
        assert!(!I32.precision_loss_to(F64));
        assert!(!I32.precision_loss_to(I16)); // that is a downcast, not precision
    }

    #[test]
    fn min_max_are_ordered() {
        for t in DataType::ALL {
            assert!(t.min_f64() <= t.max_f64());
        }
        assert_eq!(DataType::U8.max_f64(), 255.0);
        assert_eq!(DataType::I8.min_f64(), -128.0);
    }

    #[test]
    fn display_uses_simulink_name() {
        assert_eq!(DataType::F32.to_string(), "single");
        assert_eq!(DataType::default(), DataType::F64);
    }
}
