//! Simulation results.
//!
//! Every engine — the interpretive SSE stand-ins and the generated AccMoS
//! simulators — produces the same [`SimulationReport`], so results can be
//! compared directly: coverage summaries, aggregated diagnostics, the
//! monitored-signal log (paper Figure 3's `outputData` repository), and an
//! output digest for differential testing.

use crate::coverage::CoverageSummary;
use crate::diag::{DiagnosticEvent, DiagnosticKind};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// One recorded sample of a monitored signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSample {
    /// Path key of the monitored output (e.g. `Model_Minus_out`).
    pub path: String,
    /// Simulation step of the sample.
    pub step: u64,
    /// The recorded value.
    pub value: Value,
}

/// A hit of a user-defined signal probe (paper §3.2B, *Custom Signal
/// Diagnose*), aggregated per probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomEvent {
    /// Probe name.
    pub name: String,
    /// Path key of the probed actor.
    pub actor: String,
    /// Step of the first hit.
    pub first_step: u64,
    /// Total hits.
    pub count: u64,
}

/// Cumulative self-profiling counters for one instrumented site of a
/// profiled simulator build: a single actor, or a whole fused lane
/// segment (site names `fused:<first-actor-key>+<actor-count>`). Parsed
/// from `ACCMOS:PROF` protocol lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActorProfile {
    /// Site name: the actor's path key, or a `fused:` segment label.
    pub actor: String,
    /// Cumulative nanoseconds spent in the site on *sampled* steps (the
    /// generated code only reads the clock every sampling period — full
    /// rate timing costs more than a small actor's whole body).
    pub ns: u64,
    /// Number of invocations (per step, or per step per lane for
    /// mixed-segment actors of a lane simulator). Counted at full rate.
    pub calls: u64,
    /// Number of *timed* invocations — the ones that contributed to
    /// `ns`. `ns / timed` is the mean time per call; `timed / calls` is
    /// the effective sampling ratio.
    pub timed: u64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Model name.
    pub model: String,
    /// Engine that produced the report (`accmos`, `sse`, `sse-ac`,
    /// `sse-rac`).
    pub engine: String,
    /// Steps actually executed.
    pub steps: u64,
    /// Wall-clock time of the simulation loop (excluding code generation
    /// and compilation, which are reported separately by the pipeline).
    pub wall: Duration,
    /// Coverage summary, if the engine collected coverage.
    pub coverage: Option<CoverageSummary>,
    /// Aggregated diagnostics, ordered by first occurrence.
    pub diagnostics: Vec<DiagnosticEvent>,
    /// Hits of user-defined signal probes.
    pub custom: Vec<CustomEvent>,
    /// Monitored-signal samples (bounded by the engine's log limit).
    pub signal_log: Vec<SignalSample>,
    /// FNV-1a digest of all root-output values of all steps.
    pub output_digest: u64,
    /// Root output values at the final step, in port order.
    pub final_outputs: Vec<(String, Value)>,
    /// Per-lane sub-reports of a lane-parallel run (empty for scalar
    /// runs). Each entry is the report lane `i` would have produced had it
    /// run alone: per-lane diagnostics, custom hits, signal log, digest
    /// and final outputs. The top-level fields aggregate across lanes
    /// (diagnostics merged, digest folded over lane digests, coverage
    /// OR-reduced); `final_outputs` at the top level are lane 0's.
    pub lane_reports: Vec<SimulationReport>,
    /// Per-site self-profiling counters of a profiled build (empty
    /// unless the simulator was generated with
    /// `CodegenOptions::profile`). Global across lanes — lanes run
    /// sequentially in one thread, sharing the counters.
    pub profile: Vec<ActorProfile>,
}

impl SimulationReport {
    /// An empty report scaffold for `model` produced by `engine`.
    pub fn new(model: impl Into<String>, engine: impl Into<String>) -> SimulationReport {
        SimulationReport {
            model: model.into(),
            engine: engine.into(),
            steps: 0,
            wall: Duration::ZERO,
            coverage: None,
            diagnostics: Vec::new(),
            custom: Vec::new(),
            signal_log: Vec::new(),
            output_digest: 0,
            final_outputs: Vec::new(),
            lane_reports: Vec::new(),
            profile: Vec::new(),
        }
    }

    /// Lane width of the run: number of lane sub-reports, or 1 for a
    /// scalar run.
    pub fn lane_width(&self) -> u64 {
        self.lane_reports.len().max(1) as u64
    }

    /// Attach per-lane sub-reports and aggregate them into the top-level
    /// fields: diagnostics and custom hits merge across lanes (earliest
    /// first step, summed counts — what a scalar run over the union of
    /// the stimuli would have reported), `final_outputs` mirror lane 0,
    /// and each lane inherits this report's model/engine/steps/wall
    /// metadata. Coverage and the output digest are *not* touched: the
    /// caller aggregates those from richer sources (OR-reduced bitmaps,
    /// FNV fold of the lane digests). No-op for an empty `lanes`.
    pub fn attach_lanes(&mut self, mut lanes: Vec<SimulationReport>) {
        if lanes.is_empty() {
            return;
        }
        let mut diag: BTreeMap<(String, DiagnosticKind), DiagnosticEvent> = BTreeMap::new();
        let mut custom: BTreeMap<(String, String), CustomEvent> = BTreeMap::new();
        for lane in &mut lanes {
            lane.model = self.model.clone();
            lane.engine = self.engine.clone();
            lane.steps = self.steps;
            lane.wall = self.wall;
            lane.diagnostics.sort_by(|a, b| {
                a.first_step.cmp(&b.first_step).then_with(|| a.actor.cmp(&b.actor))
            });
            for d in &lane.diagnostics {
                diag.entry((d.actor.clone(), d.kind))
                    .and_modify(|e| {
                        e.first_step = e.first_step.min(d.first_step);
                        e.count += d.count;
                    })
                    .or_insert_with(|| d.clone());
            }
            for c in &lane.custom {
                custom
                    .entry((c.name.clone(), c.actor.clone()))
                    .and_modify(|e| {
                        e.first_step = e.first_step.min(c.first_step);
                        e.count += c.count;
                    })
                    .or_insert_with(|| c.clone());
            }
        }
        self.diagnostics = diag.into_values().collect();
        self.diagnostics.sort_by(|a, b| {
            a.first_step.cmp(&b.first_step).then_with(|| a.actor.cmp(&b.actor))
        });
        self.custom = custom.into_values().collect();
        self.final_outputs = lanes[0].final_outputs.clone();
        self.lane_reports = lanes;
    }

    /// The first diagnostic of the given kind, if any occurred.
    pub fn first_diagnostic(&self, kind: DiagnosticKind) -> Option<&DiagnosticEvent> {
        self.diagnostics.iter().filter(|d| d.kind == kind).min_by_key(|d| d.first_step)
    }

    /// Whether any diagnostic of the given kind occurred.
    pub fn has_diagnostic(&self, kind: DiagnosticKind) -> bool {
        self.diagnostics.iter().any(|d| d.kind == kind)
    }

    /// Total diagnostic occurrences across all kinds.
    pub fn diagnostic_count(&self) -> u64 {
        self.diagnostics.iter().map(|d| d.count).sum()
    }

    /// Steps simulated per wall-clock second (0 if no time elapsed).
    pub fn steps_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for SimulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] model `{}`: {} steps in {:.3}s ({:.0} steps/s)",
            self.engine,
            self.model,
            self.steps,
            self.wall.as_secs_f64(),
            self.steps_per_second()
        )?;
        if let Some(cov) = &self.coverage {
            writeln!(f, "  coverage: {cov}")?;
        }
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        if !self.final_outputs.is_empty() {
            write!(f, "  outputs:")?;
            for (name, value) in &self.final_outputs {
                write!(f, " {name}={value}")?;
            }
            writeln!(f)?;
        }
        write!(f, "  digest: {:016x}", self.output_digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Scalar;

    fn sample() -> SimulationReport {
        let mut r = SimulationReport::new("CSEV", "accmos");
        r.steps = 1000;
        r.wall = Duration::from_millis(250);
        r.diagnostics.push(DiagnosticEvent {
            actor: "CSEV_Add".into(),
            kind: DiagnosticKind::WrapOnOverflow,
            first_step: 740,
            count: 3,
        });
        r.final_outputs.push(("Out".into(), Value::scalar(Scalar::I32(7))));
        r
    }

    #[test]
    fn first_diagnostic_by_step() {
        let mut r = sample();
        r.diagnostics.push(DiagnosticEvent {
            actor: "CSEV_Mul".into(),
            kind: DiagnosticKind::WrapOnOverflow,
            first_step: 12,
            count: 1,
        });
        assert_eq!(r.first_diagnostic(DiagnosticKind::WrapOnOverflow).unwrap().actor, "CSEV_Mul");
        assert!(r.first_diagnostic(DiagnosticKind::DivisionByZero).is_none());
        assert!(r.has_diagnostic(DiagnosticKind::WrapOnOverflow));
        assert_eq!(r.diagnostic_count(), 4);
    }

    #[test]
    fn steps_per_second() {
        let r = sample();
        assert!((r.steps_per_second() - 4000.0).abs() < 1.0);
        let empty = SimulationReport::new("M", "sse");
        assert_eq!(empty.steps_per_second(), 0.0);
    }

    #[test]
    fn attach_lanes_aggregates_and_propagates_metadata() {
        let mut agg = SimulationReport::new("CSEV", "accmos");
        agg.steps = 500;
        agg.wall = Duration::from_millis(10);
        let mut lane0 = SimulationReport::new("", "");
        lane0.diagnostics.push(DiagnosticEvent {
            actor: "CSEV_Add".into(),
            kind: DiagnosticKind::WrapOnOverflow,
            first_step: 9,
            count: 2,
        });
        lane0.final_outputs.push(("Out".into(), Value::scalar(Scalar::I32(1))));
        let mut lane1 = SimulationReport::new("", "");
        lane1.diagnostics.push(DiagnosticEvent {
            actor: "CSEV_Add".into(),
            kind: DiagnosticKind::WrapOnOverflow,
            first_step: 3,
            count: 5,
        });
        lane1.final_outputs.push(("Out".into(), Value::scalar(Scalar::I32(2))));
        agg.attach_lanes(vec![lane0, lane1]);
        // One merged event: earliest first step, summed count.
        assert_eq!(agg.diagnostics.len(), 1);
        assert_eq!(agg.diagnostics[0].first_step, 3);
        assert_eq!(agg.diagnostics[0].count, 7);
        // Top-level outputs mirror lane 0; lanes inherit metadata.
        assert_eq!(agg.final_outputs[0].1.to_string(), "1");
        assert_eq!(agg.lane_width(), 2);
        for lane in &agg.lane_reports {
            assert_eq!(lane.model, "CSEV");
            assert_eq!(lane.engine, "accmos");
            assert_eq!(lane.steps, 500);
        }
        // Scalar reports are untouched by an empty attach.
        let mut scalar = sample();
        scalar.attach_lanes(Vec::new());
        assert_eq!(scalar, sample());
    }

    #[test]
    fn display_contains_key_facts() {
        let text = sample().to_string();
        assert!(text.contains("accmos"));
        assert!(text.contains("CSEV"));
        assert!(text.contains("wrap on overflow"));
        assert!(text.contains("Out=7"));
    }
}
