//! Simulation results.
//!
//! Every engine — the interpretive SSE stand-ins and the generated AccMoS
//! simulators — produces the same [`SimulationReport`], so results can be
//! compared directly: coverage summaries, aggregated diagnostics, the
//! monitored-signal log (paper Figure 3's `outputData` repository), and an
//! output digest for differential testing.

use crate::coverage::CoverageSummary;
use crate::diag::{DiagnosticEvent, DiagnosticKind};
use crate::value::Value;
use std::fmt;
use std::time::Duration;

/// One recorded sample of a monitored signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSample {
    /// Path key of the monitored output (e.g. `Model_Minus_out`).
    pub path: String,
    /// Simulation step of the sample.
    pub step: u64,
    /// The recorded value.
    pub value: Value,
}

/// A hit of a user-defined signal probe (paper §3.2B, *Custom Signal
/// Diagnose*), aggregated per probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomEvent {
    /// Probe name.
    pub name: String,
    /// Path key of the probed actor.
    pub actor: String,
    /// Step of the first hit.
    pub first_step: u64,
    /// Total hits.
    pub count: u64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Model name.
    pub model: String,
    /// Engine that produced the report (`accmos`, `sse`, `sse-ac`,
    /// `sse-rac`).
    pub engine: String,
    /// Steps actually executed.
    pub steps: u64,
    /// Wall-clock time of the simulation loop (excluding code generation
    /// and compilation, which are reported separately by the pipeline).
    pub wall: Duration,
    /// Coverage summary, if the engine collected coverage.
    pub coverage: Option<CoverageSummary>,
    /// Aggregated diagnostics, ordered by first occurrence.
    pub diagnostics: Vec<DiagnosticEvent>,
    /// Hits of user-defined signal probes.
    pub custom: Vec<CustomEvent>,
    /// Monitored-signal samples (bounded by the engine's log limit).
    pub signal_log: Vec<SignalSample>,
    /// FNV-1a digest of all root-output values of all steps.
    pub output_digest: u64,
    /// Root output values at the final step, in port order.
    pub final_outputs: Vec<(String, Value)>,
}

impl SimulationReport {
    /// An empty report scaffold for `model` produced by `engine`.
    pub fn new(model: impl Into<String>, engine: impl Into<String>) -> SimulationReport {
        SimulationReport {
            model: model.into(),
            engine: engine.into(),
            steps: 0,
            wall: Duration::ZERO,
            coverage: None,
            diagnostics: Vec::new(),
            custom: Vec::new(),
            signal_log: Vec::new(),
            output_digest: 0,
            final_outputs: Vec::new(),
        }
    }

    /// The first diagnostic of the given kind, if any occurred.
    pub fn first_diagnostic(&self, kind: DiagnosticKind) -> Option<&DiagnosticEvent> {
        self.diagnostics.iter().filter(|d| d.kind == kind).min_by_key(|d| d.first_step)
    }

    /// Whether any diagnostic of the given kind occurred.
    pub fn has_diagnostic(&self, kind: DiagnosticKind) -> bool {
        self.diagnostics.iter().any(|d| d.kind == kind)
    }

    /// Total diagnostic occurrences across all kinds.
    pub fn diagnostic_count(&self) -> u64 {
        self.diagnostics.iter().map(|d| d.count).sum()
    }

    /// Steps simulated per wall-clock second (0 if no time elapsed).
    pub fn steps_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for SimulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] model `{}`: {} steps in {:.3}s ({:.0} steps/s)",
            self.engine,
            self.model,
            self.steps,
            self.wall.as_secs_f64(),
            self.steps_per_second()
        )?;
        if let Some(cov) = &self.coverage {
            writeln!(f, "  coverage: {cov}")?;
        }
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        if !self.final_outputs.is_empty() {
            write!(f, "  outputs:")?;
            for (name, value) in &self.final_outputs {
                write!(f, " {name}={value}")?;
            }
            writeln!(f)?;
        }
        write!(f, "  digest: {:016x}", self.output_digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Scalar;

    fn sample() -> SimulationReport {
        let mut r = SimulationReport::new("CSEV", "accmos");
        r.steps = 1000;
        r.wall = Duration::from_millis(250);
        r.diagnostics.push(DiagnosticEvent {
            actor: "CSEV_Add".into(),
            kind: DiagnosticKind::WrapOnOverflow,
            first_step: 740,
            count: 3,
        });
        r.final_outputs.push(("Out".into(), Value::scalar(Scalar::I32(7))));
        r
    }

    #[test]
    fn first_diagnostic_by_step() {
        let mut r = sample();
        r.diagnostics.push(DiagnosticEvent {
            actor: "CSEV_Mul".into(),
            kind: DiagnosticKind::WrapOnOverflow,
            first_step: 12,
            count: 1,
        });
        assert_eq!(r.first_diagnostic(DiagnosticKind::WrapOnOverflow).unwrap().actor, "CSEV_Mul");
        assert!(r.first_diagnostic(DiagnosticKind::DivisionByZero).is_none());
        assert!(r.has_diagnostic(DiagnosticKind::WrapOnOverflow));
        assert_eq!(r.diagnostic_count(), 4);
    }

    #[test]
    fn steps_per_second() {
        let r = sample();
        assert!((r.steps_per_second() - 4000.0).abs() < 1.0);
        let empty = SimulationReport::new("M", "sse");
        assert_eq!(empty.steps_per_second(), 0.0);
    }

    #[test]
    fn display_contains_key_facts() {
        let text = sample().to_string();
        assert!(text.contains("accmos"));
        assert!(text.contains("CSEV"));
        assert!(text.contains("wrap on overflow"));
        assert!(text.contains("Out=7"));
    }
}
