//! Runtime signal values.
//!
//! The interpreter ([`accmos-interp`]) and the generated C simulators must
//! agree bit-for-bit on integer arithmetic so that differential tests can
//! compare output digests exactly. The conventions, mirrored by the emitted
//! `accmos_rt.h` runtime header, are:
//!
//! - integer `+ - *` **wrap** (the C backend compiles with `-fwrapv`),
//! - integer `/ %` by zero yield `0` (checked helpers in the runtime header),
//!   and `MIN / -1` wraps,
//! - float → integer conversion **saturates**, NaN becomes 0 (Rust `as`
//!   semantics, implemented by conversion helpers in the runtime header),
//! - relational operators on NaN are `false`, as in C.
//!
//! [`accmos-interp`]: https://docs.rs/accmos-interp

use crate::dtype::DataType;
use std::fmt;

/// A single runtime scalar, tagged with its [`DataType`].
///
/// # Examples
///
/// ```
/// use accmos_ir::{BinOp, DataType, Scalar};
///
/// let a = Scalar::I32(i32::MAX);
/// let b = Scalar::I32(1);
/// // Integer addition wraps, like the generated C compiled with -fwrapv.
/// assert_eq!(a.binop(BinOp::Add, b), Scalar::I32(i32::MIN));
/// assert_eq!(a.dtype(), DataType::I32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// `boolean`
    Bool(bool),
    /// `int8`
    I8(i8),
    /// `int16`
    I16(i16),
    /// `int32`
    I32(i32),
    /// `int64`
    I64(i64),
    /// `uint8`
    U8(u8),
    /// `uint16`
    U16(u16),
    /// `uint32`
    U32(u32),
    /// `uint64`
    U64(u64),
    /// `single`
    F32(f32),
    /// `double`
    F64(f64),
}

/// Binary arithmetic operations with C-compatible semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Checked division (0 on zero divisor, wrapping on `MIN / -1`).
    Div,
    /// Checked remainder (0 on zero divisor); `fmod` for floats.
    Rem,
    /// Minimum (floats: NaN-propagating via `f64::min` rules of C `fmin`).
    Min,
    /// Maximum.
    Max,
}

/// Relational comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl RelOp {
    /// All relational operators.
    pub const ALL: [RelOp; 6] = [RelOp::Eq, RelOp::Ne, RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge];

    /// The C spelling of the operator.
    pub fn c_symbol(self) -> &'static str {
        match self {
            RelOp::Eq => "==",
            RelOp::Ne => "!=",
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        }
    }

    /// Parse from the MDLX spelling (same as the C spelling).
    pub fn parse(s: &str) -> Option<RelOp> {
        RelOp::ALL.iter().copied().find(|op| op.c_symbol() == s)
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_symbol())
    }
}

macro_rules! for_each_variant {
    ($scalar:expr, $x:ident => $body:expr) => {
        match $scalar {
            Scalar::Bool($x) => {
                let $x = $x as u8;
                $body
            }
            Scalar::I8($x) => $body,
            Scalar::I16($x) => $body,
            Scalar::I32($x) => $body,
            Scalar::I64($x) => $body,
            Scalar::U8($x) => $body,
            Scalar::U16($x) => $body,
            Scalar::U32($x) => $body,
            Scalar::U64($x) => $body,
            Scalar::F32($x) => $body,
            Scalar::F64($x) => $body,
        }
    };
}

impl Scalar {
    /// The data type of this scalar.
    pub fn dtype(self) -> DataType {
        match self {
            Scalar::Bool(_) => DataType::Bool,
            Scalar::I8(_) => DataType::I8,
            Scalar::I16(_) => DataType::I16,
            Scalar::I32(_) => DataType::I32,
            Scalar::I64(_) => DataType::I64,
            Scalar::U8(_) => DataType::U8,
            Scalar::U16(_) => DataType::U16,
            Scalar::U32(_) => DataType::U32,
            Scalar::U64(_) => DataType::U64,
            Scalar::F32(_) => DataType::F32,
            Scalar::F64(_) => DataType::F64,
        }
    }

    /// The zero value of `dtype`.
    pub fn zero(dtype: DataType) -> Scalar {
        Scalar::from_i128(dtype, 0)
    }

    /// The one value of `dtype`.
    pub fn one(dtype: DataType) -> Scalar {
        Scalar::from_i128(dtype, 1)
    }

    /// Build a scalar of `dtype` from a wide integer, wrapping to the
    /// target width (Rust `as` semantics).
    pub fn from_i128(dtype: DataType, v: i128) -> Scalar {
        match dtype {
            DataType::Bool => Scalar::Bool(v != 0),
            DataType::I8 => Scalar::I8(v as i8),
            DataType::I16 => Scalar::I16(v as i16),
            DataType::I32 => Scalar::I32(v as i32),
            DataType::I64 => Scalar::I64(v as i64),
            DataType::U8 => Scalar::U8(v as u8),
            DataType::U16 => Scalar::U16(v as u16),
            DataType::U32 => Scalar::U32(v as u32),
            DataType::U64 => Scalar::U64(v as u64),
            DataType::F32 => Scalar::F32(v as f32),
            DataType::F64 => Scalar::F64(v as f64),
        }
    }

    /// Build a scalar of `dtype` from an `f64`, with Rust `as` conversion
    /// semantics (saturating float → int, NaN → 0).
    pub fn from_f64(dtype: DataType, v: f64) -> Scalar {
        match dtype {
            DataType::Bool => Scalar::Bool(v != 0.0),
            DataType::I8 => Scalar::I8(v as i8),
            DataType::I16 => Scalar::I16(v as i16),
            DataType::I32 => Scalar::I32(v as i32),
            DataType::I64 => Scalar::I64(v as i64),
            DataType::U8 => Scalar::U8(v as u8),
            DataType::U16 => Scalar::U16(v as u16),
            DataType::U32 => Scalar::U32(v as u32),
            DataType::U64 => Scalar::U64(v as u64),
            DataType::F32 => Scalar::F32(v as f32),
            DataType::F64 => Scalar::F64(v),
        }
    }

    /// The value as `f64` (lossy for 64-bit integers beyond 2^53).
    pub fn to_f64(self) -> f64 {
        for_each_variant!(self, x => x as f64)
    }

    /// The value as a wide integer, truncating floats toward zero with
    /// saturation (Rust `as`). Useful for integer diagnosis predicates.
    pub fn to_i128(self) -> i128 {
        for_each_variant!(self, x => x as i128)
    }

    /// C truthiness: nonzero is `true`. NaN is nonzero, as in C.
    pub fn as_bool(self) -> bool {
        match self {
            Scalar::Bool(b) => b,
            Scalar::F32(v) => v != 0.0,
            Scalar::F64(v) => v != 0.0,
            other => other.to_i128() != 0,
        }
    }

    /// Raw bit pattern widened to `u64`, used by the output digest so that
    /// the interpreter and the generated C hash identically.
    pub fn to_bits_u64(self) -> u64 {
        match self {
            Scalar::Bool(b) => b as u64,
            Scalar::I8(v) => v as u8 as u64,
            Scalar::I16(v) => v as u16 as u64,
            Scalar::I32(v) => v as u32 as u64,
            Scalar::I64(v) => v as u64,
            Scalar::U8(v) => v as u64,
            Scalar::U16(v) => v as u64,
            Scalar::U32(v) => v as u64,
            Scalar::U64(v) => v,
            Scalar::F32(v) => v.to_bits() as u64,
            Scalar::F64(v) => v.to_bits(),
        }
    }

    /// Rebuild a scalar from the [`Scalar::to_bits_u64`] bit pattern.
    pub fn from_bits_u64(dtype: DataType, bits: u64) -> Scalar {
        match dtype {
            DataType::Bool => Scalar::Bool(bits & 1 == 1),
            DataType::I8 => Scalar::I8(bits as u8 as i8),
            DataType::I16 => Scalar::I16(bits as u16 as i16),
            DataType::I32 => Scalar::I32(bits as u32 as i32),
            DataType::I64 => Scalar::I64(bits as i64),
            DataType::U8 => Scalar::U8(bits as u8),
            DataType::U16 => Scalar::U16(bits as u16),
            DataType::U32 => Scalar::U32(bits as u32),
            DataType::U64 => Scalar::U64(bits),
            DataType::F32 => Scalar::F32(f32::from_bits(bits as u32)),
            DataType::F64 => Scalar::F64(f64::from_bits(bits)),
        }
    }

    /// Convert to `to` with the shared conversion semantics (see module docs).
    pub fn cast(self, to: DataType) -> Scalar {
        if self.dtype() == to {
            return self;
        }
        match self {
            Scalar::F32(v) => Scalar::from_f64(to, v as f64),
            Scalar::F64(v) => Scalar::from_f64(to, v),
            other => {
                if to.is_float() || to == DataType::Bool {
                    // int -> float is exact in f64 up to 2^53; for u64/i64
                    // beyond that Rust `as` rounds to nearest, matching C.
                    match other {
                        Scalar::U64(v) => {
                            if to == DataType::F32 {
                                Scalar::F32(v as f32)
                            } else if to == DataType::F64 {
                                Scalar::F64(v as f64)
                            } else {
                                Scalar::Bool(v != 0)
                            }
                        }
                        Scalar::I64(v) => {
                            if to == DataType::F32 {
                                Scalar::F32(v as f32)
                            } else if to == DataType::F64 {
                                Scalar::F64(v as f64)
                            } else {
                                Scalar::Bool(v != 0)
                            }
                        }
                        _ => {
                            let w = other.to_i128();
                            match to {
                                DataType::F32 => Scalar::F32(w as f32),
                                DataType::F64 => Scalar::F64(w as f64),
                                DataType::Bool => Scalar::Bool(w != 0),
                                _ => unreachable!(),
                            }
                        }
                    }
                } else {
                    Scalar::from_i128(to, self.to_i128())
                }
            }
        }
    }

    /// Apply a binary arithmetic operation. Both operands must share a
    /// data type; the result has the same type.
    ///
    /// # Panics
    ///
    /// Panics if the operand data types differ — the scheduler resolves all
    /// types before execution, so a mismatch here is an engine bug.
    pub fn binop(self, op: BinOp, rhs: Scalar) -> Scalar {
        let dt = self.dtype();
        assert_eq!(dt, rhs.dtype(), "binop operand type mismatch: {self:?} vs {rhs:?}");
        match (self, rhs) {
            (Scalar::F32(a), Scalar::F32(b)) => Scalar::F32(float_binop32(op, a, b)),
            (Scalar::F64(a), Scalar::F64(b)) => Scalar::F64(float_binop64(op, a, b)),
            (Scalar::Bool(a), Scalar::Bool(b)) => {
                let r = int_binop(op, a as i128, b as i128, DataType::Bool);
                Scalar::Bool(r != 0)
            }
            (a, b) => {
                let r = int_binop(op, a.to_i128(), b.to_i128(), dt);
                Scalar::from_i128(dt, r)
            }
        }
    }

    /// Apply a relational comparison (C semantics: NaN compares `false`
    /// except under `!=`).
    ///
    /// # Panics
    ///
    /// Panics if the operand data types differ.
    pub fn compare(self, op: RelOp, rhs: Scalar) -> bool {
        let dt = self.dtype();
        assert_eq!(dt, rhs.dtype(), "compare operand type mismatch");
        if dt.is_float() {
            let (a, b) = match (self, rhs) {
                (Scalar::F32(a), Scalar::F32(b)) => (a as f64, b as f64),
                (Scalar::F64(a), Scalar::F64(b)) => (a, b),
                _ => unreachable!(),
            };
            match op {
                RelOp::Eq => a == b,
                RelOp::Ne => a != b,
                RelOp::Lt => a < b,
                RelOp::Le => a <= b,
                RelOp::Gt => a > b,
                RelOp::Ge => a >= b,
            }
        } else {
            let (a, b) = (self.to_i128(), rhs.to_i128());
            match op {
                RelOp::Eq => a == b,
                RelOp::Ne => a != b,
                RelOp::Lt => a < b,
                RelOp::Le => a <= b,
                RelOp::Gt => a > b,
                RelOp::Ge => a >= b,
            }
        }
    }

    /// Wrapping negation (identity for `Bool`).
    #[allow(clippy::should_implement_trait)] // named to match abs/rem_sign, not an operator
    pub fn neg(self) -> Scalar {
        match self {
            Scalar::F32(v) => Scalar::F32(-v),
            Scalar::F64(v) => Scalar::F64(-v),
            Scalar::Bool(b) => Scalar::Bool(b),
            other => Scalar::from_i128(other.dtype(), other.to_i128().wrapping_neg()),
        }
    }

    /// Wrapping absolute value (`abs(MIN)` wraps to `MIN`, as in C).
    pub fn abs(self) -> Scalar {
        match self {
            Scalar::F32(v) => Scalar::F32(v.abs()),
            Scalar::F64(v) => Scalar::F64(v.abs()),
            s if s.dtype().is_signed() => {
                let v = s.to_i128();
                Scalar::from_i128(s.dtype(), if v < 0 { v.wrapping_neg() } else { v })
            }
            other => other,
        }
    }

    /// Parse a literal of the given type from MDLX text.
    ///
    /// # Errors
    ///
    /// Returns the offending text if it is not a valid literal for `dtype`.
    pub fn parse(dtype: DataType, text: &str) -> Result<Scalar, String> {
        let text = text.trim();
        let bad = || format!("invalid {dtype} literal `{text}`");
        match dtype {
            DataType::Bool => match text {
                "0" | "false" => Ok(Scalar::Bool(false)),
                "1" | "true" => Ok(Scalar::Bool(true)),
                _ => Err(bad()),
            },
            DataType::F32 => text.parse::<f32>().map(Scalar::F32).map_err(|_| bad()),
            DataType::F64 => text.parse::<f64>().map(Scalar::F64).map_err(|_| bad()),
            _ => {
                // Accept float-looking literals for integer types (Simulink
                // stores e.g. `3.0` for integer constants) by truncation.
                if let Ok(v) = text.parse::<i128>() {
                    Ok(Scalar::from_i128(dtype, v))
                } else if let Ok(v) = text.parse::<f64>() {
                    Ok(Scalar::from_f64(dtype, v))
                } else {
                    Err(bad())
                }
            }
        }
    }

    /// Render the scalar as a C literal of its type (used by the constant
    /// actor template).
    pub fn c_literal(self) -> String {
        match self {
            Scalar::Bool(b) => (b as u8).to_string(),
            Scalar::I64(v) => {
                if v == i64::MIN {
                    // C has no negative literals; INT64_MIN must be spelled
                    // as an expression.
                    "(-9223372036854775807LL - 1)".to_owned()
                } else {
                    format!("{v}LL")
                }
            }
            Scalar::U64(v) => format!("{v}ULL"),
            Scalar::U32(v) => format!("{v}U"),
            Scalar::F32(v) => format_float_c(v as f64, true),
            Scalar::F64(v) => format_float_c(v, false),
            other => other.to_i128().to_string(),
        }
    }
}

fn format_float_c(v: f64, single: bool) -> String {
    let suffix = if single { "f" } else { "" };
    if v.is_nan() {
        return format!("(0.0{suffix}/0.0{suffix})");
    }
    if v.is_infinite() {
        return format!("({}1.0{suffix}/0.0{suffix})", if v < 0.0 { "-" } else { "" });
    }
    // {:?} prints the shortest representation that round-trips.
    let mut s = format!("{v:?}");
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
        s.push_str(".0");
    }
    format!("{s}{suffix}")
}

fn int_binop(op: BinOp, a: i128, b: i128, dtype: DataType) -> i128 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::Min => a.min(b),
        BinOp::Max => {
            let _ = dtype;
            a.max(b)
        }
    }
}

fn float_binop32(op: BinOp, a: f32, b: f32) -> f32 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Rem => a % b,
        // C fmin/fmax ignore a single NaN operand; Rust min/max match.
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    }
}

fn float_binop64(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Rem => a % b,
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Bool(b) => write!(f, "{}", *b as u8),
            Scalar::F32(v) => write!(f, "{v}"),
            Scalar::F64(v) => write!(f, "{v}"),
            other => write!(f, "{}", other.to_i128()),
        }
    }
}

/// A signal value: a scalar or a fixed-width homogeneous vector.
///
/// # Examples
///
/// ```
/// use accmos_ir::{DataType, Scalar, Value};
///
/// let v = Value::vector(vec![Scalar::I16(1), Scalar::I16(2)]);
/// assert_eq!(v.width(), 2);
/// assert_eq!(v.dtype(), DataType::I16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A single scalar element.
    Scalar(Scalar),
    /// A vector of at least one element, all of the same [`DataType`].
    Vector(Vec<Scalar>),
}

impl Value {
    /// Wrap a scalar.
    pub fn scalar(s: Scalar) -> Value {
        Value::Scalar(s)
    }

    /// Wrap a vector.
    ///
    /// # Panics
    ///
    /// Panics if `elems` is empty or heterogeneous.
    pub fn vector(elems: Vec<Scalar>) -> Value {
        assert!(!elems.is_empty(), "vector value must be non-empty");
        let dt = elems[0].dtype();
        assert!(elems.iter().all(|e| e.dtype() == dt), "vector value must be homogeneous");
        Value::Vector(elems)
    }

    /// A zero-filled value of the given type and width.
    pub fn zero(dtype: DataType, width: usize) -> Value {
        if width == 1 {
            Value::Scalar(Scalar::zero(dtype))
        } else {
            Value::Vector(vec![Scalar::zero(dtype); width])
        }
    }

    /// The element data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Scalar(s) => s.dtype(),
            Value::Vector(v) => v[0].dtype(),
        }
    }

    /// Number of elements (1 for scalars).
    pub fn width(&self) -> usize {
        match self {
            Value::Scalar(_) => 1,
            Value::Vector(v) => v.len(),
        }
    }

    /// Element access; index 0 of a scalar is the scalar itself.
    pub fn get(&self, idx: usize) -> Option<Scalar> {
        match self {
            Value::Scalar(s) if idx == 0 => Some(*s),
            Value::Scalar(_) => None,
            Value::Vector(v) => v.get(idx).copied(),
        }
    }

    /// The elements as a slice.
    pub fn elems(&self) -> &[Scalar] {
        match self {
            Value::Scalar(s) => std::slice::from_ref(s),
            Value::Vector(v) => v.as_slice(),
        }
    }

    /// The sole scalar, if this value is scalar.
    pub fn as_scalar(&self) -> Option<Scalar> {
        match self {
            Value::Scalar(s) => Some(*s),
            Value::Vector(_) => None,
        }
    }

    /// Apply `f` to every element, producing a new value.
    pub fn map(&self, f: impl FnMut(Scalar) -> Scalar) -> Value {
        match self {
            Value::Scalar(s) => Value::Scalar({
                let mut f = f;
                f(*s)
            }),
            Value::Vector(v) => Value::Vector(v.iter().copied().map(f).collect()),
        }
    }

    /// Element-wise combination with `rhs`, broadcasting scalars over
    /// vectors as Simulink does.
    ///
    /// # Panics
    ///
    /// Panics if both sides are vectors of different widths.
    pub fn zip(&self, rhs: &Value, mut f: impl FnMut(Scalar, Scalar) -> Scalar) -> Value {
        match (self, rhs) {
            (Value::Scalar(a), Value::Scalar(b)) => Value::Scalar(f(*a, *b)),
            (Value::Scalar(a), Value::Vector(b)) => {
                Value::Vector(b.iter().map(|x| f(*a, *x)).collect())
            }
            (Value::Vector(a), Value::Scalar(b)) => {
                Value::Vector(a.iter().map(|x| f(*x, *b)).collect())
            }
            (Value::Vector(a), Value::Vector(b)) => {
                assert_eq!(a.len(), b.len(), "vector width mismatch in zip");
                Value::Vector(a.iter().zip(b).map(|(x, y)| f(*x, *y)).collect())
            }
        }
    }

    /// Cast every element to `to`.
    pub fn cast(&self, to: DataType) -> Value {
        self.map(|s| s.cast(to))
    }
}

impl From<Scalar> for Value {
    fn from(s: Scalar) -> Value {
        Value::Scalar(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(s) => write!(f, "{s}"),
            Value::Vector(v) => {
                write!(f, "[")?;
                for (i, s) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps_like_c_fwrapv() {
        assert_eq!(Scalar::I8(127).binop(BinOp::Add, Scalar::I8(1)), Scalar::I8(-128));
        assert_eq!(Scalar::U16(u16::MAX).binop(BinOp::Add, Scalar::U16(1)), Scalar::U16(0));
        assert_eq!(
            Scalar::I32(i32::MIN).binop(BinOp::Sub, Scalar::I32(1)),
            Scalar::I32(i32::MAX)
        );
    }

    #[test]
    fn mul_wraps() {
        assert_eq!(
            Scalar::I16(20000).binop(BinOp::Mul, Scalar::I16(3)),
            Scalar::I16(20000i16.wrapping_mul(3))
        );
    }

    #[test]
    fn div_by_zero_yields_zero() {
        assert_eq!(Scalar::I32(5).binop(BinOp::Div, Scalar::I32(0)), Scalar::I32(0));
        assert_eq!(Scalar::U8(5).binop(BinOp::Rem, Scalar::U8(0)), Scalar::U8(0));
    }

    #[test]
    fn min_over_minus_one_wraps() {
        assert_eq!(
            Scalar::I32(i32::MIN).binop(BinOp::Div, Scalar::I32(-1)),
            Scalar::I32(i32::MIN)
        );
    }

    #[test]
    fn float_div_by_zero_is_inf() {
        let r = Scalar::F64(1.0).binop(BinOp::Div, Scalar::F64(0.0));
        assert_eq!(r, Scalar::F64(f64::INFINITY));
    }

    #[test]
    fn f32_ops_do_not_double_round() {
        // Perform the op in f32, not f64-then-truncate.
        let a = 16777216.0f32; // 2^24
        let r = Scalar::F32(a).binop(BinOp::Add, Scalar::F32(1.0));
        assert_eq!(r, Scalar::F32(a + 1.0)); // stays 2^24 in f32
        assert_eq!(r, Scalar::F32(16777216.0));
    }

    #[test]
    fn cast_float_to_int_saturates() {
        assert_eq!(Scalar::F64(1e10).cast(DataType::I16), Scalar::I16(i16::MAX));
        assert_eq!(Scalar::F64(-1e10).cast(DataType::I16), Scalar::I16(i16::MIN));
        assert_eq!(Scalar::F64(f64::NAN).cast(DataType::I32), Scalar::I32(0));
        assert_eq!(Scalar::F32(3.9).cast(DataType::U8), Scalar::U8(3));
    }

    #[test]
    fn cast_int_to_int_wraps() {
        assert_eq!(Scalar::I32(300).cast(DataType::U8), Scalar::U8(44));
        assert_eq!(Scalar::I32(-1).cast(DataType::U32), Scalar::U32(u32::MAX));
        assert_eq!(Scalar::U64(u64::MAX).cast(DataType::I8), Scalar::I8(-1));
    }

    #[test]
    fn cast_to_bool_is_truthiness() {
        assert_eq!(Scalar::I32(-3).cast(DataType::Bool), Scalar::Bool(true));
        assert_eq!(Scalar::F64(0.0).cast(DataType::Bool), Scalar::Bool(false));
        assert_eq!(Scalar::F64(f64::NAN).cast(DataType::Bool), Scalar::Bool(true));
    }

    #[test]
    fn cast_identity_is_noop() {
        for t in DataType::ALL {
            let v = Scalar::one(t);
            assert_eq!(v.cast(t), v);
        }
    }

    #[test]
    fn nan_compares_false() {
        let nan = Scalar::F64(f64::NAN);
        assert!(!nan.compare(RelOp::Lt, Scalar::F64(0.0)));
        assert!(!nan.compare(RelOp::Eq, nan));
        assert!(nan.compare(RelOp::Ne, nan));
    }

    #[test]
    fn abs_of_min_wraps() {
        assert_eq!(Scalar::I8(i8::MIN).abs(), Scalar::I8(i8::MIN));
        assert_eq!(Scalar::I8(-5).abs(), Scalar::I8(5));
        assert_eq!(Scalar::U8(5).abs(), Scalar::U8(5));
    }

    #[test]
    fn parse_literals() {
        assert_eq!(Scalar::parse(DataType::I32, " -42 ").unwrap(), Scalar::I32(-42));
        assert_eq!(Scalar::parse(DataType::I32, "3.0").unwrap(), Scalar::I32(3));
        assert_eq!(Scalar::parse(DataType::Bool, "true").unwrap(), Scalar::Bool(true));
        assert_eq!(Scalar::parse(DataType::F32, "1.5").unwrap(), Scalar::F32(1.5));
        assert!(Scalar::parse(DataType::I32, "abc").is_err());
        assert!(Scalar::parse(DataType::Bool, "2").is_err());
    }

    #[test]
    fn c_literals_roundtrip_shape() {
        assert_eq!(Scalar::I32(-7).c_literal(), "-7");
        assert_eq!(Scalar::U32(7).c_literal(), "7U");
        assert_eq!(Scalar::I64(i64::MIN).c_literal(), "(-9223372036854775807LL - 1)");
        assert_eq!(Scalar::F64(1.0).c_literal(), "1.0");
        assert_eq!(Scalar::F32(0.5).c_literal(), "0.5f");
        assert_eq!(Scalar::Bool(true).c_literal(), "1");
    }

    #[test]
    fn bits_u64_zero_extends() {
        assert_eq!(Scalar::I8(-1).to_bits_u64(), 0xFF);
        assert_eq!(Scalar::I32(-1).to_bits_u64(), 0xFFFF_FFFF);
        assert_eq!(Scalar::F32(1.0).to_bits_u64(), 0x3F80_0000);
    }

    #[test]
    fn vector_invariants() {
        let v = Value::vector(vec![Scalar::I32(1), Scalar::I32(2)]);
        assert_eq!(v.width(), 2);
        assert_eq!(v.get(1), Some(Scalar::I32(2)));
        assert_eq!(v.get(2), None);
        assert_eq!(v.as_scalar(), None);
        assert_eq!(Value::scalar(Scalar::I32(9)).get(0), Some(Scalar::I32(9)));
    }

    #[test]
    #[should_panic(expected = "homogeneous")]
    fn heterogeneous_vector_panics() {
        let _ = Value::vector(vec![Scalar::I32(1), Scalar::I64(2)]);
    }

    #[test]
    fn zip_broadcasts_scalars() {
        let v = Value::vector(vec![Scalar::I32(1), Scalar::I32(2)]);
        let s = Value::scalar(Scalar::I32(10));
        let sum = v.zip(&s, |a, b| a.binop(BinOp::Add, b));
        assert_eq!(sum, Value::vector(vec![Scalar::I32(11), Scalar::I32(12)]));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::scalar(Scalar::I32(3)).to_string(), "3");
        assert_eq!(
            Value::vector(vec![Scalar::U8(1), Scalar::U8(2)]).to_string(),
            "[1,2]"
        );
    }

    #[test]
    fn zero_constructor_widths() {
        assert_eq!(Value::zero(DataType::F32, 1), Value::Scalar(Scalar::F32(0.0)));
        assert_eq!(Value::zero(DataType::I8, 3).width(), 3);
    }
}
