//! Error types shared across the AccMoS-RS intermediate representation.

use std::fmt;

/// Errors produced while constructing or validating a [`crate::Model`].
///
/// Every variant carries enough context to point the user at the offending
/// block or signal, following the convention that model names are reported
/// with their full hierarchical path (e.g. `Model/Subsys/Add2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Two sibling blocks share the same name within one system.
    DuplicateBlock {
        /// Hierarchical path of the enclosing system.
        system: String,
        /// The duplicated block name.
        name: String,
    },
    /// A line references a block name that does not exist in its system.
    UnknownBlock {
        /// Hierarchical path of the enclosing system.
        system: String,
        /// The unresolved block name.
        name: String,
    },
    /// A line references a port index that the block does not have.
    InvalidPort {
        /// Full path of the referenced block.
        block: String,
        /// The out-of-range port index (zero-based).
        port: usize,
        /// `true` if the reference was to an output port.
        output: bool,
    },
    /// An input port is driven by more than one line.
    MultipleDrivers {
        /// Full path of the block whose input is over-driven.
        block: String,
        /// The input port index.
        port: usize,
    },
    /// An input port has no incoming line.
    UnconnectedInput {
        /// Full path of the block with the dangling input.
        block: String,
        /// The input port index.
        port: usize,
    },
    /// A data-store read or write references an undeclared data store.
    UnknownDataStore {
        /// Full path of the referencing block.
        block: String,
        /// The missing data-store name.
        store: String,
    },
    /// Two data-store memories share a name visible to the same scope.
    DuplicateDataStore {
        /// The duplicated data-store name.
        store: String,
    },
    /// The model contains a cycle not broken by a delay-class actor.
    AlgebraicLoop {
        /// Paths of the actors participating in the loop.
        members: Vec<String>,
    },
    /// Signal data types disagree where they must match.
    TypeMismatch {
        /// Full path of the block where the mismatch was detected.
        block: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An actor parameter is invalid (e.g. empty sign string on `Sum`).
    InvalidParameter {
        /// Full path of the offending block.
        block: String,
        /// Human-readable description.
        detail: String,
    },
    /// A structural rule was violated (e.g. an `Inport` nested in a
    /// conditional system used as a control port).
    Structural {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateBlock { system, name } => {
                write!(f, "duplicate block `{name}` in system `{system}`")
            }
            ModelError::UnknownBlock { system, name } => {
                write!(f, "line references unknown block `{name}` in system `{system}`")
            }
            ModelError::InvalidPort { block, port, output } => {
                let dir = if *output { "output" } else { "input" };
                write!(f, "block `{block}` has no {dir} port {port}")
            }
            ModelError::MultipleDrivers { block, port } => {
                write!(f, "input port {port} of `{block}` is driven by multiple lines")
            }
            ModelError::UnconnectedInput { block, port } => {
                write!(f, "input port {port} of `{block}` is unconnected")
            }
            ModelError::UnknownDataStore { block, store } => {
                write!(f, "block `{block}` references unknown data store `{store}`")
            }
            ModelError::DuplicateDataStore { store } => {
                write!(f, "duplicate data store `{store}`")
            }
            ModelError::AlgebraicLoop { members } => {
                write!(f, "algebraic loop through actors: {}", members.join(" -> "))
            }
            ModelError::TypeMismatch { block, detail } => {
                write!(f, "type mismatch at `{block}`: {detail}")
            }
            ModelError::InvalidParameter { block, detail } => {
                write!(f, "invalid parameter on `{block}`: {detail}")
            }
            ModelError::Structural { detail } => write!(f, "structural error: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = ModelError::DuplicateBlock { system: "M".into(), name: "Add".into() };
        let text = err.to_string();
        assert!(text.starts_with("duplicate block"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<ModelError>();
    }

    #[test]
    fn algebraic_loop_lists_members() {
        let err = ModelError::AlgebraicLoop { members: vec!["A".into(), "B".into()] };
        assert_eq!(err.to_string(), "algebraic loop through actors: A -> B");
    }
}
