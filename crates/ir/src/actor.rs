//! The actor library.
//!
//! AccMoS's template library covers *"over fifty commonly used actors"*
//! (paper §3.4). [`ActorKind`] enumerates the 58 actor templates supported
//! by AccMoS-RS, grouped as sources, math, logic, control, discrete-state,
//! routing, lookup, data-store and sink actors. Each kind knows its port
//! arity and its classification for Algorithm 1 (branch actor, boolean
//! logic, combination condition).

use crate::dtype::DataType;
use crate::value::{RelOp, Scalar, Value};
use std::fmt;

/// Operator of the `Math` actor (Simulink *Math Function* block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathOp {
    /// `exp(u)`
    Exp,
    /// `log(u)` (natural)
    Log,
    /// `log10(u)`
    Log10,
    /// `10^u`
    Pow10,
    /// `u*u`
    Square,
    /// `u1 ^ u2` — two inputs
    Pow,
    /// `1/u`
    Reciprocal,
    /// `mod(u1, u2)` (sign of divisor) — two inputs
    Mod,
    /// `rem(u1, u2)` (sign of dividend, C `%`) — two inputs
    Rem,
    /// `sqrt(u1² + u2²)` — two inputs
    Hypot,
}

impl MathOp {
    /// Number of inputs the operator consumes.
    pub fn arity(self) -> usize {
        match self {
            MathOp::Pow | MathOp::Mod | MathOp::Rem | MathOp::Hypot => 2,
            _ => 1,
        }
    }

    /// Stable MDLX spelling.
    pub fn name(self) -> &'static str {
        match self {
            MathOp::Exp => "exp",
            MathOp::Log => "log",
            MathOp::Log10 => "log10",
            MathOp::Pow10 => "pow10",
            MathOp::Square => "square",
            MathOp::Pow => "pow",
            MathOp::Reciprocal => "reciprocal",
            MathOp::Mod => "mod",
            MathOp::Rem => "rem",
            MathOp::Hypot => "hypot",
        }
    }

    /// Parse the MDLX spelling.
    pub fn parse(s: &str) -> Option<MathOp> {
        MathOp::ALL.iter().copied().find(|op| op.name() == s)
    }

    /// All math operators.
    pub const ALL: [MathOp; 10] = [
        MathOp::Exp,
        MathOp::Log,
        MathOp::Log10,
        MathOp::Pow10,
        MathOp::Square,
        MathOp::Pow,
        MathOp::Reciprocal,
        MathOp::Mod,
        MathOp::Rem,
        MathOp::Hypot,
    ];
}

/// Operator of the `Trig` actor (Simulink *Trigonometric Function* block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrigOp {
    /// `sin`
    Sin,
    /// `cos`
    Cos,
    /// `tan`
    Tan,
    /// `asin`
    Asin,
    /// `acos`
    Acos,
    /// `atan`
    Atan,
    /// `atan2(u1, u2)` — two inputs
    Atan2,
    /// `sinh`
    Sinh,
    /// `cosh`
    Cosh,
    /// `tanh`
    Tanh,
}

impl TrigOp {
    /// Number of inputs.
    pub fn arity(self) -> usize {
        if self == TrigOp::Atan2 {
            2
        } else {
            1
        }
    }

    /// Stable MDLX spelling (also the C library function name).
    pub fn name(self) -> &'static str {
        match self {
            TrigOp::Sin => "sin",
            TrigOp::Cos => "cos",
            TrigOp::Tan => "tan",
            TrigOp::Asin => "asin",
            TrigOp::Acos => "acos",
            TrigOp::Atan => "atan",
            TrigOp::Atan2 => "atan2",
            TrigOp::Sinh => "sinh",
            TrigOp::Cosh => "cosh",
            TrigOp::Tanh => "tanh",
        }
    }

    /// Parse the MDLX spelling.
    pub fn parse(s: &str) -> Option<TrigOp> {
        TrigOp::ALL.iter().copied().find(|op| op.name() == s)
    }

    /// All trigonometric operators.
    pub const ALL: [TrigOp; 10] = [
        TrigOp::Sin,
        TrigOp::Cos,
        TrigOp::Tan,
        TrigOp::Asin,
        TrigOp::Acos,
        TrigOp::Atan,
        TrigOp::Atan2,
        TrigOp::Sinh,
        TrigOp::Cosh,
        TrigOp::Tanh,
    ];
}

/// Operator of the `Logical` actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// All inputs true.
    And,
    /// Any input true.
    Or,
    /// Not all inputs true.
    Nand,
    /// No input true.
    Nor,
    /// Odd number of inputs true.
    Xor,
    /// Single-input negation.
    Not,
}

impl LogicOp {
    /// Stable MDLX spelling.
    pub fn name(self) -> &'static str {
        match self {
            LogicOp::And => "AND",
            LogicOp::Or => "OR",
            LogicOp::Nand => "NAND",
            LogicOp::Nor => "NOR",
            LogicOp::Xor => "XOR",
            LogicOp::Not => "NOT",
        }
    }

    /// Parse the MDLX spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<LogicOp> {
        let up = s.to_ascii_uppercase();
        LogicOp::ALL.iter().copied().find(|op| op.name() == up)
    }

    /// All logical operators.
    pub const ALL: [LogicOp; 6] =
        [LogicOp::And, LogicOp::Or, LogicOp::Nand, LogicOp::Nor, LogicOp::Xor, LogicOp::Not];
}

/// Min/max selection for the `MinMax` actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinMaxOp {
    /// Smallest input.
    Min,
    /// Largest input.
    Max,
}

/// Rounding mode of the `Rounding` actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundOp {
    /// Toward negative infinity.
    Floor,
    /// Toward positive infinity.
    Ceil,
    /// To nearest, ties away from zero (C `round`).
    Round,
    /// Toward zero (C `trunc`).
    Fix,
}

impl RoundOp {
    /// Stable MDLX spelling.
    pub fn name(self) -> &'static str {
        match self {
            RoundOp::Floor => "floor",
            RoundOp::Ceil => "ceil",
            RoundOp::Round => "round",
            RoundOp::Fix => "fix",
        }
    }

    /// Parse the MDLX spelling.
    pub fn parse(s: &str) -> Option<RoundOp> {
        [RoundOp::Floor, RoundOp::Ceil, RoundOp::Round, RoundOp::Fix]
            .into_iter()
            .find(|op| op.name() == s)
    }
}

/// Bitwise operator (integer signals only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitOp {
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~` (single input)
    Not,
}

impl BitOp {
    /// Number of inputs.
    pub fn arity(self) -> usize {
        if self == BitOp::Not {
            1
        } else {
            2
        }
    }

    /// Stable MDLX spelling.
    pub fn name(self) -> &'static str {
        match self {
            BitOp::And => "AND",
            BitOp::Or => "OR",
            BitOp::Xor => "XOR",
            BitOp::Not => "NOT",
        }
    }

    /// Parse the MDLX spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<BitOp> {
        let up = s.to_ascii_uppercase();
        [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::Not].into_iter().find(|op| op.name() == up)
    }
}

/// Shift direction of the `Shift` actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftDir {
    /// `<<`
    Left,
    /// `>>` (arithmetic for signed types, logical for unsigned — C).
    Right,
}

/// Pass-through criteria of the `Switch` actor's control input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchCriteria {
    /// Pass input 1 when `control >= threshold`.
    GreaterEqual(f64),
    /// Pass input 1 when `control > threshold`.
    Greater(f64),
    /// Pass input 1 when `control != 0`.
    NotEqualZero,
}

impl SwitchCriteria {
    /// Stable MDLX spelling, without the threshold.
    pub fn name(&self) -> &'static str {
        match self {
            SwitchCriteria::GreaterEqual(_) => ">=",
            SwitchCriteria::Greater(_) => ">",
            SwitchCriteria::NotEqualZero => "~=0",
        }
    }

    /// The threshold, if the criteria has one.
    pub fn threshold(&self) -> Option<f64> {
        match self {
            SwitchCriteria::GreaterEqual(t) | SwitchCriteria::Greater(t) => Some(*t),
            SwitchCriteria::NotEqualZero => None,
        }
    }
}

/// Interpolation method of the lookup-table actors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LookupMethod {
    /// Linear interpolation, clipped at the table ends.
    Interpolate,
    /// Nearest breakpoint.
    Nearest,
    /// Largest breakpoint below the input (floor).
    Below,
}

impl LookupMethod {
    /// Stable MDLX spelling.
    pub fn name(self) -> &'static str {
        match self {
            LookupMethod::Interpolate => "interp",
            LookupMethod::Nearest => "nearest",
            LookupMethod::Below => "below",
        }
    }

    /// Parse the MDLX spelling.
    pub fn parse(s: &str) -> Option<LookupMethod> {
        [LookupMethod::Interpolate, LookupMethod::Nearest, LookupMethod::Below]
            .into_iter()
            .find(|m| m.name() == s)
    }
}

/// One of the 58 actor templates in the AccMoS-RS library.
///
/// The groups mirror the paper's template library. Configuration that
/// changes the *generated code* (operators, sign strings, thresholds) lives
/// inside the variant, exactly as the paper notes for the `Math` actor:
/// *"the code generated for Math actor varies depending on the operator it
/// takes, e.g. exp or log"*.
#[derive(Debug, Clone, PartialEq)]
pub enum ActorKind {
    // ---- sources -------------------------------------------------------
    /// External input port (root level) or subsystem boundary input.
    /// `index` is the 0-based port position.
    Inport {
        /// 0-based port position.
        index: usize,
    },
    /// Constant value source.
    Constant {
        /// The emitted value (defines type and width).
        value: Value,
    },
    /// Step source: `before` until `time`, `after` from then on.
    Step {
        /// Step time, in simulation steps.
        time: u64,
        /// Output before the step time.
        before: Scalar,
        /// Output at and after the step time.
        after: Scalar,
    },
    /// Ramp source: `initial + slope * (t - start)` for `t >= start`.
    Ramp {
        /// Slope per step.
        slope: f64,
        /// Start step.
        start: u64,
        /// Output before the start step (and the ramp offset).
        initial: f64,
    },
    /// Sine source: `amplitude * sin(freq * t + phase) + bias`.
    SineWave {
        /// Peak amplitude.
        amplitude: f64,
        /// Angular increment per step (radians).
        freq: f64,
        /// Phase offset (radians).
        phase: f64,
        /// DC bias.
        bias: f64,
    },
    /// Pulse source: `amplitude` for the first `duty` steps of every
    /// `period`-step cycle, zero otherwise.
    PulseGenerator {
        /// Cycle length in steps (must be > 0).
        period: u64,
        /// High time in steps (≤ period).
        duty: u64,
        /// High-level output value.
        amplitude: Scalar,
    },
    /// Emits the current step index.
    Clock,
    /// Free-running counter: 0, 1, …, `limit`, 0, 1, … Pauses when its
    /// conditional group is inactive.
    Counter {
        /// Inclusive upper limit before wrapping to 0.
        limit: u64,
    },
    /// Deterministic pseudo-random source (64-bit LCG, identical in the
    /// interpreter and the generated C runtime).
    RandomNumber {
        /// LCG seed.
        seed: u64,
    },
    /// Constant zero source.
    Ground,

    // ---- math ----------------------------------------------------------
    /// N-ary add/subtract; `signs` holds one `+`/`-` per input, as in
    /// Simulink's *Sum* block (`"+-"` is the Figure 1 `Minus` actor).
    Sum {
        /// Sign string, one character per input.
        signs: String,
    },
    /// N-ary multiply/divide; `ops` holds one `*`//`/` per input.
    Product {
        /// Operator string, one character per input.
        ops: String,
    },
    /// Multiply by a constant.
    Gain {
        /// The gain constant.
        gain: Scalar,
    },
    /// Add a constant.
    Bias {
        /// The bias constant.
        bias: Scalar,
    },
    /// Absolute value (wrapping on `MIN` for signed integers).
    Abs,
    /// Signum: -1, 0 or 1 in the output type.
    Sign,
    /// Square root.
    Sqrt,
    /// General math function.
    Math {
        /// The operator.
        op: MathOp,
    },
    /// Trigonometric function.
    Trig {
        /// The operator.
        op: TrigOp,
    },
    /// Minimum or maximum of N inputs.
    MinMax {
        /// Selection mode.
        op: MinMaxOp,
        /// Number of inputs (≥ 1).
        inputs: usize,
    },
    /// Rounding function.
    Rounding {
        /// Rounding mode.
        op: RoundOp,
    },
    /// Polynomial evaluation `p(u)` with the given coefficients
    /// (highest degree first, as in MATLAB `polyval`).
    Polynomial {
        /// Coefficients, highest order first.
        coeffs: Vec<f64>,
    },
    /// Dot product of two equal-width vectors; scalar output.
    DotProduct,
    /// Sum of the elements of one vector input; scalar output.
    SumOfElements,
    /// Product of the elements of one vector input; scalar output.
    ProductOfElements,

    // ---- logic & comparison ---------------------------------------------
    /// Relational operator on two inputs; boolean output.
    Relational {
        /// The comparison.
        op: RelOp,
    },
    /// Logical operator on N boolean inputs; boolean output.
    Logical {
        /// The operator.
        op: LogicOp,
        /// Number of inputs (1 for `NOT`).
        inputs: usize,
    },
    /// Compare the input against a constant; boolean output.
    CompareToConstant {
        /// The comparison.
        op: RelOp,
        /// The constant right-hand side.
        constant: Scalar,
    },
    /// Bitwise operator (integer types only).
    Bitwise {
        /// The operator.
        op: BitOp,
    },
    /// Constant shift (integer types only).
    Shift {
        /// Shift direction.
        dir: ShiftDir,
        /// Shift amount in bits.
        amount: u32,
    },

    // ---- control & nonlinear --------------------------------------------
    /// Three-input switch: passes input 0 when the control (input 1)
    /// satisfies the criteria, else input 2. A *branch actor*.
    Switch {
        /// Pass-through criteria applied to the control input.
        criteria: SwitchCriteria,
    },
    /// Selector-driven switch: input 0 is the 1-based case selector,
    /// inputs 1..=cases are the data inputs. A *branch actor*; an
    /// out-of-range selector is an `ArrayOutOfBounds` diagnostic and clamps.
    MultiportSwitch {
        /// Number of data cases.
        cases: usize,
    },
    /// Merges conditionally-executed signals: the output takes the value of
    /// the input whose source executed this step (the last one in port
    /// order if several did), holding its previous value otherwise.
    Merge {
        /// Number of inputs.
        inputs: usize,
    },
    /// Clamp to `[lo, hi]`. A *branch actor* with three outcomes.
    Saturation {
        /// Lower limit.
        lo: f64,
        /// Upper limit.
        hi: f64,
    },
    /// Zero output inside `[start, end]`, offset outside. Three outcomes.
    DeadZone {
        /// Dead-zone lower edge.
        start: f64,
        /// Dead-zone upper edge.
        end: f64,
    },
    /// Limit the per-step change of the signal. Three outcomes. Stateful.
    RateLimiter {
        /// Maximum rise per step (> 0).
        rising: f64,
        /// Maximum fall per step (< 0).
        falling: f64,
    },
    /// Round to the nearest multiple of `interval`.
    Quantizer {
        /// Quantization interval (> 0).
        interval: f64,
    },
    /// Hysteresis relay: switches on above `on_threshold`, off below
    /// `off_threshold`. Two outcomes. Stateful.
    Relay {
        /// Switch-on threshold.
        on_threshold: f64,
        /// Switch-off threshold.
        off_threshold: f64,
        /// Output while on.
        on_value: f64,
        /// Output while off.
        off_value: f64,
    },

    // ---- discrete state --------------------------------------------------
    /// One-step delay; output is last step's input. Breaks algebraic loops.
    UnitDelay {
        /// Initial output.
        init: Scalar,
    },
    /// N-step delay (circular buffer). Breaks algebraic loops.
    Delay {
        /// Delay length in steps (≥ 1).
        steps: usize,
        /// Initial output.
        init: Scalar,
    },
    /// Simulink *Memory* block: identical discrete semantics to `UnitDelay`
    /// but a distinct template. Breaks algebraic loops.
    Memory {
        /// Initial output.
        init: Scalar,
    },
    /// Forward-Euler discrete-time integrator: output is the accumulator
    /// *before* this step's update, so it breaks algebraic loops.
    /// The accumulator uses the output data type (integer accumulators wrap
    /// — the classic long-run overflow site of the paper's case study).
    DiscreteIntegrator {
        /// Gain applied to the input before accumulation.
        gain: f64,
        /// Initial accumulator value.
        init: Scalar,
    },
    /// Backward difference: `u(t) - u(t-1)` (wrapping). Stateful.
    DiscreteDerivative,
    /// Samples its input every `sample` steps and holds in between.
    ZeroOrderHold {
        /// Sampling period in steps (≥ 1).
        sample: u64,
    },
    /// Boolean edge detector on the input signal. Stateful.
    EdgeDetector {
        /// Detect false→true transitions.
        rising: bool,
        /// Detect true→false transitions.
        falling: bool,
    },

    // ---- routing ----------------------------------------------------------
    /// Concatenate N inputs into one vector.
    Mux {
        /// Number of inputs.
        inputs: usize,
    },
    /// Split a vector into N equal parts.
    Demux {
        /// Number of outputs.
        outputs: usize,
    },
    /// Select elements from a vector input. With `dynamic`, a second input
    /// provides a runtime 1-based start index (an `ArrayOutOfBounds`
    /// diagnosis site).
    Selector {
        /// Static 0-based element indices to extract.
        indices: Vec<usize>,
        /// Whether a runtime index input offsets the selection.
        dynamic: bool,
    },
    /// Cast the signal to another data type (downcast/precision-loss site).
    DataTypeConversion {
        /// The target type.
        to: DataType,
    },

    // ---- lookup -----------------------------------------------------------
    /// One-dimensional lookup table.
    Lookup1D {
        /// Strictly increasing breakpoints.
        breakpoints: Vec<f64>,
        /// Table values, one per breakpoint.
        table: Vec<f64>,
        /// Interpolation method.
        method: LookupMethod,
    },
    /// Two-dimensional lookup table (row-major `table`).
    Lookup2D {
        /// Strictly increasing row breakpoints (input 0).
        row_bps: Vec<f64>,
        /// Strictly increasing column breakpoints (input 1).
        col_bps: Vec<f64>,
        /// Row-major table of `row_bps.len() * col_bps.len()` values.
        table: Vec<f64>,
        /// Interpolation method.
        method: LookupMethod,
    },

    // ---- data store --------------------------------------------------------
    /// Declares a named global data store (the paper's `quantity` variable).
    DataStoreMemory {
        /// Global store name.
        store: String,
        /// Initial value.
        init: Scalar,
    },
    /// Reads a data store.
    DataStoreRead {
        /// Referenced store name.
        store: String,
    },
    /// Writes a data store.
    DataStoreWrite {
        /// Referenced store name.
        store: String,
    },

    // ---- sinks -------------------------------------------------------------
    /// External output port (root level) or subsystem boundary output.
    Outport {
        /// 0-based port position.
        index: usize,
    },
    /// Records the attached signal each step (signal-monitor sink).
    Scope,
    /// Records the most recent value of the attached signal.
    Display,
    /// Records the attached signal under a workspace variable name.
    ToWorkspace {
        /// Workspace variable name.
        var: String,
    },
    /// Discards the attached signal.
    Terminator,
}

impl ActorKind {
    /// Number of input ports.
    pub fn in_count(&self) -> usize {
        use ActorKind::*;
        match self {
            Inport { .. } | Constant { .. } | Step { .. } | Ramp { .. } | SineWave { .. }
            | PulseGenerator { .. } | Clock | Counter { .. } | RandomNumber { .. } | Ground
            | DataStoreRead { .. } | DataStoreMemory { .. } => 0,
            Sum { signs } => signs.len(),
            Product { ops } => ops.len(),
            Math { op } => op.arity(),
            Trig { op } => op.arity(),
            MinMax { inputs, .. } | Merge { inputs } | Mux { inputs } => *inputs,
            Logical { op, inputs } => {
                if *op == LogicOp::Not {
                    1
                } else {
                    *inputs
                }
            }
            Relational { .. } | DotProduct => 2,
            Bitwise { op } => op.arity(),
            Switch { .. } => 3,
            MultiportSwitch { cases } => 1 + cases,
            Lookup2D { .. } => 2,
            Selector { dynamic, .. }
                if *dynamic => {
                    2
                }
            _ => 1,
        }
    }

    /// Number of output ports.
    pub fn out_count(&self) -> usize {
        use ActorKind::*;
        match self {
            Outport { .. } | Scope | Display | ToWorkspace { .. } | Terminator
            | DataStoreWrite { .. } | DataStoreMemory { .. } => 0,
            Demux { outputs } => *outputs,
            _ => 1,
        }
    }

    /// The template name (also the MDLX `type` attribute).
    pub fn type_name(&self) -> &'static str {
        use ActorKind::*;
        match self {
            Inport { .. } => "Inport",
            Constant { .. } => "Constant",
            Step { .. } => "Step",
            Ramp { .. } => "Ramp",
            SineWave { .. } => "SineWave",
            PulseGenerator { .. } => "PulseGenerator",
            Clock => "Clock",
            Counter { .. } => "Counter",
            RandomNumber { .. } => "RandomNumber",
            Ground => "Ground",
            Sum { .. } => "Sum",
            Product { .. } => "Product",
            Gain { .. } => "Gain",
            Bias { .. } => "Bias",
            Abs => "Abs",
            Sign => "Sign",
            Sqrt => "Sqrt",
            Math { .. } => "Math",
            Trig { .. } => "Trig",
            MinMax { .. } => "MinMax",
            Rounding { .. } => "Rounding",
            Polynomial { .. } => "Polynomial",
            DotProduct => "DotProduct",
            SumOfElements => "SumOfElements",
            ProductOfElements => "ProductOfElements",
            Relational { .. } => "Relational",
            Logical { .. } => "Logical",
            CompareToConstant { .. } => "CompareToConstant",
            Bitwise { .. } => "Bitwise",
            Shift { .. } => "Shift",
            Switch { .. } => "Switch",
            MultiportSwitch { .. } => "MultiportSwitch",
            Merge { .. } => "Merge",
            Saturation { .. } => "Saturation",
            DeadZone { .. } => "DeadZone",
            RateLimiter { .. } => "RateLimiter",
            Quantizer { .. } => "Quantizer",
            Relay { .. } => "Relay",
            UnitDelay { .. } => "UnitDelay",
            Delay { .. } => "Delay",
            Memory { .. } => "Memory",
            DiscreteIntegrator { .. } => "DiscreteIntegrator",
            DiscreteDerivative => "DiscreteDerivative",
            ZeroOrderHold { .. } => "ZeroOrderHold",
            EdgeDetector { .. } => "EdgeDetector",
            Mux { .. } => "Mux",
            Demux { .. } => "Demux",
            Selector { .. } => "Selector",
            DataTypeConversion { .. } => "DataTypeConversion",
            Lookup1D { .. } => "Lookup1D",
            Lookup2D { .. } => "Lookup2D",
            DataStoreMemory { .. } => "DataStoreMemory",
            DataStoreRead { .. } => "DataStoreRead",
            DataStoreWrite { .. } => "DataStoreWrite",
            Outport { .. } => "Outport",
            Scope => "Scope",
            Display => "Display",
            ToWorkspace { .. } => "ToWorkspace",
            Terminator => "Terminator",
        }
    }

    /// Whether this is a *branch actor* in the sense of Algorithm 1 line 5:
    /// it chooses among executable branches, contributing condition-coverage
    /// points.
    pub fn is_branch_actor(&self) -> bool {
        use ActorKind::*;
        matches!(
            self,
            Switch { .. }
                | MultiportSwitch { .. }
                | Saturation { .. }
                | DeadZone { .. }
                | RateLimiter { .. }
                | Relay { .. }
        )
    }

    /// Number of distinct branch outcomes, for condition coverage.
    /// `None` for non-branch actors.
    pub fn branch_outcomes(&self) -> Option<usize> {
        use ActorKind::*;
        match self {
            Switch { .. } | Relay { .. } => Some(2),
            MultiportSwitch { cases } => Some(*cases),
            Saturation { .. } | DeadZone { .. } | RateLimiter { .. } => Some(3),
            _ => None,
        }
    }

    /// Whether the actor *contains boolean logic* (Algorithm 1 line 7):
    /// its output is a decision with true/false outcomes, contributing
    /// decision-coverage points.
    pub fn contains_boolean_logic(&self) -> bool {
        use ActorKind::*;
        matches!(
            self,
            Relational { .. } | Logical { .. } | CompareToConstant { .. } | EdgeDetector { .. }
        )
    }

    /// Whether the actor is a *combination condition* (Algorithm 1 line 9):
    /// a multi-input boolean decision whose inputs are individual
    /// conditions, contributing MC/DC points.
    pub fn is_combination_condition(&self) -> bool {
        match self {
            ActorKind::Logical { op, inputs } => *op != LogicOp::Not && *inputs >= 2,
            _ => false,
        }
    }

    /// Whether the actor is a *calculation actor*: a default member of the
    /// paper's `diagnoseList`.
    pub fn is_calculation(&self) -> bool {
        use ActorKind::*;
        matches!(
            self,
            Sum { .. }
                | Product { .. }
                | Gain { .. }
                | Bias { .. }
                | Abs
                | Sqrt
                | Math { .. }
                | Polynomial { .. }
                | DotProduct
                | SumOfElements
                | ProductOfElements
                | DiscreteIntegrator { .. }
                | DiscreteDerivative
                | DataTypeConversion { .. }
                | Selector { .. }
                | MultiportSwitch { .. }
                | Shift { .. }
        )
    }

    /// Whether the actor carries state across steps.
    pub fn is_stateful(&self) -> bool {
        use ActorKind::*;
        matches!(
            self,
            UnitDelay { .. }
                | Delay { .. }
                | Memory { .. }
                | DiscreteIntegrator { .. }
                | DiscreteDerivative
                | ZeroOrderHold { .. }
                | RateLimiter { .. }
                | Relay { .. }
                | EdgeDetector { .. }
                | Counter { .. }
                | RandomNumber { .. }
                | Merge { .. }
        )
    }

    /// Whether the actor's output does not depend on its current-step
    /// inputs, making it legal inside a feedback loop.
    pub fn breaks_algebraic_loops(&self) -> bool {
        use ActorKind::*;
        matches!(
            self,
            UnitDelay { .. } | Delay { .. } | Memory { .. } | DiscreteIntegrator { .. }
        )
    }

    /// Whether the output type is forced to `boolean` regardless of the
    /// configured data type.
    pub fn forces_bool_output(&self) -> bool {
        self.contains_boolean_logic()
    }

    /// Whether the actor is a source (no data inputs).
    pub fn is_source(&self) -> bool {
        self.in_count() == 0 && self.out_count() > 0
    }

    /// Whether the actor is a sink (no outputs).
    pub fn is_sink(&self) -> bool {
        self.out_count() == 0
    }

    /// Whether the actor records its input signal by default (a default
    /// member of the paper's `collectList`).
    pub fn is_monitor_sink(&self) -> bool {
        use ActorKind::*;
        matches!(self, Scope | Display | ToWorkspace { .. })
    }

    /// A short operator description for reports (e.g. `Sum(+-)`).
    pub fn describe(&self) -> String {
        use ActorKind::*;
        match self {
            Sum { signs } => format!("Sum({signs})"),
            Product { ops } => format!("Product({ops})"),
            Math { op } => format!("Math({})", op.name()),
            Trig { op } => format!("Trig({})", op.name()),
            Logical { op, inputs } => format!("Logical({},{inputs})", op.name()),
            Relational { op } => format!("Relational({op})"),
            other => other.type_name().to_owned(),
        }
    }
}

impl fmt::Display for ActorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// An actor instance inside a model: a kind plus signal configuration.
///
/// `dtype`/`width` of `None` mean *inherit from the first data input*,
/// resolved during preprocessing. The `monitor` flag adds the actor's
/// outputs to the collect list (paper Figure 3's `outputCollect`).
#[derive(Debug, Clone, PartialEq)]
pub struct Actor {
    /// The actor template and its configuration.
    pub kind: ActorKind,
    /// Output data type; `None` inherits from the first input.
    pub dtype: Option<DataType>,
    /// Output vector width; `None` inherits.
    pub width: Option<usize>,
    /// Whether the actor's output is recorded by the signal monitor.
    pub monitor: bool,
}

impl Actor {
    /// A new actor of `kind` with inherited type and width.
    pub fn new(kind: ActorKind) -> Actor {
        Actor { kind, dtype: None, width: None, monitor: false }
    }

    /// Builder-style: set the output data type.
    pub fn with_dtype(mut self, dtype: DataType) -> Actor {
        self.dtype = Some(dtype);
        self
    }

    /// Builder-style: set the output width.
    pub fn with_width(mut self, width: usize) -> Actor {
        self.width = Some(width);
        self
    }

    /// Builder-style: enable signal monitoring.
    pub fn monitored(mut self) -> Actor {
        self.monitor = true;
        self
    }
}

impl From<ActorKind> for Actor {
    fn from(kind: ActorKind) -> Actor {
        Actor::new(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kinds() -> Vec<ActorKind> {
        use ActorKind::*;
        vec![
            Inport { index: 0 },
            Constant { value: Value::scalar(Scalar::I32(1)) },
            Step { time: 5, before: Scalar::I32(0), after: Scalar::I32(1) },
            Ramp { slope: 1.0, start: 0, initial: 0.0 },
            SineWave { amplitude: 1.0, freq: 0.1, phase: 0.0, bias: 0.0 },
            PulseGenerator { period: 10, duty: 3, amplitude: Scalar::I32(1) },
            Clock,
            Counter { limit: 7 },
            RandomNumber { seed: 42 },
            Ground,
            Sum { signs: "+-".into() },
            Product { ops: "*/".into() },
            Gain { gain: Scalar::I32(3) },
            Bias { bias: Scalar::I32(1) },
            Abs,
            Sign,
            Sqrt,
            Math { op: MathOp::Exp },
            Trig { op: TrigOp::Atan2 },
            MinMax { op: MinMaxOp::Min, inputs: 3 },
            Rounding { op: RoundOp::Floor },
            Polynomial { coeffs: vec![1.0, 0.0, -1.0] },
            DotProduct,
            SumOfElements,
            ProductOfElements,
            Relational { op: RelOp::Lt },
            Logical { op: LogicOp::And, inputs: 2 },
            CompareToConstant { op: RelOp::Gt, constant: Scalar::I32(0) },
            Bitwise { op: BitOp::Xor },
            Shift { dir: ShiftDir::Left, amount: 2 },
            Switch { criteria: SwitchCriteria::NotEqualZero },
            MultiportSwitch { cases: 3 },
            Merge { inputs: 2 },
            Saturation { lo: -1.0, hi: 1.0 },
            DeadZone { start: -0.5, end: 0.5 },
            RateLimiter { rising: 1.0, falling: -1.0 },
            Quantizer { interval: 0.5 },
            Relay { on_threshold: 1.0, off_threshold: 0.0, on_value: 1.0, off_value: 0.0 },
            UnitDelay { init: Scalar::I32(0) },
            Delay { steps: 4, init: Scalar::I32(0) },
            Memory { init: Scalar::I32(0) },
            DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) },
            DiscreteDerivative,
            ZeroOrderHold { sample: 2 },
            EdgeDetector { rising: true, falling: false },
            Mux { inputs: 2 },
            Demux { outputs: 2 },
            Selector { indices: vec![0], dynamic: true },
            DataTypeConversion { to: DataType::I16 },
            Lookup1D {
                breakpoints: vec![0.0, 1.0],
                table: vec![0.0, 10.0],
                method: LookupMethod::Interpolate,
            },
            Lookup2D {
                row_bps: vec![0.0, 1.0],
                col_bps: vec![0.0, 1.0],
                table: vec![0.0, 1.0, 2.0, 3.0],
                method: LookupMethod::Nearest,
            },
            DataStoreMemory { store: "quantity".into(), init: Scalar::I32(0) },
            DataStoreRead { store: "quantity".into() },
            DataStoreWrite { store: "quantity".into() },
            Outport { index: 0 },
            Scope,
            Display,
            ToWorkspace { var: "y".into() },
            Terminator,
        ]
    }

    #[test]
    fn library_has_over_fifty_actor_templates() {
        let kinds = sample_kinds();
        let names: std::collections::BTreeSet<_> =
            kinds.iter().map(|k| k.type_name()).collect();
        assert_eq!(names.len(), kinds.len(), "type names must be unique");
        assert!(names.len() > 50, "paper claims 50+ templates, have {}", names.len());
    }

    #[test]
    fn arity_spot_checks() {
        assert_eq!(ActorKind::Sum { signs: "++-".into() }.in_count(), 3);
        assert_eq!(ActorKind::Switch { criteria: SwitchCriteria::NotEqualZero }.in_count(), 3);
        assert_eq!(ActorKind::MultiportSwitch { cases: 4 }.in_count(), 5);
        assert_eq!(ActorKind::Math { op: MathOp::Pow }.in_count(), 2);
        assert_eq!(ActorKind::Math { op: MathOp::Exp }.in_count(), 1);
        assert_eq!(ActorKind::Logical { op: LogicOp::Not, inputs: 5 }.in_count(), 1);
        assert_eq!(ActorKind::Demux { outputs: 3 }.out_count(), 3);
        assert_eq!(ActorKind::Terminator.out_count(), 0);
        assert_eq!(ActorKind::Ground.in_count(), 0);
    }

    #[test]
    fn classification_spot_checks() {
        let switch = ActorKind::Switch { criteria: SwitchCriteria::Greater(0.0) };
        assert!(switch.is_branch_actor());
        assert_eq!(switch.branch_outcomes(), Some(2));

        let and2 = ActorKind::Logical { op: LogicOp::And, inputs: 2 };
        assert!(and2.contains_boolean_logic());
        assert!(and2.is_combination_condition());

        let not1 = ActorKind::Logical { op: LogicOp::Not, inputs: 1 };
        assert!(not1.contains_boolean_logic());
        assert!(!not1.is_combination_condition());

        let rel = ActorKind::Relational { op: RelOp::Lt };
        assert!(rel.contains_boolean_logic());
        assert!(!rel.is_combination_condition());
        assert!(rel.forces_bool_output());

        assert!(ActorKind::Sum { signs: "++".into() }.is_calculation());
        assert!(!ActorKind::Terminator.is_calculation());
    }

    #[test]
    fn loop_breakers_are_stateful() {
        for kind in sample_kinds() {
            if kind.breaks_algebraic_loops() {
                assert!(kind.is_stateful(), "{kind} breaks loops but is stateless");
            }
        }
    }

    #[test]
    fn sources_and_sinks() {
        assert!(ActorKind::Clock.is_source());
        assert!(ActorKind::Terminator.is_sink());
        assert!(ActorKind::Scope.is_monitor_sink());
        assert!(!ActorKind::Abs.is_source());
        assert!(!ActorKind::Abs.is_sink());
    }

    #[test]
    fn describe_includes_operator() {
        assert_eq!(ActorKind::Sum { signs: "+-".into() }.describe(), "Sum(+-)");
        assert_eq!(ActorKind::Math { op: MathOp::Log }.describe(), "Math(log)");
        assert_eq!(ActorKind::Abs.describe(), "Abs");
    }

    #[test]
    fn actor_builder() {
        let a = Actor::new(ActorKind::Abs).with_dtype(DataType::I16).with_width(3).monitored();
        assert_eq!(a.dtype, Some(DataType::I16));
        assert_eq!(a.width, Some(3));
        assert!(a.monitor);
    }

    #[test]
    fn op_parsers_roundtrip() {
        for op in MathOp::ALL {
            assert_eq!(MathOp::parse(op.name()), Some(op));
        }
        for op in TrigOp::ALL {
            assert_eq!(TrigOp::parse(op.name()), Some(op));
        }
        for op in LogicOp::ALL {
            assert_eq!(LogicOp::parse(op.name()), Some(op));
        }
        for op in RelOp::ALL {
            assert_eq!(RelOp::parse(op.c_symbol()), Some(op));
        }
        assert_eq!(MathOp::parse("nope"), None);
    }
}
