//! Hierarchical actor paths.
//!
//! The paper (§3.2A) indexes every actor by a path *"composed of the model
//! file name, subsystem name, and the actor's own name, for example
//! `MODEL_SUBSYSTEM_ADD2`"*. [`ActorPath`] keeps the segments and renders
//! both the underscore-joined key used in generated identifiers and a
//! human-readable slash form.

use std::fmt;

/// The unique hierarchical path of an actor within a model.
///
/// # Examples
///
/// ```
/// use accmos_ir::ActorPath;
///
/// let p = ActorPath::new(["Model", "Charger", "Add2"]);
/// assert_eq!(p.key(), "Model_Charger_Add2");
/// assert_eq!(p.to_string(), "Model/Charger/Add2");
/// assert_eq!(p.name(), "Add2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ActorPath {
    segments: Vec<String>,
}

impl ActorPath {
    /// Build a path from its segments (model name first).
    pub fn new<I, S>(segments: I) -> ActorPath
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ActorPath { segments: segments.into_iter().map(Into::into).collect() }
    }

    /// A single-segment path (a root-level actor of `model`).
    pub fn root(model: &str, actor: &str) -> ActorPath {
        ActorPath::new([model, actor])
    }

    /// The path segments, model name first.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// The actor's own (leaf) name. Empty for an empty path.
    pub fn name(&self) -> &str {
        self.segments.last().map(String::as_str).unwrap_or("")
    }

    /// A child path with `segment` appended.
    pub fn child(&self, segment: &str) -> ActorPath {
        let mut segments = self.segments.clone();
        segments.push(segment.to_owned());
        ActorPath { segments }
    }

    /// The underscore-joined index key (`MODEL_SUBSYSTEM_ADD2` in the
    /// paper). Characters that are not valid in C identifiers are replaced
    /// with `_`.
    pub fn key(&self) -> String {
        let mut out = String::new();
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push('_');
            }
            for ch in seg.chars() {
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    out.push(ch);
                } else {
                    out.push('_');
                }
            }
        }
        out
    }
}

impl fmt::Display for ActorPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.segments.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_sanitizes_identifier_hostile_chars() {
        let p = ActorPath::new(["My Model", "Sub-1", "Add 2"]);
        assert_eq!(p.key(), "My_Model_Sub_1_Add_2");
    }

    #[test]
    fn child_appends() {
        let p = ActorPath::new(["M"]).child("S").child("A");
        assert_eq!(p.segments(), &["M".to_string(), "S".into(), "A".into()]);
        assert_eq!(p.name(), "A");
    }

    #[test]
    fn default_is_empty() {
        let p = ActorPath::default();
        assert_eq!(p.key(), "");
        assert_eq!(p.name(), "");
    }

    #[test]
    fn ordering_is_lexicographic_by_segment() {
        let a = ActorPath::new(["M", "A"]);
        let b = ActorPath::new(["M", "B"]);
        assert!(a < b);
    }
}
