//! Coverage metrics.
//!
//! AccMoS records the four Simulink coverage metrics (§3.2A of the paper):
//! *actor*, *condition*, *decision* and *MC/DC* coverage, each backed by a
//! bitmap updated from instrumented code. [`CoverageMap`] enumerates the
//! coverage points of a model once, so that the interpreter and the
//! generated C simulator index the very same bitmap slots.

use std::fmt;

/// One of the four Simulink coverage metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoverageKind {
    /// Has each actor executed at least once?
    Actor,
    /// Has each branch outcome of each branch actor been taken?
    Condition,
    /// Has each boolean decision evaluated to both true and false?
    Decision,
    /// Has each condition independently affected its decision, both ways?
    Mcdc,
}

impl CoverageKind {
    /// All metrics, in report order.
    pub const ALL: [CoverageKind; 4] =
        [CoverageKind::Actor, CoverageKind::Condition, CoverageKind::Decision, CoverageKind::Mcdc];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            CoverageKind::Actor => "Actor",
            CoverageKind::Condition => "Condition",
            CoverageKind::Decision => "Decision",
            CoverageKind::Mcdc => "MC/DC",
        }
    }

    /// Identifier-safe short name (bitmap prefix in generated code).
    pub fn ident(self) -> &'static str {
        match self {
            CoverageKind::Actor => "actor",
            CoverageKind::Condition => "cond",
            CoverageKind::Decision => "dec",
            CoverageKind::Mcdc => "mcdc",
        }
    }
}

impl fmt::Display for CoverageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One instrumentable coverage point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveragePoint {
    /// The metric this point belongs to.
    pub kind: CoverageKind,
    /// Path key of the owning actor (or conditional group).
    pub actor: String,
    /// Human-readable description, e.g. `branch 2 of 3` or `output true`.
    pub detail: String,
}

/// The per-model enumeration of all coverage points.
///
/// Point ids are dense per metric (each metric gets its own bitmap, as the
/// paper describes: *"AccMoS utilizes a bitmap for each metric"*).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    points: [Vec<CoveragePoint>; 4],
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    fn slot(kind: CoverageKind) -> usize {
        match kind {
            CoverageKind::Actor => 0,
            CoverageKind::Condition => 1,
            CoverageKind::Decision => 2,
            CoverageKind::Mcdc => 3,
        }
    }

    /// Register a point, returning its id within the metric's bitmap.
    pub fn add(&mut self, kind: CoverageKind, actor: &str, detail: impl Into<String>) -> usize {
        let list = &mut self.points[Self::slot(kind)];
        list.push(CoveragePoint { kind, actor: actor.to_owned(), detail: detail.into() });
        list.len() - 1
    }

    /// The points of one metric, in id order.
    pub fn points(&self, kind: CoverageKind) -> &[CoveragePoint] {
        &self.points[Self::slot(kind)]
    }

    /// Number of points registered for one metric.
    pub fn total(&self, kind: CoverageKind) -> usize {
        self.points[Self::slot(kind)].len()
    }

    /// A zeroed set of bitmaps sized for this map.
    pub fn new_bitmaps(&self) -> CoverageBitmaps {
        CoverageBitmaps {
            maps: CoverageKind::ALL.map(|k| CoverageBitmap::with_len(self.total(k))),
        }
    }

    /// Summarize a set of bitmaps against this map.
    pub fn summarize(&self, bitmaps: &CoverageBitmaps) -> CoverageSummary {
        let mut summary = CoverageSummary::default();
        for kind in CoverageKind::ALL {
            let counts = summary.counts_mut(kind);
            counts.total = self.total(kind);
            counts.covered = bitmaps.bitmap(kind).count_ones().min(counts.total);
        }
        summary
    }
}

/// A runtime coverage bitmap (one bit per point).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageBitmap {
    len: usize,
    words: Vec<u64>,
}

impl CoverageBitmap {
    /// A zeroed bitmap of `len` bits.
    pub fn with_len(len: usize) -> CoverageBitmap {
        CoverageBitmap { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if there are no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&mut self, id: usize) {
        assert!(id < self.len, "coverage point {id} out of range {}", self.len);
        self.words[id / 64] |= 1u64 << (id % 64);
    }

    /// Read bit `id` (out-of-range reads return `false`).
    pub fn get(&self, id: usize) -> bool {
        if id >= self.len {
            return false;
        }
        self.words[id / 64] >> (id % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Merge another bitmap of the same length (bitwise or).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge(&mut self, other: &CoverageBitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }
}

/// The four bitmaps of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageBitmaps {
    maps: [CoverageBitmap; 4],
}

impl CoverageBitmaps {
    /// The bitmap of one metric.
    pub fn bitmap(&self, kind: CoverageKind) -> &CoverageBitmap {
        &self.maps[CoverageMap::slot(kind)]
    }

    /// Mutable access to the bitmap of one metric.
    pub fn bitmap_mut(&mut self, kind: CoverageKind) -> &mut CoverageBitmap {
        &mut self.maps[CoverageMap::slot(kind)]
    }

    /// Set one point.
    pub fn set(&mut self, kind: CoverageKind, id: usize) {
        self.bitmap_mut(kind).set(id);
    }

    /// OR every metric's bitmap from `other` into this set — the
    /// OR-reduction used to combine per-lane coverage of a lane-parallel
    /// run into one aggregate.
    pub fn merge(&mut self, other: &CoverageBitmaps) {
        for kind in CoverageKind::ALL {
            self.bitmap_mut(kind).merge(other.bitmap(kind));
        }
    }
}

/// Covered/total counters for one metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageCounts {
    /// Points hit at least once.
    pub covered: usize,
    /// Points instrumented.
    pub total: usize,
}

impl CoverageCounts {
    /// Percentage covered. A metric with no points is reported as 100 %
    /// (there is nothing left to cover), matching Simulink's convention.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.covered as f64 / self.total as f64
        }
    }
}

/// Coverage results across all four metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageSummary {
    counts: [CoverageCounts; 4],
    /// Objectives the static analyzer proved unsatisfiable, per metric.
    /// Kept separate from [`CoverageCounts`] so the raw covered/total
    /// counters stay engine-comparable; these only refine the
    /// *denominator* used by [`CoverageSummary::reachable_percent`].
    unsat: [usize; 4],
}

impl CoverageSummary {
    /// The counters of one metric.
    pub fn counts(&self, kind: CoverageKind) -> CoverageCounts {
        self.counts[CoverageMap::slot(kind)]
    }

    /// Mutable counters of one metric.
    pub fn counts_mut(&mut self, kind: CoverageKind) -> &mut CoverageCounts {
        &mut self.counts[CoverageMap::slot(kind)]
    }

    /// Percentage of one metric.
    pub fn percent(&self, kind: CoverageKind) -> f64 {
        self.counts(kind).percent()
    }

    /// Objectives of one metric proven unsatisfiable by static analysis
    /// (0 unless the report came from an analyzer-pruned simulator),
    /// clamped so the reachable denominator never goes below `covered`.
    ///
    /// The clamp happens here, at *read* time, against the live counters.
    /// Clamping at write time made the result depend on whether the
    /// `ACCMOS:UNSAT` protocol line arrived before or after the
    /// `ACCMOS:COV` counters for the same metric — an `UNSAT` line parsed
    /// first saw `total == 0` and was silently clamped to nothing.
    pub fn unsatisfiable(&self, kind: CoverageKind) -> usize {
        let c = self.counts(kind);
        self.unsat[CoverageMap::slot(kind)].min(c.total.saturating_sub(c.covered))
    }

    /// Record `n` statically unsatisfiable objectives for one metric.
    /// The raw value is stored; [`CoverageSummary::unsatisfiable`] clamps
    /// on read so call order against the counters does not matter.
    pub fn set_unsatisfiable(&mut self, kind: CoverageKind, n: usize) {
        self.unsat[CoverageMap::slot(kind)] = n;
    }

    /// Percentage of one metric over the *reachable* denominator
    /// (total minus statically unsatisfiable objectives).
    ///
    /// A metric whose every point is proven unsatisfiable has an empty
    /// denominator; that is defined as 100 % — nothing reachable is left
    /// to cover — never NaN, which would corrupt batch aggregates and
    /// ledger-derived medians.
    pub fn reachable_percent(&self, kind: CoverageKind) -> f64 {
        let c = self.counts(kind);
        let denom = c.total.saturating_sub(self.unsatisfiable(kind));
        if denom == 0 {
            return 100.0;
        }
        100.0 * c.covered as f64 / denom as f64
    }
}

impl fmt::Display for CoverageSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, kind) in CoverageKind::ALL.into_iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            let c = self.counts(kind);
            write!(f, "{}: {:.1}% ({}/{})", kind.name(), c.percent(), c.covered, c.total)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_assigns_dense_ids_per_metric() {
        let mut map = CoverageMap::new();
        let a0 = map.add(CoverageKind::Actor, "M_A", "executed");
        let c0 = map.add(CoverageKind::Condition, "M_Sw", "branch 0");
        let a1 = map.add(CoverageKind::Actor, "M_B", "executed");
        assert_eq!((a0, c0, a1), (0, 0, 1));
        assert_eq!(map.total(CoverageKind::Actor), 2);
        assert_eq!(map.total(CoverageKind::Condition), 1);
        assert_eq!(map.points(CoverageKind::Actor)[1].actor, "M_B");
    }

    #[test]
    fn bitmap_set_get_count() {
        let mut bm = CoverageBitmap::with_len(130);
        assert!(!bm.is_empty());
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1));
        assert!(!bm.get(1000));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_set_out_of_range_panics() {
        CoverageBitmap::with_len(4).set(4);
    }

    #[test]
    fn merge_ors_bits() {
        let mut a = CoverageBitmap::with_len(10);
        let mut b = CoverageBitmap::with_len(10);
        a.set(1);
        b.set(2);
        a.merge(&b);
        assert!(a.get(1) && a.get(2));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn summarize_counts_hits() {
        let mut map = CoverageMap::new();
        for i in 0..4 {
            map.add(CoverageKind::Actor, &format!("A{i}"), "executed");
        }
        map.add(CoverageKind::Decision, "D", "true");
        let mut bm = map.new_bitmaps();
        bm.set(CoverageKind::Actor, 0);
        bm.set(CoverageKind::Actor, 2);
        let s = map.summarize(&bm);
        assert_eq!(s.counts(CoverageKind::Actor).covered, 2);
        assert_eq!(s.percent(CoverageKind::Actor), 50.0);
        assert_eq!(s.percent(CoverageKind::Decision), 0.0);
        // No condition points -> trivially fully covered.
        assert_eq!(s.percent(CoverageKind::Condition), 100.0);
    }

    #[test]
    fn reachable_percent_with_empty_denominator_is_100_never_nan() {
        // Regression: every point of a kind proven unsatisfiable empties
        // the reachable denominator. That must read as "nothing left to
        // cover" (100 %), not NaN — NaN poisons batch aggregates and
        // ledger-derived medians (NaN != NaN, min/max/median all break).
        let mut s = CoverageSummary::default();
        *s.counts_mut(CoverageKind::Decision) = CoverageCounts { covered: 0, total: 3 };
        s.set_unsatisfiable(CoverageKind::Decision, 3);
        let pct = s.reachable_percent(CoverageKind::Decision);
        assert!(!pct.is_nan(), "empty denominator must not produce NaN");
        assert_eq!(pct, 100.0);
        // Over-reported unsatisfiable counts clamp the same way.
        s.set_unsatisfiable(CoverageKind::Decision, 99);
        assert_eq!(s.unsatisfiable(CoverageKind::Decision), 3);
        assert_eq!(s.reachable_percent(CoverageKind::Decision), 100.0);
    }

    #[test]
    fn unsatisfiable_is_order_independent_against_the_counters() {
        // Regression: the clamp used to happen at write time, so an
        // ACCMOS:UNSAT protocol line parsed before the ACCMOS:COV
        // counters was clamped against total == 0 and silently dropped.
        let mut early = CoverageSummary::default();
        early.set_unsatisfiable(CoverageKind::Condition, 2); // UNSAT first
        *early.counts_mut(CoverageKind::Condition) = CoverageCounts { covered: 1, total: 4 };

        let mut late = CoverageSummary::default();
        *late.counts_mut(CoverageKind::Condition) = CoverageCounts { covered: 1, total: 4 };
        late.set_unsatisfiable(CoverageKind::Condition, 2); // COV first

        for s in [&early, &late] {
            assert_eq!(s.unsatisfiable(CoverageKind::Condition), 2);
            assert_eq!(s.reachable_percent(CoverageKind::Condition), 50.0);
        }
    }

    #[test]
    fn summary_display_mentions_all_metrics() {
        let s = CoverageSummary::default();
        let text = s.to_string();
        for kind in CoverageKind::ALL {
            assert!(text.contains(kind.name()), "missing {kind} in `{text}`");
        }
    }
}
