//! Test-case vectors.
//!
//! The paper's synthesized main function *"initializes [test cases] before
//! simulation and acquires the corresponding values for each input port
//! during the simulation loop"* (§3.3, Figure 5 `TestCase_Init` /
//! `takeTestCase`). [`TestVectors`] is the in-memory form shared by the
//! interpreter, the generated C simulator (via a CSV file) and the random
//! test generator.

use crate::dtype::DataType;
use crate::value::Scalar;
use std::fmt;

/// One column of test data: the stimulus of one root input port.
#[derive(Debug, Clone, PartialEq)]
pub struct TestColumn {
    /// Port name (matches the root `Inport` block name).
    pub name: String,
    /// Element type of the column.
    pub dtype: DataType,
    /// The stimulus values; cycled when the simulation runs longer.
    pub values: Vec<Scalar>,
}

/// A table of test vectors, one column per root input port.
///
/// # Examples
///
/// ```
/// use accmos_ir::{DataType, Scalar, TestVectors};
///
/// let mut tv = TestVectors::new();
/// tv.push_column("A", DataType::I32, vec![Scalar::I32(1), Scalar::I32(2)]);
/// assert_eq!(tv.value_at(0, 0), Scalar::I32(1));
/// assert_eq!(tv.value_at(0, 5), Scalar::I32(2)); // cycles
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TestVectors {
    columns: Vec<TestColumn>,
}

impl TestVectors {
    /// An empty table (for models without root inputs).
    pub fn new() -> TestVectors {
        TestVectors::default()
    }

    /// Append a column.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a scalar of another type.
    pub fn push_column(&mut self, name: &str, dtype: DataType, values: Vec<Scalar>) {
        assert!(!values.is_empty(), "test column `{name}` must not be empty");
        assert!(
            values.iter().all(|v| v.dtype() == dtype),
            "test column `{name}` must be homogeneous {dtype}"
        );
        self.columns.push(TestColumn { name: name.to_owned(), dtype, values });
    }

    /// Build a single-column table from a constant stimulus.
    pub fn constant(name: &str, value: Scalar, len: usize) -> TestVectors {
        let mut tv = TestVectors::new();
        tv.push_column(name, value.dtype(), vec![value; len.max(1)]);
        tv
    }

    /// The columns, in port order.
    pub fn columns(&self) -> &[TestColumn] {
        &self.columns
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows before the table cycles (longest column).
    pub fn rows(&self) -> usize {
        self.columns.iter().map(|c| c.values.len()).max().unwrap_or(0)
    }

    /// The common cycle period of all columns: the least common multiple
    /// of the column lengths, capped at [`TestVectors::MAX_CYCLE_ROWS`].
    ///
    /// A CSV export must materialize every column to this many rows,
    /// because consumers of the file (the generated C simulator) cycle
    /// at the file's row count: materializing a shorter column only up
    /// to `rows()` would silently change its cycle period.
    pub fn cycle_rows(&self) -> usize {
        let lcm_all = self.columns.iter().fold(1u128, |acc, c| {
            let len = c.values.len() as u128;
            // push_column rejects empty columns, so gcd is never 0.
            let g = gcd(acc, len);
            (acc / g).saturating_mul(len)
        });
        if self.columns.is_empty() {
            0
        } else {
            lcm_all.min(Self::MAX_CYCLE_ROWS as u128) as usize
        }
    }

    /// Upper bound on [`TestVectors::cycle_rows`] (and hence on the rows
    /// [`TestVectors::to_csv`] writes). Column-length combinations whose
    /// LCM exceeds this are pathological (the bound allows every
    /// combination of column lengths up to 1024 with up to 2 columns of
    /// co-prime lengths in the tens of thousands); exports of such tables
    /// truncate the common period to the cap.
    pub const MAX_CYCLE_ROWS: usize = 1 << 20;

    /// The stimulus of column `col` at simulation step `step`, cycling
    /// through the column's values.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn value_at(&self, col: usize, step: u64) -> Scalar {
        let column = &self.columns[col];
        column.values[(step % column.values.len() as u64) as usize]
    }

    /// Serialize as CSV: a header of `name:dtype` cells, then one row per
    /// step. This is the file format the generated simulator imports.
    ///
    /// Columns of unequal lengths are materialized to their common cycle
    /// period ([`TestVectors::cycle_rows`], the LCM of the lengths) so
    /// that consumers cycling over the file's row count reproduce each
    /// column's own period exactly — see the regression test
    /// `csv_preserves_unequal_cycle_periods`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.name);
            out.push(':');
            out.push_str(c.dtype.mnemonic());
        }
        out.push('\n');
        for row in 0..self.cycle_rows() {
            for (i, c) in self.columns.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let v = c.values[row % c.values.len()];
                match v {
                    Scalar::F32(x) => out.push_str(&format!("{x:?}")),
                    Scalar::F64(x) => out.push_str(&format!("{x:?}")),
                    other => out.push_str(&other.to_string()),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parse the CSV form produced by [`TestVectors::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTestVectorsError`] describing the offending line.
    pub fn from_csv(text: &str) -> Result<TestVectors, ParseTestVectorsError> {
        let err = |line: usize, detail: String| ParseTestVectorsError { line, detail };
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or_else(|| err(1, "empty test file".into()))?;
        let mut columns = Vec::new();
        for cell in header.split(',') {
            let (name, dt) = cell
                .trim()
                .split_once(':')
                .ok_or_else(|| err(1, format!("header cell `{cell}` must be name:dtype")))?;
            let dtype: DataType =
                dt.parse().map_err(|_| err(1, format!("unknown dtype `{dt}`")))?;
            columns.push(TestColumn { name: name.to_owned(), dtype, values: Vec::new() });
        }
        for (lineno, line) in lines {
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != columns.len() {
                return Err(err(
                    lineno + 1,
                    format!("expected {} cells, found {}", columns.len(), cells.len()),
                ));
            }
            for (c, cell) in columns.iter_mut().zip(cells) {
                let v = Scalar::parse(c.dtype, cell).map_err(|e| err(lineno + 1, e))?;
                c.values.push(v);
            }
        }
        if columns.iter().any(|c| c.values.is_empty()) {
            return Err(err(1, "test file has a header but no rows".into()));
        }
        Ok(TestVectors { columns })
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Error from [`TestVectors::from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTestVectorsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ParseTestVectorsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "test vector error on line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ParseTestVectorsError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TestVectors {
        let mut tv = TestVectors::new();
        tv.push_column("A", DataType::I32, vec![Scalar::I32(1), Scalar::I32(-2), Scalar::I32(3)]);
        tv.push_column("B", DataType::F64, vec![Scalar::F64(0.5), Scalar::F64(1.5)]);
        tv
    }

    #[test]
    fn cycling_lookup() {
        let tv = sample();
        assert_eq!(tv.value_at(0, 3), Scalar::I32(1));
        assert_eq!(tv.value_at(1, 2), Scalar::F64(0.5));
        assert_eq!(tv.rows(), 3);
        assert_eq!(tv.width(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let tv = sample();
        let csv = tv.to_csv();
        let back = TestVectors::from_csv(&csv).unwrap();
        // Shorter columns are materialized cyclically to the common
        // period (LCM of the column lengths).
        assert_eq!(back.width(), 2);
        assert_eq!(back.rows(), 6);
        assert_eq!(back.value_at(1, 2), tv.value_at(1, 2));
        assert_eq!(back.value_at(0, 1), Scalar::I32(-2));
    }

    /// Regression test: exporting columns of lengths 3 and 2 used to
    /// materialize the 2-column cyclically only up to `rows()` (3), which
    /// silently changed its period to 3 — so any consumer cycling over the
    /// file rows read different stimulus from step 3 onward than
    /// `value_at` computes. The export must cover the full common period.
    #[test]
    fn csv_preserves_unequal_cycle_periods() {
        let tv = sample(); // column lengths 3 (A) and 2 (B)
        let back = TestVectors::from_csv(&tv.to_csv()).unwrap();
        // Step 3 is the first divergence point of the old export:
        // B cycles as 0.5, 1.5, 0.5, ... but a 3-row export replays
        // 0.5, 1.5, 0.5 | 0.5, 1.5, 0.5 — wrong from step 3 onward.
        assert_eq!(tv.value_at(1, 3), Scalar::F64(1.5));
        for col in 0..tv.width() {
            for step in 0..24u64 {
                assert_eq!(
                    back.value_at(col, step),
                    tv.value_at(col, step),
                    "column {col} diverges at step {step}"
                );
            }
        }
    }

    #[test]
    fn cycle_rows_is_lcm_of_lengths() {
        assert_eq!(TestVectors::new().cycle_rows(), 0);
        let tv = sample();
        assert_eq!(tv.cycle_rows(), 6); // lcm(3, 2)
        let mut tv = TestVectors::new();
        tv.push_column("A", DataType::I32, vec![Scalar::I32(0); 4]);
        tv.push_column("B", DataType::I32, vec![Scalar::I32(0); 6]);
        tv.push_column("C", DataType::I32, vec![Scalar::I32(0); 5]);
        assert_eq!(tv.cycle_rows(), 60);
        // Equal lengths stay at that length — no blow-up.
        let mut tv = TestVectors::new();
        tv.push_column("A", DataType::I32, vec![Scalar::I32(0); 64]);
        tv.push_column("B", DataType::I32, vec![Scalar::I32(0); 64]);
        assert_eq!(tv.cycle_rows(), 64);
    }

    #[test]
    fn csv_errors_carry_line_numbers() {
        assert_eq!(TestVectors::from_csv("").unwrap_err().line, 1);
        let err = TestVectors::from_csv("A:i32\n1\nx\n").unwrap_err();
        assert_eq!(err.line, 3);
        let err = TestVectors::from_csv("A:i32,B:i32\n1\n").unwrap_err();
        assert!(err.detail.contains("expected 2 cells"));
        assert!(TestVectors::from_csv("A:quux\n1\n").is_err());
        assert!(TestVectors::from_csv("A:i32\n").is_err());
    }

    #[test]
    fn constant_builder() {
        let tv = TestVectors::constant("X", Scalar::U8(7), 4);
        assert_eq!(tv.value_at(0, 99), Scalar::U8(7));
        assert_eq!(tv.rows(), 4);
    }

    #[test]
    #[should_panic(expected = "homogeneous")]
    fn heterogeneous_column_panics() {
        let mut tv = TestVectors::new();
        tv.push_column("A", DataType::I32, vec![Scalar::I32(1), Scalar::I64(2)]);
    }
}
