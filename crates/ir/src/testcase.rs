//! Test-case vectors.
//!
//! The paper's synthesized main function *"initializes [test cases] before
//! simulation and acquires the corresponding values for each input port
//! during the simulation loop"* (§3.3, Figure 5 `TestCase_Init` /
//! `takeTestCase`). [`TestVectors`] is the in-memory form shared by the
//! interpreter, the generated C simulator (via a CSV file) and the random
//! test generator.

use crate::dtype::DataType;
use crate::value::Scalar;
use std::fmt;

/// One column of test data: the stimulus of one root input port.
#[derive(Debug, Clone, PartialEq)]
pub struct TestColumn {
    /// Port name (matches the root `Inport` block name).
    pub name: String,
    /// Element type of the column.
    pub dtype: DataType,
    /// The stimulus values; cycled when the simulation runs longer.
    pub values: Vec<Scalar>,
}

/// A table of test vectors, one column per root input port.
///
/// # Examples
///
/// ```
/// use accmos_ir::{DataType, Scalar, TestVectors};
///
/// let mut tv = TestVectors::new();
/// tv.push_column("A", DataType::I32, vec![Scalar::I32(1), Scalar::I32(2)]);
/// assert_eq!(tv.value_at(0, 0), Scalar::I32(1));
/// assert_eq!(tv.value_at(0, 5), Scalar::I32(2)); // cycles
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TestVectors {
    columns: Vec<TestColumn>,
}

impl TestVectors {
    /// An empty table (for models without root inputs).
    pub fn new() -> TestVectors {
        TestVectors::default()
    }

    /// Append a column.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a scalar of another type.
    pub fn push_column(&mut self, name: &str, dtype: DataType, values: Vec<Scalar>) {
        assert!(!values.is_empty(), "test column `{name}` must not be empty");
        assert!(
            values.iter().all(|v| v.dtype() == dtype),
            "test column `{name}` must be homogeneous {dtype}"
        );
        self.columns.push(TestColumn { name: name.to_owned(), dtype, values });
    }

    /// Build a single-column table from a constant stimulus.
    pub fn constant(name: &str, value: Scalar, len: usize) -> TestVectors {
        let mut tv = TestVectors::new();
        tv.push_column(name, value.dtype(), vec![value; len.max(1)]);
        tv
    }

    /// The columns, in port order.
    pub fn columns(&self) -> &[TestColumn] {
        &self.columns
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows before the table cycles (longest column).
    pub fn rows(&self) -> usize {
        self.columns.iter().map(|c| c.values.len()).max().unwrap_or(0)
    }

    /// The stimulus of column `col` at simulation step `step`, cycling
    /// through the column's values.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn value_at(&self, col: usize, step: u64) -> Scalar {
        let column = &self.columns[col];
        column.values[(step % column.values.len() as u64) as usize]
    }

    /// Serialize as CSV: a header of `name:dtype` cells, then one row per
    /// step. This is the file format the generated simulator imports.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.name);
            out.push(':');
            out.push_str(c.dtype.mnemonic());
        }
        out.push('\n');
        for row in 0..self.rows() {
            for (i, c) in self.columns.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let v = c.values[row % c.values.len()];
                match v {
                    Scalar::F32(x) => out.push_str(&format!("{x:?}")),
                    Scalar::F64(x) => out.push_str(&format!("{x:?}")),
                    other => out.push_str(&other.to_string()),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parse the CSV form produced by [`TestVectors::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTestVectorsError`] describing the offending line.
    pub fn from_csv(text: &str) -> Result<TestVectors, ParseTestVectorsError> {
        let err = |line: usize, detail: String| ParseTestVectorsError { line, detail };
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or_else(|| err(1, "empty test file".into()))?;
        let mut columns = Vec::new();
        for cell in header.split(',') {
            let (name, dt) = cell
                .trim()
                .split_once(':')
                .ok_or_else(|| err(1, format!("header cell `{cell}` must be name:dtype")))?;
            let dtype: DataType =
                dt.parse().map_err(|_| err(1, format!("unknown dtype `{dt}`")))?;
            columns.push(TestColumn { name: name.to_owned(), dtype, values: Vec::new() });
        }
        for (lineno, line) in lines {
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != columns.len() {
                return Err(err(
                    lineno + 1,
                    format!("expected {} cells, found {}", columns.len(), cells.len()),
                ));
            }
            for (c, cell) in columns.iter_mut().zip(cells) {
                let v = Scalar::parse(c.dtype, cell).map_err(|e| err(lineno + 1, e))?;
                c.values.push(v);
            }
        }
        if columns.iter().any(|c| c.values.is_empty()) {
            return Err(err(1, "test file has a header but no rows".into()));
        }
        Ok(TestVectors { columns })
    }
}

/// Error from [`TestVectors::from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTestVectorsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ParseTestVectorsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "test vector error on line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ParseTestVectorsError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TestVectors {
        let mut tv = TestVectors::new();
        tv.push_column("A", DataType::I32, vec![Scalar::I32(1), Scalar::I32(-2), Scalar::I32(3)]);
        tv.push_column("B", DataType::F64, vec![Scalar::F64(0.5), Scalar::F64(1.5)]);
        tv
    }

    #[test]
    fn cycling_lookup() {
        let tv = sample();
        assert_eq!(tv.value_at(0, 3), Scalar::I32(1));
        assert_eq!(tv.value_at(1, 2), Scalar::F64(0.5));
        assert_eq!(tv.rows(), 3);
        assert_eq!(tv.width(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let tv = sample();
        let csv = tv.to_csv();
        let back = TestVectors::from_csv(&csv).unwrap();
        // Shorter columns are materialized cyclically to the row count.
        assert_eq!(back.width(), 2);
        assert_eq!(back.value_at(1, 2), tv.value_at(1, 2));
        assert_eq!(back.value_at(0, 1), Scalar::I32(-2));
    }

    #[test]
    fn csv_errors_carry_line_numbers() {
        assert_eq!(TestVectors::from_csv("").unwrap_err().line, 1);
        let err = TestVectors::from_csv("A:i32\n1\nx\n").unwrap_err();
        assert_eq!(err.line, 3);
        let err = TestVectors::from_csv("A:i32,B:i32\n1\n").unwrap_err();
        assert!(err.detail.contains("expected 2 cells"));
        assert!(TestVectors::from_csv("A:quux\n1\n").is_err());
        assert!(TestVectors::from_csv("A:i32\n").is_err());
    }

    #[test]
    fn constant_builder() {
        let tv = TestVectors::constant("X", Scalar::U8(7), 4);
        assert_eq!(tv.value_at(0, 99), Scalar::U8(7));
        assert_eq!(tv.rows(), 4);
    }

    #[test]
    #[should_panic(expected = "homogeneous")]
    fn heterogeneous_column_panics() {
        let mut tv = TestVectors::new();
        tv.push_column("A", DataType::I32, vec![Scalar::I32(1), Scalar::I64(2)]);
    }
}
