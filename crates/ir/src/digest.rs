//! Output digest.
//!
//! Differential testing compares the interpreter against the generated C
//! simulator by hashing every root-output value of every step into a 64-bit
//! FNV-1a digest. The generated runtime header (`accmos_rt.h`) implements
//! the identical byte-for-byte fold, so equal digests mean bit-identical
//! simulations.

/// Incremental 64-bit FNV-1a hasher over `u64` words (little-endian bytes).
///
/// # Examples
///
/// ```
/// use accmos_ir::OutputDigest;
///
/// let mut d = OutputDigest::new();
/// d.write_u64(42);
/// let first = d.finish();
/// d.write_u64(42);
/// assert_ne!(first, d.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputDigest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl OutputDigest {
    /// A fresh digest with the FNV offset basis.
    pub fn new() -> OutputDigest {
        OutputDigest { state: FNV_OFFSET }
    }

    /// Fold the eight little-endian bytes of `word` into the digest.
    pub fn write_u64(&mut self, word: u64) {
        let mut h = self.state;
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Fold raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &byte in bytes {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Content digest of an ordered sequence of byte strings, as a 32-hex-char
/// key: two independently-salted FNV-1a folds over length-prefixed parts.
///
/// Built for content-addressing compiled artifacts (the backend's build
/// cache): the length prefix makes part boundaries unambiguous
/// (`["ab","c"]` ≠ `["a","bc"]`), and the doubled state width pushes
/// collisions out of practical reach for cache-sized populations.
///
/// # Examples
///
/// ```
/// use accmos_ir::source_digest_hex;
///
/// let a = source_digest_hex(["int main(void) {}", "gcc 13 -O3"]);
/// let b = source_digest_hex(["int main(void) {}", "gcc 13 -O2"]);
/// assert_eq!(a.len(), 32);
/// assert_ne!(a, b);
/// ```
pub fn source_digest_hex<I, P>(parts: I) -> String
where
    I: IntoIterator<Item = P>,
    P: AsRef<[u8]>,
{
    let mut lo = OutputDigest::new();
    let mut hi = OutputDigest::new();
    // Salt the second lane so the two 64-bit states evolve independently.
    hi.write_u64(0x5EED_ACC0_5ACC_ED5E);
    for part in parts {
        let bytes = part.as_ref();
        lo.write_u64(bytes.len() as u64);
        lo.write_bytes(bytes);
        hi.write_u64(bytes.len() as u64);
        hi.write_bytes(bytes);
    }
    format!("{:016x}{:016x}", lo.finish(), hi.finish())
}

impl Default for OutputDigest {
    fn default() -> Self {
        OutputDigest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(OutputDigest::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn known_vector() {
        // FNV-1a of eight zero bytes, computed independently.
        let mut d = OutputDigest::new();
        d.write_u64(0);
        assert_eq!(d.finish(), {
            let mut h = FNV_OFFSET;
            for _ in 0..8 {
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        });
    }

    #[test]
    fn write_bytes_matches_write_u64() {
        let mut by_word = OutputDigest::new();
        by_word.write_u64(0x0807_0605_0403_0201);
        let mut by_bytes = OutputDigest::new();
        by_bytes.write_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(by_word.finish(), by_bytes.finish());
    }

    #[test]
    fn source_digest_separates_part_boundaries() {
        assert_ne!(source_digest_hex(["ab", "c"]), source_digest_hex(["a", "bc"]));
        assert_ne!(source_digest_hex(["ab"]), source_digest_hex(["ab", ""]));
        assert_eq!(source_digest_hex(["x", "y"]), source_digest_hex(["x", "y"]));
        assert_eq!(source_digest_hex::<_, &str>([]).len(), 32);
    }

    #[test]
    fn order_sensitive() {
        let mut a = OutputDigest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = OutputDigest::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
