//! Output digest.
//!
//! Differential testing compares the interpreter against the generated C
//! simulator by hashing every root-output value of every step into a 64-bit
//! FNV-1a digest. The generated runtime header (`accmos_rt.h`) implements
//! the identical byte-for-byte fold, so equal digests mean bit-identical
//! simulations.

/// Incremental 64-bit FNV-1a hasher over `u64` words (little-endian bytes).
///
/// # Examples
///
/// ```
/// use accmos_ir::OutputDigest;
///
/// let mut d = OutputDigest::new();
/// d.write_u64(42);
/// let first = d.finish();
/// d.write_u64(42);
/// assert_ne!(first, d.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputDigest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl OutputDigest {
    /// A fresh digest with the FNV offset basis.
    pub fn new() -> OutputDigest {
        OutputDigest { state: FNV_OFFSET }
    }

    /// Fold the eight little-endian bytes of `word` into the digest.
    pub fn write_u64(&mut self, word: u64) {
        let mut h = self.state;
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for OutputDigest {
    fn default() -> Self {
        OutputDigest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(OutputDigest::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn known_vector() {
        // FNV-1a of eight zero bytes, computed independently.
        let mut d = OutputDigest::new();
        d.write_u64(0);
        assert_eq!(d.finish(), {
            let mut h = FNV_OFFSET;
            for _ in 0..8 {
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        });
    }

    #[test]
    fn order_sensitive() {
        let mut a = OutputDigest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = OutputDigest::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
