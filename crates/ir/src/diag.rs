//! Runtime diagnostics.
//!
//! AccMoS *"is capable of diagnosing all types of calculation errors
//! supported by SSE in default, including warp on overflow, array out of
//! bounds, division by zero, precision loss, etc."* (paper §3.2B). The
//! diagnosis applied to an actor depends on its **type–operator
//! combination**; [`applicable_diagnoses`] is the single source of truth
//! used by both the interpreter and the diagnostic code template library.

use crate::actor::{ActorKind, MathOp};
use crate::dtype::DataType;
use std::fmt;

/// A category of runtime calculation error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagnosticKind {
    /// Integer result wrapped past the type's range (paper: *warp/wrap on
    /// overflow*).
    WrapOnOverflow,
    /// The output type is narrower than an input type, so values may be
    /// silently truncated (Figure 4 line 4).
    Downcast,
    /// An integer or float division had a zero divisor.
    DivisionByZero,
    /// A conversion discarded fractional or low-order information.
    PrecisionLoss,
    /// A runtime index left the valid range of a vector or lookup table.
    ArrayOutOfBounds,
    /// A math function was evaluated outside its domain (e.g. `sqrt(-1)`),
    /// producing NaN.
    DomainError,
}

impl DiagnosticKind {
    /// All kinds, in report order.
    pub const ALL: [DiagnosticKind; 6] = [
        DiagnosticKind::WrapOnOverflow,
        DiagnosticKind::Downcast,
        DiagnosticKind::DivisionByZero,
        DiagnosticKind::PrecisionLoss,
        DiagnosticKind::ArrayOutOfBounds,
        DiagnosticKind::DomainError,
    ];

    /// Display name, matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            DiagnosticKind::WrapOnOverflow => "wrap on overflow",
            DiagnosticKind::Downcast => "downcast",
            DiagnosticKind::DivisionByZero => "division by zero",
            DiagnosticKind::PrecisionLoss => "precision loss",
            DiagnosticKind::ArrayOutOfBounds => "array out of bounds",
            DiagnosticKind::DomainError => "domain error",
        }
    }

    /// Identifier-safe short name used in the result protocol.
    pub fn ident(self) -> &'static str {
        match self {
            DiagnosticKind::WrapOnOverflow => "overflow",
            DiagnosticKind::Downcast => "downcast",
            DiagnosticKind::DivisionByZero => "divzero",
            DiagnosticKind::PrecisionLoss => "precision",
            DiagnosticKind::ArrayOutOfBounds => "oob",
            DiagnosticKind::DomainError => "domain",
        }
    }

    /// Parse the [`DiagnosticKind::ident`] spelling.
    pub fn parse_ident(s: &str) -> Option<DiagnosticKind> {
        DiagnosticKind::ALL.into_iter().find(|k| k.ident() == s)
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A diagnostic hit, aggregated per (actor, kind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticEvent {
    /// Path key of the diagnosed actor (e.g. `Model_Minus`).
    pub actor: String,
    /// The error category.
    pub kind: DiagnosticKind,
    /// Step at which the error first occurred.
    pub first_step: u64,
    /// Total number of occurrences.
    pub count: u64,
}

impl fmt::Display for DiagnosticEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Mirrors the generated code's warning text (paper Figure 4).
        write!(
            f,
            "WARNING: {} occur on {}! (first at step {}, {} times)",
            self.kind, self.actor, self.first_step, self.count
        )
    }
}

/// Which diagnostics a simulation run performs.
///
/// SSE's normal mode enables all of them; the fast simulation modes
/// (`SSE_ac`, `SSE_rac`) disable them entirely, which is exactly the
/// capability gap the paper exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagnosticPolicy {
    mask: u8,
}

impl DiagnosticPolicy {
    /// All diagnostics enabled (SSE normal mode, AccMoS default).
    pub fn all() -> DiagnosticPolicy {
        DiagnosticPolicy { mask: 0x3F }
    }

    /// No diagnostics (fast simulation modes).
    pub fn none() -> DiagnosticPolicy {
        DiagnosticPolicy { mask: 0 }
    }

    /// Only the listed kinds.
    pub fn only(kinds: &[DiagnosticKind]) -> DiagnosticPolicy {
        let mut mask = 0;
        for k in kinds {
            mask |= 1 << Self::bit(*k);
        }
        DiagnosticPolicy { mask }
    }

    fn bit(kind: DiagnosticKind) -> u8 {
        DiagnosticKind::ALL.iter().position(|k| *k == kind).unwrap() as u8
    }

    /// Whether `kind` is enabled.
    pub fn enabled(&self, kind: DiagnosticKind) -> bool {
        self.mask >> Self::bit(kind) & 1 == 1
    }

    /// Whether any diagnostic is enabled.
    pub fn any(&self) -> bool {
        self.mask != 0
    }
}

impl Default for DiagnosticPolicy {
    fn default() -> Self {
        DiagnosticPolicy::all()
    }
}

/// The diagnoses applicable to an actor, given its resolved input data
/// types and output data type.
///
/// This encodes the paper's rule that *"the type and number of diagnoses
/// vary depending on the actor type and its operator. For example, a
/// 'Product' actor with the '/' operator needs to diagnose division by zero
/// errors. Conversely, when this actor uses the '*' operator, this
/// diagnosing becomes unnecessary."*
pub fn applicable_diagnoses(
    kind: &ActorKind,
    in_types: &[DataType],
    out_type: DataType,
) -> Vec<DiagnosticKind> {
    use ActorKind::*;
    let mut out = Vec::new();
    let int_out = out_type.is_integer();

    match kind {
        Sum { .. } | DiscreteIntegrator { .. } | DiscreteDerivative | Bias { .. }
            if int_out => {
                out.push(DiagnosticKind::WrapOnOverflow);
            }
        Gain { .. }
            if int_out => {
                out.push(DiagnosticKind::WrapOnOverflow);
            }
        Product { ops } => {
            if int_out && ops.contains('*') {
                out.push(DiagnosticKind::WrapOnOverflow);
            }
            if ops.contains('/') {
                out.push(DiagnosticKind::DivisionByZero);
            }
        }
        Math { op } => match op {
            MathOp::Reciprocal | MathOp::Mod | MathOp::Rem => {
                out.push(DiagnosticKind::DivisionByZero);
            }
            MathOp::Log | MathOp::Log10 => out.push(DiagnosticKind::DomainError),
            // `Pow` evaluates in f64 and converts with saturation, so it
            // cannot wrap; only the in-type `Square` can.
            MathOp::Square
                if int_out => {
                    out.push(DiagnosticKind::WrapOnOverflow);
                }
            _ => {}
        },
        Sqrt => out.push(DiagnosticKind::DomainError),
        Trig { op } => {
            if matches!(op, crate::actor::TrigOp::Asin | crate::actor::TrigOp::Acos) {
                out.push(DiagnosticKind::DomainError);
            }
        }
        Abs
            if out_type.is_signed() => {
                // abs(MIN) wraps.
                out.push(DiagnosticKind::WrapOnOverflow);
            }
        Shift { dir: crate::actor::ShiftDir::Left, .. }
            if int_out => {
                out.push(DiagnosticKind::WrapOnOverflow);
            }
        DotProduct | SumOfElements | ProductOfElements | Polynomial { .. }
            if int_out => {
                out.push(DiagnosticKind::WrapOnOverflow);
            }
        Selector { dynamic: true, .. } | MultiportSwitch { .. } => {
            out.push(DiagnosticKind::ArrayOutOfBounds);
        }
        _ => {}
    }

    // Downcast / precision loss apply to any actor whose inputs are wider
    // than its output (Figure 4, line 4: sizeof comparison).
    for &input in in_types {
        if input.downcast_to(out_type) {
            out.push(DiagnosticKind::Downcast);
            break;
        }
    }
    for &input in in_types {
        if input.precision_loss_to(out_type) {
            out.push(DiagnosticKind::PrecisionLoss);
            break;
        }
    }

    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{ActorKind, MathOp};
    use crate::dtype::DataType::*;

    #[test]
    fn product_diagnoses_depend_on_operator() {
        let with_div = applicable_diagnoses(&ActorKind::Product { ops: "*/".into() }, &[I32, I32], I32);
        assert!(with_div.contains(&DiagnosticKind::DivisionByZero));
        assert!(with_div.contains(&DiagnosticKind::WrapOnOverflow));

        let mul_only = applicable_diagnoses(&ActorKind::Product { ops: "**".into() }, &[I32, I32], I32);
        assert!(!mul_only.contains(&DiagnosticKind::DivisionByZero));
        assert!(mul_only.contains(&DiagnosticKind::WrapOnOverflow));
    }

    #[test]
    fn float_sum_has_no_overflow_diagnosis() {
        let d = applicable_diagnoses(&ActorKind::Sum { signs: "++".into() }, &[F64, F64], F64);
        assert!(d.is_empty());
        let d = applicable_diagnoses(&ActorKind::Sum { signs: "+-".into() }, &[I32, I32], I32);
        assert_eq!(d, vec![DiagnosticKind::WrapOnOverflow]);
    }

    #[test]
    fn downcast_detected_from_port_types() {
        // The paper's second CSEV fault: int inputs, short int output.
        let d = applicable_diagnoses(&ActorKind::Product { ops: "**".into() }, &[I32, I32], I16);
        assert!(d.contains(&DiagnosticKind::Downcast));
    }

    #[test]
    fn precision_loss_on_float_to_int() {
        let d = applicable_diagnoses(&ActorKind::DataTypeConversion { to: I32 }, &[F64], I32);
        assert!(d.contains(&DiagnosticKind::PrecisionLoss));
        assert!(d.contains(&DiagnosticKind::Downcast));
    }

    #[test]
    fn domain_error_for_log_and_sqrt() {
        assert!(applicable_diagnoses(&ActorKind::Math { op: MathOp::Log }, &[F64], F64)
            .contains(&DiagnosticKind::DomainError));
        assert!(applicable_diagnoses(&ActorKind::Sqrt, &[F64], F64)
            .contains(&DiagnosticKind::DomainError));
        assert!(applicable_diagnoses(&ActorKind::Math { op: MathOp::Exp }, &[F64], F64).is_empty());
    }

    #[test]
    fn oob_for_dynamic_selector_only() {
        assert!(applicable_diagnoses(
            &ActorKind::Selector { indices: vec![0], dynamic: true },
            &[F64, I32],
            F64
        )
        .contains(&DiagnosticKind::ArrayOutOfBounds));
        assert!(applicable_diagnoses(
            &ActorKind::Selector { indices: vec![0], dynamic: false },
            &[F64],
            F64
        )
        .is_empty());
    }

    #[test]
    fn policy_masks() {
        let p = DiagnosticPolicy::all();
        assert!(p.enabled(DiagnosticKind::WrapOnOverflow) && p.any());
        let p = DiagnosticPolicy::none();
        assert!(!p.any());
        let p = DiagnosticPolicy::only(&[DiagnosticKind::DivisionByZero]);
        assert!(p.enabled(DiagnosticKind::DivisionByZero));
        assert!(!p.enabled(DiagnosticKind::Downcast));
    }

    #[test]
    fn ident_roundtrip() {
        for k in DiagnosticKind::ALL {
            assert_eq!(DiagnosticKind::parse_ident(k.ident()), Some(k));
        }
        assert_eq!(DiagnosticKind::parse_ident("nope"), None);
    }

    #[test]
    fn event_display_mentions_actor() {
        let e = DiagnosticEvent {
            actor: "Model_Minus".into(),
            kind: DiagnosticKind::WrapOnOverflow,
            first_step: 9,
            count: 2,
        };
        let text = e.to_string();
        assert!(text.contains("wrap on overflow") && text.contains("Model_Minus"));
    }
}
